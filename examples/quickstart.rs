//! Quickstart: a table on simulated flash, small updates, and the
//! difference IPA makes — in ~60 lines.
//!
//! Run: `cargo run --release --example quickstart`

use in_place_appends::prelude::*;

fn run(strategy: WriteStrategy, scheme: NmScheme) -> DeviceStats {
    // A 64 MB simulated MLC device in pSLC mode.
    let device = DeviceConfig::small();

    // An engine with one IPA-formatted table (plus its WAL on a separate
    // simulated log device).
    let config = match strategy {
        WriteStrategy::Traditional => EngineConfig::default(),
        _ => EngineConfig::default().with_strategy(strategy, scheme),
    }
    .with_buffer_frames(16);
    let mut engine = StorageEngine::build(device, config, &[TableSpec::heap("accounts", 100, 256)])
        .expect("engine");
    let accounts = engine.table("accounts").unwrap();

    // Load 1 000 rows.
    let tx = engine.begin();
    let mut rids = Vec::new();
    for id in 0..1_000u64 {
        let mut row = [0u8; 100];
        row[..8].copy_from_slice(&id.to_le_bytes());
        rids.push(engine.insert(tx, accounts, &row).unwrap());
    }
    engine.commit(tx).unwrap();
    engine.flush_all().unwrap();

    // 3 000 small updates: bump a 2-byte counter in scattered rows. This
    // is the access pattern the paper targets — tiny in-place updates on
    // an 8 KB page. A periodic flush stands in for checkpointing /
    // buffer-pressure evictions.
    for i in 0..3_000u64 {
        let rid = rids[(i as usize * 37) % rids.len()];
        let tx = engine.begin();
        engine
            .update_field(tx, accounts, rid, 16, &(i as u16).to_le_bytes())
            .unwrap();
        engine.commit(tx).unwrap();
        if i % 100 == 99 {
            engine.flush_all().unwrap();
        }
    }
    engine.flush_all().unwrap();

    // Everything is durable: read one row back through the device.
    engine.restart_clean().unwrap();
    let row = engine.get(accounts, rids[0]).unwrap();
    assert_eq!(u64::from_le_bytes(row[..8].try_into().unwrap()), 0);

    engine.stats().device
}

fn main() {
    let trad = run(WriteStrategy::Traditional, NmScheme::disabled());
    let ipa = run(WriteStrategy::IpaNative, NmScheme::new(4, 8));

    println!("same 3 000 small updates, traditional vs IPA [4x8] (write_delta):");
    println!("  traditional: {trad}");
    println!("  IPA native : {ipa}");
    println!();
    println!(
        "page invalidations: {} -> {}  ({:+.0}%)",
        trad.page_invalidations,
        ipa.page_invalidations,
        (ipa.page_invalidations as f64 - trad.page_invalidations as f64)
            / trad.page_invalidations.max(1) as f64
            * 100.0
    );
    println!(
        "GC erases         : {} -> {}",
        trad.gc_erases, ipa.gc_erases
    );
    println!(
        "bytes sent to dev : {} -> {}  (write_delta moves only the deltas)",
        trad.bytes_host_written, ipa.bytes_host_written
    );
    assert!(ipa.page_invalidations < trad.page_invalidations);
    assert!(ipa.in_place_appends > 0);
}
