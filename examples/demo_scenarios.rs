//! The paper's demonstration (§4, Figures 4–5) as a CLI: pick a benchmark,
//! scale factor and duration, then run the three demo scenarios and
//! compare their I/O statistics — exactly what the audience did with the
//! GUI on the OpenSSD rig.
//!
//! * **Scenario 1 — Baseline**: traditional out-of-place writes, `[0×0]`.
//! * **Scenario 2 — IPA for conventional SSDs**: full-page writes through
//!   the block interface; the FTL detects overwrite-compatible images.
//! * **Scenario 3 — IPA for native flash**: the DBMS sends `write_delta`.
//!
//! Run: `cargo run --release --example demo_scenarios -- [tpcb|tpcc|tatp]
//! [scale] [secs]`

use in_place_appends::prelude::*;
use in_place_appends::workloads::RunResult;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kind = match args.get(1).map(String::as_str) {
        Some("tpcc") => WorkloadKind::TpcC,
        Some("tatp") => WorkloadKind::Tatp,
        Some("linkbench") => WorkloadKind::LinkBench,
        _ => WorkloadKind::TpcB,
    };
    let scale: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let secs: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(8.0);

    println!(
        "demo: {} at scale {scale}, {secs:.0} simulated seconds per scenario",
        kind.name()
    );
    println!("flash: simulated MLC in pSLC mode, [2x4] scheme for scenarios 2 and 3");
    println!();

    let cfg = DriverConfig::default().for_simulated_secs(secs);
    let scenarios = [
        (
            "1: baseline (out-of-place)",
            WriteStrategy::Traditional,
            NmScheme::disabled(),
        ),
        (
            "2: IPA, conventional SSD",
            WriteStrategy::IpaConventional,
            NmScheme::new(2, 4),
        ),
        (
            "3: IPA, native flash",
            WriteStrategy::IpaNative,
            NmScheme::new(2, 4),
        ),
    ];

    let mut results: Vec<(&str, RunResult)> = Vec::new();
    for (label, strategy, scheme) in scenarios {
        eprintln!("running scenario {label} ...");
        let r = Driver::run_configured(kind, scale, strategy, scheme, FlashMode::PSlc, &cfg)
            .expect("scenario run");
        results.push((label, r));
    }

    println!(
        "{:<30}{:>16}{:>16}{:>16}",
        "", "scenario 1", "scenario 2", "scenario 3"
    );
    let row = |label: &str, f: &dyn Fn(&RunResult) -> String| {
        println!(
            "{label:<30}{:>16}{:>16}{:>16}",
            f(&results[0].1),
            f(&results[1].1),
            f(&results[2].1)
        );
    };
    row("committed transactions", &|r| r.transactions.to_string());
    row("throughput [tps]", &|r| format!("{:.0}", r.tps));
    row("host reads", &|r| r.device.host_reads.to_string());
    row("host page writes", &|r| r.device.host_writes.to_string());
    row("write_delta commands", &|r| {
        r.device.host_write_deltas.to_string()
    });
    row("in-place appends", &|r| {
        r.device.in_place_appends.to_string()
    });
    row("page invalidations", &|r| {
        r.device.page_invalidations.to_string()
    });
    row("GC page migrations", &|r| {
        r.device.gc_page_migrations.to_string()
    });
    row("GC erases", &|r| r.device.gc_erases.to_string());
    row("MB sent to device", &|r| {
        format!("{:.1}", r.device.bytes_host_written as f64 / 1e6)
    });

    println!();
    println!("scenario 2 and 3 should show the same GC relief (both append in place);");
    println!("scenario 3 additionally slashes the transferred bytes via write_delta.");

    let s2 = &results[1].1.device;
    let s3 = &results[2].1.device;
    assert!(s2.in_place_appends > 0 && s3.in_place_appends > 0);
    assert!(s3.bytes_host_written < s2.bytes_host_written);
}
