//! Poke the NAND simulator directly: the erase-before-overwrite principle,
//! in-place appends, NOP budgets, mode restrictions and interference —
//! the physics layer everything else stands on.
//!
//! Run: `cargo run --release --example flash_physics`

use in_place_appends::flash::ispp::{simulate_wordline_program, slc_byte_to_levels};
use in_place_appends::flash::IsppParams;
use in_place_appends::prelude::*;

fn main() {
    // --- 1. a page is a row of charge wells -----------------------------
    println!("1. ISPP can only ADD charge");
    let params = IsppParams::slc();
    let erased = [0u8; 8];
    let programmed = slc_byte_to_levels(0b1010_0110);
    let trace = simulate_wordline_program(&params, &erased, &programmed).unwrap();
    println!(
        "   programming byte 0b1010_0110 onto an erased wordline: {} pulses, {} cells charged",
        trace.pulses, trace.cells_programmed
    );
    let err = simulate_wordline_program(&params, &programmed, &erased).unwrap_err();
    println!("   trying to erase via programming: {err}");

    // --- 2. the byte-level consequence -----------------------------------
    println!();
    println!("2. in-place appends on a real(ish) chip");
    let mut chip = FlashChip::new(
        DeviceConfig::new(Geometry::tiny(), FlashMode::Slc).with_disturb(DisturbRates::none()),
    );
    let ppa = Ppa::new(2, 5);
    let mut page = vec![0xFF; 2048];
    page[..1500].copy_from_slice(&[0xC3; 1500]);
    let oob = vec![0xFF; 64];
    chip.program_page(ppa, &page, &oob).unwrap();
    println!(
        "   wrote 1500 B; {} B of the page still erased",
        2048 - 1500
    );

    for round in 0..3 {
        let off = 1500 + round * 100;
        chip.append_region(ppa, off, &[round as u8 + 1; 100], 0, &[])
            .unwrap();
        println!(
            "   append #{}: 100 B at offset {off}, program count now {}",
            round + 1,
            chip.program_count(ppa).unwrap()
        );
    }
    let img = chip.read_page(ppa).unwrap();
    assert_eq!(&img.data[1500..1600], &[1u8; 100][..]);

    // --- 3. NOP budget ----------------------------------------------------
    println!();
    println!("3. NOP: partial programs between erases are bounded");
    println!(
        "   this SLC chip allows {} programs per page; we have used {}",
        chip.nop_limit(ppa.page),
        chip.program_count(ppa).unwrap()
    );

    // --- 4. mode restrictions ----------------------------------------------
    println!();
    println!("4. modes: pSLC uses only LSB pages, odd-MLC restricts appends");
    let pslc = FlashMode::PSlc;
    println!(
        "   pSLC: page 0 usable = {}, page 1 usable = {} (capacity factor {})",
        pslc.page_usable(0),
        pslc.page_usable(1),
        pslc.capacity_factor()
    );
    let odd = FlashMode::OddMlc;
    println!(
        "   odd-MLC: append-safe on page 1 (LSB) = {}, on page 2 (MSB) = {}",
        odd.ipa_safe(1),
        odd.ipa_safe(2)
    );

    // --- 5. interference: why full-MLC IPA is forbidden ---------------------
    println!();
    println!("5. hammering a full-MLC wordline corrupts its neighbour");
    let mut cfg = DeviceConfig::new(Geometry::tiny(), FlashMode::MlcFull).with_nop(16);
    cfg.disturb = DisturbRates::realistic();
    let mut chip = FlashChip::new(cfg);
    let victim = Ppa::new(0, 3);
    let aggressor = Ppa::new(0, 2); // same wordline pair
    let oob = vec![0xFF; 64];
    chip.program_page(victim, &vec![0xFF; 2048], &oob).unwrap();
    let mut agg = vec![0xFF; 2048];
    chip.program_page(aggressor, &agg, &oob).unwrap();
    for i in 0..10usize {
        agg[i] = 0;
        chip.reprogram_page(aggressor, &agg, &oob).unwrap();
    }
    println!(
        "   10 unsafe re-programs injected {} disturb bit flips into neighbours",
        chip.stats().disturb_bits_injected
    );
    assert!(chip.stats().disturb_bits_injected > 0);
    println!();
    println!("(this is what the paper's pSLC / odd-MLC configurations are protecting against)");
}
