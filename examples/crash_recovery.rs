//! "Regular database functionality (e.g. recovery, locking, etc.) is NOT
//! impacted by the proposed approach." — paper §3.
//!
//! This example proves the recovery half of that sentence: a TATP-style
//! update stream runs under IPA, the process "crashes" losing every
//! buffered page, and WAL redo brings back exactly the committed updates —
//! on top of pages whose on-flash images are a mix of out-of-place writes
//! and in-place delta appends.
//!
//! Run: `cargo run --release --example crash_recovery`

use in_place_appends::prelude::*;

fn main() {
    let device = DeviceConfig::small();
    let mut engine = StorageEngine::build(
        device,
        EngineConfig::default()
            .with_ipa(NmScheme::new(4, 8))
            .with_buffer_frames(24),
        &[
            TableSpec::heap("subscriber", 100, 128),
            TableSpec::index("subscriber_pk", 64),
        ],
    )
    .expect("engine");
    let sub = engine.table("subscriber").unwrap();
    let pk = engine.table("subscriber_pk").unwrap();

    // Load and checkpoint.
    let tx = engine.begin();
    for id in 0..500u64 {
        let mut row = [0u8; 100];
        row[..8].copy_from_slice(&id.to_le_bytes());
        let rid = engine.insert(tx, sub, &row).unwrap();
        engine.index_insert(tx, pk, id, rid).unwrap();
    }
    engine.commit(tx).unwrap();
    engine.flush_all().unwrap();
    println!("loaded 500 subscribers, checkpointed");

    // Committed location updates — some flushed (in-place appends on
    // flash), some still only buffered + WAL-logged.
    for id in 0..200u64 {
        let rid = engine.index_lookup(pk, id).unwrap().unwrap();
        let tx = engine.begin();
        engine
            .update_field(tx, sub, rid, 12, &(id as u32 + 7).to_le_bytes())
            .unwrap();
        engine.commit(tx).unwrap();
        if id == 99 {
            engine.flush_all().unwrap(); // first 100 reach flash
        }
    }
    // One uncommitted transaction that must NOT survive.
    let rid0 = engine.index_lookup(pk, 0).unwrap().unwrap();
    let zombie = engine.begin();
    engine
        .update_field(zombie, sub, rid0, 20, &[0xDE, 0xAD])
        .unwrap();

    let appends_before = engine.stats().device.in_place_appends;
    println!("200 committed updates (100 flushed as in-place appends: {appends_before} so far),");
    println!("1 uncommitted update in flight — crashing now");

    // Crash: all buffered pages vanish.
    engine.crash();
    let report = engine.recover().expect("recovery");
    println!(
        "recovered: {} WAL records scanned, {} updates redone, {} uncommitted skipped",
        report.records_scanned, report.updates_redone, report.updates_skipped_uncommitted
    );

    // Verify: every committed update visible, the zombie write gone.
    for id in 0..200u64 {
        let rid = engine.index_lookup(pk, id).unwrap().unwrap();
        let row = engine.get(sub, rid).unwrap();
        let vlr = u32::from_le_bytes(row[12..16].try_into().unwrap());
        assert_eq!(vlr, id as u32 + 7, "subscriber {id} lost its update");
    }
    let row = engine.get(sub, rid0).unwrap();
    assert_ne!(&row[20..22], &[0xDE, 0xAD], "uncommitted write resurrected");
    println!("verified: all 200 committed updates present, uncommitted write absent ✓");
}
