//! `plane_parity` — multi-plane pairing must be invisible to the DBMS.
//!
//! The same seeded operation stream, run through a full storage engine
//! over a single-plane chip and over every planes {1, 2, 4} × dies {1, 2}
//! device under all three write strategies, must reach the identical
//! logical state — live rows byte-for-byte equal, deletes equally gone —
//! and must still match after a cold restart forces every page back
//! through flash. Whatever the plane-aware allocator does underneath
//! (aligned frontier groups, one-deep pairing windows, multi-plane
//! program commands, plane-local GC victims), *time* may differ but
//! *state* may not.

use ipa_core::NmScheme;
use ipa_ftl::{StripePolicy, WriteStrategy};
use ipa_storage::Rid;
use ipa_testkit::{all_strategies, heap_engine, sharded_plane_engine, ModelHarness};
use proptest::prelude::*;

const PLANE_COUNTS: [u32; 3] = [1, 2, 4];
const DIE_COUNTS: [u32; 2] = [1, 2];

/// Run `ops` harness steps on an engine, prove it matches its own model
/// across a restart, and return the canonical logical state.
fn final_state(
    mut e: ipa_storage::StorageEngine,
    seed: u64,
    ops: usize,
    label: String,
) -> Vec<(Rid, Vec<u8>)> {
    let t = e.table("m").unwrap();
    let mut h = ModelHarness::new(seed, label);
    h.run(&mut e, t, ops);
    e.restart_clean().unwrap();
    h.assert_engine_matches(&mut e, t);
    h.canonical_rows()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// The full matrix: planes {1, 2, 4} × dies {1, 2} × all three write
    /// strategies ≡ the single-plane single-chip engine.
    #[test]
    fn plane_parity_full_matrix(seed in any::<u64>(), ops in 150usize..260) {
        for (strategy, scheme) in all_strategies() {
            let single = final_state(
                heap_engine(strategy, scheme, seed),
                seed,
                ops,
                format!("single/{strategy:?}(seed {seed})"),
            );
            for dies in DIE_COUNTS {
                for planes in PLANE_COUNTS {
                    let planar = final_state(
                        sharded_plane_engine(
                            strategy,
                            scheme,
                            seed,
                            dies,
                            planes,
                            StripePolicy::RoundRobin,
                        ),
                        seed,
                        ops,
                        format!("{dies}d×{planes}p/{strategy:?}(seed {seed})"),
                    );
                    prop_assert!(
                        single == planar,
                        "{dies} dies × {planes} planes diverged from the single-plane \
                         chip under {strategy:?} at seed {seed}"
                    );
                }
            }
        }
    }
}

/// The multi-plane machinery must actually engage in the matrix above —
/// otherwise the parity claim is vacuous. Same fixture, write-burst
/// shape, counters checked.
#[test]
fn pairing_engages_under_the_parity_fixture() {
    let mut e = sharded_plane_engine(
        WriteStrategy::Traditional,
        NmScheme::disabled(),
        0x9_1A7E,
        2,
        2,
        StripePolicy::RoundRobin,
    );
    let t = e.table("m").unwrap();
    let tx = e.begin();
    for i in 0..2000u64 {
        let mut row = [0u8; 48];
        row[..8].copy_from_slice(&i.to_le_bytes());
        e.insert(tx, t, &row).unwrap();
    }
    e.commit(tx).unwrap();
    e.flush_all().unwrap();
    let d = e.stats().device;
    assert!(
        d.multi_plane_pairs > 0,
        "the parity matrix must exercise real multi-plane commands: {d:?}"
    );
    assert_eq!(
        e.stats().flash.multi_plane_programs,
        d.multi_plane_pairs,
        "every pair is one chip-level multi-plane command"
    );
}
