//! Acceptance for the background maintenance subsystem.
//!
//! 1. **Tail latency** — on the 4-channel × 2-die controller running the
//!    mixed OLTP sweep (TPC-B + TATP, 8 client streams) with an NCQ
//!    queue cap, scheduling reclaim on idle dies must beat inline
//!    low-water GC on p99.9 latency at equal throughput (within 5 %).
//!    The mechanism: inline GC posts its copy-backs and the erase from
//!    the host write path, so with a queue cap the submitting stream
//!    stalls behind its own firmware's reclaim burst; the scheduler's
//!    steps are cap-exempt, idle-placed and spread one command per poll.
//!    The comparison uses the traditional write strategy because that is
//!    the GC-heavy configuration — IPA-native barely garbage-collects,
//!    which is the paper's point, not a property of the scheduler.
//! 2. **GC parity** — `sharded_parity`-style: background-scheduled GC
//!    must reach the identical logical state as inline GC for die counts
//!    {1, 2, 4, 8}, across all three write strategies, with and without
//!    a queue cap. Scheduling may move *time*, never *state*.

use ipa_core::NmScheme;
use ipa_flash::FlashMode;
use ipa_ftl::{StripePolicy, WriteStrategy};
use ipa_storage::Rid;
use ipa_testkit::{heap_engine, maintained_heap_engine, ModelHarness};
use ipa_workloads::{Driver, DriverConfig, MaintMode, RunResult, Topology, WorkloadKind};
use proptest::prelude::*;

const DIE_COUNTS: [u32; 4] = [1, 2, 4, 8];

fn run_mode(kind: WorkloadKind, maint: MaintMode) -> RunResult {
    let cfg = DriverConfig::default()
        .with_transactions(20_000)
        .with_streams(8);
    Driver::run_maintained(
        kind,
        1,
        WriteStrategy::Traditional,
        NmScheme::disabled(),
        FlashMode::PSlc,
        Topology::new(4, 2, StripePolicy::RoundRobin),
        maint,
        &cfg,
    )
    .expect("maintained run")
}

#[test]
fn background_gc_with_queue_cap_beats_inline_on_p999() {
    let cap = 1usize;
    let mut p999_ratios = Vec::new();
    for kind in [WorkloadKind::TpcB, WorkloadKind::Tatp] {
        let inline = run_mode(kind, MaintMode::capped(cap));
        let bg = run_mode(kind, MaintMode::background(Some(cap)));

        // Equal throughput: the scheduler must not buy its tail win by
        // slowing the run down.
        let tps_delta = (bg.tps - inline.tps).abs() / inline.tps;
        assert!(
            tps_delta <= 0.05,
            "{}: throughput diverged by {:.1}% (inline {:.0} vs bg {:.0} tps)",
            kind.name(),
            tps_delta * 100.0,
            inline.tps,
            bg.tps
        );

        // The background arm must actually do its GC in the background.
        assert!(bg.maint.is_some(), "{}: no scheduler stats", kind.name());
        let d = &bg.device;
        assert_eq!(
            d.background_gc_erases,
            d.gc_erases,
            "{}: inline emergency GC fired in the background arm",
            kind.name()
        );

        p999_ratios.push(inline.latency.p999_ns as f64 / bg.latency.p999_ns as f64);

        if kind == WorkloadKind::TpcB {
            // The GC-heavy workload: the win must be individually visible.
            assert!(d.gc_erases > 0, "TPC-B run never garbage-collected");
            assert!(
                bg.latency.p999_ns < inline.latency.p999_ns,
                "TPC-B p99.9 must improve: inline {} vs bg {} ns",
                inline.latency.p999_ns,
                bg.latency.p999_ns
            );
            // The capped queue stalls the host less once reclaim posts
            // are out of the host's submission path.
            let (iw, bw) = (
                inline.controller.expect("controller").backpressure_wait_ns,
                bg.controller.expect("controller").backpressure_wait_ns,
            );
            assert!(
                bw < iw,
                "back-pressure must relax with background GC: {iw} -> {bw} ns"
            );
        }
    }
    // The mixed-sweep bar: geometric-mean p99.9 across TPC-B + TATP
    // improves.
    let gmean = (p999_ratios.iter().map(|r| r.ln()).sum::<f64>() / p999_ratios.len() as f64).exp();
    assert!(
        gmean > 1.0,
        "mixed-sweep p99.9 must improve with background GC ({p999_ratios:?} -> gmean {gmean:.3}x)"
    );
}

/// Run the harness on an engine, verify against its model across a
/// restart, and return the canonical logical state.
fn final_state(
    mut e: ipa_storage::StorageEngine,
    seed: u64,
    ops: usize,
    label: String,
) -> Vec<(Rid, Vec<u8>)> {
    let t = e.table("m").unwrap();
    let mut h = ModelHarness::new(seed, label);
    h.run(&mut e, t, ops);
    e.restart_clean().unwrap();
    h.assert_engine_matches(&mut e, t);
    h.canonical_rows()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Background-scheduled GC with an NCQ cap reaches the same logical
    /// state as a single inline-GC chip, under the native `write_delta`
    /// strategy, at every die count.
    #[test]
    fn background_gc_parity_ipa_native(seed in any::<u64>(), ops in 150usize..260) {
        let scheme = NmScheme::new(2, 4);
        let single = final_state(
            heap_engine(WriteStrategy::IpaNative, scheme, seed),
            seed,
            ops,
            format!("single(seed {seed})"),
        );
        for dies in DIE_COUNTS {
            let maintained = final_state(
                maintained_heap_engine(
                    WriteStrategy::IpaNative,
                    scheme,
                    seed,
                    dies,
                    StripePolicy::RoundRobin,
                    Some(2),
                ),
                seed,
                ops,
                format!("bg-{dies}-die(seed {seed})"),
            );
            prop_assert!(
                single == maintained,
                "{dies}-die background GC diverged from the single chip at seed {seed}"
            );
        }
    }
}

/// The traditional out-of-place path — the GC-heavy strategy — at a
/// fixed seed over the full die matrix, queues capped.
#[test]
fn background_gc_parity_traditional_fixed_seed() {
    let scheme = NmScheme::disabled();
    let seed = 0x00B6_06C5;
    let ops = 230;
    let single = final_state(
        heap_engine(WriteStrategy::Traditional, scheme, seed),
        seed,
        ops,
        "single-trad".into(),
    );
    for dies in DIE_COUNTS {
        let maintained = final_state(
            maintained_heap_engine(
                WriteStrategy::Traditional,
                scheme,
                seed,
                dies,
                StripePolicy::RoundRobin,
                Some(2),
            ),
            seed,
            ops,
            format!("bg-trad-{dies}-die"),
        );
        assert_eq!(single, maintained, "{dies}-die traditional GC diverged");
    }
}

/// The conventional-SSD IPA strategy (in-place detection in the FTL),
/// hash-striped, uncapped — exercises the third write path and the other
/// stripe policy through the maintained wrapper.
#[test]
fn background_gc_parity_ipa_conventional_fixed_seed() {
    let scheme = NmScheme::new(2, 4);
    let seed = 0x00BA_C60C;
    let ops = 210;
    let single = final_state(
        heap_engine(WriteStrategy::IpaConventional, scheme, seed),
        seed,
        ops,
        "single-conv".into(),
    );
    for dies in DIE_COUNTS {
        let maintained = final_state(
            maintained_heap_engine(
                WriteStrategy::IpaConventional,
                scheme,
                seed,
                dies,
                StripePolicy::Hash,
                None,
            ),
            seed,
            ops,
            format!("bg-conv-{dies}-die"),
        );
        assert_eq!(single, maintained, "{dies}-die conventional GC diverged");
    }
}
