//! Acceptance for the observability layer: the trace is *true*.
//!
//! A QoS background-GC run on the 4ch×2d topology is traced through a
//! [`RingRecorder`] attached mid-life (after load + warm-up), and the
//! recording must reconcile exactly with the controller's own counters
//! over the same window: one `Completed` event per dispatched command,
//! one `Promoted` instant per promoted read, and `Suspended`/`Resumed`
//! pairs matching the erase-suspend count. The Chrome export must parse
//! and put events on every die's track, and the bounded read-latency
//! histogram must agree with the exact-sample oracle to within its
//! log2 bucket at every reported quantile.

use std::sync::{Arc, Mutex};

use ipa_controller::{RingRecorder, SharedSink, TracePhase};
use ipa_core::NmScheme;
use ipa_flash::FlashMode;
use ipa_ftl::{StripePolicy, WriteStrategy};
use ipa_trace::json::JsonValue;
use ipa_trace::{chrome_trace_json, json, LatencyHistogram};
use ipa_workloads::{
    build, Driver, DriverConfig, LatencyPercentiles, MaintMode, Topology, WorkloadKind,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn trace_reconciles_with_controller_stats() {
    let cfg = DriverConfig::default();
    let topo = Topology::new(4, 2, StripePolicy::RoundRobin);
    let mut bench = build(WorkloadKind::TpcB, 1, 8 * 1024);
    let mut engine = Driver::make_maintained_engine(
        bench.as_mut(),
        WriteStrategy::Traditional,
        NmScheme::disabled(),
        FlashMode::PSlc,
        8 * 1024,
        topo,
        MaintMode::background(None).with_qos(),
        &cfg,
    )
    .expect("engine builds");
    let mut rng = StdRng::seed_from_u64(0x7C_B5EED);
    bench.load(&mut engine, &mut rng).expect("load");
    for _ in 0..500 {
        bench.run_tx(&mut engine, &mut rng).expect("warm-up tx");
    }
    engine.flush_all().expect("flush");

    // Attach the recorder mid-life and window the controller's counters,
    // latency samples and histogram from the same instant.
    let ctrl = Driver::controller_of(&engine).expect("striped device has a controller");
    let before = ctrl.stats();
    let hist_before = ctrl.read_latency_histogram();
    let cursor = ctrl.read_latency_count();
    let rec = Arc::new(Mutex::new(RingRecorder::new(1 << 22)));
    let sink: SharedSink = rec.clone();
    ctrl.set_tracer(sink);
    assert!(ctrl.tracing_enabled());

    for _ in 0..6_000 {
        bench.run_tx(&mut engine, &mut rng).expect("measured tx");
    }
    engine.flush_all().expect("flush");

    ctrl.clear_tracer();
    let after = ctrl.stats();
    let d = after.delta_since(&before);
    let rec = rec.lock().unwrap();
    let events = rec.to_vec();
    assert_eq!(rec.dropped(), 0, "ring must not have evicted");
    assert!(!events.is_empty());

    // Event counts == counter deltas, phase by phase. This is the claim
    // that the trace is an *account* of the run, not a sample of it.
    let count = |p: TracePhase| events.iter().filter(|e| e.phase == p).count() as u64;
    assert_eq!(
        count(TracePhase::Completed),
        d.commands,
        "every dispatched command completes exactly once in the trace"
    );
    assert_eq!(
        count(TracePhase::Promoted),
        d.reads_promoted,
        "promotion instants match the promoted-reads counter"
    );
    assert_eq!(
        count(TracePhase::Suspended),
        d.erase_suspends,
        "suspend instants match the erase-suspend counter"
    );
    assert_eq!(
        count(TracePhase::Resumed),
        count(TracePhase::Suspended),
        "every suspended erase resumes"
    );
    assert!(
        d.reads_promoted > 0,
        "the QoS run must actually promote reads for this wall to bite"
    );
    assert!(count(TracePhase::Started) >= d.commands);

    // The Chrome export parses and covers every die's track.
    let doc = chrome_trace_json(&events, "observability wall");
    let parsed = json::parse(&doc).expect("chrome trace JSON parses");
    let json_events = parsed
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    for die in 0..topo.dies() as u64 {
        assert!(
            json_events.iter().any(|e| {
                e.get("ph").and_then(JsonValue::as_str) != Some("M")
                    && e.get("tid").and_then(JsonValue::as_u64) == Some(die)
            }),
            "die {die} has no events on its track"
        );
    }

    // The bounded histogram agrees with the exact-sample oracle over the
    // same window: same count, and every reported quantile in the same
    // log2 bucket (the histogram's resolution guarantee).
    let hist = ctrl.read_latency_histogram().delta_since(&hist_before);
    let exact = LatencyPercentiles::from_samples(ctrl.read_latencies()[cursor..].to_vec());
    assert_eq!(hist.count(), exact.count);
    assert!(hist.count() > 1_000, "enough reads for a p99.9");
    for (q, e) in [
        (0.50, exact.p50_ns),
        (0.95, exact.p95_ns),
        (0.99, exact.p99_ns),
        (0.999, exact.p999_ns),
    ] {
        let est = hist.percentile(q);
        assert_eq!(
            LatencyHistogram::bucket_index(est),
            LatencyHistogram::bucket_index(e),
            "q={q}: histogram {est} vs exact {e} disagree beyond one log2 bucket"
        );
    }
    // A windowed delta carries the lifetime extremes (min/max cannot be
    // subtracted out of a histogram), so max bounds the window's max.
    assert!(hist.max() >= exact.max_ns);
}
