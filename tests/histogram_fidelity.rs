//! Property tests for the bounded latency histogram against the exact
//! sample oracle: every reported quantile lands in the same log2 bucket
//! as the true order statistic (relative error < 2×), merging is
//! associative and commutative, and empty/degenerate inputs behave.

use ipa_trace::LatencyHistogram;
use ipa_workloads::LatencyPercentiles;
use proptest::prelude::*;

fn hist_of(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn quantiles_land_in_the_oracle_bucket(
        samples in proptest::collection::vec(any::<u64>(), 1..=400),
    ) {
        let h = hist_of(&samples);
        let exact = LatencyPercentiles::from_samples(samples.clone());
        prop_assert_eq!(h.count(), exact.count);
        for (q, e) in [
            (0.50, exact.p50_ns),
            (0.95, exact.p95_ns),
            (0.99, exact.p99_ns),
            (0.999, exact.p999_ns),
        ] {
            let est = h.percentile(q);
            prop_assert_eq!(
                LatencyHistogram::bucket_index(est),
                LatencyHistogram::bucket_index(e)
            );
            // Same-bucket implies the < 2× relative bound, and the
            // estimate never undershoots the true order statistic.
            if e > 0 {
                prop_assert!(est >= e && est <= e.saturating_mul(2));
            }
        }
        // The extreme quantile is exact (max is tracked on the side).
        prop_assert_eq!(h.percentile(1.0), exact.max_ns);
    }

    #[test]
    fn small_latencies_keep_full_fidelity(
        samples in proptest::collection::vec(0u64..16, 1..=200),
    ) {
        // Values 0..16 span the first five buckets; the estimate stays
        // within a factor of two even at the bottom of the range.
        let h = hist_of(&samples);
        let exact = LatencyPercentiles::from_samples(samples.clone());
        let est = h.percentile(0.5);
        prop_assert_eq!(
            LatencyHistogram::bucket_index(est),
            LatencyHistogram::bucket_index(exact.p50_ns)
        );
    }

    #[test]
    fn merge_is_associative_and_commutative(
        a in proptest::collection::vec(any::<u64>(), 0..=60),
        b in proptest::collection::vec(any::<u64>(), 0..=60),
        c in proptest::collection::vec(any::<u64>(), 0..=60),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        let mut ab_c = ha;
        ab_c.merge(&hb);
        ab_c.merge(&hc);
        let mut bc = hb;
        bc.merge(&hc);
        let mut a_bc = ha;
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc);

        let mut ab = ha;
        ab.merge(&hb);
        let mut ba = hb;
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);

        // Merging equals recording everything into one histogram.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(ab, hist_of(&all));
    }

    #[test]
    fn delta_recovers_the_window(
        first in proptest::collection::vec(any::<u64>(), 0..=60),
        second in proptest::collection::vec(any::<u64>(), 0..=60),
    ) {
        let mut h = hist_of(&first);
        let snap = h;
        for &s in &second {
            h.record(s);
        }
        let d = h.delta_since(&snap);
        prop_assert_eq!(d.count(), second.len() as u64);
        prop_assert_eq!(d.buckets(), hist_of(&second).buckets());
    }
}

#[test]
fn empty_histogram_behaviour() {
    let h = LatencyHistogram::new();
    assert!(h.is_empty());
    assert_eq!(h.count(), 0);
    assert_eq!(h.percentile(0.5), 0);
    assert_eq!(h.percentile(0.999), 0);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), 0);
    assert_eq!(h.mean(), 0);
    assert_eq!(
        LatencyPercentiles::from_histogram(&h),
        LatencyPercentiles::default()
    );

    // Merging with empty is the identity, in both directions.
    let mut a = LatencyHistogram::new();
    for v in [7u64, 130, 9000] {
        a.record(v);
    }
    let mut merged = a;
    merged.merge(&h);
    assert_eq!(merged, a);
    let mut other = h;
    other.merge(&a);
    assert_eq!(other, a);

    // A self-delta is empty and reports the empty sentinels.
    let d = a.delta_since(&a);
    assert!(d.is_empty());
    assert_eq!(d.min(), 0);
    assert_eq!(d.max(), 0);
    assert_eq!(d.percentile(0.999), 0);
}
