//! The threaded determinism wall.
//!
//! `Driver::run_threaded` defines its workload by *streams*, not
//! threads: a fixed set of deterministic per-stream op sequences over
//! disjoint LBA windows of one shared device. The thread count only
//! schedules those streams onto OS threads — so for every geometry in
//! the matrix (dies {1,2,4} × planes {1,2}) and threads {1,2,4}, the
//! final logical state (canonical read-back digest), the host-op
//! monotone counters, and the in-run model verification (every stream
//! checks each read against its own write model, and the device's
//! invariant sweep runs at the end) must all match the single-threaded
//! reference run.
//!
//! Timing-dependent counters (GC, queue waits, pairing) legitimately
//! differ when several streams interleave on one die; they are exactly
//! what this wall does *not* compare.

use ipa_ftl::StripePolicy;
use ipa_workloads::{Driver, ThreadedConfig, Topology};

/// Geometries: total dies {1, 2, 4} × planes {1, 2}.
fn geometries() -> Vec<Topology> {
    let mut out = Vec::new();
    for (ch, dpc) in [(1u32, 1u32), (2, 1), (2, 2)] {
        for planes in [1u32, 2] {
            out.push(Topology::new(ch, dpc, StripePolicy::RoundRobin).with_planes(planes));
        }
    }
    out
}

fn base_cfg(topology: Topology) -> ThreadedConfig {
    ThreadedConfig {
        streams: 8,
        ops_per_stream: 300,
        window: 24,
        topology,
        ..Default::default()
    }
}

#[test]
fn threaded_runs_match_single_threaded_across_the_matrix() {
    for topology in geometries() {
        let cfg = base_cfg(topology);
        // threads=1 is the serial reference; the workload itself is the
        // model harness (per-stream read-your-writes checks + the final
        // invariant sweep inside run_threaded).
        let reference = Driver::run_threaded(&cfg);
        assert!(reference.ops > 0 && reference.sim_ns > 0);

        for threads in [2u32, 4] {
            let run = Driver::run_threaded(&cfg.with_threads(threads));
            let label = format!("{topology} threads={threads}");

            // Final logical state: byte-identical read-back.
            assert_eq!(
                run.logical_digest, reference.logical_digest,
                "{label}: final logical state diverged from single-threaded"
            );

            // Monotone host-op counters: interleaving-independent.
            let (a, b) = (&run.device, &reference.device);
            assert_eq!(a.host_writes, b.host_writes, "{label}: host_writes");
            assert_eq!(a.host_reads, b.host_reads, "{label}: host_reads");
            assert_eq!(
                a.bytes_host_written, b.bytes_host_written,
                "{label}: bytes_host_written"
            );
            assert_eq!(
                a.bytes_host_read, b.bytes_host_read,
                "{label}: bytes_host_read"
            );
            assert_eq!(
                a.page_invalidations, b.page_invalidations,
                "{label}: page_invalidations (one per overwrite)"
            );
            assert_eq!(a.uncorrectable_reads, 0, "{label}: no run may lose data");
            assert_eq!(run.ops, reference.ops, "{label}: op count");
        }
    }
}

#[test]
fn threaded_parity_holds_under_qos_scheduling() {
    // The QoS scheduler reorders *completion times* (read promotion,
    // erase suspend), never state mutation order — so the same wall must
    // hold with it enabled on the widest geometry.
    let cfg = ThreadedConfig {
        qos: true,
        ..base_cfg(Topology::new(2, 2, StripePolicy::RoundRobin).with_planes(2))
    };
    let reference = Driver::run_threaded(&cfg);
    for threads in [2u32, 4] {
        let run = Driver::run_threaded(&cfg.with_threads(threads));
        assert_eq!(run.logical_digest, reference.logical_digest);
        assert_eq!(run.device.host_writes, reference.device.host_writes);
        assert_eq!(run.device.host_reads, reference.device.host_reads);
    }
}
