//! `queued_parity` — the queued submission/completion API must be a pure
//! re-expression of the synchronous one.
//!
//! The same seeded operation stream, driven through `IoQueue` (vectored
//! `ReadV`/`WriteV`/`WriteDelta`/`Trim`/`Flush` submissions, completions
//! polled out of order with respect to device time) and through the
//! classic one-page-at-a-time `BlockDevice` loop on an identical twin
//! device, must produce byte-identical reads, an identical final logical
//! state, and identical host-level counters — for dies {1, 2, 4} ×
//! planes {1, 2} × all three write strategies. *Time* is exactly what
//! the queued path is allowed to change; *state* never.

use ipa_core::DeltaRecord;
use ipa_ftl::{
    BlockDevice, DeviceStats, IoQueue, IoRequest, NativeFlashDevice, ShardedFtl, WriteStrategy,
};
use ipa_testkit::{all_strategies, device_layout, striped_device};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

const DIE_COUNTS: [u32; 3] = [1, 2, 4];
const PLANE_COUNTS: [u32; 2] = [1, 2];
/// Hot LBA span — small enough that churn reaches GC on the tiny chips.
const SPAN: u64 = 40;

#[derive(Debug, Clone)]
enum Op {
    /// `n` consecutive full-page writes starting at `start`.
    WriteRun {
        start: u64,
        n: usize,
        fill: u8,
    },
    /// `n` consecutive reads starting at `start` (mapped members only).
    ReadRun {
        start: u64,
        n: usize,
    },
    /// One delta-record append (native strategy only).
    Delta {
        lba: u64,
        fill: u8,
    },
    Trim(u64),
    Flush,
}

/// Weighted op generator (writes > reads > deltas > trims > flushes).
#[derive(Debug, Clone, Copy)]
struct OpStrategy;

impl Strategy for OpStrategy {
    type Value = Op;
    fn generate(&self, rng: &mut StdRng) -> Op {
        match rng.gen_range(0..11u32) {
            0..=3 => Op::WriteRun {
                start: rng.gen_range(0..SPAN),
                n: rng.gen_range(1..6),
                fill: rng.gen(),
            },
            4..=6 => Op::ReadRun {
                start: rng.gen_range(0..SPAN),
                n: rng.gen_range(1..6),
            },
            7..=8 => Op::Delta {
                lba: rng.gen_range(0..SPAN),
                fill: rng.gen(),
            },
            9 => Op::Trim(rng.gen_range(0..SPAN)),
            _ => Op::Flush,
        }
    }
}

/// A strategy-appropriate full-page image: IPA paths keep the delta area
/// erased, exactly as the buffer pool's eviction path would. `version`
/// is the LBA's write counter; it stamps a rotating one-hot nonce so no
/// two successive images of an LBA are ever overwrite-compatible — the
/// pool never sends body-changing compatible images, and accidentally
/// compatible random fills would corrupt body ECC in ways the real
/// eviction path cannot.
fn page(strategy: WriteStrategy, fill: u8, version: u64) -> Vec<u8> {
    let mut img = vec![fill; 2048];
    img[0] = 1 << (version % 8);
    if strategy.needs_layout() {
        device_layout().wipe_delta_area(&mut img);
    }
    img
}

/// Tiny logical model shared by both drivers: which LBAs are mapped and
/// how many delta slots each physical page has consumed.
#[derive(Default)]
struct Model {
    mapped: std::collections::HashSet<u64>,
    slots: std::collections::HashMap<u64, u16>,
    versions: std::collections::HashMap<u64, u64>,
}

impl Model {
    /// Register a full-page write; returns the LBA's new version stamp.
    fn apply_write(&mut self, lba: u64) -> u64 {
        self.mapped.insert(lba);
        self.slots.insert(lba, 0);
        let v = self.versions.entry(lba).or_insert(0);
        *v += 1;
        *v
    }

    /// Is a slot free for a delta append on `lba`?
    fn delta_slot(&self, lba: u64) -> Option<u16> {
        let slot = *self.slots.get(&lba)?;
        (self.mapped.contains(&lba) && slot < device_layout().scheme.n).then_some(slot)
    }
}

fn delta_bytes(fill: u8) -> Vec<u8> {
    let l = device_layout();
    let rec = DeltaRecord::new(vec![(40, fill & 0x0F)], vec![1; l.meta_len()], l.scheme);
    rec.encode(&l)
}

/// Drive `ops` through the queued interface.
fn run_queued(dev: &mut ShardedFtl, strategy: WriteStrategy, ops: &[Op]) -> Vec<Vec<u8>> {
    let mut model = Model::default();
    let mut reads = Vec::new();
    let span = dev.capacity_pages().min(SPAN);
    for op in ops {
        match op {
            Op::WriteRun { start, n, fill } => {
                let pages: Vec<(u64, Vec<u8>)> = (0..*n as u64)
                    .map(|i| {
                        let lba = (start + i) % span;
                        let version = model.apply_write(lba);
                        (lba, page(strategy, fill.wrapping_add(i as u8), version))
                    })
                    .collect();
                let token = dev.submit(IoRequest::WriteV(pages)).unwrap();
                dev.poll(token).unwrap();
            }
            Op::ReadRun { start, n } => {
                let lbas: Vec<u64> = (0..*n as u64)
                    .map(|i| (start + i) % span)
                    .filter(|l| model.mapped.contains(l))
                    .collect();
                if lbas.is_empty() {
                    continue;
                }
                let token = dev.submit(IoRequest::ReadV(lbas)).unwrap();
                let c = dev.poll(token).unwrap();
                reads.extend(c.data);
            }
            Op::Delta { lba, fill } => {
                if strategy != WriteStrategy::IpaNative {
                    continue;
                }
                let lba = lba % span;
                let Some(slot) = model.delta_slot(lba) else {
                    continue;
                };
                let token = dev
                    .submit(IoRequest::WriteDelta {
                        lba,
                        offset: device_layout().record_offset(slot),
                        delta: delta_bytes(*fill),
                    })
                    .unwrap();
                dev.poll(token).unwrap();
                model.slots.insert(lba, slot + 1);
            }
            Op::Trim(lba) => {
                let lba = lba % span;
                let token = dev.submit(IoRequest::Trim(lba)).unwrap();
                dev.poll(token).unwrap();
                model.mapped.remove(&lba);
            }
            Op::Flush => {
                let token = dev.submit(IoRequest::Flush).unwrap();
                dev.poll(token).unwrap();
            }
        }
    }
    IoQueue::sync(dev);
    reads
}

/// Drive the same `ops` through the classic synchronous loop.
fn run_sync(dev: &mut ShardedFtl, strategy: WriteStrategy, ops: &[Op]) -> Vec<Vec<u8>> {
    let mut model = Model::default();
    let mut reads = Vec::new();
    let span = dev.capacity_pages().min(SPAN);
    let mut buf = vec![0u8; 2048];
    for op in ops {
        match op {
            Op::WriteRun { start, n, fill } => {
                for i in 0..*n as u64 {
                    let lba = (start + i) % span;
                    let version = model.apply_write(lba);
                    dev.write(lba, &page(strategy, fill.wrapping_add(i as u8), version))
                        .unwrap();
                }
            }
            Op::ReadRun { start, n } => {
                for i in 0..*n as u64 {
                    let lba = (start + i) % span;
                    if !model.mapped.contains(&lba) {
                        continue;
                    }
                    dev.read(lba, &mut buf).unwrap();
                    reads.push(buf.clone());
                }
            }
            Op::Delta { lba, fill } => {
                if strategy != WriteStrategy::IpaNative {
                    continue;
                }
                let lba = lba % span;
                let Some(slot) = model.delta_slot(lba) else {
                    continue;
                };
                dev.write_delta(
                    lba,
                    device_layout().record_offset(slot),
                    &delta_bytes(*fill),
                )
                .unwrap();
                model.slots.insert(lba, slot + 1);
            }
            Op::Trim(lba) => {
                let lba = lba % span;
                dev.trim(lba).unwrap();
                model.mapped.remove(&lba);
            }
            Op::Flush => {
                for die in 0..dev.dies() {
                    dev.shard_mut(die).drain_staged().unwrap();
                }
            }
        }
    }
    dev.sync();
    reads
}

/// Counters that must agree between the two drivers — everything except
/// the queued-path-only vectored markers.
fn comparable(mut s: DeviceStats) -> DeviceStats {
    s.vectored_reads = 0;
    s.vectored_writes = 0;
    s
}

/// Read back every mapped LBA (and prove unmapped ones fail) on both
/// devices, returning the queued device's images.
fn assert_same_final_state(queued: &mut ShardedFtl, sync: &mut ShardedFtl, label: &str) {
    let span = queued.capacity_pages().min(SPAN);
    let mut a = vec![0u8; 2048];
    let mut b = vec![0u8; 2048];
    for lba in 0..span {
        let ra = queued.read(lba, &mut a);
        let rb = sync.read(lba, &mut b);
        match (ra, rb) {
            (Ok(()), Ok(())) => assert_eq!(a, b, "{label}: lba {lba} diverged"),
            (Err(_), Err(_)) => {}
            (qa, qs) => panic!("{label}: lba {lba} mapped-ness diverged: {qa:?} vs {qs:?}"),
        }
    }
    queued.check_invariants();
    sync.check_invariants();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// The full matrix: queued vectored I/O ≡ the sync loop for
    /// dies {1, 2, 4} × planes {1, 2} × all three write strategies.
    #[test]
    fn queued_equals_sync_full_matrix(
        seed in any::<u64>(),
        ops in proptest::collection::vec(OpStrategy, 40..90),
    ) {
        for (strategy, _scheme) in all_strategies() {
            for dies in DIE_COUNTS {
                for planes in PLANE_COUNTS {
                    let label = format!("{strategy:?}/{dies}d/{planes}p(seed {seed})");
                    let mut queued = striped_device(strategy, seed, dies, planes);
                    let mut sync = striped_device(strategy, seed, dies, planes);
                    let qreads = run_queued(&mut queued, strategy, &ops);
                    let sreads = run_sync(&mut sync, strategy, &ops);
                    assert_eq!(qreads, sreads, "{label}: read streams diverged");
                    assert_same_final_state(&mut queued, &mut sync, &label);
                    // Host-level counters agree too (minus the final
                    // state readback, identical on both sides).
                    assert_eq!(
                        comparable(queued.device_stats()),
                        comparable(sync.device_stats()),
                        "{label}: counters diverged"
                    );
                }
            }
        }
    }
}

/// `sync()` is a barrier: every prior submission — including unpolled
/// posted writes still sitting in plane-pairing windows — is observable
/// afterwards, and the merged time covers every completion.
#[test]
fn sync_observes_all_prior_submissions() {
    let mut dev = striped_device(WriteStrategy::Traditional, 0xBA55, 4, 2);
    let mut tokens = Vec::new();
    for start in (0..32u64).step_by(4) {
        let pages = (0..4)
            .map(|i| (start + i, vec![start as u8; 2048]))
            .collect();
        tokens.push(dev.submit(IoRequest::WriteV(pages)).unwrap());
    }
    let merged = IoQueue::sync(&mut dev);
    // Every write is durable and readable after the barrier...
    let mut buf = vec![0u8; 2048];
    for lba in 0..32u64 {
        dev.read(lba, &mut buf).unwrap();
        assert!(
            buf.iter().all(|&b| b == (lba / 4 * 4) as u8),
            "lba {lba} not observed after sync()"
        );
    }
    // ...and the barrier time covers every completion (tokens stay
    // pollable across the sync).
    for token in tokens {
        let c = dev.poll(token).expect("completions survive sync");
        assert!(c.done_ns <= merged, "sync returned before {c:?}");
        assert!(c.submitted_ns <= c.done_ns);
    }
    let stats = dev.device_stats();
    assert_eq!(stats.vectored_writes, 8, "eight 4-page vectors submitted");
}

/// A vectored read across the stripe completes at the max of the per-die
/// clocks — faster than the sync loop paid for the same pages, never
/// faster than one read.
#[test]
fn vectored_read_overlaps_across_dies() {
    let mut dev = striped_device(WriteStrategy::Traditional, 0x5CA7, 8, 1);
    let n = 16u64;
    for lba in 0..n {
        dev.write(lba, &vec![lba as u8; 2048]).unwrap();
    }
    IoQueue::sync(&mut dev);

    // One solo read's wall time, for the lower bound.
    let t0 = dev.submission_clock_ns();
    let mut buf = vec![0u8; 2048];
    dev.read(0, &mut buf).unwrap();
    let solo = dev.submission_clock_ns() - t0;

    // The remaining 15 pages as one vector: must overlap.
    let t1 = dev.submission_clock_ns();
    let token = dev.submit(IoRequest::ReadV((1..n).collect())).unwrap();
    let c = dev.poll(token).unwrap();
    let vectored = dev.submission_clock_ns() - t1;
    for (i, img) in c.data.iter().enumerate() {
        assert!(img.iter().all(|&b| b == (i + 1) as u8));
    }
    assert!(vectored >= solo, "cannot beat a single page read");
    assert!(
        vectored * 2 < solo * 15,
        "15 reads over 8 dies must overlap >2x: {vectored} vs 15x{solo} ns"
    );
    let c_stats = dev.controller_stats();
    assert!(c_stats.posted_reads >= 15, "members ran as posted reads");
}
