//! Acceptance: with the IPA-native configuration, a 4-channel × 2-die
//! controller delivers ≥ 2× the 1 × 1 baseline's simulated-time
//! throughput on the mixed workload sweep (TPC-B + TATP, geometric mean),
//! and scaling is accompanied by shorter queues — the whole point of the
//! controller subsystem. The plane tier rides the same bar: at equal
//! channels × dies, two planes must deliver ≥ 1.5× the single-plane
//! program throughput on a write-heavy sweep.

use ipa_controller::ControllerConfig;
use ipa_core::NmScheme;
use ipa_flash::{DeviceConfig, DisturbRates, FlashMode, Geometry};
use ipa_ftl::{BlockDevice, FtlConfig, ShardedFtl, StripePolicy, WriteStrategy};
use ipa_workloads::{Driver, DriverConfig, RunResult, Topology, WorkloadKind};

fn run(kind: WorkloadKind, topo: Topology) -> RunResult {
    let cfg = DriverConfig {
        transactions: 600,
        warmup: 300,
        ..Default::default()
    }
    .with_streams(8);
    Driver::run_sharded(
        kind,
        1,
        WriteStrategy::IpaNative,
        NmScheme::new(2, 4),
        FlashMode::PSlc,
        topo,
        &cfg,
    )
    .expect("sweep run")
}

#[test]
fn four_by_two_doubles_throughput_on_the_mixed_sweep() {
    let wide_topo = Topology::new(4, 2, StripePolicy::RoundRobin);
    let mut speedups = Vec::new();
    for kind in [WorkloadKind::TpcB, WorkloadKind::Tatp] {
        let base = run(kind, Topology::single());
        let wide = run(kind, wide_topo);
        let s = wide.tps / base.tps;
        assert!(s > 1.0, "{}: 8 dies slower than 1 ({:.2}x)", kind.name(), s);
        // Queueing must relax as the topology widens.
        let (bw, ww) = (
            base.controller.expect("sharded run").mean_wait_ns(),
            wide.controller.expect("sharded run").mean_wait_ns(),
        );
        assert!(
            ww < bw,
            "{}: mean queue wait grew with more dies ({bw:.0} -> {ww:.0} ns)",
            kind.name()
        );
        speedups.push(s);
    }
    let gmean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    assert!(
        gmean >= 2.0,
        "mixed-sweep speedup {gmean:.2}x below the 2x acceptance bar ({speedups:?})"
    );
}

#[test]
fn two_planes_deliver_1_5x_program_throughput_on_the_write_heavy_sweep() {
    // Device-level write-heavy sweep at equal channels × dies (1 × 1, so
    // every gain is plane pairing, none of it die overlap): sequential
    // fills plus overwrite churn, program throughput = programs / time.
    let run = |planes: u32| -> (f64, u64) {
        let chip = DeviceConfig::new(
            Geometry::new(64, 16, 2048, 64).with_planes(planes),
            ipa_flash::FlashMode::PSlc,
        )
        .with_disturb(DisturbRates::none());
        let mut dev = ShardedFtl::new(
            ControllerConfig::new(1, 1, chip),
            FtlConfig::traditional(),
            StripePolicy::RoundRobin,
        );
        let data = vec![0x5Au8; 2048];
        let span = dev.capacity_pages().min(192);
        for round in 0..3u64 {
            for lba in 0..span {
                dev.write((lba + round) % span, &data).unwrap();
            }
        }
        dev.check_invariants();
        let programs = dev.flash_stats().total_programs();
        let elapsed = dev.sync();
        (programs as f64 / (elapsed as f64 / 1e9), elapsed)
    };
    let (single_pps, _) = run(1);
    let (dual_pps, _) = run(2);
    assert!(
        dual_pps >= 1.5 * single_pps,
        "2 planes must lift program throughput ≥1.5× at equal channels×dies: \
         {dual_pps:.0} vs {single_pps:.0} programs/s"
    );
}

#[test]
fn plane_speedup_composes_with_die_parallelism() {
    // The engine-level view: the same TPC-B run on 2ch×2d, planes 1 vs 2.
    // Throughput must improve and the pairing counters must show why.
    let cfg = DriverConfig {
        transactions: 400,
        warmup: 100,
        ..Default::default()
    }
    .with_streams(4);
    let run = |planes: u32| {
        Driver::run_sharded(
            WorkloadKind::TpcB,
            1,
            WriteStrategy::Traditional,
            NmScheme::disabled(),
            FlashMode::PSlc,
            Topology::new(2, 2, StripePolicy::RoundRobin).with_planes(planes),
            &cfg,
        )
        .expect("plane run")
    };
    let base = run(1);
    let dual = run(2);
    assert_eq!(base.device.multi_plane_pairs, 0);
    assert!(
        dual.device.multi_plane_pairs > 0,
        "2-plane engine run must pair: {:?}",
        dual.device
    );
    assert!(
        dual.programs_per_sec() > base.programs_per_sec(),
        "plane pairing must lift end-to-end program throughput: {:.0} vs {:.0}",
        dual.programs_per_sec(),
        base.programs_per_sec()
    );
}

#[test]
fn readahead_scan_uses_all_channels() {
    // The queued API's read-side acceptance bar: a cold sequential scan
    // on 4ch×2d with stripe-aware read-ahead must run ≥ 1.5× faster
    // than the same scan without it (measured ~5–7×: neighbour LBAs sit
    // on neighbour channels, and the posted prefetch vectors keep all of
    // them sensing/transferring at once).
    let topo = Topology::new(4, 2, StripePolicy::RoundRobin);
    let base = DriverConfig::default();
    let ra = base.clone().with_readahead(8);
    let off = Driver::run_scan(WorkloadKind::TpcB, 1, topo, 2, &base).expect("scan");
    let on = Driver::run_scan(WorkloadKind::TpcB, 1, topo, 2, &ra).expect("scan");
    assert_eq!(off.readahead_hits, 0, "read-ahead off means zero hits");
    assert_eq!(off.pages, on.pages, "same table, same fetches");
    assert!(
        on.readahead_hits * 2 > on.pages,
        "most fetches of a sequential scan should ride read-ahead: {on:?}"
    );
    assert!(
        on.vectored_reads > 0,
        "prefetches go out as vectors: {on:?}"
    );
    let speedup = off.elapsed_ns as f64 / on.elapsed_ns as f64;
    assert!(
        speedup >= 1.5,
        "read-ahead scan speedup {speedup:.2}x below the 1.5x bar ({off:?} vs {on:?})"
    );
}

#[test]
fn striped_wal_lifts_wal_bound_throughput() {
    // The queued API's log-side acceptance bar: with strict per-commit
    // durability (group commit 1) the log device gates TPC-B, and
    // striping the WAL over its own 4-channel controller — group-commit
    // flushes submitted as vectored writes, concurrent clients' flushes
    // overlapping across its dies — must lift throughput over the
    // single-chip log (measured ~1.8×).
    let cfg = DriverConfig {
        transactions: 500,
        warmup: 100,
        ..Default::default()
    }
    .with_streams(8)
    .with_group_commit(1);
    let run = |wal_stripe: Option<(u32, u32)>| {
        let mut cfg = cfg.clone();
        if let Some((c, d)) = wal_stripe {
            cfg = cfg.with_wal_stripe(c, d);
        }
        Driver::run_sharded(
            WorkloadKind::TpcB,
            1,
            WriteStrategy::IpaNative,
            NmScheme::new(2, 4),
            FlashMode::PSlc,
            Topology::new(4, 2, StripePolicy::RoundRobin),
            &cfg,
        )
        .expect("wal run")
    };
    let single = run(None);
    let striped = run(Some((4, 1)));
    assert!(
        striped.wal_device.is_some() && single.wal_device.is_some(),
        "runs report log-device counters"
    );
    let s = striped.tps / single.tps;
    assert!(
        s >= 1.15,
        "striped WAL must lift WAL-bound TPC-B ≥1.15x: {s:.2}x \
         ({} vs {} tps)",
        striped.tps,
        single.tps
    );
}

#[test]
fn tail_latency_tightens_with_parallelism() {
    let base = run(WorkloadKind::TpcB, Topology::single());
    let wide = run(
        WorkloadKind::TpcB,
        Topology::new(4, 2, StripePolicy::RoundRobin),
    );
    assert!(
        wide.latency.p999_ns < base.latency.p999_ns,
        "p99.9 should shrink with 8 dies: {} -> {} ns",
        base.latency.p999_ns,
        wide.latency.p999_ns
    );
    // Per-stream views exist and are internally consistent.
    assert_eq!(wide.per_stream.len(), 8);
    for s in &wide.per_stream {
        assert!(s.latency.p50_ns <= s.latency.p999_ns);
    }
    // And the cross-stream tail spread (max/min p99.9) is well-formed:
    // symmetric streams over a striped device should not diverge wildly.
    let spread = wide.p999_spread();
    assert!(spread >= 1.0 && spread.is_finite());
    assert_eq!(wide.per_stream_p999_ns().len(), 8);
}
