//! Acceptance: with the IPA-native configuration, a 4-channel × 2-die
//! controller delivers ≥ 2× the 1 × 1 baseline's simulated-time
//! throughput on the mixed workload sweep (TPC-B + TATP, geometric mean),
//! and scaling is accompanied by shorter queues — the whole point of the
//! controller subsystem.

use ipa_core::NmScheme;
use ipa_flash::FlashMode;
use ipa_ftl::{StripePolicy, WriteStrategy};
use ipa_workloads::{Driver, DriverConfig, RunResult, Topology, WorkloadKind};

fn run(kind: WorkloadKind, topo: Topology) -> RunResult {
    let cfg = DriverConfig {
        transactions: 600,
        warmup: 300,
        ..Default::default()
    }
    .with_streams(8);
    Driver::run_sharded(
        kind,
        1,
        WriteStrategy::IpaNative,
        NmScheme::new(2, 4),
        FlashMode::PSlc,
        topo,
        &cfg,
    )
    .expect("sweep run")
}

#[test]
fn four_by_two_doubles_throughput_on_the_mixed_sweep() {
    let wide_topo = Topology::new(4, 2, StripePolicy::RoundRobin);
    let mut speedups = Vec::new();
    for kind in [WorkloadKind::TpcB, WorkloadKind::Tatp] {
        let base = run(kind, Topology::single());
        let wide = run(kind, wide_topo);
        let s = wide.tps / base.tps;
        assert!(s > 1.0, "{}: 8 dies slower than 1 ({:.2}x)", kind.name(), s);
        // Queueing must relax as the topology widens.
        let (bw, ww) = (
            base.controller.expect("sharded run").mean_wait_ns(),
            wide.controller.expect("sharded run").mean_wait_ns(),
        );
        assert!(
            ww < bw,
            "{}: mean queue wait grew with more dies ({bw:.0} -> {ww:.0} ns)",
            kind.name()
        );
        speedups.push(s);
    }
    let gmean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    assert!(
        gmean >= 2.0,
        "mixed-sweep speedup {gmean:.2}x below the 2x acceptance bar ({speedups:?})"
    );
}

#[test]
fn tail_latency_tightens_with_parallelism() {
    let base = run(WorkloadKind::TpcB, Topology::single());
    let wide = run(
        WorkloadKind::TpcB,
        Topology::new(4, 2, StripePolicy::RoundRobin),
    );
    assert!(
        wide.latency.p999_ns < base.latency.p999_ns,
        "p99.9 should shrink with 8 dies: {} -> {} ns",
        base.latency.p999_ns,
        wide.latency.p999_ns
    );
    // Per-stream views exist and are internally consistent.
    assert_eq!(wide.per_stream.len(), 8);
    for s in &wide.per_stream {
        assert!(s.latency.p50_ns <= s.latency.p999_ns);
    }
}
