//! Acceptance for the latency-QoS I/O scheduler — the PR's SLO wall.
//!
//! On the 4-channel × 2-die controller running the mixed OLTP sweep
//! (TPC-B + TATP, 8 client streams) with background GC active, turning
//! on QoS scheduling (per-die reorder windows promoting short posted
//! reads over queued programs, erase-suspend under reclaim erases) must
//! cut the p99.9 *device read* latency by at least 25 % against the
//! FIFO baseline — without buying the tail win with throughput: tps must
//! stay at least equal (QoS routinely improves it, since promoted reads
//! unblock the buffer pool's miss path).
//!
//! The comparison uses the traditional write strategy because that is
//! the GC-heavy configuration — the read tail under FIFO is queued
//! programs and reclaim erases, exactly what the reorder windows and
//! erase-suspend exist to cut. `qos_parity` (state equivalence) and
//! `queued_parity` (queued ≡ sync) hold alongside; this wall is the
//! *time* side of the claim.

use ipa_core::NmScheme;
use ipa_flash::FlashMode;
use ipa_ftl::{StripePolicy, WriteStrategy};
use ipa_workloads::{Driver, DriverConfig, MaintMode, RunResult, Topology, WorkloadKind};

fn run_mode(kind: WorkloadKind, maint: MaintMode) -> RunResult {
    let cfg = DriverConfig::default()
        .with_transactions(20_000)
        .with_streams(8);
    Driver::run_maintained(
        kind,
        1,
        WriteStrategy::Traditional,
        NmScheme::disabled(),
        FlashMode::PSlc,
        Topology::new(4, 2, StripePolicy::RoundRobin),
        maint,
        &cfg,
    )
    .expect("maintained run")
}

#[test]
fn qos_cuts_p999_read_latency_at_equal_throughput() {
    let mut ratios = Vec::new();
    for kind in [WorkloadKind::TpcB, WorkloadKind::Tatp] {
        let fifo = run_mode(kind, MaintMode::background(None));
        let qos = run_mode(kind, MaintMode::background(None).with_qos());

        // Both arms sampled enough reads for a p99.9 to mean something.
        assert!(
            fifo.read_latency.count > 1_000 && qos.read_latency.count > 1_000,
            "{}: too few device reads sampled ({} fifo / {} qos)",
            kind.name(),
            fifo.read_latency.count,
            qos.read_latency.count
        );

        // Equal throughput: the tail win may not slow the run down.
        assert!(
            qos.tps >= fifo.tps * 0.95,
            "{}: QoS lost throughput (fifo {:.0} vs qos {:.0} tps)",
            kind.name(),
            fifo.tps,
            qos.tps
        );

        // The scheduler must be visibly working, not winning by accident.
        let c = qos.controller.expect("controller stats");
        assert!(
            c.reads_promoted > 0,
            "{}: QoS run never promoted a read",
            kind.name()
        );
        let cf = fifo.controller.expect("controller stats");
        assert_eq!(cf.reads_promoted, 0, "{}: FIFO promoted", kind.name());
        assert_eq!(cf.erase_suspends, 0, "{}: FIFO suspended", kind.name());

        let ratio = qos.read_latency.p999_ns as f64 / fifo.read_latency.p999_ns.max(1) as f64;
        println!(
            "{}: p99.9 read {} -> {} ns ({:.2}x), promoted {}, suspends {}",
            kind.name(),
            fifo.read_latency.p999_ns,
            qos.read_latency.p999_ns,
            ratio,
            c.reads_promoted,
            c.erase_suspends,
        );
        ratios.push(ratio);

        if kind == WorkloadKind::TpcB {
            // The GC-heavy workload must actually have background GC
            // active — the tail being cut includes reclaim erases.
            assert!(
                qos.device.background_gc_erases > 0,
                "TPC-B run never background-garbage-collected"
            );
        }
    }

    // The SLO: ≥ 25 % p99.9 read-tail cut on the mixed sweep
    // (geometric mean across the two workloads).
    let g = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    assert!(
        g <= 0.75,
        "mixed-sweep p99.9 read tail only improved to {g:.2}x of FIFO (need <= 0.75x)"
    );
}
