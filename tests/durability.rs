//! Durability and recovery across write strategies: committed state must
//! survive clean restarts and crashes identically whether pages reached
//! flash as full writes or as in-place delta appends.

use in_place_appends::prelude::*;
use ipa_testkit::all_strategies;

fn engine(strategy: WriteStrategy, scheme: NmScheme) -> StorageEngine {
    ipa_testkit::engine(
        strategy,
        scheme,
        7,
        12,
        &[TableSpec::heap("t", 64, 128), TableSpec::index("t_pk", 64)],
    )
}

/// Deterministic update workload returning the expected final rows.
fn run_updates(e: &mut StorageEngine, rounds: u64) -> Vec<(u64, Rid, u8)> {
    let t = e.table("t").unwrap();
    let pk = e.table("t_pk").unwrap();
    let tx = e.begin();
    let mut rows = Vec::new();
    for k in 0..300u64 {
        let mut row = [0u8; 64];
        row[..8].copy_from_slice(&k.to_le_bytes());
        let rid = e.insert(tx, t, &row).unwrap();
        e.index_insert(tx, pk, k, rid).unwrap();
        rows.push((k, rid, 0u8));
    }
    e.commit(tx).unwrap();
    e.flush_all().unwrap();

    for round in 0..rounds {
        for (k, rid, latest) in rows.iter_mut() {
            if (*k + round) % 7 == 0 {
                let v = (round as u8).wrapping_mul(31).wrapping_add(*k as u8);
                let tx = e.begin();
                e.update_field(tx, t, *rid, 20, &[v]).unwrap();
                e.commit(tx).unwrap();
                *latest = v;
            }
        }
        e.flush_all().unwrap();
    }
    rows
}

#[test]
fn committed_state_survives_clean_restart_under_every_strategy() {
    for (strategy, scheme) in all_strategies() {
        let mut e = engine(strategy, scheme);
        let rows = run_updates(&mut e, 6);
        e.restart_clean().unwrap();
        let t = e.table("t").unwrap();
        for (k, rid, latest) in &rows {
            let row = e.get(t, *rid).unwrap();
            assert_eq!(
                row[20], *latest,
                "{strategy:?}: row {k} lost its last committed update"
            );
            assert_eq!(
                u64::from_le_bytes(row[..8].try_into().unwrap()),
                *k,
                "{strategy:?}: row {k} identity corrupted"
            );
        }
    }
}

#[test]
fn final_state_identical_across_strategies() {
    // The write strategy is purely a device-level optimization: the
    // logical database state must be bit-identical afterwards.
    let mut images: Vec<Vec<Vec<u8>>> = Vec::new();
    for (strategy, scheme) in all_strategies() {
        let mut e = engine(strategy, scheme);
        let rows = run_updates(&mut e, 5);
        e.restart_clean().unwrap();
        let t = e.table("t").unwrap();
        let img: Vec<Vec<u8>> = rows
            .iter()
            .map(|(_, rid, _)| e.get(t, *rid).unwrap())
            .collect();
        images.push(img);
    }
    assert_eq!(images[0], images[1], "traditional vs conventional IPA");
    assert_eq!(images[0], images[2], "traditional vs native IPA");
}

#[test]
fn crash_recovery_under_ipa() {
    let mut e = engine(WriteStrategy::IpaNative, NmScheme::new(2, 4));
    let t = e.table("t").unwrap();
    let tx = e.begin();
    let mut rids = Vec::new();
    for k in 0..100u64 {
        let mut row = [0u8; 64];
        row[..8].copy_from_slice(&k.to_le_bytes());
        rids.push(e.insert(tx, t, &row).unwrap());
    }
    e.commit(tx).unwrap();
    e.flush_all().unwrap();

    // Committed but unflushed updates.
    for (i, rid) in rids.iter().enumerate() {
        let tx = e.begin();
        e.update_field(tx, t, *rid, 30, &[i as u8 ^ 0x5A]).unwrap();
        e.commit(tx).unwrap();
    }
    // Uncommitted straggler.
    let tx = e.begin();
    e.update_field(tx, t, rids[0], 40, &[0xEE]).unwrap();

    e.crash();
    let report = e.recover().unwrap();
    assert!(report.updates_redone >= 100);
    assert!(report.updates_skipped_uncommitted >= 1);

    for (i, rid) in rids.iter().enumerate() {
        let row = e.get(t, *rid).unwrap();
        assert_eq!(row[30], i as u8 ^ 0x5A, "committed update {i} lost");
    }
    assert_ne!(e.get(t, rids[0]).unwrap()[40], 0xEE, "uncommitted redone");
}

#[test]
fn abort_is_equivalent_to_never_running() {
    for (strategy, scheme) in all_strategies() {
        let mut e = engine(strategy, scheme);
        let t = e.table("t").unwrap();
        let tx = e.begin();
        let rid = e.insert(tx, t, &[9u8; 64]).unwrap();
        e.commit(tx).unwrap();
        e.flush_all().unwrap();
        let before = e.get(t, rid).unwrap();

        let tx = e.begin();
        e.update_field(tx, t, rid, 0, &[1, 2, 3, 4]).unwrap();
        e.update_field(tx, t, rid, 32, &[5, 6]).unwrap();
        e.abort(tx).unwrap();
        e.flush_all().unwrap();
        e.restart_clean().unwrap();

        assert_eq!(e.get(t, rid).unwrap(), before, "{strategy:?}: abort leaked");
    }
}
