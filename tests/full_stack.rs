//! Full-stack integration: every workload on every write strategy, with
//! the paper's directional claims asserted as invariants.

use in_place_appends::prelude::*;
use in_place_appends::workloads::RunResult;
use ipa_testkit::{all_strategies, quick_run};

fn quick(kind: WorkloadKind, strategy: WriteStrategy, scheme: NmScheme) -> RunResult {
    quick_run(kind, strategy, scheme, 400, 0xFEED)
}

#[test]
fn every_workload_runs_under_every_strategy() {
    for kind in WorkloadKind::all() {
        for (strategy, scheme) in all_strategies() {
            let r = quick(kind, strategy, scheme);
            assert_eq!(r.transactions, 400, "{kind:?}/{strategy:?}");
            assert!(r.tps > 0.0);
            assert!(r.device.host_reads > 0, "{kind:?} must read");
        }
    }
}

#[test]
fn ipa_never_invalidates_more_than_traditional() {
    for kind in WorkloadKind::all() {
        let trad = quick(kind, WriteStrategy::Traditional, NmScheme::disabled());
        let ipa = quick(kind, WriteStrategy::IpaNative, NmScheme::new(2, 4));
        assert!(
            ipa.device.page_invalidations <= trad.device.page_invalidations,
            "{kind:?}: IPA {} vs traditional {}",
            ipa.device.page_invalidations,
            trad.device.page_invalidations
        );
        assert!(
            ipa.device.in_place_appends > 0,
            "{kind:?} produced no appends"
        );
    }
}

#[test]
fn conventional_and_native_ipa_give_similar_gc_relief() {
    // Paper §4: "Both IPA scenarios #2 and #3 result in the same reduction
    // of GC overhead"; #3 additionally cuts transferred bytes.
    let conv = quick(
        WorkloadKind::TpcB,
        WriteStrategy::IpaConventional,
        NmScheme::new(2, 4),
    );
    let native = quick(
        WorkloadKind::TpcB,
        WriteStrategy::IpaNative,
        NmScheme::new(2, 4),
    );
    let inval_diff =
        (conv.device.page_invalidations as f64 - native.device.page_invalidations as f64).abs()
            / native.device.page_invalidations.max(1) as f64;
    assert!(
        inval_diff < 0.25,
        "scenario 2 vs 3 invalidations diverge: {} vs {}",
        conv.device.page_invalidations,
        native.device.page_invalidations
    );
    assert!(
        native.device.bytes_host_written < conv.device.bytes_host_written / 2,
        "write_delta must slash transferred bytes: {} vs {}",
        native.device.bytes_host_written,
        conv.device.bytes_host_written
    );
}

#[test]
fn device_accounting_identities() {
    for (strategy, scheme) in all_strategies() {
        let r = quick(WorkloadKind::TpcB, strategy, scheme);
        let d = &r.device;
        assert_eq!(
            d.total_host_writes(),
            d.in_place_appends + d.out_of_place_writes,
            "{strategy:?}: every host write is exactly one of in-place / out-of-place"
        );
        // Physical programs = host out-of-place + host in-place + GC moves.
        assert_eq!(
            r.flash.total_programs(),
            d.out_of_place_writes + d.in_place_appends + d.gc_page_migrations,
            "{strategy:?}: flash program accounting"
        );
        // Invalidated pages can only be created by overwrites.
        assert!(d.page_invalidations <= d.out_of_place_writes);
        assert!(
            d.uncorrectable_reads == 0,
            "quiet device must not lose data"
        );
    }
}

#[test]
fn tatp_read_mostly_mix_shape() {
    let r = quick(
        WorkloadKind::Tatp,
        WriteStrategy::IpaNative,
        NmScheme::new(2, 4),
    );
    // 80 % of TATP transactions are reads; device reads must dominate
    // writes by a wide margin.
    assert!(
        r.device.host_reads > 2 * r.device.total_host_writes(),
        "reads {} vs writes {}",
        r.device.host_reads,
        r.device.total_host_writes()
    );
}

#[test]
fn deterministic_across_identical_runs() {
    let a = quick(
        WorkloadKind::LinkBench,
        WriteStrategy::IpaNative,
        NmScheme::new(2, 4),
    );
    let b = quick(
        WorkloadKind::LinkBench,
        WriteStrategy::IpaNative,
        NmScheme::new(2, 4),
    );
    assert_eq!(a.device, b.device);
    assert_eq!(a.elapsed_ns, b.elapsed_ns);
    assert_eq!(a.flash.total_programs(), b.flash.total_programs());
}
