//! `qos_parity` — the latency-QoS scheduler reorders *time*, never
//! *state*.
//!
//! The same seeded operation stream, driven through the queued interface
//! on a FIFO controller and on its QoS twin (per-die reorder windows,
//! read promotion over queued programs, erase-suspend), must produce
//! byte-identical reads, an identical final logical state, and identical
//! host-level counters — for dies {1, 2, 4} × planes {1, 2} × all three
//! write strategies. On top of the parity matrix, the deterministic
//! walls pin the three contract points of the `IoQueue` reorder
//! documentation: read-your-writes per LBA holds while programs for
//! that LBA are still queued, `sync()` is a total barrier over promoted
//! and non-promoted completions alike, and every suspended erase
//! resumes within `DeviceConfig::erase_resume_limit` suspensions.

use ipa_core::DeltaRecord;
use ipa_flash::DeviceConfig;
use ipa_ftl::{BlockDevice, IoQueue, IoRequest, ShardedFtl, WriteStrategy};
use ipa_testkit::{all_strategies, device_layout, striped_device, striped_qos_device};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

const DIE_COUNTS: [u32; 3] = [1, 2, 4];
const PLANE_COUNTS: [u32; 2] = [1, 2];
/// Hot LBA span — small enough that churn reaches GC on the tiny chips.
const SPAN: u64 = 40;

#[derive(Debug, Clone)]
enum Op {
    /// `n` consecutive full-page writes starting at `start`.
    WriteRun {
        start: u64,
        n: usize,
        fill: u8,
    },
    /// `n` consecutive reads starting at `start` (mapped members only).
    ReadRun {
        start: u64,
        n: usize,
    },
    /// A priority point read (the buffer-pool miss path) on a mapped LBA.
    PriorityRead(u64),
    /// One delta-record append (native strategy only).
    Delta {
        lba: u64,
        fill: u8,
    },
    Trim(u64),
    Flush,
}

/// Weighted op generator; priority reads are common enough that the QoS
/// side keeps finding queued programs to jump.
#[derive(Debug, Clone, Copy)]
struct OpStrategy;

impl Strategy for OpStrategy {
    type Value = Op;
    fn generate(&self, rng: &mut StdRng) -> Op {
        match rng.gen_range(0..12u32) {
            0..=3 => Op::WriteRun {
                start: rng.gen_range(0..SPAN),
                n: rng.gen_range(1..6),
                fill: rng.gen(),
            },
            4..=5 => Op::ReadRun {
                start: rng.gen_range(0..SPAN),
                n: rng.gen_range(1..6),
            },
            6..=7 => Op::PriorityRead(rng.gen_range(0..SPAN)),
            8..=9 => Op::Delta {
                lba: rng.gen_range(0..SPAN),
                fill: rng.gen(),
            },
            10 => Op::Trim(rng.gen_range(0..SPAN)),
            _ => Op::Flush,
        }
    }
}

/// A strategy-appropriate full-page image (see `queued_parity` for the
/// version-nonce rationale: successive images of an LBA must never be
/// overwrite-compatible).
fn page(strategy: WriteStrategy, fill: u8, version: u64) -> Vec<u8> {
    let mut img = vec![fill; 2048];
    img[0] = 1 << (version % 8);
    if strategy.needs_layout() {
        device_layout().wipe_delta_area(&mut img);
    }
    img
}

/// Tiny logical model: which LBAs are mapped and how many delta slots
/// each physical page has consumed.
#[derive(Default)]
struct Model {
    mapped: std::collections::HashSet<u64>,
    slots: std::collections::HashMap<u64, u16>,
    versions: std::collections::HashMap<u64, u64>,
}

impl Model {
    fn apply_write(&mut self, lba: u64) -> u64 {
        self.mapped.insert(lba);
        self.slots.insert(lba, 0);
        let v = self.versions.entry(lba).or_insert(0);
        *v += 1;
        *v
    }

    fn delta_slot(&self, lba: u64) -> Option<u16> {
        let slot = *self.slots.get(&lba)?;
        (self.mapped.contains(&lba) && slot < device_layout().scheme.n).then_some(slot)
    }
}

fn delta_bytes(fill: u8) -> Vec<u8> {
    let l = device_layout();
    let rec = DeltaRecord::new(vec![(40, fill & 0x0F)], vec![1; l.meta_len()], l.scheme);
    rec.encode(&l)
}

/// Drive `ops` through the queued interface; identical on the FIFO and
/// QoS devices — only the controller's internal scheduling differs.
fn run_queued(dev: &mut ShardedFtl, strategy: WriteStrategy, ops: &[Op]) -> Vec<Vec<u8>> {
    let mut model = Model::default();
    let mut reads = Vec::new();
    let span = dev.capacity_pages().min(SPAN);
    let mut buf = vec![0u8; 2048];
    for op in ops {
        match op {
            Op::WriteRun { start, n, fill } => {
                let pages: Vec<(u64, Vec<u8>)> = (0..*n as u64)
                    .map(|i| {
                        let lba = (start + i) % span;
                        let version = model.apply_write(lba);
                        (lba, page(strategy, fill.wrapping_add(i as u8), version))
                    })
                    .collect();
                let token = dev.submit(IoRequest::WriteV(pages)).unwrap();
                dev.poll(token).unwrap();
            }
            Op::ReadRun { start, n } => {
                let lbas: Vec<u64> = (0..*n as u64)
                    .map(|i| (start + i) % span)
                    .filter(|l| model.mapped.contains(l))
                    .collect();
                if lbas.is_empty() {
                    continue;
                }
                let token = dev.submit(IoRequest::ReadV(lbas)).unwrap();
                let c = dev.poll(token).unwrap();
                reads.extend(c.data);
            }
            Op::PriorityRead(lba) => {
                let lba = lba % span;
                if !model.mapped.contains(&lba) {
                    continue;
                }
                // The sync `read` path — a priority read on the QoS
                // side, a plain front-of-queue read on the FIFO side.
                dev.read(lba, &mut buf).unwrap();
                reads.push(buf.clone());
            }
            Op::Delta { lba, fill } => {
                if strategy != WriteStrategy::IpaNative {
                    continue;
                }
                let lba = lba % span;
                let Some(slot) = model.delta_slot(lba) else {
                    continue;
                };
                let token = dev
                    .submit(IoRequest::WriteDelta {
                        lba,
                        offset: device_layout().record_offset(slot),
                        delta: delta_bytes(*fill),
                    })
                    .unwrap();
                dev.poll(token).unwrap();
                model.slots.insert(lba, slot + 1);
            }
            Op::Trim(lba) => {
                let lba = lba % span;
                let token = dev.submit(IoRequest::Trim(lba)).unwrap();
                dev.poll(token).unwrap();
                model.mapped.remove(&lba);
            }
            Op::Flush => {
                let token = dev.submit(IoRequest::Flush).unwrap();
                dev.poll(token).unwrap();
            }
        }
    }
    IoQueue::sync(dev);
    reads
}

/// Read back every mapped LBA (and prove unmapped ones fail) on both
/// devices.
fn assert_same_final_state(qos: &mut ShardedFtl, fifo: &mut ShardedFtl, label: &str) {
    let span = qos.capacity_pages().min(SPAN);
    let mut a = vec![0u8; 2048];
    let mut b = vec![0u8; 2048];
    for lba in 0..span {
        let ra = qos.read(lba, &mut a);
        let rb = fifo.read(lba, &mut b);
        match (ra, rb) {
            (Ok(()), Ok(())) => assert_eq!(a, b, "{label}: lba {lba} diverged"),
            (Err(_), Err(_)) => {}
            (qa, qf) => panic!("{label}: lba {lba} mapped-ness diverged: {qa:?} vs {qf:?}"),
        }
    }
    qos.check_invariants();
    fifo.check_invariants();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// The full matrix: a QoS controller ≡ its FIFO twin in every
    /// host-observable way, for dies {1, 2, 4} × planes {1, 2} × all
    /// three write strategies. State mutations are applied eagerly in
    /// submission order on both sides, so every counter — not just the
    /// read images — must agree exactly; only controller-side timing
    /// statistics may differ.
    #[test]
    fn qos_equals_fifo_full_matrix(
        seed in any::<u64>(),
        ops in proptest::collection::vec(OpStrategy, 40..90),
    ) {
        let resume_limit = DeviceConfig::tiny().erase_resume_limit as u64;
        for (strategy, _scheme) in all_strategies() {
            for dies in DIE_COUNTS {
                for planes in PLANE_COUNTS {
                    let label = format!("{strategy:?}/{dies}d/{planes}p(seed {seed})");
                    let mut qos = striped_qos_device(strategy, seed, dies, planes);
                    let mut fifo = striped_device(strategy, seed, dies, planes);
                    let qreads = run_queued(&mut qos, strategy, &ops);
                    let freads = run_queued(&mut fifo, strategy, &ops);
                    assert_eq!(qreads, freads, "{label}: read streams diverged");
                    assert_same_final_state(&mut qos, &mut fifo, &label);
                    assert_eq!(
                        qos.device_stats(),
                        fifo.device_stats(),
                        "{label}: host counters diverged"
                    );
                    // The FIFO twin must never promote or suspend...
                    let cf = fifo.controller_stats();
                    assert_eq!(cf.reads_promoted, 0, "{label}: FIFO promoted");
                    assert_eq!(cf.erase_suspends, 0, "{label}: FIFO suspended");
                    // ...and the QoS side's suspensions stay within the
                    // per-erase resume budget.
                    let cq = qos.controller_stats();
                    assert!(
                        cq.erase_suspends <= cq.erases * resume_limit,
                        "{label}: {} suspends over {} erases breaks the \
                         x{resume_limit} resume budget",
                        cq.erase_suspends,
                        cq.erases,
                    );
                }
            }
        }
    }
}

/// Read-your-writes per LBA under reorder: with a deep queue of posted
/// programs parked on every die, a priority read of any just-written LBA
/// must return the new image — the mapping mutates at submission, the
/// scheduler only moves the read's *time* forward past the programs.
#[test]
fn priority_read_sees_queued_writes() {
    let mut dev = striped_qos_device(WriteStrategy::Traditional, 0x9057EED, 4, 1);
    // Post 32 programs without polling — every die ends up with a queue.
    let pages: Vec<(u64, Vec<u8>)> = (0..32u64).map(|l| (l, vec![l as u8; 2048])).collect();
    let token = dev.submit(IoRequest::WriteV(pages)).unwrap();

    let mut buf = vec![0u8; 2048];
    for lba in 0..32u64 {
        dev.read(lba, &mut buf).unwrap();
        assert!(
            buf.iter().all(|&b| b == lba as u8),
            "lba {lba}: priority read missed a queued program's data"
        );
    }
    let c = dev.controller_stats();
    assert!(
        c.reads_promoted > 0,
        "reads against queued programs never promoted"
    );

    // The posted writes are still pollable, and sync stays a barrier.
    let merged = IoQueue::sync(&mut dev);
    let done = dev.poll(token).unwrap();
    assert!(done.done_ns <= merged, "sync returned before {done:?}");
}

/// `sync()` is a total barrier on the QoS device too: promoted reads
/// never let a posted program escape the merged completion horizon.
#[test]
fn sync_is_total_barrier_under_promotion() {
    let mut dev = striped_qos_device(WriteStrategy::Traditional, 0xBA55, 4, 2);
    let mut buf = vec![0u8; 2048];
    let mut tokens = Vec::new();
    for start in (0..32u64).step_by(4) {
        let pages = (0..4)
            .map(|i| (start + i, vec![start as u8; 2048]))
            .collect();
        tokens.push(dev.submit(IoRequest::WriteV(pages)).unwrap());
        // A priority read between every batch keeps the reorder windows
        // actively shuffling the queues while the barrier forms.
        dev.read(start, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == start as u8));
    }
    let merged = IoQueue::sync(&mut dev);
    for lba in 0..32u64 {
        dev.read(lba, &mut buf).unwrap();
        assert!(
            buf.iter().all(|&b| b == (lba / 4 * 4) as u8),
            "lba {lba} not observed after sync()"
        );
    }
    for token in tokens {
        let c = dev.poll(token).expect("completions survive sync");
        assert!(c.done_ns <= merged, "sync returned before {c:?}");
        assert!(c.submitted_ns <= c.done_ns);
    }
}

/// Erase-suspend is bounded: GC churn with priority reads landing on the
/// erasing dies suspends erases, but never more than
/// `erase_resume_limit` times per erase, and only on the QoS device.
#[test]
fn erase_suspends_are_bounded() {
    let resume_limit = DeviceConfig::tiny().erase_resume_limit as u64;
    let mut dev = striped_qos_device(WriteStrategy::Traditional, 0x6C_EA5E, 2, 1);
    let span = dev.capacity_pages().min(SPAN);
    let mut buf = vec![0u8; 2048];
    // Hot-loop overwrites with reads on the heels of every batch: the
    // churn forces reclaim erases, the reads give the scheduler a reason
    // to suspend them.
    for round in 0..60u64 {
        let pages: Vec<(u64, Vec<u8>)> = (0..span)
            .map(|l| (l, vec![(round as u8).wrapping_add(l as u8); 2048]))
            .collect();
        let token = dev.submit(IoRequest::WriteV(pages)).unwrap();
        for lba in (0..span).step_by(7) {
            dev.read(lba, &mut buf).unwrap();
        }
        dev.poll(token).unwrap();
    }
    IoQueue::sync(&mut dev);
    let c = dev.controller_stats();
    assert!(c.erases > 0, "churn never reached GC — test is vacuous");
    assert!(
        c.erase_suspends <= c.erases * resume_limit,
        "{} suspends over {} erases breaks the x{resume_limit} budget",
        c.erase_suspends,
        c.erases,
    );
    dev.check_invariants();
}

/// `forget` retires the token from the controller's posted-read
/// completion horizon (the PR's fixed follow-up): a forgotten vectored
/// read must not leave the outstanding gauge pinned, and is counted.
#[test]
fn forget_retires_posted_reads_from_horizon() {
    let mut dev = striped_qos_device(WriteStrategy::Traditional, 0xF063E7, 4, 1);
    for lba in 0..16u64 {
        dev.write(lba, &vec![lba as u8; 2048]).unwrap();
    }
    IoQueue::sync(&mut dev);

    let keep = dev.submit(IoRequest::ReadV((0..8).collect())).unwrap();
    let drop = dev.submit(IoRequest::ReadV((8..16).collect())).unwrap();
    IoQueue::forget(&mut dev, drop);
    let c = dev.poll(keep).unwrap();
    assert_eq!(c.data.len(), 8);

    let stats = dev.controller_stats();
    assert_eq!(
        stats.posted_reads_outstanding, 0,
        "forgotten reads left the completion horizon pinned"
    );
    assert_eq!(stats.forgotten_reads, 8, "dropped vector has 8 members");
    // The device remains fully usable: the barrier and fresh reads work.
    IoQueue::sync(&mut dev);
    let mut buf = vec![0u8; 2048];
    dev.read(8, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 8));
}

/// A poll on a token that was already polled or forgotten used to come
/// back as a bare `None`, indistinguishable from "still in flight".
/// `poll_checked` makes the double-poll a typed error — and tells a
/// retired token apart from one the queue never issued.
#[test]
fn double_poll_is_a_typed_error_not_silence() {
    use ipa_ftl::{FtlError, IoToken};
    let mut dev = striped_qos_device(WriteStrategy::Traditional, 0x2B011, 4, 1);
    for lba in 0..8u64 {
        dev.write(lba, &vec![lba as u8; 2048]).unwrap();
    }
    IoQueue::sync(&mut dev);

    let polled = dev.submit(IoRequest::ReadV((0..4).collect())).unwrap();
    let forgotten = dev.submit(IoRequest::ReadV((4..8).collect())).unwrap();

    // First poll succeeds through both faces of the API.
    assert_eq!(dev.poll_checked(polled).unwrap().data.len(), 4);
    IoQueue::forget(&mut dev, forgotten);

    // Retired tokens: polled-once and forgotten are both typed retirals.
    assert!(matches!(
        dev.poll_checked(polled),
        Err(FtlError::TokenRetired { token }) if token == polled.0
    ));
    assert!(matches!(
        dev.poll_checked(forgotten),
        Err(FtlError::TokenRetired { .. })
    ));
    // The legacy poll face still reports the quiet `None` it documents.
    assert!(dev.poll(polled).is_none());

    // A token the queue never issued is a different bug — and says so.
    assert!(matches!(
        dev.poll_checked(IoToken(u64::MAX)),
        Err(FtlError::TokenUnknown { token: u64::MAX })
    ));

    // Neither misuse wedged the device.
    IoQueue::sync(&mut dev);
    let mut buf = vec![0u8; 2048];
    dev.read(3, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 3));
}
