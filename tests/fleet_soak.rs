//! Fleet-scale crash/recovery soak (PR 7 acceptance wall).
//!
//! Sixteen tenants — alternating TPC-B-style and TATP-style streams —
//! share one 4-channel × 2-die device under an NCQ cap with latency-QoS
//! scheduling. A seeded chaos loop kills and recovers tenants more than
//! fifty times mid-run; after *every* recovery the tenant's logical state
//! must match its model byte-for-byte (and hold the TPC-B money-flow
//! equation), checkpoints must keep recycling sealed WAL stripes, and no
//! tenant's p99.9 may run away from the fleet's.

use ipa_fleet::{run_soak, Fleet, FleetConfig, SoakConfig, TenantMix, TenantWorkload};
use ipa_storage::TableSpec;
use ipa_testkit::fleet_soak_config;

fn soaked(tenants: usize, seed: u64) -> (SoakConfig, ipa_fleet::SoakReport) {
    let cfg = fleet_soak_config(tenants, seed);
    let report = run_soak(&cfg).expect("soak completes");
    (cfg, report)
}

#[test]
fn sixteen_tenant_soak_survives_fifty_plus_kill_recover_cycles() {
    let (cfg, report) = soaked(16, 0x000F_1EE7_50AC);
    assert_eq!(report.tenants, 16);
    assert_eq!(cfg.fleet.channels, 4);
    assert_eq!(cfg.fleet.dies_per_channel, 2);

    // ≥ 50 seeded kill/recover cycles, every one of them recovered and
    // verified inside run_soak (it panics on any divergence).
    assert!(
        report.kills >= 50,
        "soak must exercise ≥ 50 kill/recover cycles, got {}",
        report.kills
    );
    assert_eq!(report.recoveries, report.kills, "every kill was recovered");
    assert!(
        report.records_replayed > 0,
        "recoveries replayed WAL records"
    );

    // The fleet actually ran: every tenant committed its full quota.
    assert!(report.steps >= (report.tenants * 50) as u64);
    assert!(report.elapsed_ns > 0 && report.tps() > 0.0);
}

#[test]
fn soak_checkpoints_reclaim_wal_log_space() {
    let (cfg, report) = soaked(16, 0x000F_1EE7_50AC);
    assert!(
        report.wal_stripes_reclaimed > 0,
        "checkpoints must recycle sealed WAL stripes"
    );
    // Reclamation is what bounds steady-state log space: the run appends
    // far more WAL pages than any tenant's log capacity, so without
    // recycling the soak could not have completed at all.
    assert!(
        report.wal_stripes_reclaimed > cfg.fleet.wal_pages / 4,
        "a long soak recycles a meaningful share of the log ({} pages reclaimed)",
        report.wal_stripes_reclaimed
    );
}

#[test]
fn soak_holds_per_tenant_tail_fairness_under_queue_caps() {
    let (_, report) = soaked(16, 0x000F_1EE7_50AC);
    assert_eq!(report.per_tenant.len(), 16);
    for (i, p) in report.per_tenant.iter().enumerate() {
        assert!(p.count > 0 && p.p999_ns > 0, "tenant {i} measured latency");
    }
    let spread = report.p999_spread();
    assert!(spread >= 1.0 && spread.is_finite());
    // Under the shared NCQ cap + QoS no tenant's p99.9 may run away:
    // the mixes differ (update-heavy vs read-mostly), so perfect equality
    // is impossible, but an order of magnitude apart would mean the
    // scheduler is starving someone.
    assert!(
        spread < 10.0,
        "p99.9 spread across tenants too wide: {spread:.2}"
    );
    // QoS + caps were actually on for this measurement.
    let ctrl = report.controller.expect("shared controller stats");
    assert!(ctrl.backpressure_stalls > 0, "queue cap engaged");
}

#[test]
fn soak_is_deterministic_for_a_seed() {
    let (_, a) = soaked(16, 7);
    let (_, b) = soaked(16, 7);
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.kills, b.kills);
    assert_eq!(a.records_replayed, b.records_replayed);
    assert_eq!(a.wal_stripes_reclaimed, b.wal_stripes_reclaimed);
    assert_eq!(a.elapsed_ns, b.elapsed_ns);
    let pa: Vec<u64> = a.per_tenant.iter().map(|p| p.p999_ns).collect();
    let pb: Vec<u64> = b.per_tenant.iter().map(|p| p.p999_ns).collect();
    assert_eq!(pa, pb, "per-tenant tails reproduce exactly");
}

#[test]
fn evicted_tenant_frees_its_share_while_neighbours_keep_running() {
    let mut fleet = Fleet::builder(FleetConfig::default())
        .tenant(
            "keeper",
            TenantWorkload::tables(TenantMix::TpcB, 32, 64, 2048),
        )
        .tenant("leaver", vec![TableSpec::heap("rows", 64, 16)])
        .build()
        .expect("fleet builds");

    let mut keeper = TenantWorkload::new(TenantMix::TpcB, 42, "keeper");
    keeper.load(fleet.tenant_mut(0).engine_mut(), 32).unwrap();

    // The leaver writes real data, then departs; RAII teardown must hand
    // its window back to the shared device.
    {
        let t = fleet.tenant_mut(1);
        let e = t.engine_mut();
        let table = e.table("rows").unwrap();
        let tx = e.begin();
        for i in 0..8u8 {
            e.insert(tx, table, &[i; 64]).unwrap();
        }
        e.commit(tx).unwrap();
        e.flush_all().unwrap();
    }
    let before = fleet.shared_stats().host_writes;
    drop(fleet.evict(1));

    // The keeper is unaffected: it can still run, crash and recover.
    for _ in 0..16 {
        keeper.step(fleet.tenant_mut(0).engine_mut()).unwrap();
    }
    let t = fleet.tenant_mut(0);
    t.kill();
    t.recover().unwrap();
    keeper.verify(t.engine_mut());
    assert!(fleet.shared_stats().host_writes >= before);
    assert_eq!(fleet.len(), 1);
}
