//! Failure injection: the stack under hostile conditions — exhausted NOP
//! budgets, retired blocks, disturb storms, near-full devices and forced
//! unsafe appends.

use in_place_appends::core::DeltaRecord;
use in_place_appends::flash::FlashChip;
use in_place_appends::ftl::{BlockDevice, Ftl, FtlConfig, FtlError, NativeFlashDevice};
use in_place_appends::prelude::*;
use in_place_appends::storage::standard_layout;
use ipa_testkit::quiet_slc;

#[test]
fn nop_exhaustion_falls_back_transparently() {
    // Device allows only 1 append per page; the engine must stay correct
    // by falling back to out-of-place writes once budgets run out.
    let device = DeviceConfig::small().with_nop(2); // initial program + 1 append
    let mut e = StorageEngine::build(
        device,
        EngineConfig::default()
            .with_ipa(NmScheme::new(4, 8))
            .with_buffer_frames(8),
        &[TableSpec::heap("t", 64, 64)],
    )
    .unwrap();
    let t = e.table("t").unwrap();
    let tx = e.begin();
    let mut rids = Vec::new();
    for k in 0..200u64 {
        let mut row = [0u8; 64];
        row[..8].copy_from_slice(&k.to_le_bytes());
        rids.push(e.insert(tx, t, &row).unwrap());
    }
    e.commit(tx).unwrap();
    e.flush_all().unwrap();

    // A few updates per page per flush cycle, so evictions produce
    // in-place verdicts; with NOP=2 only the first append per page
    // succeeds and every later one must fall back.
    let mut expect = vec![0u8; rids.len()];
    for round in 0..40u8 {
        for (k, rid) in rids.iter().enumerate() {
            if k % 20 == (round % 20) as usize {
                let tx = e.begin();
                e.update_field(tx, t, *rid, 16, &[round + 1]).unwrap();
                e.commit(tx).unwrap();
                expect[k] = round + 1;
            }
        }
        e.flush_all().unwrap();
    }
    let s = e.stats();
    assert!(s.pool.evict_in_place > 0, "some appends must succeed first");
    assert!(
        s.pool.in_place_fallbacks > 0,
        "NOP=2 must trigger fallbacks"
    );
    e.restart_clean().unwrap();
    for (k, rid) in rids.iter().enumerate() {
        assert_eq!(
            e.get(t, *rid).unwrap()[16],
            expect[k],
            "row {k} lost in fallback"
        );
    }
}

#[test]
fn retired_blocks_shrink_but_do_not_corrupt() {
    let mut cfg = quiet_slc(24, 8, 0);
    cfg.erase_endurance = 6; // blocks die after six erases
    let mut ftl = Ftl::new(FlashChip::new(cfg), FtlConfig::traditional());
    let data = vec![0x3Cu8; 2048];
    // Churn a small working set hard; blocks will start retiring.
    let mut writes = 0u64;
    for i in 0..3_000u64 {
        match ftl.write(i % 16, &data) {
            Ok(()) => writes += 1,
            Err(FtlError::DeviceFull) => break, // all spares eventually die
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    assert!(
        writes > 500,
        "device died implausibly early ({writes} writes)"
    );
    // Whatever is still mapped must read back intact.
    let mut buf = vec![0u8; 2048];
    for lba in 0..16u64 {
        if ftl.read(lba, &mut buf).is_ok() {
            assert!(buf.iter().all(|&b| b == 0x3C));
        }
    }
}

/// Run the §3 append storm — N×M deltas hammered into every page between
/// periodic rewrites — on the given flash mode, and count uncorrectable
/// reads. The `unsafe_ipa` override lets the storm run on modes the
/// safety policy would normally refuse.
fn append_storm(mode: FlashMode, unsafe_ipa: bool) -> u64 {
    let scheme = NmScheme::new(8, 8);
    let layout = standard_layout(2048, scheme);
    let device = DeviceConfig::new(Geometry::new(32, 32, 2048, 128), mode)
        .with_nop(16)
        .with_seed(99);
    let config = if unsafe_ipa {
        FtlConfig::ipa_native(layout).with_unsafe_ipa()
    } else {
        FtlConfig::ipa_native(layout)
    };
    let mut ftl = Ftl::new(FlashChip::new(device), config);
    let blank = vec![0xFFu8; 2048];
    for lba in 0..32u64 {
        ftl.write(lba, &blank).unwrap();
    }
    let meta = vec![0u8; layout.meta_len()];
    let mut uncorrectable = 0u64;
    let mut buf = vec![0u8; 2048];
    'outer: for round in 0..60u16 {
        for lba in 0..32u64 {
            let slot = round % scheme.n;
            if slot == 0 && round > 0 {
                ftl.write(lba, &blank).unwrap();
            }
            let rec = DeltaRecord::new(vec![(40, 0)], meta.clone(), scheme);
            let res = ftl.write_delta(lba, layout.record_offset(slot), &rec.encode(&layout));
            if !unsafe_ipa {
                // On a safe mode every append must be accepted outright.
                res.unwrap();
            }
        }
        for lba in 0..32u64 {
            match ftl.read(lba, &mut buf) {
                Ok(()) => {}
                Err(FtlError::Uncorrectable { .. }) => {
                    uncorrectable += 1;
                    if uncorrectable > 3 {
                        break 'outer;
                    }
                    ftl.write(lba, &blank).unwrap();
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
    }
    uncorrectable
}

#[test]
fn forced_unsafe_appends_corrupt_data_eventually() {
    // The negative control for the paper's §3: running IPA on full-MLC
    // pages (explicitly overriding the safety policy) must produce
    // ECC-visible damage — otherwise our interference model is vacuous.
    assert!(
        append_storm(FlashMode::MlcFull, true) > 0,
        "unsafe MLC appends must eventually defeat SECDED"
    );
}

#[test]
fn safe_modes_stay_clean_under_the_same_storm() {
    // Positive control: the identical append storm on pSLC produces zero
    // data loss.
    assert_eq!(append_storm(FlashMode::PSlc, false), 0);
}

#[test]
fn table_region_exhaustion_is_a_clean_error() {
    let mut e = StorageEngine::build(
        DeviceConfig::small(),
        EngineConfig::default(),
        &[TableSpec::heap("tiny", 100, 2)],
    )
    .unwrap();
    let t = e.table("tiny").unwrap();
    let tx = e.begin();
    let mut inserted = 0;
    loop {
        match e.insert(tx, t, &[0u8; 100]) {
            Ok(_) => inserted += 1,
            Err(in_place_appends::storage::StorageError::TableFull(name)) => {
                assert_eq!(name, "tiny");
                break;
            }
            Err(err) => panic!("unexpected: {err}"),
        }
        assert!(inserted < 1_000, "TableFull never reported");
    }
    e.commit(tx).unwrap();
    assert!(inserted > 100, "two 8 KB pages hold well over 100 rows");
}
