//! `heat_placement` — the heat-based-placement wall.
//!
//! Two claims, both end to end:
//!
//! 1. **Wear stays bounded.** Under a deliberately Zipfian write stream,
//!    the fixed round-robin stripe concentrates erases on the dies the
//!    hot head lands on — `wear_spread()` measurably diverges from the
//!    uniform-workload spread. The same stream through an `ipa-heat`
//!    [`HeatDevice`] (SLC hot tier + wear-shifting migration) keeps the
//!    spread within 2× of the uniform baseline at equal-or-better
//!    throughput.
//! 2. **Migration moves placement, never state.** `MigrateRange` and
//!    `Destage` jobs interleaved with live host traffic — across dies
//!    {1, 2, 4} × planes {1, 2} × all three write strategies — leave the
//!    logical database byte-identical to the no-migration reference
//!    engine, and committed transactions survive a crash mid-migration
//!    via the ordinary WAL replay.

use ipa_core::NmScheme;
use ipa_flash::{DeviceConfig, DisturbRates, FlashMode, Geometry};
use ipa_ftl::{BlockDevice, FtlConfig, ShardedFtl, StripePolicy, WriteStrategy};
use ipa_heat::{DefaultPolicy, HeatDevice};
use ipa_maint::{MaintConfig, MaintainedFtl};
use ipa_storage::Rid;
use ipa_testkit::{all_strategies, compact_heap_engine, heat_heap_engine, ModelHarness};
use ipa_workloads::ZipfTable;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PAGE: usize = 2048;
const SPAN: u64 = 192;
const OPS: u64 = 9_000;
const THETA: f64 = 0.99;

/// A 2-channel × 2-die pSLC stripe, the wall's fixed-placement device.
fn stripe() -> ShardedFtl {
    let chip = DeviceConfig::new(Geometry::new(16, 8, PAGE, 64), FlashMode::PSlc)
        .with_disturb(DisturbRates::none());
    ShardedFtl::new(
        ControllerConfig::new(2, 2, chip),
        FtlConfig::traditional().with_background_gc(),
        StripePolicy::RoundRobin,
    )
}

use ipa_controller::ControllerConfig;

fn wall_policy() -> DefaultPolicy {
    DefaultPolicy::default()
        .with_hot_threshold(3)
        .with_range_pages(2)
        .with_tier_fraction(0.10)
        .with_destage_high_water(0.6)
        .with_migrate_wear_delta(2)
}

/// Drive `OPS` writes (with interleaved reads so dies go idle for the
/// maintenance scheduler) drawn by `next_lba`, and return
/// `(wear_spread, elapsed_ns)`.
fn drive<D: BlockDevice + ?Sized>(
    dev: &mut D,
    spread_of: impl Fn(&D) -> u64,
    mut next_lba: impl FnMut(&mut StdRng) -> u64,
) -> (u64, u64) {
    let mut rng = StdRng::seed_from_u64(0x4EA7);
    let mut buf = vec![0u8; PAGE];
    for i in 0..OPS {
        let lba = next_lba(&mut rng);
        dev.write(lba, &vec![(i % 251) as u8; PAGE]).unwrap();
        if i % 4 == 0 {
            dev.read(lba, &mut buf).unwrap();
        }
    }
    (spread_of(dev), dev.elapsed_ns())
}

#[test]
fn zipfian_wear_stays_bounded_under_heat_placement() {
    let zipf = ZipfTable::new(SPAN, THETA);

    // Uniform baseline on the fixed stripe: the spread every other run
    // is judged against.
    let mut uniform = stripe();
    let (spread_uniform, _) = drive(
        &mut uniform,
        |d: &ShardedFtl| d.controller().stats().wear_spread(),
        |rng| rng.gen_range(0..SPAN),
    );

    // The same stripe under the Zipfian stream: no placement logic, so
    // the hot head's dies eat the erases.
    let mut fixed = stripe();
    let (spread_fixed, elapsed_fixed) = drive(
        &mut fixed,
        |d: &ShardedFtl| d.controller().stats().wear_spread(),
        |rng| zipf.sample(rng),
    );

    // The Zipfian stream through the heat device: hot ranges absorb into
    // the SLC tier, wear shifting re-stripes what leaks through.
    let mut heat = HeatDevice::new(
        MaintainedFtl::new(stripe(), MaintConfig::default()),
        Box::new(wall_policy()),
    );
    let (spread_heat, elapsed_heat) = drive(
        &mut heat,
        |d: &HeatDevice| d.inner().inner().controller().stats().wear_spread(),
        |rng| zipf.sample(rng),
    );

    let bound = 2 * spread_uniform.max(1);
    assert!(
        spread_fixed > bound,
        "the fixed stripe must measurably diverge under skew: \
         zipf {spread_fixed} vs uniform {spread_uniform}"
    );
    assert!(
        spread_heat <= bound,
        "heat placement must keep the spread within 2× of uniform: \
         heat {spread_heat} vs uniform {spread_uniform} (fixed reached {spread_fixed})"
    );
    assert!(
        elapsed_heat <= elapsed_fixed,
        "equal-or-better throughput: heat {elapsed_heat} ns vs fixed {elapsed_fixed} ns"
    );

    // The claim is about the mechanisms, so they must have engaged.
    let h = heat.heat_stats();
    let m = heat.maint_stats();
    assert!(h.hot_hits > 0, "tier never absorbed: {h}");
    assert!(
        h.destaged_pages > 0 || h.range_migrations > 0,
        "no background placement work ran: {h} / {m}"
    );
    heat.check_invariants();
}

/// Run `ops` harness steps on an engine, prove it matches its own model
/// across a restart, and return the canonical logical state.
fn final_state(
    mut e: ipa_storage::StorageEngine,
    seed: u64,
    ops: usize,
    label: String,
) -> Vec<(Rid, Vec<u8>)> {
    let t = e.table("m").unwrap();
    let mut h = ModelHarness::new(seed, label);
    h.run(&mut e, t, ops);
    e.restart_clean().unwrap();
    h.assert_engine_matches(&mut e, t);
    h.canonical_rows()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Migration parity: dies {1, 2, 4} × planes {1, 2} × all three
    /// write strategies, heat device vs its no-heat twin on the very
    /// same striped geometry, byte-identical logical state.
    #[test]
    fn migration_parity_full_matrix(seed in any::<u64>(), ops in 150usize..240) {
        for (strategy, scheme) in all_strategies() {
            for dies in [1u32, 2, 4] {
                for planes in [1u32, 2] {
                    let reference = final_state(
                        compact_heap_engine(
                            strategy,
                            scheme,
                            seed,
                            dies,
                            planes,
                            StripePolicy::RoundRobin,
                        ),
                        seed,
                        ops,
                        format!("plain/{dies}d×{planes}p/{strategy:?}(seed {seed})"),
                    );
                    let migrated = final_state(
                        heat_heap_engine(
                            strategy,
                            scheme,
                            seed,
                            dies,
                            planes,
                            StripePolicy::RoundRobin,
                        ),
                        seed,
                        ops,
                        format!("heat/{dies}d×{planes}p/{strategy:?}(seed {seed})"),
                    );
                    prop_assert!(
                        reference == migrated,
                        "{dies} dies × {planes} planes under {strategy:?} diverged \
                         from the no-migration reference at seed {seed}"
                    );
                }
            }
        }
    }
}

/// Skew the engine's update stream onto the first two heap pages for
/// `rounds` flush cycles — the traffic shape that makes the tier churn
/// (absorb → high-water → destage) and piles erases onto the hot dies.
fn hammer_hot_pages(
    e: &mut ipa_storage::StorageEngine,
    t: ipa_storage::TableId,
    rids: &[Rid],
    rounds: u32,
    flush: bool,
) {
    // 29 rows per 2 KiB heap page: rows 0..58 live on pages 0 and 1.
    let hot: Vec<Rid> = rids.iter().copied().take(58).step_by(10).collect();
    let cold: Vec<Rid> = rids.iter().copied().skip(58).step_by(60).collect();
    for round in 0..rounds {
        let tx = e.begin();
        for (i, rid) in hot.iter().enumerate() {
            let v = (round as usize + i) as u8;
            e.update_field(tx, t, *rid, 8 + (i % 32), &[v]).unwrap();
        }
        if round % 5 == 0 {
            for rid in &cold {
                e.update_field(tx, t, *rid, 40, &[round as u8]).unwrap();
            }
        }
        e.commit(tx).unwrap();
        if flush {
            e.flush_all().unwrap();
        }
    }
}

fn seeded_rows(e: &mut ipa_storage::StorageEngine, t: ipa_storage::TableId, n: u64) -> Vec<Rid> {
    let tx = e.begin();
    let mut rids = Vec::new();
    for k in 0..n {
        let mut row = [0u8; 48];
        row[..8].copy_from_slice(&k.to_le_bytes());
        rids.push(e.insert(tx, t, &row).unwrap());
    }
    e.commit(tx).unwrap();
    e.flush_all().unwrap();
    rids
}

/// The parity matrix must actually migrate — otherwise it proves
/// nothing. Same fixture, update-heavy stream, counters checked.
#[test]
fn parity_fixture_really_destages_and_migrates() {
    let mut e = heat_heap_engine(
        WriteStrategy::IpaNative,
        NmScheme::new(2, 4),
        0x5EED,
        4,
        1,
        StripePolicy::RoundRobin,
    );
    let t = e.table("m").unwrap();
    let rids = seeded_rows(&mut e, t, 300);
    hammer_hot_pages(&mut e, t, &rids, 300, true);
    let hd = e.device_as::<HeatDevice>().expect("heat-mounted engine");
    let stats = hd.heat_stats();
    assert!(stats.hot_hits > 0, "tier never absorbed a write: {stats}");
    assert!(stats.destaged_pages > 0, "tier never destaged: {stats}");
    assert!(
        stats.range_migrations > 0,
        "wear shifting never swapped a stripe slot: {stats}"
    );
    hd.check_invariants();
}

#[test]
fn committed_state_survives_a_crash_mid_migration() {
    let mut e = heat_heap_engine(
        WriteStrategy::IpaNative,
        NmScheme::new(2, 4),
        0xC0FFEE,
        2,
        1,
        StripePolicy::RoundRobin,
    );
    let t = e.table("m").unwrap();

    // A committed, flushed base, then enough skewed flush rounds that
    // the device is actively destaging and migrating.
    let rids = seeded_rows(&mut e, t, 300);
    hammer_hot_pages(&mut e, t, &rids, 150, true);
    {
        let hd = e.device_as::<HeatDevice>().expect("heat-mounted engine");
        let stats = hd.heat_stats();
        assert!(
            stats.destaged_pages > 0 || stats.range_migrations > 0,
            "the crash must land mid-migration-era, not before any ran: {stats}"
        );
    }

    // Committed-but-unflushed update rounds on top: these live only in
    // the WAL when the crash lands.
    let mut latest = vec![0u8; rids.len()];
    for round in 0..6u8 {
        for (i, rid) in rids.iter().enumerate() {
            if (i as u8).wrapping_add(round) % 37 == 0 {
                let v = round.wrapping_mul(37).wrapping_add(i as u8).max(1);
                let tx = e.begin();
                e.update_field(tx, t, *rid, 20, &[v]).unwrap();
                e.commit(tx).unwrap();
                latest[i] = v;
            }
        }
    }

    // Uncommitted straggler, then the crash.
    let tx = e.begin();
    e.update_field(tx, t, rids[0], 40, &[0xEE]).unwrap();
    e.crash();
    let report = e.recover().unwrap();
    assert!(report.updates_redone > 0, "WAL replay must redo work");

    for (i, rid) in rids.iter().enumerate() {
        let row = e.get(t, *rid).unwrap();
        assert_eq!(row[20], latest[i], "committed update on row {i} lost");
        assert_eq!(
            u64::from_le_bytes(row[..8].try_into().unwrap()),
            i as u64,
            "row {i} identity corrupted across migration + crash"
        );
    }
    assert_ne!(e.get(t, rids[0]).unwrap()[40], 0xEE, "uncommitted redone");
    e.device_as::<HeatDevice>().unwrap().check_invariants();
}
