//! Model-based testing: a random operation stream is applied both to the
//! engine (under each write strategy) and to an in-memory model; after a
//! flush + cold restart the two must agree byte-for-byte. This is the
//! strongest correctness statement in the suite: no sequence of small
//! updates, whole-row updates, inserts, deletes, evictions, in-place
//! appends, GC migrations or delta reconstructions may lose a byte.

use std::collections::HashMap;

use in_place_appends::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ROW: usize = 48;

fn engine(strategy: WriteStrategy, scheme: NmScheme, seed: u64) -> StorageEngine {
    let device = DeviceConfig::small().with_seed(seed);
    let config = match strategy {
        WriteStrategy::Traditional => EngineConfig::default(),
        _ => EngineConfig::default().with_strategy(strategy, scheme),
    }
    .with_buffer_frames(8); // tiny pool: maximal eviction churn
    StorageEngine::build(device, config, &[TableSpec::heap("m", ROW, 200)]).expect("engine")
}

fn run_model(strategy: WriteStrategy, scheme: NmScheme, seed: u64, ops: usize) {
    let mut e = engine(strategy, scheme, seed);
    let t = e.table("m").unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model: HashMap<Rid, Option<Vec<u8>>> = HashMap::new();
    let mut live: Vec<Rid> = Vec::new();

    for step in 0..ops {
        let dice = rng.gen_range(0..100u32);
        match dice {
            // insert — 25 %
            0..=24 => {
                let mut row = vec![0u8; ROW];
                rng.fill(&mut row[..]);
                let tx = e.begin();
                match e.insert(tx, t, &row) {
                    Ok(rid) => {
                        e.commit(tx).unwrap();
                        model.insert(rid, Some(row));
                        live.push(rid);
                    }
                    Err(in_place_appends::storage::StorageError::TableFull(_)) => {
                        e.commit(tx).unwrap();
                    }
                    Err(err) => panic!("insert: {err}"),
                }
            }
            // small field update — 45 %
            25..=69 if !live.is_empty() => {
                let rid = live[rng.gen_range(0..live.len())];
                let off = rng.gen_range(0..ROW - 4);
                let bytes: [u8; 3] = rng.gen();
                let tx = e.begin();
                e.update_field(tx, t, rid, off, &bytes).unwrap();
                e.commit(tx).unwrap();
                let m = model.get_mut(&rid).unwrap().as_mut().unwrap();
                m[off..off + 3].copy_from_slice(&bytes);
            }
            // whole-row update — 10 %
            70..=79 if !live.is_empty() => {
                let rid = live[rng.gen_range(0..live.len())];
                let mut row = vec![0u8; ROW];
                rng.fill(&mut row[..]);
                let tx = e.begin();
                e.update_row(tx, t, rid, &row).unwrap();
                e.commit(tx).unwrap();
                model.insert(rid, Some(row));
            }
            // delete — 5 %
            80..=84 if !live.is_empty() => {
                let idx = rng.gen_range(0..live.len());
                let rid = live.swap_remove(idx);
                let tx = e.begin();
                e.delete(tx, t, rid).unwrap();
                e.commit(tx).unwrap();
                model.insert(rid, None);
            }
            // aborted update — 5 %
            85..=89 if !live.is_empty() => {
                let rid = live[rng.gen_range(0..live.len())];
                let tx = e.begin();
                e.update_field(tx, t, rid, 0, &[0xAB, 0xCD]).unwrap();
                e.abort(tx).unwrap();
            }
            // read-verify — rest
            _ if !live.is_empty() => {
                let rid = live[rng.gen_range(0..live.len())];
                let got = e.get(t, rid).unwrap();
                assert_eq!(
                    &got,
                    model[&rid].as_ref().unwrap(),
                    "{strategy:?} step {step}: live read diverged"
                );
            }
            _ => {}
        }
        if step % 50 == 49 {
            e.flush_all().unwrap();
        }
    }

    // Cold restart: everything must round-trip through the flash images.
    e.restart_clean().unwrap();
    for (rid, expect) in &model {
        match expect {
            Some(row) => {
                let got = e.get(t, *rid).unwrap();
                assert_eq!(&got, row, "{strategy:?}: row {rid:?} diverged after restart");
            }
            None => {
                assert!(
                    e.get(t, *rid).is_err(),
                    "{strategy:?}: deleted row {rid:?} resurrected"
                );
            }
        }
    }
}

#[test]
fn model_check_traditional() {
    run_model(WriteStrategy::Traditional, NmScheme::disabled(), 1001, 1200);
}

#[test]
fn model_check_ipa_native() {
    run_model(WriteStrategy::IpaNative, NmScheme::new(2, 4), 2002, 1200);
}

#[test]
fn model_check_ipa_native_roomy_scheme() {
    run_model(WriteStrategy::IpaNative, NmScheme::new(8, 8), 3003, 1200);
}

#[test]
fn model_check_ipa_conventional() {
    run_model(WriteStrategy::IpaConventional, NmScheme::new(2, 4), 4004, 1200);
}

#[test]
fn model_check_many_seeds_quick() {
    for seed in 0..6u64 {
        run_model(WriteStrategy::IpaNative, NmScheme::new(2, 4), 5000 + seed, 300);
    }
}
