//! Model-based testing: a random operation stream is applied both to the
//! engine (under each write strategy) and to an in-memory model; after a
//! flush + cold restart the two must agree byte-for-byte. This is the
//! strongest correctness statement in the suite: no sequence of small
//! updates, whole-row updates, inserts, deletes, evictions, in-place
//! appends, GC migrations or delta reconstructions may lose a byte.
//!
//! The op-stream generator and the engine-vs-model lockstep live in
//! `ipa_testkit::ops::ModelHarness`; this suite picks the strategies,
//! schemes and seeds.

use in_place_appends::prelude::*;
use ipa_testkit::{assert_strategies_agree, heap_engine, ModelHarness};

fn run_model(strategy: WriteStrategy, scheme: NmScheme, seed: u64, ops: usize) {
    let mut e = heap_engine(strategy, scheme, seed);
    let t = e.table("m").unwrap();
    let mut h = ModelHarness::new(seed, format!("{strategy:?}"));
    h.run(&mut e, t, ops);

    // Cold restart (flushes internally): everything must round-trip
    // through the flash images.
    e.restart_clean().unwrap();
    h.assert_engine_matches(&mut e, t);
}

#[test]
fn model_check_traditional() {
    run_model(WriteStrategy::Traditional, NmScheme::disabled(), 1001, 1200);
}

#[test]
fn model_check_ipa_native() {
    run_model(WriteStrategy::IpaNative, NmScheme::new(2, 4), 2002, 1200);
}

#[test]
fn model_check_ipa_native_roomy_scheme() {
    run_model(WriteStrategy::IpaNative, NmScheme::new(8, 8), 3003, 1200);
}

#[test]
fn model_check_ipa_conventional() {
    run_model(
        WriteStrategy::IpaConventional,
        NmScheme::new(2, 4),
        4004,
        1200,
    );
}

#[test]
fn model_check_many_seeds_quick() {
    for seed in 0..6u64 {
        run_model(
            WriteStrategy::IpaNative,
            NmScheme::new(2, 4),
            5000 + seed,
            300,
        );
    }
}

#[test]
fn model_check_strategies_converge() {
    // Beyond each strategy matching its own model: all three write paths
    // fed the same logical op stream must end in identical logical state.
    for seed in [0xBEEF, 0xCAFE] {
        assert_strategies_agree(seed, 400);
    }
}
