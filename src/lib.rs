//! # In-Place Appends (IPA) — facade crate
//!
//! Reproduction of *"In-Place Appends for Real: DBMS Overwrites on Flash
//! without Erase"* (Hardock, Petrov, Gottstein, Buchmann — EDBT 2017).
//!
//! This crate re-exports the whole workspace so downstream users (and the
//! `examples/` and `tests/` trees) depend on a single crate:
//!
//! * [`flash`] — cell-accurate NAND flash simulator (ISPP, 1→0 program
//!   legality, NOP budgets, program interference, OOB + ECC).
//! * [`ftl`] — page-mapping FTL with garbage collection, plus the NoFTL
//!   native interface with Regions and the `write_delta` command.
//! * [`core`] — the paper's contribution: delta records, the N×M scheme,
//!   change tracking and the IPA page layout (Figure 3).
//! * [`storage`] — a compact storage engine (slotted NSM pages, buffer
//!   pool, heap files, B+-tree, WAL/transactions) standing in for Shore-MT.
//! * [`ipl`] — the In-Page Logging baseline (Lee & Moon, SIGMOD 2007).
//! * [`heat`] — heat-based data placement: decaying LBA heat tracking,
//!   the SLC hot tier and wear-shifting stripe migration.
//! * [`workloads`] — deterministic TPC-B / TPC-C / TATP / LinkBench-style
//!   generators and the benchmark driver.
//!
//! ## Quickstart
//!
//! ```
//! use in_place_appends::prelude::*;
//!
//! // Run 200 TPC-B transactions under IPA (native write_delta) on
//! // simulated pSLC flash, and compare against the traditional path.
//! let cfg = DriverConfig::quick().with_transactions(200);
//! let ipa = Driver::run_configured(
//!     WorkloadKind::TpcB, 1, WriteStrategy::IpaNative,
//!     NmScheme::new(2, 4), FlashMode::PSlc, &cfg,
//! ).unwrap();
//! let trad = Driver::run_configured(
//!     WorkloadKind::TpcB, 1, WriteStrategy::Traditional,
//!     NmScheme::disabled(), FlashMode::PSlc, &cfg,
//! ).unwrap();
//! assert!(ipa.device.page_invalidations <= trad.device.page_invalidations);
//! ```
pub use ipa_controller as controller;
pub use ipa_core as core;
pub use ipa_flash as flash;
pub use ipa_ftl as ftl;
pub use ipa_heat as heat;
pub use ipa_ipl as ipl;
pub use ipa_storage as storage;
pub use ipa_workloads as workloads;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use ipa_core::{ChangeTracker, DeltaRecord, IpaVerdict, NmScheme, PageLayout};
    pub use ipa_flash::{
        CellType, DeviceConfig, DisturbRates, FlashChip, FlashMode, Geometry, Ppa,
    };
    pub use ipa_ftl::{
        BlockDevice, DeviceStats, Ftl, FtlConfig, NativeFlashDevice, Region, RegionTable,
        WriteStrategy,
    };
    pub use ipa_heat::{DefaultPolicy, HeatDevice, HeatStats, PlacementPolicy};
    pub use ipa_ipl::{replay_ipa, replay_ipl, IplConfig, IplStore};
    pub use ipa_storage::{
        standard_layout, BufferPool, EngineConfig, Rid, StorageEngine, TableSpec,
    };
    pub use ipa_workloads::{Benchmark, Driver, DriverConfig, RunResult, WorkloadKind};
}
