//! Offline stand-in for `criterion`.
//!
//! Provides the `Criterion` / `Bencher` surface the workspace benches
//! use (`bench_function`, `iter`, `iter_with_setup`, `black_box`, the
//! `criterion_group!` / `criterion_main!` macros) over a simple
//! median-of-samples wall-clock harness. No statistical analysis, plots,
//! or baselines — just honest per-iteration timings on stdout, so
//! `cargo bench` stays useful without registry access.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimal benchmark driver.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement: Duration,
    /// Samples collected per benchmark (median is reported).
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(300),
            samples: 11,
        }
    }
}

impl Criterion {
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(3);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.measurement / self.samples as u32,
            per_iter: Vec::with_capacity(self.samples),
        };
        for _ in 0..self.samples {
            f(&mut b);
        }
        b.per_iter.sort();
        let median = b.per_iter[b.per_iter.len() / 2];
        println!(
            "{id:<40} median {median:>12?}/iter ({} samples)",
            b.per_iter.len()
        );
        self
    }

    pub fn final_summary(&self) {}
}

/// Timing context handed to the closure of [`Criterion::bench_function`].
pub struct Bencher {
    budget: Duration,
    per_iter: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` repeatedly until the sample budget is spent and
    /// record the mean per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a batch size so the clock is read rarely.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        self.per_iter.push(start.elapsed() / batch as u32);
    }

    /// `iter` with a non-timed setup producing each iteration's input.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let t0 = Instant::now();
        black_box(routine(setup()));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        let mut spent = Duration::ZERO;
        for _ in 0..batch {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            spent += start.elapsed();
        }
        self.per_iter.push(spent / batch as u32);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(10))
            .sample_size(3);
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn iter_with_setup_separates_setup() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(10))
            .sample_size(3);
        c.bench_function("setup", |b| {
            b.iter_with_setup(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            )
        });
    }
}
