//! Offline stand-in for `serde_derive`: the derives expand to nothing.
//!
//! The workspace annotates config/stats types with
//! `#[derive(Serialize, Deserialize)]` so they are wire-ready once the
//! real serde is available, but no code path in the repo performs actual
//! serialization. Expanding to an empty token stream keeps the attribute
//! valid while adding zero behavior.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
