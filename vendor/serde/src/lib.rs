//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in this build environment, and nothing in
//! the workspace actually serializes — the `#[derive(Serialize,
//! Deserialize)]` annotations only declare intent. This stub supplies the
//! trait names and re-exports no-op derive macros so the annotations
//! compile unchanged; swapping in the real serde is a one-line change in
//! the workspace manifest.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
