//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses —
//! `proptest!`, `prop_assert*!`, `prop_assume!`, `any::<T>()`, integer
//! ranges, tuples, `collection::vec`, `Just`, and `ProptestConfig` — over
//! a deterministic seeded RNG. Differences from the real crate:
//!
//! * **No shrinking.** A failing case reports its seed, case index and
//!   generated inputs; re-running is fully deterministic.
//! * **Derandomized by construction**: the per-case seed is a hash of the
//!   test's module path and name plus the case index, so failures
//!   reproduce across runs and machines.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

pub mod test_runner {
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assert*!` failure — the property is violated.
    Fail(String),
    /// `prop_assume!` rejection — the inputs don't satisfy a precondition.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// A generator of values. The stand-in has no shrink tree; `generate`
/// simply draws from the seeded RNG.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

/// Strategy for the full domain of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Length specification for [`collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Vectors of `elem`-generated values with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Deterministic per-case RNG: FNV-1a over the test identity, mixed with
/// the case index.
#[doc(hidden)]
pub fn __rng_for(test_id: &str, case: u64) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_id.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (
        cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut rng = $crate::__rng_for(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let vals = vec![$(format!(
                    concat!(stringify!($arg), " = {:?}"), &$arg
                )),+];
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject(_)) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "proptest case {case} failed: {msg}\n  inputs:\n    {}",
                        vals.join("\n    "),
                    ),
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                *l == *r,
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ),
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                *l != *r,
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ),
        }
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(
            pair in (0u8..3, 10u64..20),
            v in crate::collection::vec(any::<u8>(), 2..=5),
            x in 1usize..100,
        ) {
            prop_assert!(pair.0 < 3);
            prop_assert!((10..20).contains(&pair.1));
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert!((1..100).contains(&x));
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u8..4, b in 0u8..4) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = (0u8..200, crate::collection::vec(any::<u64>(), 1..4));
        let a = s.generate(&mut crate::__rng_for("t", 5));
        let b = s.generate(&mut crate::__rng_for("t", 5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failure_panics_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u8..10) {
                prop_assert!(x > 200, "x themed failure: {x}");
            }
        }
        always_fails();
    }
}
