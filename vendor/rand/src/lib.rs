//! Offline stand-in for the `rand` crate (0.8-style API surface).
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of `rand` it actually uses: a seedable deterministic
//! generator ([`rngs::StdRng`]) plus the [`Rng`] extension methods
//! `gen`, `gen_range` and `gen_bool`. The generator is xoshiro256**
//! seeded through SplitMix64 — not the ChaCha12 stream of the real
//! `StdRng`, but every consumer in this workspace only relies on
//! *determinism for a given seed*, never on a specific value stream.

/// Low-level source of randomness, mirroring `rand_core::RngCore`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64-expand the u64 into the full seed, as rand does.
        let mut sm = SplitMix64(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait StandardValue {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardValue for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardValue for u128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardValue for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardValue for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<const N: usize> StandardValue for [u8; N] {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

impl StandardValue for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let off = rng.next_u64() % span;
                ((self.start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = rng.next_u64() % (span + 1);
                ((lo as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

impl_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: StandardValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::from_rng(self) < p
    }

    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand`'s
    /// `StdRng`. Same seed → same stream, which is all the simulator needs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // xoshiro cannot run from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(va, (0..32).map(|_| c.gen()).collect::<Vec<u64>>());
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!((0..17u64).contains(&r.gen_range(0..17u64)));
            assert!((-5..=5i64).contains(&r.gen_range(-5..=5i64)));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_u8_inclusive_range_covers_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            match r.gen_range(0..=255u8) {
                0 => lo = true,
                255 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits={hits}");
    }
}
