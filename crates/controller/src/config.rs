//! Controller topology: how many channels, how many dies per channel, and
//! the per-die chip configuration.

use ipa_flash::DeviceConfig;
use serde::{Deserialize, Serialize};

/// Topology + per-die chip configuration of a multi-channel device.
///
/// The controller owns `channels × dies_per_channel` identical
/// [`ipa_flash::FlashChip`] instances. Die `d` sits on channel
/// `d % channels`, so consecutive die indices alternate channels — a
/// round-robin LBA stripe then spreads consecutive pages across channel
/// buses first, which is the layout that maximises transfer overlap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Independent channel buses.
    pub channels: u32,
    /// Dies sharing each channel bus.
    pub dies_per_channel: u32,
    /// Configuration of every die (geometry, mode, timing, noise). The
    /// fault-injection seed is re-derived per die so dies draw independent
    /// noise streams.
    pub chip: DeviceConfig,
    /// NCQ-style cap on posted host commands in flight per die. When the
    /// cap is reached, a host-submitted posted command blocks the
    /// submitting clock until the oldest in-flight command completes —
    /// the back-pressure real hosts see as a full submission queue.
    /// `None` leaves posted commands unbounded (the pre-cap behaviour).
    /// Firmware-internal work (background GC) is exempt: it is dispatched
    /// by the maintenance scheduler, which gates on die idleness instead.
    #[serde(default)]
    pub queue_cap: Option<usize>,
    /// Latency-QoS scheduling: let short host reads jump ahead of posted
    /// program/erase work still queued on their die, suspending in-flight
    /// erases (within the chip's resume bound) when one blocks the read.
    /// Off by default — FIFO dispatch is the reference timing model every
    /// parity wall pins.
    #[serde(default)]
    pub qos: bool,
}

impl ControllerConfig {
    /// A `channels × dies_per_channel` topology of identical dies.
    pub fn new(channels: u32, dies_per_channel: u32, chip: DeviceConfig) -> Self {
        assert!(channels > 0, "controller needs at least one channel");
        assert!(
            dies_per_channel > 0,
            "controller needs at least one die per channel"
        );
        ControllerConfig {
            channels,
            dies_per_channel,
            chip,
            queue_cap: None,
            qos: false,
        }
    }

    /// Cap posted host commands in flight per die (NCQ queue depth).
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "a zero queue cap would deadlock every program");
        self.queue_cap = Some(cap);
        self
    }

    /// Enable latency-QoS read scheduling (out-of-order reads +
    /// erase-suspend; see [`ControllerConfig::qos`]).
    pub fn with_qos(mut self) -> Self {
        self.qos = true;
        self
    }

    /// The degenerate 1 × 1 topology — a single chip behind the scheduler,
    /// the baseline every sweep compares against.
    pub fn single(chip: DeviceConfig) -> Self {
        ControllerConfig::new(1, 1, chip)
    }

    /// Total die count.
    #[inline]
    pub fn dies(&self) -> u32 {
        self.channels * self.dies_per_channel
    }

    /// Channel bus a die is wired to.
    #[inline]
    pub fn channel_of(&self, die: u32) -> u32 {
        die % self.channels
    }

    /// Per-die chip config: identical hardware, independent noise seed.
    pub fn chip_for_die(&self, die: u32) -> DeviceConfig {
        self.chip
            .clone()
            .with_seed(self.chip.seed ^ (die as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_accessors() {
        let c = ControllerConfig::new(4, 2, DeviceConfig::tiny());
        assert_eq!(c.dies(), 8);
        // Consecutive dies land on distinct channels.
        assert_eq!(c.channel_of(0), 0);
        assert_eq!(c.channel_of(1), 1);
        assert_eq!(c.channel_of(3), 3);
        assert_eq!(c.channel_of(4), 0);
        assert_eq!(c.channel_of(7), 3);
    }

    #[test]
    fn per_die_seeds_differ() {
        let c = ControllerConfig::new(2, 2, DeviceConfig::tiny());
        let seeds: Vec<u64> = (0..4).map(|d| c.chip_for_die(d).seed).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 4, "each die draws its own noise stream");
        assert_eq!(seeds[0], c.chip.seed, "die 0 keeps the base seed");
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let _ = ControllerConfig::new(0, 1, DeviceConfig::tiny());
    }

    #[test]
    fn queue_cap_defaults_off() {
        let c = ControllerConfig::new(1, 1, DeviceConfig::tiny());
        assert_eq!(c.queue_cap, None);
        assert_eq!(c.with_queue_cap(4).queue_cap, Some(4));
    }

    #[test]
    #[should_panic(expected = "zero queue cap")]
    fn zero_queue_cap_rejected() {
        let _ = ControllerConfig::new(1, 1, DeviceConfig::tiny()).with_queue_cap(0);
    }
}
