//! Scheduler-level counters: where commands waited and how deep the
//! per-die queues ran.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregate scheduler statistics across all channels and dies.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerStats {
    /// Commands dispatched (reads + programs + appends + erases).
    pub commands: u64,
    /// Synchronous read commands (host blocked until data arrived).
    pub reads: u64,
    /// Subset of `reads` issued inside a posted-read window (vectored
    /// host reads / read-ahead): the host did not block at issue; the
    /// completion time was surfaced through the queue instead.
    #[serde(default)]
    pub posted_reads: u64,
    /// Posted program/re-program/append commands.
    pub programs: u64,
    /// Posted erase commands.
    pub erases: u64,
    /// Total time commands spent queued before their die/channel was free.
    pub queue_wait_ns: u64,
    /// Total channel-bus occupancy (all channels summed).
    pub bus_busy_ns: u64,
    /// Deepest any single die queue got (posted commands in flight).
    pub max_queue_depth: usize,
    /// Explicit sync points (full clock merges) the host requested.
    pub sync_points: u64,
    /// Host submissions that hit a full NCQ queue and had to wait.
    pub backpressure_stalls: u64,
    /// Total time host clocks spent blocked on full NCQ queues.
    pub backpressure_wait_ns: u64,
    /// Erase count of the most-erased die (controller-level wear view).
    pub max_die_erases: u64,
    /// Erase count of the least-erased die.
    pub min_die_erases: u64,
    /// Total erase count of every die, indexed by die. Unlike the
    /// max/min extrema these are *counters*, so `delta_since` subtracts
    /// them per die — the window view a placement policy needs to see
    /// which die is wearing right now, not just which has worn the most
    /// since power-on.
    #[serde(default)]
    pub die_erases: Vec<u64>,
    /// QoS scheduler: host reads that started earlier than FIFO dispatch
    /// would have allowed (jumped pending posted work, or suspended an
    /// in-flight erase).
    #[serde(default)]
    pub reads_promoted: u64,
    /// QoS scheduler: erase-suspend commands issued so a host read could
    /// cut through an in-flight erase pulse.
    #[serde(default)]
    pub erase_suspends: u64,
    /// Posted-read completions the host abandoned via `forget` — retired
    /// from the completion horizon without ever being polled.
    #[serde(default)]
    pub forgotten_reads: u64,
    /// Posted reads surfaced to the queue whose completions have been
    /// neither polled nor forgotten yet (a gauge, not a counter; nonzero
    /// only while completions are in flight).
    #[serde(default)]
    pub posted_reads_outstanding: u64,
    /// Utilization of the busiest die in parts-per-million of elapsed
    /// simulated time (gauge, computed at snapshot time).
    #[serde(default)]
    pub die_util_ppm_max: u64,
    /// Utilization of the busiest channel bus in parts-per-million of
    /// elapsed simulated time (gauge, computed at snapshot time).
    #[serde(default)]
    pub chan_util_ppm_max: u64,
}

impl ControllerStats {
    /// Mean queueing delay per command, nanoseconds.
    pub fn mean_wait_ns(&self) -> f64 {
        if self.commands == 0 {
            0.0
        } else {
            self.queue_wait_ns as f64 / self.commands as f64
        }
    }

    /// Cross-die wear imbalance: max−min total erase count over all dies.
    /// Zero means perfectly balanced wear; a growing spread says the
    /// stripe (or the GC victim policy) is concentrating erases.
    pub fn wear_spread(&self) -> u64 {
        self.max_die_erases - self.min_die_erases
    }

    /// Counters accumulated since `prev` — the window attribution a
    /// multi-tenant harness needs to charge scheduler activity (queue
    /// waits, NCQ stalls, promotions) to the tenant that ran between two
    /// snapshots. Gauges and whole-device extrema (`max_queue_depth`,
    /// `max_die_erases`/`min_die_erases`, `posted_reads_outstanding`)
    /// keep their current values: they describe device state, not flow.
    pub fn delta_since(&self, prev: &ControllerStats) -> ControllerStats {
        ControllerStats {
            commands: self.commands - prev.commands,
            reads: self.reads - prev.reads,
            posted_reads: self.posted_reads - prev.posted_reads,
            programs: self.programs - prev.programs,
            erases: self.erases - prev.erases,
            queue_wait_ns: self.queue_wait_ns - prev.queue_wait_ns,
            bus_busy_ns: self.bus_busy_ns - prev.bus_busy_ns,
            max_queue_depth: self.max_queue_depth,
            sync_points: self.sync_points - prev.sync_points,
            backpressure_stalls: self.backpressure_stalls - prev.backpressure_stalls,
            backpressure_wait_ns: self.backpressure_wait_ns - prev.backpressure_wait_ns,
            max_die_erases: self.max_die_erases,
            min_die_erases: self.min_die_erases,
            die_erases: self
                .die_erases
                .iter()
                .enumerate()
                .map(|(die, &now)| {
                    // A `prev` snapshot from before the vector existed (or
                    // from a smaller device) contributes zero, not underflow.
                    now.saturating_sub(prev.die_erases.get(die).copied().unwrap_or(0))
                })
                .collect(),
            reads_promoted: self.reads_promoted - prev.reads_promoted,
            erase_suspends: self.erase_suspends - prev.erase_suspends,
            forgotten_reads: self.forgotten_reads - prev.forgotten_reads,
            posted_reads_outstanding: self.posted_reads_outstanding,
            die_util_ppm_max: self.die_util_ppm_max,
            chan_util_ppm_max: self.chan_util_ppm_max,
        }
    }

    /// Busiest-die utilization as a fraction of elapsed simulated time.
    pub fn die_util_max(&self) -> f64 {
        self.die_util_ppm_max as f64 / 1e6
    }

    /// Busiest-channel bus utilization as a fraction of elapsed time.
    pub fn chan_util_max(&self) -> f64 {
        self.chan_util_ppm_max as f64 / 1e6
    }
}

impl fmt::Display for ControllerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cmds={} (r={} p={} e={}) wait={:.3}ms bus={:.3}ms depth_max={} syncs={} \
             ncq_stalls={} ncq_wait={:.3}ms wear_spread={} promoted={} suspends={} \
             die_util_max={:.1}% chan_util_max={:.1}%",
            self.commands,
            self.reads,
            self.programs,
            self.erases,
            self.queue_wait_ns as f64 / 1e6,
            self.bus_busy_ns as f64 / 1e6,
            self.max_queue_depth,
            self.sync_points,
            self.backpressure_stalls,
            self.backpressure_wait_ns as f64 / 1e6,
            self.wear_spread(),
            self.reads_promoted,
            self.erase_suspends,
            self.die_util_max() * 100.0,
            self.chan_util_max() * 100.0
        )
    }
}

/// Per-die utilisation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DieStats {
    /// Commands executed on this die.
    pub commands: u64,
    /// Time the die's array was busy (sense/program/erase phases).
    pub busy_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_wait_handles_zero_commands() {
        assert_eq!(ControllerStats::default().mean_wait_ns(), 0.0);
        let s = ControllerStats {
            commands: 4,
            queue_wait_ns: 200,
            ..Default::default()
        };
        assert!((s.mean_wait_ns() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_informative() {
        let s = ControllerStats::default().to_string();
        assert!(s.contains("cmds=0"));
        assert!(s.contains("depth_max=0"));
        assert!(s.contains("ncq_stalls=0"));
        assert!(s.contains("wear_spread=0"));
        assert!(s.contains("die_util_max=0.0%"));
        assert!(s.contains("chan_util_max=0.0%"));
    }

    #[test]
    fn delta_subtracts_counters_and_keeps_gauges() {
        let prev = ControllerStats {
            commands: 10,
            reads: 4,
            queue_wait_ns: 100,
            max_queue_depth: 3,
            max_die_erases: 7,
            min_die_erases: 2,
            ..Default::default()
        };
        let now = ControllerStats {
            commands: 25,
            reads: 9,
            queue_wait_ns: 450,
            max_queue_depth: 5,
            max_die_erases: 9,
            min_die_erases: 3,
            backpressure_stalls: 2,
            ..Default::default()
        };
        let d = now.delta_since(&prev);
        assert_eq!(d.commands, 15);
        assert_eq!(d.reads, 5);
        assert_eq!(d.queue_wait_ns, 350);
        assert_eq!(d.backpressure_stalls, 2);
        assert_eq!(d.max_queue_depth, 5, "gauge keeps the current value");
        assert_eq!(d.wear_spread(), 6, "extrema stay whole-device");
    }

    #[test]
    fn delta_carries_shrinking_gauges_without_underflow() {
        // Regression: gauges can legally *decrease* across a window
        // (outstanding completions drained, utilization fell). A delta
        // that subtracted them would underflow-saturate into nonsense;
        // the window must simply report the newer point-in-time values.
        let prev = ControllerStats {
            commands: 50,
            posted_reads: 20,
            posted_reads_outstanding: 8,
            max_queue_depth: 6,
            die_util_ppm_max: 900_000,
            chan_util_ppm_max: 450_000,
            ..Default::default()
        };
        let now = ControllerStats {
            commands: 80,
            posted_reads: 30,
            posted_reads_outstanding: 1, // shrank: 7 completions consumed
            max_queue_depth: 6,
            die_util_ppm_max: 300_000, // device went quiet
            chan_util_ppm_max: 100_000,
            ..Default::default()
        };
        let d = now.delta_since(&prev);
        assert_eq!(d.posted_reads, 10, "counters still subtract");
        assert_eq!(
            d.posted_reads_outstanding, 1,
            "shrinking gauge carries the newer value, not 1 - 8"
        );
        assert_eq!(d.die_util_ppm_max, 300_000);
        assert_eq!(d.chan_util_ppm_max, 100_000);
        assert!((d.die_util_max() - 0.3).abs() < 1e-9);
        assert!((d.chan_util_max() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn delta_subtracts_per_die_erases() {
        // Regression: the window view used to expose only the max/min
        // extrema, so a placement policy could not tell *which* die was
        // wearing inside a window. Per-die erase counts are counters:
        // they subtract elementwise, with a short or missing `prev`
        // vector (older snapshot, smaller device) contributing zero.
        let prev = ControllerStats {
            max_die_erases: 7,
            min_die_erases: 2,
            die_erases: vec![7, 2, 4],
            ..Default::default()
        };
        let now = ControllerStats {
            max_die_erases: 12,
            min_die_erases: 3,
            die_erases: vec![12, 3, 4, 9],
            ..Default::default()
        };
        let d = now.delta_since(&prev);
        assert_eq!(d.die_erases, vec![5, 1, 0, 9]);
        assert_eq!(d.max_die_erases, 12, "extrema stay whole-device gauges");
        // And against a pre-field snapshot (empty vector), the delta is
        // the full current count, not an underflow.
        let old = ControllerStats::default();
        assert_eq!(now.delta_since(&old).die_erases, vec![12, 3, 4, 9]);
    }

    #[test]
    fn wear_spread_is_max_minus_min() {
        let s = ControllerStats {
            max_die_erases: 17,
            min_die_erases: 5,
            ..Default::default()
        };
        assert_eq!(s.wear_spread(), 12);
        assert_eq!(ControllerStats::default().wear_spread(), 0);
    }
}
