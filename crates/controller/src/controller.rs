//! The multi-channel controller: per-die command queues and a scheduler
//! that charges channel-bus and die-busy time.
//!
//! ## Timing model
//!
//! Every die keeps its own [`SimClock`] recording when its array becomes
//! idle; every channel bus keeps one recording when the bus is free. The
//! host-side clock (`host`) only advances when the host actually has to
//! wait:
//!
//! * **Reads are synchronous** — the host needs the data, so it pays
//!   queueing (die busy), sense, bus-contention and transfer time in full:
//!   `done = max(max(submit, die_free) + sense, chan_free) + transfer`.
//! * **Programs / re-programs / appends are posted** — the host enqueues
//!   the command and continues immediately (per-channel DMA engines move
//!   the payload; host-side CPU cost is the driver's `cpu_ns_per_tx`).
//!   The transfer occupies the channel bus starting when both the bus and
//!   the die are free, and the ISPP staircase then occupies the die. This
//!   is exactly where channel/die parallelism buys throughput: transfers
//!   on different channels and staircases on different dies all overlap.
//! * **Erases are fully posted** — no bus payload; the die is simply busy
//!   for `erase_ns` starting when it next falls idle.
//!
//! A later command on the *same* die queues behind the posted work (its
//! start time is clamped by the die clock), so a 1 × 1 topology reproduces
//! the old single-chip sequential walk exactly, while wider topologies
//! overlap. [`FlashController::sync`] max-merges every die clock back into
//! the host clock — the barrier used at result-consumption boundaries.
//!
//! State mutations are applied to the per-die [`FlashChip`] eagerly, in
//! submission order. Per-die FIFO dispatch means the logical outcome is
//! identical to the sequential single-chip execution — only *time* is
//! scheduled, which is what makes die-striped parity checks meaningful.
//!
//! ## Threading model
//!
//! The controller is `Send + Sync` and every operation takes `&self`:
//! callers share it through a plain [`Arc`]. Internally the state is
//! split so die-local traffic never serializes behind one big lock:
//!
//! * one `Mutex<DieState>` per die (chip + die clock + posted queue),
//! * one `Mutex<ChannelState>` per channel bus,
//! * an `AtomicU64` host clock (advanced with `fetch_max`, so concurrent
//!   submitters only ever push it forward),
//! * one `Mutex<Central>` for the cross-die odds and ends: window
//!   depths, latency records, the trace sink and aggregate stats.
//!
//! The lock order is **die → channel → central**; no path acquires a die
//! or channel lock while holding `central`, and each scheduled command
//! touches exactly one die, so operations on different dies proceed in
//! parallel and deadlock is impossible by construction. A single-threaded
//! caller sees bit-identical behaviour to the historical `RefCell`
//! controller — the parity walls in `tests/` hold across the refactor.
//! Under concurrent submitters the *logical* outcome on each die is still
//! its submission order (the die mutex serializes chip mutation), while
//! host-clock interleaving makes the timing view approximate — which is
//! exactly the trade the threaded driver documents.
//!
//! ## Latency QoS (opt-in: [`ControllerConfig::with_qos`])
//!
//! With QoS enabled the per-die queue becomes a *reorder window* for host
//! reads: a short read may start in an idle gap, jump pending posted
//! programs/erases (they are pushed out by exactly the read's occupancy),
//! or *suspend* an in-flight erase pulse — paying the chip's
//! `erase_suspend_ns` park cost and pushing the erase's completion out by
//! the read's run time, bounded by `erase_resume_limit` suspensions per
//! erase so an erase under constant read pressure still finishes. Only
//! *time* is reordered: chip state is mutated eagerly in submission order,
//! so read-your-writes holds by construction and
//! [`FlashController::sync`] remains a total barrier. Promotion applies to
//! host reads issued outside posted-read windows and to reads inside a
//! *priority* window ([`FlashController::begin_priority_reads`]) — bulk
//! vectored reads (read-ahead) stay FIFO so background streaming cannot
//! starve posted writes.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use ipa_flash::{
    FlashChip, FlashMode, FlashStats, Geometry, MultiPlaneWrite, Nand, PageImage, Ppa, Result,
    SimClock,
};
use ipa_trace::{CommandKind, CommandOrigin, LatencyHistogram, SharedSink, TraceEvent, TracePhase};

use crate::config::ControllerConfig;
use crate::stats::{ControllerStats, DieStats};

/// Poison-transparent lock: a panic mid-operation on another thread must
/// not wedge the simulator's observability paths (stats, sync) — the
/// state is plain data and every invariant is re-established before a
/// guard drops on the success paths.
fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// What kind of array work a posted command occupies the die with —
/// decides whether the QoS scheduler may suspend it mid-pulse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PostedKind {
    /// Program / re-program / append / multi-plane program.
    Program,
    /// Block erase — suspendable while `resumes_left > 0`.
    Erase,
}

/// A posted (not-yet-complete relative to host time) command on a die.
#[derive(Debug, Clone, Copy)]
struct Posted {
    /// When the command engages the die (bus start for transfers).
    start_ns: u64,
    done_ns: u64,
    kind: PostedKind,
    /// Erase-suspend budget left (always 0 for programs).
    resumes_left: u16,
    /// Trace identity: sequence id, command kind, and origin at
    /// submission — lets suspend/resume instants name the command they
    /// perturb. Zero-cost when no tracer is attached (plain `Copy` data).
    cmd: u64,
    ckind: CommandKind,
    origin: CommandOrigin,
}

/// A promotion slot the QoS scheduler found for a host read: where the
/// read may start and which queued work has to move for it.
struct QosSlot {
    /// Earliest instant the die array can attend to the read.
    start_ns: u64,
    /// First queue index that must be pushed out past the read.
    pending_from: usize,
    /// In-flight erase being suspended: (queue index, array time the
    /// erase still needs when it resumes).
    suspended: Option<(usize, u64)>,
}

struct DieState {
    chip: FlashChip,
    /// When the die's array next falls idle.
    clock: SimClock,
    /// Posted commands still in flight at host time.
    queue: VecDeque<Posted>,
    /// End of the latest QoS-promoted read on this die — promoted reads
    /// serialize among themselves even while the die clock is pushed out
    /// by the shifted posted tail.
    read_busy_ns: u64,
    stats: DieStats,
}

/// One channel bus: its free-time clock plus accumulated transfer time
/// (utilization telemetry), guarded together so a transfer charges both
/// under one acquisition.
struct ChannelState {
    clock: SimClock,
    busy_ns: u64,
}

/// The cross-die state: window nesting depths, host-read latency
/// records, the trace hook and the aggregate counters. Everything here
/// is touched once per command (a few integer ops), so one mutex is
/// cheap; the per-die heavy lifting (chip mutation, queue walks) never
/// holds it.
struct Central {
    /// Nesting depth of firmware-internal work (background maintenance).
    /// While positive, posted commands bypass the NCQ cap: the scheduler
    /// gates internal dispatch on die idleness, and charging firmware
    /// copy-backs to the host clock would corrupt the timing model.
    internal_depth: u32,
    /// Nesting depth of posted-read windows. While positive, host reads
    /// do *not* advance the host clock — every member of a vectored read
    /// issues from the same submission instant — and their completion
    /// times accumulate into `posted_read_horizon` instead, which the
    /// window's closer surfaces as the vector's completion time.
    posted_read_depth: u32,
    /// Latest completion inside the current posted-read window.
    posted_read_horizon: u64,
    /// Nesting depth of *priority* posted-read windows: reads inside are
    /// eligible for QoS promotion (plain posted windows stay FIFO).
    priority_read_depth: u32,
    /// Posted-read members surfaced to the queue whose completions the
    /// host has neither polled nor forgotten yet.
    outstanding_posted_reads: u64,
    /// Device-side latency (`done - submit`) of every host read, in issue
    /// order — the tail-latency SLO wall samples p99.9 from here. Empty
    /// when `bounded_read_lat` routes samples to the histogram instead.
    read_lat: Vec<u64>,
    /// Fixed-memory log2 sketch of every host-read latency; always
    /// maintained (a record is a handful of integer ops) so long soaks
    /// can drop the exact buffer without losing percentiles.
    read_hist: LatencyHistogram,
    /// When set, host-read latencies go only to `read_hist` — the
    /// bounded-memory mode for long soaks.
    bounded_read_lat: bool,
    /// Lifecycle-event sink; `None` (default) skips every emission.
    tracer: Option<SharedSink>,
    /// Origin override for every traced command (e.g. a dedicated WAL
    /// controller tags its traffic [`CommandOrigin::Wal`]); `None` derives
    /// the origin from the internal/priority/posted window depths.
    trace_origin: Option<CommandOrigin>,
    /// Per-controller command sequence number pairing trace phases.
    cmd_seq: u64,
    stats: ControllerStats,
}

impl Central {
    #[inline]
    fn emit(&self, ev: TraceEvent) {
        if let Some(t) = &self.tracer {
            lock(t).record(ev);
        }
    }

    /// The origin a command issued right now would be attributed to.
    fn current_origin(&self) -> CommandOrigin {
        if let Some(o) = self.trace_origin {
            o
        } else if self.internal_depth > 0 {
            CommandOrigin::Internal
        } else if self.priority_read_depth > 0 {
            CommandOrigin::HostPriority
        } else if self.posted_read_depth > 0 {
            CommandOrigin::ReadAhead
        } else {
            CommandOrigin::Host
        }
    }
}

/// The controller: `channels × dies_per_channel` chips behind a scheduler.
///
/// `Send + Sync`; the whole public surface takes `&self` — share it via
/// [`FlashController::shared`] and call from as many threads as you like.
/// See the module docs for the lock layout and ordering discipline.
pub struct FlashController {
    cfg: ControllerConfig,
    dies: Vec<Mutex<DieState>>,
    /// When each channel bus is next free (plus its busy telemetry).
    channels: Vec<Mutex<ChannelState>>,
    /// The host-side clock: submission timestamps come from here.
    /// Monotone advancement is `fetch_max`; only the explicit
    /// multi-client hook [`FlashController::set_host_ns`] rewinds it.
    host: AtomicU64,
    central: Mutex<Central>,
}

// The controller is shared across host threads by design; this fails to
// compile the moment a non-Sync field sneaks in.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FlashController>();
};

impl FlashController {
    pub fn new(cfg: ControllerConfig) -> Self {
        let dies = (0..cfg.dies())
            .map(|d| {
                Mutex::new(DieState {
                    chip: FlashChip::new(cfg.chip_for_die(d)),
                    clock: SimClock::new(),
                    queue: VecDeque::new(),
                    read_busy_ns: 0,
                    stats: DieStats::default(),
                })
            })
            .collect();
        let channels = (0..cfg.channels)
            .map(|_| {
                Mutex::new(ChannelState {
                    clock: SimClock::new(),
                    busy_ns: 0,
                })
            })
            .collect();
        FlashController {
            cfg,
            dies,
            channels,
            host: AtomicU64::new(0),
            central: Mutex::new(Central {
                internal_depth: 0,
                posted_read_depth: 0,
                posted_read_horizon: 0,
                priority_read_depth: 0,
                outstanding_posted_reads: 0,
                read_lat: Vec::new(),
                read_hist: LatencyHistogram::new(),
                bounded_read_lat: false,
                tracer: None,
                trace_origin: None,
                cmd_seq: 0,
                stats: ControllerStats::default(),
            }),
        }
    }

    /// Shared, handle-ready construction.
    pub fn shared(cfg: ControllerConfig) -> Arc<FlashController> {
        Arc::new(FlashController::new(cfg))
    }

    /// One [`DieHandle`] per die, in die-index order.
    pub fn handles(ctrl: &Arc<FlashController>) -> Vec<DieHandle> {
        let (dies, geometry, mode) = (ctrl.cfg.dies(), ctrl.cfg.chip.geometry, ctrl.cfg.chip.mode);
        (0..dies)
            .map(|die| DieHandle {
                ctrl: Arc::clone(ctrl),
                die,
                geometry,
                mode,
            })
            .collect()
    }

    #[inline]
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    #[inline]
    pub fn dies(&self) -> u32 {
        self.cfg.dies()
    }

    /// Scheduler counters, including the controller-level wear view
    /// (min/max total erase count across dies) computed at call time.
    /// Per-die totals come from [`FlashController::die_erase_count`], so
    /// the spread aggregates every plane's erases, not plane 0's.
    /// Locks are taken strictly sequentially (never nested), so this is
    /// safe to call concurrently with command submission — the snapshot
    /// is then approximate across dies, exact within each.
    pub fn stats(&self) -> ControllerStats {
        let mut s = {
            let c = lock(&self.central);
            let mut s = c.stats.clone();
            s.posted_reads_outstanding = c.outstanding_posted_reads;
            s
        };
        s.min_die_erases = u64::MAX;
        s.max_die_erases = 0;
        s.die_erases = Vec::with_capacity(self.dies.len());
        let mut max_die_busy = 0u64;
        let mut horizon = self.host_ns();
        for die in &self.dies {
            let d = lock(die);
            let e: u64 = d.chip.plane_erase_counts().iter().sum();
            s.min_die_erases = s.min_die_erases.min(e);
            s.max_die_erases = s.max_die_erases.max(e);
            s.die_erases.push(e);
            max_die_busy = max_die_busy.max(d.stats.busy_ns);
            horizon = horizon.max(d.clock.now_ns());
        }
        if self.dies.is_empty() {
            s.min_die_erases = 0;
        }
        let mut max_chan_busy = 0u64;
        for ch in &self.channels {
            max_chan_busy = max_chan_busy.max(lock(ch).busy_ns);
        }
        let elapsed = horizon as u128;
        let util_ppm = |busy_ns: u64| {
            (busy_ns as u128 * 1_000_000)
                .checked_div(elapsed)
                .map_or(0, |ppm| (ppm as u64).min(1_000_000))
        };
        if elapsed > 0 {
            s.die_util_ppm_max = util_ppm(max_die_busy);
            s.chan_util_ppm_max = util_ppm(max_chan_busy);
        }
        s
    }

    /// Total block erases a die has performed — the wear view the
    /// maintenance scheduler balances reclaim dispatch against.
    /// Aggregated across every plane of the die: a multi-plane die wears
    /// on all its planes, and a plane-0-only view would undercount (and
    /// mis-order wear-aware dispatch) the moment `planes > 1`.
    pub fn die_erase_count(&self, die: u32) -> u64 {
        lock(&self.dies[die as usize])
            .chip
            .plane_erase_counts()
            .iter()
            .sum()
    }

    /// Every die's total erase count, indexed by die — the whole-device
    /// wear vector a placement policy ranks when deciding which die to
    /// migrate hot data *off*. One lock per die, taken sequentially.
    pub fn die_erase_counts(&self) -> Vec<u64> {
        (0..self.dies.len() as u32)
            .map(|die| self.die_erase_count(die))
            .collect()
    }

    /// One die's erase count split by plane (telemetry for plane-local GC
    /// victim analysis).
    pub fn die_plane_erases(&self, die: u32) -> Vec<u64> {
        lock(&self.dies[die as usize])
            .chip
            .plane_erase_counts()
            .to_vec()
    }

    /// Is the die's array idle at the current host time? True exactly when
    /// a command submitted now would start immediately (no posted work
    /// still occupying the array) — the maintenance scheduler's dispatch
    /// predicate for background reclaim.
    pub fn die_idle(&self, die: u32) -> bool {
        lock(&self.dies[die as usize])
            .clock
            .is_idle_at(self.host_ns())
    }

    /// How far past the current host time a die stays busy (zero if idle).
    pub fn die_busy_ns(&self, die: u32) -> u64 {
        lock(&self.dies[die as usize])
            .clock
            .busy_ns_after(self.host_ns())
    }

    /// Enter firmware-internal mode: posted commands bypass the NCQ cap
    /// until the matching [`FlashController::end_internal`]. Nests.
    pub fn begin_internal(&self) {
        lock(&self.central).internal_depth += 1;
    }

    /// Leave firmware-internal mode (see [`FlashController::begin_internal`]).
    pub fn end_internal(&self) {
        let mut c = lock(&self.central);
        debug_assert!(c.internal_depth > 0, "unbalanced end_internal");
        c.internal_depth = c.internal_depth.saturating_sub(1);
    }

    /// Open a posted-read window: until the matching
    /// [`FlashController::end_posted_reads`], host reads are *posted* —
    /// they issue from the current submission instant without advancing
    /// the host clock, so the members of a vectored read overlap across
    /// dies and channels exactly like posted programs do. Nests.
    pub fn begin_posted_reads(&self) {
        let mut c = lock(&self.central);
        if c.posted_read_depth == 0 {
            c.posted_read_horizon = self.host_ns();
        }
        c.posted_read_depth += 1;
    }

    /// Close a posted-read window, surfacing the completion horizon: the
    /// device time at which the last read issued inside the window has
    /// its data ready. The host clock is untouched — the caller decides
    /// when (or whether) to wait, via the queue's `poll`.
    pub fn end_posted_reads(&self) -> u64 {
        let mut c = lock(&self.central);
        debug_assert!(c.posted_read_depth > 0, "unbalanced end_posted_reads");
        c.posted_read_depth = c.posted_read_depth.saturating_sub(1);
        c.posted_read_horizon
    }

    /// Open a *priority* posted-read window: reads inside are posted like
    /// [`FlashController::begin_posted_reads`] *and* eligible for QoS
    /// promotion (jumping queued posted work, suspending in-flight
    /// erases) when the controller runs with
    /// [`crate::ControllerConfig::with_qos`]. Nests.
    pub fn begin_priority_reads(&self) {
        let mut c = lock(&self.central);
        if c.posted_read_depth == 0 {
            c.posted_read_horizon = self.host_ns();
        }
        c.posted_read_depth += 1;
        c.priority_read_depth += 1;
    }

    /// Close a priority window; returns the completion horizon exactly
    /// like [`FlashController::end_posted_reads`].
    pub fn end_priority_reads(&self) -> u64 {
        let mut c = lock(&self.central);
        debug_assert!(c.priority_read_depth > 0, "unbalanced end_priority_reads");
        c.priority_read_depth = c.priority_read_depth.saturating_sub(1);
        debug_assert!(c.posted_read_depth > 0, "unbalanced end_posted_reads");
        c.posted_read_depth = c.posted_read_depth.saturating_sub(1);
        c.posted_read_horizon
    }

    /// A posted-read completion was consumed by the host's `poll`: its
    /// members leave the outstanding completion horizon.
    pub fn note_posted_reads_polled(&self, members: u64) {
        let mut c = lock(&self.central);
        c.outstanding_posted_reads = c.outstanding_posted_reads.saturating_sub(members);
    }

    /// A posted-read completion was abandoned via `forget`: retire its
    /// members from the outstanding completion horizon without polling,
    /// so the gauge cannot drift and later waits don't account for data
    /// nobody wants.
    pub fn retire_forgotten_reads(&self, members: u64) {
        let mut c = lock(&self.central);
        c.stats.forgotten_reads += members;
        c.outstanding_posted_reads = c.outstanding_posted_reads.saturating_sub(members);
    }

    /// Device-side latency (`done − submit`) of every host read so far,
    /// in issue order (a snapshot copy — the buffer lives behind the
    /// central lock now). Benchmarks slice this by index to window
    /// samples. Empty in bounded mode
    /// ([`Self::set_bounded_read_latencies`]) — use
    /// [`Self::read_latency_histogram`] there.
    pub fn read_latencies(&self) -> Vec<u64> {
        lock(&self.central).read_lat.clone()
    }

    /// Number of exact host-read latency samples recorded so far —
    /// cursor bookkeeping without copying the buffer.
    pub fn read_latency_count(&self) -> usize {
        lock(&self.central).read_lat.len()
    }

    /// Fixed-memory log2 histogram of every host-read latency so far.
    /// Always maintained; snapshot it and use
    /// [`LatencyHistogram::delta_since`] to window samples.
    pub fn read_latency_histogram(&self) -> LatencyHistogram {
        lock(&self.central).read_hist
    }

    /// Bounded-memory mode: stop appending host-read latencies to the
    /// exact sample buffer (the histogram keeps recording). Long soaks
    /// switch this on so memory stays constant; tests use the exact
    /// buffer as the percentile oracle.
    pub fn set_bounded_read_latencies(&self, bounded: bool) {
        let mut c = lock(&self.central);
        c.bounded_read_lat = bounded;
        if bounded {
            c.read_lat = Vec::new();
        }
    }

    /// Attach a lifecycle-event sink. Every command the controller
    /// schedules from now on emits `Submitted`/`Dispatched`/`Started`/
    /// `Completed` (plus `Suspended`/`Resumed`/`Promoted` instants from
    /// the QoS path). Recording never perturbs timing or state — a
    /// traced run is bit-identical to an untraced one.
    pub fn set_tracer(&self, sink: SharedSink) {
        lock(&self.central).tracer = Some(sink);
    }

    /// Detach the tracer (emission returns to a single dead branch).
    pub fn clear_tracer(&self) {
        lock(&self.central).tracer = None;
    }

    /// Is a tracer currently attached?
    pub fn tracing_enabled(&self) -> bool {
        lock(&self.central).tracer.is_some()
    }

    /// Force every traced command's origin (e.g. [`CommandOrigin::Wal`]
    /// on a dedicated log controller). `None` restores derivation from
    /// the internal/priority/posted window depths.
    pub fn set_trace_origin(&self, origin: Option<CommandOrigin>) {
        lock(&self.central).trace_origin = origin;
    }

    /// Emit a standalone instant event on a die's track at current host
    /// time — the maintenance scheduler marks reclaim dispatch this way.
    pub fn trace_instant(&self, die: u32, kind: CommandKind, phase: TracePhase) {
        let mut c = lock(&self.central);
        if c.tracer.is_none() {
            return;
        }
        c.cmd_seq += 1;
        let ev = TraceEvent {
            at_ns: self.host_ns(),
            cmd: c.cmd_seq,
            die,
            channel: self.cfg.channel_of(die),
            kind,
            origin: CommandOrigin::Internal,
            phase,
        };
        c.emit(ev);
    }

    /// Fraction of elapsed simulated time die `die`'s array spent busy
    /// (sense + staircase + erase pulse time over the merged horizon).
    pub fn die_busy_fraction(&self, die: u32) -> f64 {
        let elapsed = self.elapsed_ns();
        if elapsed == 0 {
            return 0.0;
        }
        let busy = lock(&self.dies[die as usize]).stats.busy_ns;
        (busy as f64 / elapsed as f64).min(1.0)
    }

    /// Fraction of elapsed simulated time channel `ch`'s bus spent
    /// transferring payload.
    pub fn channel_busy_fraction(&self, ch: u32) -> f64 {
        let elapsed = self.elapsed_ns();
        if elapsed == 0 {
            return 0.0;
        }
        let busy = lock(&self.channels[ch as usize]).busy_ns;
        (busy as f64 / elapsed as f64).min(1.0)
    }

    /// Per-die utilisation counters.
    pub fn die_stats(&self, die: u32) -> DieStats {
        lock(&self.dies[die as usize]).stats
    }

    /// Posted commands still in flight on a die at current host time.
    pub fn queue_depth(&self, die: u32) -> usize {
        lock(&self.dies[die as usize]).queue.len()
    }

    /// Raw chip counters of one die.
    pub fn die_flash_stats(&self, die: u32) -> FlashStats {
        *lock(&self.dies[die as usize]).chip.stats()
    }

    /// Raw chip counters summed across all dies.
    pub fn flash_stats(&self) -> FlashStats {
        self.dies.iter().fold(FlashStats::default(), |acc, d| {
            acc.merged(lock(d).chip.stats())
        })
    }

    /// Peak erase count across every die.
    pub fn max_erase_count(&self) -> u32 {
        self.dies
            .iter()
            .map(|d| lock(d).chip.max_erase_count())
            .max()
            .unwrap_or(0)
    }

    /// Simulated time if the host synced right now: the furthest-ahead of
    /// the host clock and every die clock. Non-mutating peek.
    pub fn elapsed_ns(&self) -> u64 {
        self.dies
            .iter()
            .map(|d| lock(d).clock.now_ns())
            .fold(self.host_ns(), u64::max)
    }

    /// Submission-side clock: the logical "now" commands are issued at.
    pub fn host_ns(&self) -> u64 {
        self.host.load(Ordering::SeqCst)
    }

    /// Reposition the submission-side clock — the multi-client hook. Each
    /// client thread has its own logical "now"; the driver sets it before
    /// issuing that client's commands, so two clients' reads overlap
    /// instead of serialising through a single host clock. Die and channel
    /// clocks are untouched (they are device state, not client state), so
    /// commands submitted "in the past" still queue behind busy hardware
    /// via `start = max(submit, die_free, chan_free)`. This is the one
    /// host-clock write that may rewind; concurrent threads should use
    /// [`FlashController::advance_host_ns`] instead.
    pub fn set_host_ns(&self, ns: u64) {
        self.host.store(ns, Ordering::SeqCst);
    }

    /// Monotone host-clock advance (`fetch_max`): safe under concurrent
    /// submitters, where a raw reposition could travel backwards past
    /// another thread's progress.
    pub fn advance_host_ns(&self, ns: u64) {
        self.host.fetch_max(ns, Ordering::SeqCst);
    }

    /// Barrier: wait for every posted command, max-merging all die clocks
    /// into the host clock. Returns the merged time.
    pub fn sync(&self) -> u64 {
        for die in &self.dies {
            let mut d = lock(die);
            self.host.fetch_max(d.clock.now_ns(), Ordering::SeqCst);
            d.queue.clear();
        }
        lock(&self.central).stats.sync_points += 1;
        self.host_ns()
    }

    /// Drop completed entries from a die's queue.
    fn retire_queue(d: &mut DieState, now: u64) {
        while d.queue.front().is_some_and(|p| p.done_ns <= now) {
            d.queue.pop_front();
        }
    }

    /// QoS policy: find a promotion slot for a host read submitted at
    /// `submit` on die `d`, or `None` to fall back to FIFO dispatch.
    /// Promotion applies when QoS is configured, the read is host-issued
    /// (not firmware-internal), it is either a plain blocking read or
    /// inside a priority window, and posted work is actually queued.
    /// Window depths arrive as a snapshot taken at submission — the die
    /// lock is held, central is not.
    fn qos_read_slot(
        &self,
        d: &mut DieState,
        submit: u64,
        internal_depth: u32,
        posted_read_depth: u32,
        priority_read_depth: u32,
    ) -> Option<QosSlot> {
        if !self.cfg.qos
            || internal_depth > 0
            || (posted_read_depth > 0 && priority_read_depth == 0)
        {
            return None;
        }
        Self::retire_queue(d, submit);
        // The instant the die array could first attend to this read:
        // promoted reads on one die serialize among themselves.
        let t0 = submit.max(d.read_busy_ns);
        let idx = d.queue.iter().position(|p| p.done_ns > t0)?;
        let e = d.queue[idx];
        if e.start_ns > t0 {
            // Idle gap before `e` engages the die: slot the read in; `e`
            // and everything behind it move out only if the read overruns
            // the gap.
            Some(QosSlot {
                start_ns: t0,
                pending_from: idx,
                suspended: None,
            })
        } else if e.kind == PostedKind::Erase && e.resumes_left > 0 {
            // Suspend the in-flight erase pulse: the array parks it in
            // `erase_suspend_ns`, serves the read, then resumes the
            // remaining pulse time once the read's occupancy ends.
            let park = self.cfg.chip.latency.erase_suspend_ns;
            Some(QosSlot {
                start_ns: t0 + park,
                pending_from: idx + 1,
                suspended: Some((idx, e.done_ns - t0)),
            })
        } else {
            // Unsuspendable in-flight command: wait for it alone and jump
            // everything queued behind it.
            Some(QosSlot {
                start_ns: e.done_ns,
                pending_from: idx + 1,
                suspended: None,
            })
        }
    }

    /// Apply a promotion: reschedule the suspended erase, push the
    /// pending posted tail out past the read, and keep the die clock on
    /// the new horizon. Chip state is untouched — promotion reorders
    /// time, never state. Returns whether an erase was suspended plus the
    /// suspend/resume instants to emit (buffered: the central lock — and
    /// with it the sink — is taken once at the end of the read).
    fn commit_qos_slot(
        &self,
        d: &mut DieState,
        die: u32,
        slot: &QosSlot,
        read_done: u64,
    ) -> (bool, Option<[TraceEvent; 2]>) {
        let mut floor = read_done;
        let mut suspended = false;
        let mut events = None;
        if let Some((idx, remaining)) = slot.suspended {
            suspended = true;
            d.chip.record_erase_suspend();
            let e = &mut d.queue[idx];
            e.resumes_left -= 1;
            e.done_ns = read_done + remaining;
            floor = e.done_ns;
            let e = d.queue[idx];
            let channel = self.cfg.channel_of(die);
            let instant = |at_ns, phase| TraceEvent {
                at_ns,
                cmd: e.cmd,
                die,
                channel,
                kind: e.ckind,
                origin: e.origin,
                phase,
            };
            events = Some([
                instant(slot.start_ns, TracePhase::Suspended),
                instant(read_done, TracePhase::Resumed),
            ]);
        }
        if let Some(first) = d.queue.get(slot.pending_from) {
            let delta = floor.saturating_sub(first.start_ns);
            if delta > 0 {
                for p in d.queue.iter_mut().skip(slot.pending_from) {
                    p.start_ns += delta;
                    p.done_ns += delta;
                }
            }
        }
        if let Some(back) = d.queue.back() {
            let end = back.done_ns;
            d.clock.advance_to(end);
        }
        d.clock.advance_to(floor);
        d.read_busy_ns = d.read_busy_ns.max(read_done);
        (suspended, events)
    }

    /// Read: sense on the die, then transfer over the channel. A host
    /// read (`sync_host`) blocks the host clock until the data arrives; a
    /// firmware copy-back read only occupies the die and channel.
    fn op_read(&self, die: u32, ppa: Ppa, sync_host: bool) -> Result<PageImage> {
        let g = self.cfg.chip.geometry;
        let bus = self.cfg.chip.latency.transfer_ns(g.page_size + g.oob_size);
        let kind = if sync_host {
            CommandKind::Read
        } else {
            CommandKind::CopybackRead
        };
        self.op_read_timed(die, bus, sync_host, kind, |chip| chip.read_page(ppa))
    }

    /// Multi-plane read: the planes sense concurrently under one command
    /// (a single die-busy sense window), then every page's image crosses
    /// the channel — one command in the scheduler's books.
    fn op_multi_read(&self, die: u32, ppas: &[Ppa], sync_host: bool) -> Result<Vec<PageImage>> {
        let g = self.cfg.chip.geometry;
        let bus = self
            .cfg
            .chip
            .latency
            .transfer_ns(ppas.len() * (g.page_size + g.oob_size));
        self.op_read_timed(die, bus, sync_host, CommandKind::MultiPlaneRead, |chip| {
            chip.multi_plane_read(ppas)
        })
    }

    /// Shared read scheduling: run `f` on the chip (it advances the chip
    /// clock by sense + transfer), then recover the sense portion and
    /// charge queueing, die-busy and channel-bus time around it.
    ///
    /// Lock walk: snapshot window depths (central, released), then die →
    /// channel (released) → central, in order. Everything the original
    /// single-lock controller read from shared state more than once per
    /// call is read exactly once here — single-threaded the two are
    /// bit-identical, because nothing else can write between the reads.
    fn op_read_timed<T>(
        &self,
        die: u32,
        bus: u64,
        sync_host: bool,
        kind: CommandKind,
        f: impl FnOnce(&mut FlashChip) -> Result<T>,
    ) -> Result<T> {
        let d = die as usize;
        let ch = self.cfg.channel_of(die) as usize;
        let (internal_depth, posted_read_depth, priority_read_depth) = {
            let c = lock(&self.central);
            (c.internal_depth, c.posted_read_depth, c.priority_read_depth)
        };
        let submit = self.host_ns();

        let mut die_g = lock(&self.dies[d]);
        let t0 = die_g.chip.elapsed_ns();
        let img = f(&mut die_g.chip)?;
        let dt = die_g.chip.elapsed_ns() - t0;
        let sense = dt.saturating_sub(bus);

        let fifo_start = submit.max(die_g.clock.now_ns());
        let slot = if sync_host {
            self.qos_read_slot(
                &mut die_g,
                submit,
                internal_depth,
                posted_read_depth,
                priority_read_depth,
            )
        } else {
            None
        };
        let start = slot.as_ref().map_or(fifo_start, |s| s.start_ns);
        let sense_end = start + sense;
        let (bus_start, done);
        {
            let mut chan = lock(&self.channels[ch]);
            if slot.is_some() {
                // A promoted read preempts the channel as well as the die:
                // queued posted DMA yields, its tail pushed out by exactly
                // the read's transfer time.
                bus_start = sense_end;
                done = bus_start + bus;
                let ch_free = chan.clock.now_ns();
                chan.clock.advance_to(done.max(ch_free + bus));
            } else {
                bus_start = sense_end.max(chan.clock.now_ns());
                done = bus_start + bus;
                chan.clock.advance_to(done);
            }
            chan.busy_ns += bus;
        }

        let mut promoted = false;
        let mut suspended = false;
        let mut suspend_events = None;
        if let Some(slot) = &slot {
            let (susp, evs) = self.commit_qos_slot(&mut die_g, die, slot, done);
            suspended = susp;
            suspend_events = evs;
            if start < fifo_start {
                promoted = true;
            }
        }
        die_g.clock.advance_to(done);
        if sync_host && posted_read_depth == 0 {
            self.host.fetch_max(done, Ordering::SeqCst);
        }
        Self::retire_queue(&mut die_g, self.host_ns());

        die_g.stats.commands += 1;
        die_g.stats.busy_ns += sense;

        // Tail bookkeeping under central — die lock still held (die →
        // central is the sanctioned order), sink reached only from here.
        let mut c = lock(&self.central);
        if suspended {
            c.stats.erase_suspends += 1;
        }
        if promoted {
            c.stats.reads_promoted += 1;
        }
        if sync_host {
            if internal_depth == 0 {
                let lat = done - submit;
                c.read_hist.record(lat);
                if !c.bounded_read_lat {
                    c.read_lat.push(lat);
                }
            }
            if posted_read_depth > 0 {
                // Posted-read window: the data is in flight; record when
                // it lands instead of stalling the submitting clock.
                c.posted_read_horizon = c.posted_read_horizon.max(done);
                c.stats.posted_reads += 1;
                c.outstanding_posted_reads += 1;
            }
        }
        c.stats.commands += 1;
        c.stats.reads += 1;
        c.stats.queue_wait_ns += (start - submit) + (bus_start - sense_end);
        c.stats.bus_busy_ns += bus;

        if c.tracer.is_some() {
            if let Some(evs) = suspend_events {
                for ev in evs {
                    c.emit(ev);
                }
            }
            c.cmd_seq += 1;
            let cmd = c.cmd_seq;
            let origin = if sync_host {
                c.current_origin()
            } else {
                // Copy-back reads are firmware work by definition.
                CommandOrigin::Internal
            };
            let base = TraceEvent {
                at_ns: submit,
                cmd,
                die,
                channel: ch as u32,
                kind,
                origin,
                phase: TracePhase::Submitted,
            };
            c.emit(base);
            if promoted {
                c.emit(TraceEvent {
                    at_ns: start,
                    phase: TracePhase::Promoted,
                    ..base
                });
            }
            c.emit(TraceEvent {
                at_ns: start,
                phase: TracePhase::Started,
                ..base
            });
            c.emit(TraceEvent {
                at_ns: done,
                phase: TracePhase::Completed,
                ..base
            });
        }
        Ok(img)
    }

    /// NCQ back-pressure: when the die's posted queue is at the cap, block
    /// the submitting (host) clock until the oldest in-flight command
    /// completes. Firmware-internal submissions are exempt — the
    /// maintenance scheduler gates them on die idleness instead. Returns
    /// the (stalls, waited-ns) to fold into the central stats later.
    fn apply_backpressure(&self, d: &mut DieState, internal_depth: u32) -> (u64, u64) {
        let Some(cap) = self.cfg.queue_cap else {
            return (0, 0);
        };
        if internal_depth > 0 {
            return (0, 0);
        }
        let (mut stalls, mut waited) = (0u64, 0u64);
        Self::retire_queue(d, self.host_ns());
        while d.queue.len() >= cap {
            let due = d.queue.front().expect("cap >= 1").done_ns;
            let wait = due.saturating_sub(self.host_ns());
            self.host.fetch_max(due, Ordering::SeqCst);
            stalls += 1;
            waited += wait;
            Self::retire_queue(d, self.host_ns());
        }
        (stalls, waited)
    }

    /// Posted command: optional bus transfer up front, then the array runs
    /// in the background. The host resumes once the bus is released.
    fn op_posted<F>(&self, die: u32, bus_bytes: usize, ckind: CommandKind, f: F) -> Result<()>
    where
        F: FnOnce(&mut FlashChip) -> Result<()>,
    {
        let is_erase = ckind.is_erase();
        let d = die as usize;
        let ch = self.cfg.channel_of(die) as usize;
        let internal_depth = lock(&self.central).internal_depth;

        let mut die_g = lock(&self.dies[d]);
        let t0 = die_g.chip.elapsed_ns();
        f(&mut die_g.chip)?;
        let dt = die_g.chip.elapsed_ns() - t0;
        // Only successful commands consume time; a full queue then blocks
        // the submitting clock before the command is timestamped.
        let (bp_stalls, bp_wait_ns) = self.apply_backpressure(&mut die_g, internal_depth);
        let submit = self.host_ns();

        let bus = self.cfg.chip.latency.transfer_ns(bus_bytes);
        let array = dt.saturating_sub(bus);

        let mut start = submit.max(die_g.clock.now_ns());
        if bus > 0 {
            let mut chan = lock(&self.channels[ch]);
            start = start.max(chan.clock.now_ns());
            chan.clock.advance_to(start + bus);
            chan.busy_ns += bus;
        }
        let bus_end = start + bus;
        let done = bus_end + array;

        die_g.clock.advance_to(done);
        Self::retire_queue(&mut die_g, submit);
        let resumes_left = if is_erase {
            die_g.chip.config().erase_resume_limit
        } else {
            0
        };

        die_g.stats.commands += 1;
        die_g.stats.busy_ns += array;

        // Sequence id + origin live behind central; the queue entry needs
        // both, so the push happens with die and central held (in order).
        let mut c = lock(&self.central);
        c.cmd_seq += 1;
        let cmd = c.cmd_seq;
        let origin = c.current_origin();
        die_g.queue.push_back(Posted {
            start_ns: start,
            done_ns: done,
            kind: if is_erase {
                PostedKind::Erase
            } else {
                PostedKind::Program
            },
            resumes_left,
            cmd,
            ckind,
            origin,
        });
        c.stats.max_queue_depth = c.stats.max_queue_depth.max(die_g.queue.len());
        c.stats.commands += 1;
        if is_erase {
            c.stats.erases += 1;
        } else {
            c.stats.programs += 1;
        }
        c.stats.queue_wait_ns += start - submit;
        if bus > 0 {
            c.stats.bus_busy_ns += bus;
        }
        c.stats.backpressure_stalls += bp_stalls;
        c.stats.backpressure_wait_ns += bp_wait_ns;

        if c.tracer.is_some() {
            let base = TraceEvent {
                at_ns: submit,
                cmd,
                die,
                channel: ch as u32,
                kind: ckind,
                origin,
                phase: TracePhase::Submitted,
            };
            c.emit(base);
            // Posted commands enter the die queue at submission time.
            c.emit(TraceEvent {
                at_ns: submit,
                phase: TracePhase::Dispatched,
                ..base
            });
            // Span times reflect the schedule at dispatch; a later QoS
            // promotion perturbs them, visible as suspend/resume instants.
            c.emit(TraceEvent {
                at_ns: start,
                phase: TracePhase::Started,
                ..base
            });
            c.emit(TraceEvent {
                at_ns: done,
                phase: TracePhase::Completed,
                ..base
            });
        }
        Ok(())
    }

    /// Run a closure against one die's chip (read-only view). The die
    /// lock is held for the duration — keep the closure small.
    pub fn with_chip<R>(&self, die: u32, f: impl FnOnce(&FlashChip) -> R) -> R {
        f(&lock(&self.dies[die as usize]).chip)
    }

    /// One die's completion horizon (its array-idle clock) — test and
    /// handle plumbing; not the merged host view.
    pub fn die_time_ns(&self, die: u32) -> u64 {
        lock(&self.dies[die as usize]).clock.now_ns()
    }
}

/// A handle giving one die's view of the controller. Implements
/// [`ipa_flash::Nand`], so an [`ipa_flash::FlashChip`] consumer — the FTL —
/// can be pointed at a scheduled die without code changes.
pub struct DieHandle {
    ctrl: Arc<FlashController>,
    die: u32,
    geometry: Geometry,
    mode: FlashMode,
}

impl DieHandle {
    /// Die index within the controller.
    #[inline]
    pub fn die(&self) -> u32 {
        self.die
    }

    /// The controller this handle schedules through.
    pub fn controller(&self) -> &Arc<FlashController> {
        &self.ctrl
    }
}

impl Nand for DieHandle {
    fn geometry(&self) -> Geometry {
        self.geometry
    }

    fn mode(&self) -> FlashMode {
        self.mode
    }

    fn flash_stats(&self) -> FlashStats {
        self.ctrl.die_flash_stats(self.die)
    }

    fn elapsed_ns(&self) -> u64 {
        // This die's completion horizon (not the merged host view).
        self.ctrl.die_time_ns(self.die)
    }

    fn nop_limit(&self, page: u32) -> u16 {
        self.ctrl.with_chip(self.die, |chip| chip.nop_limit(page))
    }

    fn is_erased(&self, ppa: Ppa) -> Result<bool> {
        self.ctrl.with_chip(self.die, |chip| chip.is_erased(ppa))
    }

    fn program_count(&self, ppa: Ppa) -> Result<u16> {
        self.ctrl
            .with_chip(self.die, |chip| chip.program_count(ppa))
    }

    fn erase_count(&self, block: u32) -> Result<u32> {
        self.ctrl
            .with_chip(self.die, |chip| chip.erase_count(block))
    }

    fn max_erase_count(&self) -> u32 {
        self.ctrl.with_chip(self.die, FlashChip::max_erase_count)
    }

    fn is_bad(&self, block: u32) -> bool {
        self.ctrl.with_chip(self.die, |chip| chip.is_bad(block))
    }

    fn peek_data(&self, ppa: Ppa) -> Option<Vec<u8>> {
        self.ctrl
            .with_chip(self.die, |chip| chip.peek_data(ppa).map(<[u8]>::to_vec))
    }

    fn peek_overwrite_compatible(&self, ppa: Ppa, new: &[u8]) -> Option<bool> {
        self.ctrl.with_chip(self.die, |chip| {
            chip.peek_data(ppa)
                .map(|old| old.iter().zip(new).all(|(&o, &n)| n & !o == 0))
        })
    }

    fn peek_oob(&self, ppa: Ppa) -> Option<Vec<u8>> {
        self.ctrl
            .with_chip(self.die, |chip| chip.peek_oob(ppa).map(<[u8]>::to_vec))
    }

    fn read_page(&mut self, ppa: Ppa) -> Result<PageImage> {
        self.ctrl.op_read(self.die, ppa, true)
    }

    fn copyback_read(&mut self, ppa: Ppa) -> Result<PageImage> {
        self.ctrl.op_read(self.die, ppa, false)
    }

    fn program_page(&mut self, ppa: Ppa, data: &[u8], oob: &[u8]) -> Result<()> {
        let bytes = data.len() + oob.len();
        self.ctrl
            .op_posted(self.die, bytes, CommandKind::Program, |chip| {
                chip.program_page(ppa, data, oob)
            })
    }

    fn reprogram_page(&mut self, ppa: Ppa, data: &[u8], oob: &[u8]) -> Result<()> {
        let bytes = data.len() + oob.len();
        self.ctrl
            .op_posted(self.die, bytes, CommandKind::Program, |chip| {
                chip.reprogram_page(ppa, data, oob)
            })
    }

    fn append_region(
        &mut self,
        ppa: Ppa,
        data_off: usize,
        bytes: &[u8],
        oob_off: usize,
        oob_bytes: &[u8],
    ) -> Result<()> {
        // IPA's bus win carries through the scheduler: only delta bytes
        // occupy the channel.
        let n = bytes.len() + oob_bytes.len();
        self.ctrl
            .op_posted(self.die, n, CommandKind::Append, |chip| {
                chip.append_region(ppa, data_off, bytes, oob_off, oob_bytes)
            })
    }

    fn erase_block(&mut self, block: u32) -> Result<()> {
        self.ctrl
            .op_posted(self.die, 0, CommandKind::Erase, |chip| {
                chip.erase_block(block)
            })
    }

    fn multi_plane_program(&mut self, pages: &[MultiPlaneWrite<'_>]) -> Result<()> {
        // One posted command, one die-busy window: the chip charges every
        // member's transfer plus a single staircase, and the scheduler
        // treats the whole thing as one program occupying the die.
        let bytes = pages.iter().map(|p| p.data.len() + p.oob.len()).sum();
        self.ctrl
            .op_posted(self.die, bytes, CommandKind::MultiPlaneProgram, |chip| {
                chip.multi_plane_program(pages)
            })
    }

    fn multi_plane_read(&mut self, ppas: &[Ppa]) -> Result<Vec<PageImage>> {
        self.ctrl.op_multi_read(self.die, ppas, true)
    }

    fn cache_program(&mut self, pages: &[MultiPlaneWrite<'_>]) -> Result<()> {
        // One posted command, one die-busy window: the chip pipelines each
        // member's transfer behind the previous member's pulse, so the
        // array time `op_posted` derives (chip time minus the serial bus
        // transfer) is exactly the un-overlapped pulse remainder.
        let bytes = pages.iter().map(|p| p.data.len() + p.oob.len()).sum();
        self.ctrl
            .op_posted(self.die, bytes, CommandKind::CachedProgram, |chip| {
                chip.cache_program(pages)
            })
    }

    fn multi_plane_erase(&mut self, blocks: &[u32]) -> Result<()> {
        // One posted erase, one die-busy window: the chip charges a
        // single pulse for the whole aligned group.
        self.ctrl
            .op_posted(self.die, 0, CommandKind::MultiPlaneErase, |chip| {
                chip.multi_plane_erase(blocks)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_flash::{DeviceConfig, DisturbRates};

    fn cfg(channels: u32, dies_per_channel: u32) -> ControllerConfig {
        ControllerConfig::new(
            channels,
            dies_per_channel,
            DeviceConfig::tiny()
                .with_mode(FlashMode::Slc)
                .with_disturb(DisturbRates::none()),
        )
    }

    fn page(h: &DieHandle, fill: u8) -> (Vec<u8>, Vec<u8>) {
        (
            vec![fill; h.geometry().page_size],
            vec![0xFF; h.geometry().oob_size],
        )
    }

    /// Time for one program when nothing else contends.
    fn solo_program_ns() -> u64 {
        let ctrl = FlashController::shared(cfg(1, 1));
        let mut h = FlashController::handles(&ctrl).pop().unwrap();
        let (data, oob) = page(&h, 0x00);
        h.program_page(Ppa::new(0, 0), &data, &oob).unwrap();
        ctrl.sync()
    }

    #[test]
    fn programs_on_distinct_dies_overlap() {
        let solo = solo_program_ns();
        let ctrl = FlashController::shared(cfg(4, 2));
        let mut handles = FlashController::handles(&ctrl);
        assert_eq!(handles.len(), 8);
        for h in handles.iter_mut() {
            let (data, oob) = page(h, 0x00);
            h.program_page(Ppa::new(0, 0), &data, &oob).unwrap();
        }
        let elapsed = ctrl.sync();
        assert!(
            elapsed < 8 * solo / 2,
            "8 programs across 8 dies must overlap: {elapsed} vs 8×{solo} sequential"
        );
        assert!(elapsed >= solo, "cannot beat a single program");
    }

    #[test]
    fn programs_on_one_die_serialize() {
        let solo = solo_program_ns();
        let ctrl = FlashController::shared(cfg(4, 2));
        let mut h = FlashController::handles(&ctrl).remove(0);
        let (data, oob) = page(&h, 0x00);
        for p in 0..4 {
            h.program_page(Ppa::new(0, p), &data, &oob).unwrap();
        }
        let elapsed = ctrl.sync();
        assert_eq!(
            elapsed,
            4 * solo,
            "same-die FIFO must match the sequential single-chip walk"
        );
    }

    #[test]
    fn shared_channel_serializes_transfers_only() {
        // Same die count, one channel vs dedicated channels: the shared
        // bus adds transfer serialization but staircases still overlap.
        let run = |channels: u32, dies_per_channel: u32| -> u64 {
            let ctrl = FlashController::shared(cfg(channels, dies_per_channel));
            let mut handles = FlashController::handles(&ctrl);
            for h in handles.iter_mut() {
                let (data, oob) = page(h, 0x00);
                h.program_page(Ppa::new(0, 0), &data, &oob).unwrap();
            }
            ctrl.sync()
        };
        let shared_bus = run(1, 4);
        let wide_bus = run(4, 1);
        let solo = solo_program_ns();
        assert!(wide_bus < shared_bus, "dedicated channels must be faster");
        assert!(
            shared_bus < 4 * solo,
            "even a shared channel overlaps the program staircases"
        );
    }

    #[test]
    fn read_after_posted_program_queues_behind_it() {
        let ctrl = FlashController::shared(cfg(2, 1));
        let mut handles = FlashController::handles(&ctrl);
        let (data, oob) = page(&handles[0], 0x00);
        handles[0]
            .program_page(Ppa::new(0, 0), &data, &oob)
            .unwrap();
        let host_after_post = ctrl.host_ns();
        let die_done = ctrl.die_time_ns(0);
        assert!(
            host_after_post < die_done,
            "posted program must leave the die busy past the host clock"
        );
        // The read must wait for the staircase to finish before sensing.
        handles[0].read_page(Ppa::new(0, 0)).unwrap();
        let after_read = ctrl.host_ns();
        assert!(after_read > die_done);
        assert!(ctrl.stats().queue_wait_ns > 0);
    }

    #[test]
    fn read_on_idle_die_skips_the_queue() {
        let ctrl = FlashController::shared(cfg(2, 1));
        let mut handles = FlashController::handles(&ctrl);
        // Seed die 1 with data while everything is idle, then sync.
        let (data, oob) = page(&handles[1], 0x00);
        handles[1]
            .program_page(Ppa::new(0, 0), &data, &oob)
            .unwrap();
        ctrl.sync();
        let t0 = ctrl.host_ns();

        // Busy die 0, then read die 1: the read must not pay die 0's wait.
        handles[0]
            .program_page(Ppa::new(0, 0), &data, &oob)
            .unwrap();
        handles[1].read_page(Ppa::new(0, 0)).unwrap();
        let read_done = ctrl.host_ns();
        let die0_done = ctrl.die_time_ns(0);
        assert!(
            read_done < die0_done,
            "read on the idle die completed at {read_done}, die 0 still busy to {die0_done} (t0 {t0})"
        );
    }

    #[test]
    fn sync_merges_die_clocks_and_drains_queues() {
        let ctrl = FlashController::shared(cfg(1, 2));
        let mut handles = FlashController::handles(&ctrl);
        handles[1].erase_block(3).unwrap();
        assert_eq!(ctrl.queue_depth(1), 1);
        assert!(ctrl.host_ns() < ctrl.die_time_ns(1));
        assert_eq!(ctrl.elapsed_ns(), ctrl.die_time_ns(1));
        let merged = ctrl.sync();
        assert_eq!(merged, ctrl.die_time_ns(1));
        assert_eq!(ctrl.host_ns(), merged);
        assert_eq!(ctrl.queue_depth(1), 0);
        assert_eq!(ctrl.stats().sync_points, 1);
        assert_eq!(ctrl.stats().erases, 1);
    }

    #[test]
    fn failed_commands_cost_nothing() {
        let ctrl = FlashController::shared(cfg(1, 1));
        let mut h = FlashController::handles(&ctrl).remove(0);
        assert!(h.read_page(Ppa::new(0, 0)).is_err()); // erased page
        assert_eq!(ctrl.elapsed_ns(), 0, "failed command must not consume time");
        assert_eq!(ctrl.stats().commands, 0);
    }

    #[test]
    fn deterministic_given_config() {
        let run = || -> (u64, ControllerStats) {
            let ctrl = FlashController::shared(cfg(2, 2));
            let mut handles = FlashController::handles(&ctrl);
            for (i, h) in handles.iter_mut().enumerate() {
                let (data, oob) = page(h, 0x00);
                h.program_page(Ppa::new(0, i as u32), &data, &oob).unwrap();
                h.read_page(Ppa::new(0, i as u32)).unwrap();
            }
            let t = ctrl.sync();
            let s = ctrl.stats();
            (t, s)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn queue_cap_backpressures_the_host() {
        let run = |cap: Option<usize>| -> (u64, ControllerStats) {
            let mut c = cfg(1, 1);
            if let Some(cap) = cap {
                c = c.with_queue_cap(cap);
            }
            let ctrl = FlashController::shared(c);
            let mut h = FlashController::handles(&ctrl).remove(0);
            let (data, oob) = page(&h, 0x00);
            for p in 0..6 {
                h.program_page(Ppa::new(0, p), &data, &oob).unwrap();
            }
            (ctrl.host_ns(), ctrl.stats())
        };
        let (free_host, free_stats) = run(None);
        let (capped_host, capped_stats) = run(Some(2));
        assert_eq!(free_stats.backpressure_stalls, 0);
        assert!(
            capped_stats.backpressure_stalls > 0,
            "six posted programs into a cap-2 queue must stall"
        );
        assert!(capped_stats.backpressure_wait_ns > 0);
        assert!(
            capped_host > free_host,
            "back-pressure must advance the submitting clock: {capped_host} vs {free_host}"
        );
        assert!(capped_stats.max_queue_depth <= 3, "cap bounds the queue");
        // State and total die time are unchanged — the cap reshapes who
        // waits, not what happens.
        assert_eq!(free_stats.programs, capped_stats.programs);
    }

    #[test]
    fn internal_mode_bypasses_the_cap() {
        let ctrl = FlashController::shared(cfg(1, 1).with_queue_cap(1));
        let mut h = FlashController::handles(&ctrl).remove(0);
        let (data, oob) = page(&h, 0x00);
        ctrl.begin_internal();
        for p in 0..4 {
            h.program_page(Ppa::new(0, p), &data, &oob).unwrap();
        }
        ctrl.end_internal();
        assert_eq!(
            ctrl.stats().backpressure_stalls,
            0,
            "firmware-internal posts must not charge the host clock"
        );
        assert_eq!(ctrl.host_ns(), 0);
        assert_eq!(
            ctrl.queue_depth(0),
            4,
            "internal work still occupies the die"
        );
    }

    #[test]
    fn die_idleness_tracks_posted_work() {
        let ctrl = FlashController::shared(cfg(2, 1));
        let mut handles = FlashController::handles(&ctrl);
        assert!(ctrl.die_idle(0) && ctrl.die_idle(1));
        let (data, oob) = page(&handles[0], 0x00);
        handles[0]
            .program_page(Ppa::new(0, 0), &data, &oob)
            .unwrap();
        assert!(!ctrl.die_idle(0), "posted program keeps die 0 busy");
        assert!(ctrl.die_busy_ns(0) > 0);
        assert!(ctrl.die_idle(1), "die 1 untouched");
        assert_eq!(ctrl.die_busy_ns(1), 0);
        ctrl.sync();
        assert!(ctrl.die_idle(0), "sync catches the host up");
    }

    fn plane_cfg(channels: u32, dies_per_channel: u32, planes: u32) -> ControllerConfig {
        ControllerConfig::new(
            channels,
            dies_per_channel,
            DeviceConfig::new(
                ipa_flash::Geometry::new(16, 8, 2048, 64).with_planes(planes),
                FlashMode::Slc,
            )
            .with_disturb(DisturbRates::none()),
        )
    }

    #[test]
    fn multi_plane_program_charges_one_die_busy_window() {
        // Two single programs on one die serialize two staircases; one
        // paired command runs one. The pair must finish well inside 2×.
        let solo_done = {
            let ctrl = FlashController::shared(plane_cfg(1, 1, 2));
            let mut h = FlashController::handles(&ctrl).remove(0);
            let (data, oob) = page(&h, 0x00);
            h.program_page(Ppa::new(0, 0), &data, &oob).unwrap();
            h.program_page(Ppa::new(1, 0), &data, &oob).unwrap();
            ctrl.sync()
        };
        let paired_done = {
            let ctrl = FlashController::shared(plane_cfg(1, 1, 2));
            let mut h = FlashController::handles(&ctrl).remove(0);
            let (data, oob) = page(&h, 0x00);
            let pages = [
                MultiPlaneWrite {
                    ppa: Ppa::new(0, 0),
                    data: &data,
                    oob: &oob,
                },
                MultiPlaneWrite {
                    ppa: Ppa::new(1, 0),
                    data: &data,
                    oob: &oob,
                },
            ];
            h.multi_plane_program(&pages).unwrap();
            assert_eq!(ctrl.stats().programs, 1, "one command in the books");
            assert_eq!(ctrl.queue_depth(0), 1, "one posted entry in flight");
            ctrl.sync()
        };
        assert!(
            2 * solo_done >= 3 * paired_done,
            "paired program must run one staircase: {paired_done} vs 2×solo {solo_done}"
        );
    }

    #[test]
    fn multi_plane_read_is_one_scheduled_command() {
        let ctrl = FlashController::shared(plane_cfg(1, 1, 2));
        let mut h = FlashController::handles(&ctrl).remove(0);
        let (data, oob) = page(&h, 0xA5);
        for b in [0, 1] {
            h.program_page(Ppa::new(b, 2), &data, &oob).unwrap();
        }
        ctrl.sync();
        let imgs = h
            .multi_plane_read(&[Ppa::new(0, 2), Ppa::new(1, 2)])
            .unwrap();
        assert_eq!(imgs.len(), 2);
        assert!(imgs.iter().all(|i| i.data == data));
        assert_eq!(ctrl.stats().reads, 1, "one read command");
        assert_eq!(ctrl.die_flash_stats(0).multi_plane_reads, 1);
        assert_eq!(ctrl.die_flash_stats(0).page_reads, 2);
        // Misalignment surfaces through the scheduler as the typed error.
        assert!(matches!(
            h.multi_plane_read(&[Ppa::new(0, 2), Ppa::new(1, 3)]),
            Err(ipa_flash::FlashError::MultiPlaneMismatch { .. })
        ));
    }

    #[test]
    fn posted_read_window_surfaces_the_completion_horizon() {
        let ctrl = FlashController::shared(cfg(2, 1));
        let mut handles = FlashController::handles(&ctrl);
        let (data, oob) = page(&handles[0], 0xA5);
        for h in handles.iter_mut() {
            h.program_page(Ppa::new(0, 0), &data, &oob).unwrap();
        }
        ctrl.sync();
        let t0 = ctrl.host_ns();

        // Two reads on two dies inside one window: neither advances the
        // host clock; both issue from the same instant and the horizon
        // reports when the later one lands.
        ctrl.begin_posted_reads();
        handles[0].read_page(Ppa::new(0, 0)).unwrap();
        handles[1].read_page(Ppa::new(0, 0)).unwrap();
        let horizon = ctrl.end_posted_reads();
        assert_eq!(ctrl.host_ns(), t0, "posted reads leave the host clock");
        assert!(horizon > t0, "the data lands later");
        assert_eq!(ctrl.stats().posted_reads, 2);
        assert_eq!(ctrl.stats().reads, 2, "posted reads are still reads");
        // Overlap: two dies, one window — well under two serial reads.
        let serial = {
            let ctrl2 = FlashController::shared(cfg(2, 1));
            let mut hs = FlashController::handles(&ctrl2);
            let (d2, o2) = page(&hs[0], 0xA5);
            for h in hs.iter_mut() {
                h.program_page(Ppa::new(0, 0), &d2, &o2).unwrap();
            }
            ctrl2.sync();
            let s0 = ctrl2.host_ns();
            hs[0].read_page(Ppa::new(0, 0)).unwrap();
            hs[1].read_page(Ppa::new(0, 0)).unwrap();
            ctrl2.host_ns() - s0
        };
        assert!(
            horizon - t0 < serial,
            "windowed reads must overlap: {} vs {serial} ns",
            horizon - t0
        );
    }

    #[test]
    fn die_wear_view_aggregates_erases_across_planes() {
        // Regression: erases landing on plane 1 (and 3) must reach
        // `die_erase_count` and the wear spread — a plane-0-only view
        // reports zero wear here.
        let ctrl = FlashController::shared(plane_cfg(2, 1, 4));
        let mut handles = FlashController::handles(&ctrl);
        handles[0].erase_block(1).unwrap(); // plane 1
        handles[0].erase_block(5).unwrap(); // plane 1
        handles[0].erase_block(3).unwrap(); // plane 3
        assert_eq!(
            ctrl.die_erase_count(0),
            3,
            "all planes' erases count toward the die"
        );
        assert_eq!(ctrl.die_plane_erases(0), vec![0, 2, 0, 1]);
        assert_eq!(ctrl.die_erase_count(1), 0);
        let s = ctrl.stats();
        assert_eq!(s.max_die_erases, 3);
        assert_eq!(s.min_die_erases, 0);
        assert_eq!(s.wear_spread(), 3);
    }

    #[test]
    fn wear_view_reports_min_max_die_erases() {
        let ctrl = FlashController::shared(cfg(2, 1));
        let mut handles = FlashController::handles(&ctrl);
        assert_eq!(ctrl.stats().wear_spread(), 0);
        handles[0].erase_block(0).unwrap();
        handles[0].erase_block(1).unwrap();
        handles[1].erase_block(0).unwrap();
        let s = ctrl.stats();
        assert_eq!(s.max_die_erases, 2);
        assert_eq!(s.min_die_erases, 1);
        assert_eq!(s.wear_spread(), 1);
        assert_eq!(ctrl.die_erase_count(0), 2);
        assert_eq!(ctrl.die_erase_count(1), 1);
    }

    #[test]
    fn qos_read_jumps_pending_programs() {
        // Four posted programs queue on one die; a blocking read then
        // arrives. FIFO pays the whole burst; QoS waits only for the
        // in-flight program and jumps the pending three.
        let run = |qos: bool| -> (u64, ControllerStats) {
            let mut c = cfg(1, 1);
            if qos {
                c = c.with_qos();
            }
            let ctrl = FlashController::shared(c);
            let mut h = FlashController::handles(&ctrl).remove(0);
            let (data, oob) = page(&h, 0x00);
            h.program_page(Ppa::new(0, 0), &data, &oob).unwrap();
            ctrl.sync();
            for p in 1..5 {
                h.program_page(Ppa::new(0, p), &data, &oob).unwrap();
            }
            let t0 = ctrl.host_ns();
            h.read_page(Ppa::new(0, 0)).unwrap();
            (ctrl.host_ns() - t0, ctrl.stats())
        };
        let (fifo, fifo_stats) = run(false);
        let (qos, qos_stats) = run(true);
        assert_eq!(fifo_stats.reads_promoted, 0, "FIFO never promotes");
        assert_eq!(qos_stats.reads_promoted, 1);
        assert!(
            2 * qos < fifo,
            "promoted read must beat the FIFO burst by 2×: {qos} vs {fifo} ns"
        );
        // The jumped programs still happen — pushed out, not dropped.
        assert_eq!(qos_stats.programs, fifo_stats.programs);
    }

    #[test]
    fn qos_read_suspends_an_inflight_erase() {
        let erase_ns = cfg(1, 1).chip.latency.erase_ns;
        let ctrl = FlashController::shared(cfg(1, 1).with_qos());
        let mut h = FlashController::handles(&ctrl).remove(0);
        let (data, oob) = page(&h, 0xA5);
        h.program_page(Ppa::new(1, 0), &data, &oob).unwrap();
        ctrl.sync();
        let t0 = ctrl.host_ns();

        h.erase_block(3).unwrap(); // in flight, 1.5 ms of array time
        h.read_page(Ppa::new(1, 0)).unwrap();
        let read_latency = ctrl.host_ns() - t0;
        assert!(
            read_latency < erase_ns / 4,
            "suspended erase must not gate the read: {read_latency} ns"
        );
        let s = ctrl.stats();
        assert_eq!(s.erase_suspends, 1);
        assert_eq!(s.reads_promoted, 1);
        assert_eq!(ctrl.die_flash_stats(0).erase_suspends, 1);
        // The erase still completes in full: its pulse remainder lands
        // after the read, pushing the die horizon past submit + erase.
        let merged = ctrl.sync();
        assert!(merged >= t0 + erase_ns + read_latency);
    }

    #[test]
    fn erase_suspend_resume_budget_is_bounded() {
        // tiny() carries erase_resume_limit = 2: the third and fourth
        // back-to-back reads must wait for the twice-suspended erase to
        // finish instead of suspending it again.
        let ctrl = FlashController::shared(cfg(1, 1).with_qos());
        let mut h = FlashController::handles(&ctrl).remove(0);
        let (data, oob) = page(&h, 0xA5);
        h.program_page(Ppa::new(1, 0), &data, &oob).unwrap();
        ctrl.sync();
        h.erase_block(3).unwrap();
        for _ in 0..4 {
            h.read_page(Ppa::new(1, 0)).unwrap();
        }
        let s = ctrl.stats();
        assert_eq!(
            s.erase_suspends, 2,
            "resume budget must bound suspensions: {s}"
        );
        assert_eq!(ctrl.die_flash_stats(0).erase_suspends, 2);
    }

    #[test]
    fn priority_window_promotes_posted_reads() {
        // Bulk posted-read windows stay FIFO under QoS; priority windows
        // promote. Same traffic, different window kind.
        let run = |priority: bool| -> (u64, ControllerStats) {
            let ctrl = FlashController::shared(cfg(1, 1).with_qos());
            let mut h = FlashController::handles(&ctrl).remove(0);
            let (data, oob) = page(&h, 0x3C);
            h.program_page(Ppa::new(0, 0), &data, &oob).unwrap();
            ctrl.sync();
            for p in 1..4 {
                h.program_page(Ppa::new(0, p), &data, &oob).unwrap();
            }
            let t0 = ctrl.host_ns();
            if priority {
                ctrl.begin_priority_reads();
            } else {
                ctrl.begin_posted_reads();
            }
            h.read_page(Ppa::new(0, 0)).unwrap();
            let horizon = if priority {
                ctrl.end_priority_reads()
            } else {
                ctrl.end_posted_reads()
            };
            (horizon - t0, ctrl.stats())
        };
        let (bulk, bulk_stats) = run(false);
        let (prio, prio_stats) = run(true);
        assert_eq!(bulk_stats.reads_promoted, 0, "bulk windows stay FIFO");
        assert_eq!(prio_stats.reads_promoted, 1);
        assert!(
            prio < bulk,
            "priority read must land before the posted burst drains: {prio} vs {bulk} ns"
        );
        assert_eq!(bulk_stats.posted_reads, 1);
        assert_eq!(prio_stats.posted_reads, 1, "priority reads are posted too");
    }

    #[test]
    fn forgotten_reads_retire_from_the_horizon() {
        let ctrl = FlashController::shared(cfg(2, 1));
        let mut handles = FlashController::handles(&ctrl);
        let (data, oob) = page(&handles[0], 0xA5);
        for h in handles.iter_mut() {
            h.program_page(Ppa::new(0, 0), &data, &oob).unwrap();
        }
        ctrl.sync();
        ctrl.begin_posted_reads();
        handles[0].read_page(Ppa::new(0, 0)).unwrap();
        handles[1].read_page(Ppa::new(0, 0)).unwrap();
        ctrl.end_posted_reads();
        assert_eq!(ctrl.stats().posted_reads_outstanding, 2);

        ctrl.note_posted_reads_polled(1);
        ctrl.retire_forgotten_reads(1);
        let s = ctrl.stats();
        assert_eq!(s.posted_reads_outstanding, 0, "gauge must not drift");
        assert_eq!(s.forgotten_reads, 1);
        assert_eq!(s.posted_reads, 2, "issue counter unchanged");
    }

    #[test]
    fn read_latencies_record_host_reads_only() {
        let ctrl = FlashController::shared(cfg(1, 1).with_qos());
        let mut h = FlashController::handles(&ctrl).remove(0);
        let (data, oob) = page(&h, 0x0F);
        h.program_page(Ppa::new(0, 0), &data, &oob).unwrap();
        ctrl.sync();
        h.read_page(Ppa::new(0, 0)).unwrap();
        ctrl.begin_internal();
        h.copyback_read(Ppa::new(0, 0)).unwrap();
        h.read_page(Ppa::new(0, 0)).unwrap();
        ctrl.end_internal();
        assert_eq!(
            ctrl.read_latency_count(),
            1,
            "copy-backs and firmware-internal reads are not host samples"
        );
        assert!(ctrl.read_latencies()[0] > 0);
    }

    #[test]
    fn state_is_identical_to_a_bare_chip() {
        // The scheduler reorders *time*, never state: a die driven through
        // the controller holds exactly the bytes a bare chip would.
        let dc = DeviceConfig::tiny()
            .with_mode(FlashMode::Slc)
            .with_disturb(DisturbRates::none());
        let mut bare = FlashChip::new(dc.clone());
        let ctrl = FlashController::shared(ControllerConfig::single(dc));
        let mut h = FlashController::handles(&ctrl).remove(0);

        let g = *bare.geometry();
        let oob = vec![0xFF; g.oob_size];
        let mut data = vec![0xFF; g.page_size];
        data[..32].fill(0x3C);
        for t in [&mut bare as &mut dyn Nand, &mut h as &mut dyn Nand] {
            t.program_page(Ppa::new(1, 0), &data, &oob).unwrap();
            t.append_region(Ppa::new(1, 0), 100, &[0x11; 8], 4, &[0x00; 2])
                .unwrap();
            t.erase_block(2).unwrap();
        }
        assert_eq!(
            bare.peek_data(Ppa::new(1, 0)).map(<[u8]>::to_vec),
            h.peek_data(Ppa::new(1, 0))
        );
        assert_eq!(
            Nand::flash_stats(&bare).page_reprograms,
            h.flash_stats().page_reprograms
        );
    }

    use ipa_trace::RingRecorder;

    fn attach_recorder(ctrl: &Arc<FlashController>) -> Arc<Mutex<RingRecorder>> {
        let rec = Arc::new(Mutex::new(RingRecorder::new(1 << 16)));
        ctrl.set_tracer(rec.clone());
        rec
    }

    #[test]
    fn tracing_records_command_lifecycles() {
        let ctrl = FlashController::shared(cfg(2, 1));
        let rec = attach_recorder(&ctrl);
        let mut handles = FlashController::handles(&ctrl);
        let (data, oob) = page(&handles[0], 0x5A);
        handles[0]
            .program_page(Ppa::new(0, 0), &data, &oob)
            .unwrap();
        ctrl.sync();
        handles[0].read_page(Ppa::new(0, 0)).unwrap();

        let events = lock(&rec).to_vec();
        let completed: Vec<_> = events
            .iter()
            .filter(|e| e.phase == TracePhase::Completed)
            .collect();
        assert_eq!(completed.len(), 2, "one program + one read completed");
        assert_eq!(completed[0].kind, CommandKind::Program);
        assert_eq!(completed[1].kind, CommandKind::Read);
        assert_eq!(completed[1].origin, CommandOrigin::Host);
        // The program (posted) also dispatched; the read did not.
        assert_eq!(
            events
                .iter()
                .filter(|e| e.phase == TracePhase::Dispatched)
                .count(),
            1
        );
        // Phases of one command share its id and are time-ordered.
        let read_cmd = completed[1].cmd;
        let read_evs: Vec<_> = events.iter().filter(|e| e.cmd == read_cmd).collect();
        assert_eq!(read_evs.len(), 3); // submitted, started, completed
        assert!(read_evs.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert_eq!(lock(&rec).dropped(), 0);
    }

    #[test]
    fn tracing_marks_promotions_and_suspend_resume_pairs() {
        let ctrl = FlashController::shared(cfg(1, 1).with_qos());
        let rec = attach_recorder(&ctrl);
        let mut h = FlashController::handles(&ctrl).remove(0);
        let (data, oob) = page(&h, 0xA5);
        h.program_page(Ppa::new(1, 0), &data, &oob).unwrap();
        ctrl.sync();
        h.erase_block(3).unwrap();
        h.read_page(Ppa::new(1, 0)).unwrap();

        let events = lock(&rec).to_vec();
        let stats = ctrl.stats();
        let count = |p: TracePhase| events.iter().filter(|e| e.phase == p).count() as u64;
        assert_eq!(count(TracePhase::Promoted), stats.reads_promoted);
        assert_eq!(count(TracePhase::Suspended), stats.erase_suspends);
        assert_eq!(count(TracePhase::Resumed), stats.erase_suspends);
        assert!(stats.erase_suspends > 0, "scenario must suspend the erase");
        // The suspend instants name the erase, not the read.
        let susp = events
            .iter()
            .find(|e| e.phase == TracePhase::Suspended)
            .unwrap();
        assert_eq!(susp.kind, CommandKind::Erase);
        let resume = events
            .iter()
            .find(|e| e.phase == TracePhase::Resumed)
            .unwrap();
        assert_eq!(resume.cmd, susp.cmd, "pair shares the erase's id");
        assert!(resume.at_ns >= susp.at_ns);
    }

    #[test]
    fn tracing_never_perturbs_timing_or_state() {
        let run = |traced: bool| -> (u64, ControllerStats) {
            let ctrl = FlashController::shared(cfg(2, 2).with_qos());
            if traced {
                attach_recorder(&ctrl);
            }
            let mut handles = FlashController::handles(&ctrl);
            for (i, h) in handles.iter_mut().enumerate() {
                let (data, oob) = page(h, 0x0F);
                h.program_page(Ppa::new(0, i as u32), &data, &oob).unwrap();
                h.read_page(Ppa::new(0, i as u32)).unwrap();
                h.erase_block(7).unwrap();
            }
            let t = ctrl.sync();
            (t, ctrl.stats())
        };
        assert_eq!(run(false), run(true), "tracing must be observation-only");
    }

    #[test]
    fn internal_and_window_origins_are_attributed() {
        let ctrl = FlashController::shared(cfg(1, 1));
        let rec = attach_recorder(&ctrl);
        let mut h = FlashController::handles(&ctrl).remove(0);
        let (data, oob) = page(&h, 0x3C);
        ctrl.begin_internal();
        h.program_page(Ppa::new(0, 0), &data, &oob).unwrap();
        ctrl.end_internal();
        ctrl.sync();
        ctrl.begin_posted_reads();
        h.read_page(Ppa::new(0, 0)).unwrap();
        ctrl.end_posted_reads();
        ctrl.set_trace_origin(Some(CommandOrigin::Wal));
        h.program_page(Ppa::new(0, 1), &data, &oob).unwrap();

        let events = lock(&rec).to_vec();
        let origin_of = |k: CommandKind, nth: usize| {
            events
                .iter()
                .filter(|e| e.kind == k && e.phase == TracePhase::Completed)
                .nth(nth)
                .unwrap()
                .origin
        };
        assert_eq!(origin_of(CommandKind::Program, 0), CommandOrigin::Internal);
        assert_eq!(origin_of(CommandKind::Read, 0), CommandOrigin::ReadAhead);
        assert_eq!(origin_of(CommandKind::Program, 1), CommandOrigin::Wal);
    }

    #[test]
    fn busy_fractions_are_sane_and_surface_in_stats() {
        let ctrl = FlashController::shared(cfg(2, 1));
        let mut handles = FlashController::handles(&ctrl);
        let (data, oob) = page(&handles[0], 0x00);
        for p in 0..4 {
            handles[0]
                .program_page(Ppa::new(0, p), &data, &oob)
                .unwrap();
        }
        ctrl.sync();
        let busy0 = ctrl.die_busy_fraction(0);
        assert!(busy0 > 0.0 && busy0 <= 1.0, "die 0 worked: {busy0}");
        assert_eq!(ctrl.die_busy_fraction(1), 0.0, "die 1 idle");
        let ch0 = ctrl.channel_busy_fraction(0);
        assert!(ch0 > 0.0 && ch0 < busy0, "bus busy but less than array");
        assert_eq!(ctrl.channel_busy_fraction(1), 0.0);
        let s = ctrl.stats();
        // Integer ppm and the f64 fraction agree to rounding.
        assert!((s.die_util_ppm_max as f64 - busy0 * 1e6).abs() <= 1.0);
        assert!((s.chan_util_ppm_max as f64 - ch0 * 1e6).abs() <= 1.0);
    }

    #[test]
    fn bounded_latency_mode_keeps_the_histogram_only() {
        let ctrl = FlashController::shared(cfg(1, 1));
        ctrl.set_bounded_read_latencies(true);
        let mut h = FlashController::handles(&ctrl).remove(0);
        let (data, oob) = page(&h, 0x11);
        h.program_page(Ppa::new(0, 0), &data, &oob).unwrap();
        ctrl.sync();
        for _ in 0..5 {
            h.read_page(Ppa::new(0, 0)).unwrap();
        }
        assert!(ctrl.read_latencies().is_empty(), "exact buffer disabled");
        let hist = ctrl.read_latency_histogram();
        assert_eq!(hist.count(), 5);
        assert!(hist.percentile(0.5) > 0);
    }

    #[test]
    fn concurrent_submitters_preserve_per_die_logical_state() {
        // The tentpole's contract: N threads hammering disjoint dies
        // through one shared controller leave exactly the bytes a serial
        // run would, and the monotone counters add up.
        use std::thread;
        let ctrl = FlashController::shared(cfg(2, 2));
        let handles = FlashController::handles(&ctrl);
        let per_die = 8u32;
        thread::scope(|s| {
            for mut h in handles {
                s.spawn(move || {
                    let (data, oob) = page(&h, 0x20 + h.die() as u8);
                    for p in 0..per_die {
                        h.program_page(Ppa::new(0, p), &data, &oob).unwrap();
                    }
                    for p in 0..per_die {
                        h.read_page(Ppa::new(0, p)).unwrap();
                    }
                });
            }
        });
        ctrl.sync();
        let s = ctrl.stats();
        assert_eq!(s.programs, 4 * per_die as u64);
        assert_eq!(s.reads, 4 * per_die as u64);
        for die in 0..4u32 {
            let fill = 0x20 + die as u8;
            let img = ctrl.with_chip(die, |chip| {
                chip.peek_data(Ppa::new(0, 0)).map(<[u8]>::to_vec)
            });
            assert_eq!(img.unwrap()[0], fill, "die {die} holds its own bytes");
        }
    }
}
