//! # `ipa-controller` — multi-channel flash controller
//!
//! Real SSDs get their throughput from package-level parallelism: several
//! channel buses, several dies per channel, commands in flight on all of
//! them at once. This crate adds that layer to the simulator:
//!
//! * [`ControllerConfig`] — the topology (`channels × dies_per_channel`)
//!   plus the per-die chip configuration.
//! * [`FlashController`] — owns the [`ipa_flash::FlashChip`] instances,
//!   keeps a per-die command queue and per-die/per-channel [`ipa_flash::SimClock`]s,
//!   and schedules reads (synchronous), programs (posted after the bus
//!   transfer) and erases (fully posted) against them. Clocks are
//!   max-merged at sync points.
//! * [`DieHandle`] — a per-die façade implementing [`ipa_flash::Nand`], so
//!   the FTL drives a scheduled die with the same code it uses for a bare
//!   chip.
//! * [`ControllerStats`] / [`DieStats`] — queue waits, bus occupancy and
//!   per-die utilisation.
//!
//! With a sink attached via [`FlashController::set_tracer`], every
//! scheduled command also emits `ipa_trace` lifecycle events (submit /
//! dispatch / start / complete, plus QoS suspend/resume/promotion
//! instants) — zero cost when no tracer is attached.
//!
//! The scheduler reorders *time*, never state: chip mutations happen
//! eagerly in submission order (FIFO per die), so logical outcomes are
//! identical to a single-chip run — the property the `sharded_parity`
//! suite checks end-to-end.

pub mod config;
pub mod controller;
pub mod stats;

pub use config::ControllerConfig;
pub use controller::{DieHandle, FlashController};
pub use stats::{ControllerStats, DieStats};

// Re-export the trace vocabulary callers need to drive the hooks.
pub use ipa_trace::{
    CommandKind, CommandOrigin, LatencyHistogram, RingRecorder, SharedSink, TraceEvent, TracePhase,
    TraceSink,
};
