//! Trace replay parity: the same `TraceEvent` stream driven through
//! `replay_ipa` and `replay_ipl` must report identical *logical* state —
//! same pages materialized, same updates accepted — no matter how
//! differently the two systems behave physically (delta appends vs
//! in-page log sectors). Both must also agree with the state the trace
//! itself implies, so a bug cannot hide by corrupting both sides the
//! same way.

use ipa_core::NmScheme;
use ipa_flash::{DeviceConfig, DisturbRates, FlashMode, Geometry};
use ipa_ipl::{replay_ipa, replay_ipl, IplConfig, LogicalState};
use ipa_storage::TraceEvent;
use ipa_testkit::synthetic_trace;

fn device() -> DeviceConfig {
    DeviceConfig::new(Geometry::new(128, 32, 2048, 64), FlashMode::PSlc)
        .with_disturb(DisturbRates::none())
}

fn assert_parity(trace: &[TraceEvent], scheme: NmScheme) {
    let (ipl, _) = replay_ipl(trace, device(), IplConfig::default()).unwrap();
    let (ipa, _) = replay_ipa(trace, device(), scheme).unwrap();
    let expect = LogicalState::expected_from(trace);
    assert_eq!(
        ipl.logical, expect,
        "IPL diverged from the trace's implied state"
    );
    assert_eq!(
        ipa.logical, expect,
        "IPA diverged from the trace's implied state"
    );
    assert_eq!(ipl.logical, ipa.logical, "IPL and IPA replay disagree");
}

#[test]
fn synthetic_oltp_trace_parity() {
    assert_parity(&synthetic_trace(24, 30), NmScheme::new(2, 4));
}

#[test]
fn parity_holds_across_schemes() {
    let trace = synthetic_trace(16, 20);
    for (n, m) in [(1, 1), (2, 4), (8, 8)] {
        assert_parity(&trace, NmScheme::new(n, m));
    }
}

#[test]
fn fetch_only_and_zero_byte_evictions_still_materialize() {
    // LBAs that are only fetched (or evicted clean) must appear in both
    // systems' logical state with zero updates.
    let trace = vec![
        TraceEvent::Fetch { lba: 3 },
        TraceEvent::Evict {
            lba: 5,
            changed_bytes: 0,
        },
        TraceEvent::Fetch { lba: 9 },
        TraceEvent::Evict {
            lba: 9,
            changed_bytes: 6,
        },
    ];
    let (ipl, _) = replay_ipl(&trace, device(), IplConfig::default()).unwrap();
    let (ipa, _) = replay_ipa(&trace, device(), NmScheme::new(2, 4)).unwrap();
    assert_eq!(ipl.logical, ipa.logical);
    assert_eq!(ipl.logical.pages.get(&3), Some(&0));
    assert_eq!(ipl.logical.pages.get(&9), Some(&1));
    // A zero-byte eviction of an untouched page materializes nothing in
    // either system.
    assert_eq!(ipl.logical.pages.get(&5), None);
    assert_eq!(LogicalState::expected_from(&trace).pages.get(&9), Some(&1));
}

#[test]
fn heavy_update_trace_parity() {
    // Push every page past its N×M budget repeatedly so IPA exercises the
    // out-of-place fallback path while IPL merges log regions — physical
    // divergence at its widest, logical parity must still hold.
    let mut trace = Vec::new();
    for round in 0..50u32 {
        for lba in 0..8u64 {
            trace.push(TraceEvent::Fetch { lba });
            trace.push(TraceEvent::Evict {
                lba,
                changed_bytes: 40 + round,
            });
        }
    }
    assert_parity(&trace, NmScheme::new(2, 4));
}
