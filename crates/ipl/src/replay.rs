//! Trace replay: the same fetch/evict stream driven through IPA and IPL.
//!
//! The paper's footnote 1: *"The IPL versus IPA comparison was done by
//! using the original IPL simulator and the Flash memory configuration
//! from \[8\] on traces recorded from running TPC-B/-C and TATP
//! benchmarks."* We do the same: [`ipa_storage::TraceEvent`] streams are
//! recorded by the buffer pool during a benchmark run and replayed here
//! against both systems on identically configured flash.

use std::collections::{BTreeMap, HashMap};

use ipa_core::{DeltaRecord, NmScheme, PageLayout};
use ipa_flash::{DeviceConfig, FlashStats};
use ipa_ftl::{BlockDevice, Ftl, FtlConfig, FtlError, NativeFlashDevice};
use ipa_storage::TraceEvent;

use crate::store::{IplConfig, IplStore};

/// Host-visible logical state after a replay: every LBA the system has
/// materialized, mapped to the number of update operations (non-zero
/// evictions) it accepted for that LBA.
///
/// This is the parity contract between the two replayers: IPA and IPL may
/// differ arbitrarily in *physical* behavior (delta appends vs log
/// sectors, erase schedules, GC), but fed the same trace they must report
/// identical logical state — same pages present, same updates applied.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LogicalState {
    /// `lba → accepted update count` for every materialized page.
    pub pages: BTreeMap<u64, u64>,
}

impl LogicalState {
    /// The logical state the trace itself implies: every touched LBA is
    /// present, with one update per non-zero-byte eviction. Both systems
    /// must agree with this (and therefore with each other).
    pub fn expected_from(trace: &[TraceEvent]) -> Self {
        let mut pages = BTreeMap::new();
        for ev in trace {
            match *ev {
                TraceEvent::Fetch { lba } => {
                    pages.entry(lba).or_insert(0);
                }
                TraceEvent::Evict { lba, changed_bytes } => {
                    // A clean eviction is a no-op in both systems: it
                    // neither materializes the page nor counts as an
                    // update.
                    if changed_bytes > 0 {
                        *pages.entry(lba).or_insert(0) += 1;
                    }
                }
            }
        }
        LogicalState { pages }
    }
}

/// Comparable outcome of one replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplaySummary {
    pub system: String,
    /// Flash page reads (data + any auxiliary reads).
    pub flash_reads: u64,
    /// Flash program operations (full pages, appends, log sectors).
    pub flash_writes: u64,
    /// Block erases.
    pub flash_erases: u64,
    /// Simulated device time, nanoseconds.
    pub elapsed_ns: u64,
    /// Logical pages with their accepted-update counts. Page *presence*
    /// is reported by the system itself (its own mapping); the per-page
    /// counts tally the update operations the system accepted without
    /// error during the replay.
    pub logical: LogicalState,
}

impl ReplaySummary {
    fn from_flash(system: &str, s: &FlashStats, elapsed_ns: u64) -> Self {
        ReplaySummary {
            system: system.to_string(),
            flash_reads: s.page_reads,
            flash_writes: s.total_programs(),
            flash_erases: s.block_erases,
            elapsed_ns,
            logical: LogicalState::default(),
        }
    }
}

/// Replay a trace against an IPL store.
pub fn replay_ipl(
    trace: &[TraceEvent],
    device: DeviceConfig,
    cfg: IplConfig,
) -> crate::store::Result<(ReplaySummary, crate::store::IplStats)> {
    let mut store = IplStore::new(device, cfg);
    let mut updates: BTreeMap<u64, u64> = BTreeMap::new();
    for ev in trace {
        match *ev {
            TraceEvent::Fetch { lba } => {
                store.read(lba)?;
                updates.entry(lba).or_insert(0);
            }
            TraceEvent::Evict { lba, changed_bytes } => {
                if changed_bytes == 0 {
                    continue;
                }
                store.update(lba, changed_bytes)?;
                // Eviction is a durability point in the source system; IPL
                // flushes the pending sector likewise.
                store.flush(lba)?;
                *updates.entry(lba).or_insert(0) += 1;
            }
        }
    }
    let mut summary = ReplaySummary::from_flash("IPL", store.flash_stats(), store.elapsed_ns());
    // Report logical state from the store's own mapping, not the trace.
    summary.logical.pages = updates
        .into_iter()
        .filter(|&(lba, _)| store.is_mapped(lba))
        .collect();
    Ok((summary, *store.stats()))
}

/// IPA-side replayer: drives the real FTL (`write_delta` path) with the
/// same trace, maintaining the per-page N×M budget the engine would.
pub struct IpaReplayer {
    ftl: Ftl,
    layout: PageLayout,
    records_on_flash: HashMap<u64, u16>,
}

impl IpaReplayer {
    pub fn new(device: DeviceConfig, scheme: NmScheme) -> Self {
        let layout = ipa_storage::standard_layout(device.geometry.page_size, scheme);
        let ftl = Ftl::new(
            ipa_flash::FlashChip::new(device),
            FtlConfig::ipa_native(layout),
        );
        IpaReplayer {
            ftl,
            layout,
            records_on_flash: HashMap::new(),
        }
    }

    fn blank_page(&self) -> Vec<u8> {
        vec![0xFF; self.layout.page_size]
    }

    fn ensure_mapped(&mut self, lba: u64) -> ipa_ftl::Result<()> {
        let mut probe = vec![0u8; self.layout.page_size];
        match self.ftl.read(lba, &mut probe) {
            Ok(()) => Ok(()),
            Err(FtlError::UnmappedLba(_)) => {
                self.ftl.write(lba, &self.blank_page())?;
                self.records_on_flash.insert(lba, 0);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    fn fetch(&mut self, lba: u64) -> ipa_ftl::Result<()> {
        self.ensure_mapped(lba)
    }

    fn evict(&mut self, lba: u64, changed: u32) -> ipa_ftl::Result<()> {
        if changed == 0 {
            return Ok(());
        }
        if !self.records_on_flash.contains_key(&lba) {
            self.ftl.write(lba, &self.blank_page())?;
            self.records_on_flash.insert(lba, 0);
            return Ok(());
        }
        let scheme = self.layout.scheme;
        let on_flash = self.records_on_flash[&lba];
        let needed = scheme.records_for(changed as usize) as u16;
        if needed + on_flash <= scheme.n {
            // Build the delta records the engine would and append them.
            let meta = vec![0u8; self.layout.meta_len()];
            let body = self.layout.body_range();
            let mut bytes = Vec::with_capacity(needed as usize * self.layout.record_size());
            let mut left = changed as usize;
            for _ in 0..needed {
                let take = left.min(scheme.m as usize);
                left -= take;
                let pairs: Vec<(u16, u8)> =
                    (0..take).map(|i| ((body.start + i) as u16, 0x00)).collect();
                bytes.extend_from_slice(
                    &DeltaRecord::new(pairs, meta.clone(), scheme).encode(&self.layout),
                );
            }
            match self
                .ftl
                .write_delta(lba, self.layout.record_offset(on_flash), &bytes)
            {
                Ok(()) => {
                    self.records_on_flash.insert(lba, on_flash + needed);
                    return Ok(());
                }
                Err(FtlError::InPlaceRejected { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        // Out-of-place rewrite with a clean delta area.
        self.ftl.write(lba, &self.blank_page())?;
        self.records_on_flash.insert(lba, 0);
        Ok(())
    }
}

/// Replay a trace against the IPA stack.
pub fn replay_ipa(
    trace: &[TraceEvent],
    device: DeviceConfig,
    scheme: NmScheme,
) -> ipa_ftl::Result<(ReplaySummary, ipa_ftl::DeviceStats)> {
    let mut r = IpaReplayer::new(device, scheme);
    let mut updates: BTreeMap<u64, u64> = BTreeMap::new();
    for ev in trace {
        match *ev {
            TraceEvent::Fetch { lba } => {
                r.fetch(lba)?;
                updates.entry(lba).or_insert(0);
            }
            TraceEvent::Evict { lba, changed_bytes } => {
                r.evict(lba, changed_bytes)?;
                if changed_bytes > 0 {
                    *updates.entry(lba).or_insert(0) += 1;
                }
            }
        }
    }
    // Snapshot physical counters before the logical-state probe below
    // issues any reads of its own.
    let mut summary =
        ReplaySummary::from_flash("IPA", &BlockDevice::flash_stats(&r.ftl), r.ftl.elapsed_ns());
    let stats = r.ftl.device_stats();
    // Report page presence from the FTL's own mapping, not the trace.
    // Only "never mapped" means absent; any other read failure (e.g. an
    // uncorrectable page) is data loss and must surface as an error, not
    // as a page quietly missing from the logical state.
    let mut probe = r.blank_page();
    for (lba, count) in updates {
        match r.ftl.read(lba, &mut probe) {
            Ok(()) => {
                summary.logical.pages.insert(lba, count);
            }
            Err(FtlError::UnmappedLba(_)) => {}
            Err(e) => return Err(e),
        }
    }
    Ok((summary, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_flash::{DisturbRates, FlashMode, Geometry};

    fn device() -> DeviceConfig {
        DeviceConfig::new(Geometry::new(128, 32, 2048, 64), FlashMode::PSlc)
            .with_disturb(DisturbRates::none())
    }

    /// A synthetic OLTP-ish trace: hot pages fetched and evicted with
    /// small deltas, 75 % reads.
    fn synthetic_trace(pages: u64, rounds: u32) -> Vec<TraceEvent> {
        let mut t = Vec::new();
        for round in 0..rounds {
            for lba in 0..pages {
                t.push(TraceEvent::Fetch { lba });
                t.push(TraceEvent::Fetch {
                    lba: (lba + 1) % pages,
                });
                t.push(TraceEvent::Fetch {
                    lba: (lba + 2) % pages,
                });
                t.push(TraceEvent::Evict {
                    lba,
                    changed_bytes: 4 + (round % 3),
                });
            }
        }
        t
    }

    #[test]
    fn ipa_beats_ipl_on_reads_and_writes() {
        let trace = synthetic_trace(24, 30);
        let (ipl, ipl_stats) = replay_ipl(&trace, device(), IplConfig::default()).unwrap();
        let (ipa, ipa_stats) = replay_ipa(&trace, device(), NmScheme::new(2, 4)).unwrap();

        // The paper: IPA adds no read overhead; IPL reads data + log pages.
        assert!(
            ipl.flash_reads > ipa.flash_reads,
            "IPL reads {} must exceed IPA reads {}",
            ipl.flash_reads,
            ipa.flash_reads
        );
        assert!(ipl_stats.log_page_reads > 0);
        assert!(ipa_stats.in_place_appends > 0);
        // 23–62 % fewer writes, 29–74 % fewer erases — directionally:
        assert!(
            ipa.flash_writes < ipl.flash_writes,
            "IPA writes {} vs IPL {}",
            ipa.flash_writes,
            ipl.flash_writes
        );
    }

    #[test]
    fn replays_are_deterministic() {
        let trace = synthetic_trace(12, 10);
        let a = replay_ipl(&trace, device(), IplConfig::default()).unwrap();
        let b = replay_ipl(&trace, device(), IplConfig::default()).unwrap();
        assert_eq!(a.0, b.0);
        let c = replay_ipa(&trace, device(), NmScheme::new(2, 4)).unwrap();
        let d = replay_ipa(&trace, device(), NmScheme::new(2, 4)).unwrap();
        assert_eq!(c.0, d.0);
    }

    #[test]
    fn zero_byte_evictions_are_free() {
        let trace = vec![
            TraceEvent::Evict {
                lba: 0,
                changed_bytes: 0,
            },
            TraceEvent::Evict {
                lba: 1,
                changed_bytes: 0,
            },
        ];
        let (ipl, _) = replay_ipl(&trace, device(), IplConfig::default()).unwrap();
        assert_eq!(ipl.flash_writes, 0);
        let (ipa, _) = replay_ipa(&trace, device(), NmScheme::new(2, 4)).unwrap();
        assert_eq!(ipa.flash_writes, 0);
    }
}
