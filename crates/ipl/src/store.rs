//! In-Page Logging (Lee & Moon, SIGMOD 2007) — the paper's closest
//! competitor, re-implemented over the simulated flash.
//!
//! IPL co-locates a **log region** with the data pages of every erase
//! block: updates are collected in an in-memory log buffer per block and
//! flushed as 512-byte log sectors into the block's reserved log pages.
//! Reading a page therefore requires the data page *plus* the block's log
//! pages (read amplification — the weakness IPA §1 contrasts itself
//! against). When a block's log region fills, the block is **merged**:
//! data + logs are rewritten into a fresh erase block and the old block is
//! erased.

use std::collections::{HashMap, VecDeque};

use ipa_flash::{DeviceConfig, FlashChip, FlashError, FlashStats, Ppa};

/// IPL configuration.
#[derive(Debug, Clone, Copy)]
pub struct IplConfig {
    /// Log pages reserved at the end of every erase block (the SIGMOD'07
    /// design reserves 1/16 of the block).
    pub log_pages_per_block: u32,
    /// Log sector granularity (flash supports sector-partial programming).
    pub sector_bytes: usize,
    /// Per-entry header bytes (page id + offset + length).
    pub entry_header: usize,
}

impl Default for IplConfig {
    fn default() -> Self {
        IplConfig {
            log_pages_per_block: 8,
            sector_bytes: 512,
            entry_header: 8,
        }
    }
}

/// IPL-level counters (chip-level counters live in [`IplStore::flash_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IplStats {
    /// Host-level page fetches.
    pub host_reads: u64,
    /// Host-level update flushes (evictions).
    pub host_updates: u64,
    /// Data-page reads issued to flash.
    pub data_page_reads: u64,
    /// Log-page reads issued to flash (the read amplification).
    pub log_page_reads: u64,
    /// Initial / merge data-page writes.
    pub data_page_writes: u64,
    /// Log-sector programs.
    pub log_sector_writes: u64,
    /// Block merges.
    pub merges: u64,
}

/// IPL errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IplError {
    Flash(FlashError),
    /// No free erase block left for allocation or merging.
    DeviceFull,
}

impl std::fmt::Display for IplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IplError::Flash(e) => write!(f, "flash error: {e}"),
            IplError::DeviceFull => write!(f, "IPL device full"),
        }
    }
}

impl std::error::Error for IplError {}

impl From<FlashError> for IplError {
    fn from(e: FlashError) -> Self {
        IplError::Flash(e)
    }
}

pub type Result<T> = std::result::Result<T, IplError>;

#[derive(Debug, Clone)]
struct BlockState {
    /// Data-page slots consumed.
    data_used: u32,
    /// Log sectors flushed to flash.
    sectors_flushed: u32,
    /// Bytes pending in the in-memory log buffer.
    mem_buf: usize,
    /// Data slot → owning LBA.
    lbas: Vec<Option<u64>>,
}

impl BlockState {
    fn new(data_pages: u32) -> Self {
        BlockState {
            data_used: 0,
            sectors_flushed: 0,
            mem_buf: 0,
            lbas: vec![None; data_pages as usize],
        }
    }
}

/// The IPL store.
pub struct IplStore {
    chip: FlashChip,
    cfg: IplConfig,
    blocks: Vec<BlockState>,
    free: VecDeque<u32>,
    open: Option<u32>,
    l2p: HashMap<u64, Ppa>,
    stats: IplStats,
    data_pages_per_block: u32,
    sectors_per_log_page: u32,
    /// Physical page indices usable in the device's mode (pSLC skips MSB
    /// pages); data slots map to the front, log pages to the tail.
    usable_pages: Vec<u32>,
}

impl IplStore {
    /// Build an IPL store. The chip gets a NOP override large enough for
    /// sector-partial programming of log pages (IPL's hardware assumption,
    /// same ISPP physics IPA relies on).
    pub fn new(mut device: DeviceConfig, cfg: IplConfig) -> Self {
        let spp = (device.geometry.page_size / cfg.sector_bytes) as u16;
        device.nop_override = Some(device.nop_override.unwrap_or(0).max(spp).max(1));
        let chip = FlashChip::new(device);
        let g = *chip.geometry();
        let mode = chip.mode();
        let usable_pages: Vec<u32> = (0..g.pages_per_block)
            .filter(|&p| mode.page_usable(p))
            .collect();
        assert!(
            cfg.log_pages_per_block < usable_pages.len() as u32,
            "log region larger than the usable block"
        );
        let data_pages = usable_pages.len() as u32 - cfg.log_pages_per_block;
        IplStore {
            blocks: (0..g.blocks).map(|_| BlockState::new(data_pages)).collect(),
            free: (0..g.blocks).collect(),
            open: None,
            l2p: HashMap::new(),
            stats: IplStats::default(),
            data_pages_per_block: data_pages,
            sectors_per_log_page: (g.page_size / cfg.sector_bytes) as u32,
            usable_pages,
            chip,
            cfg,
        }
    }

    pub fn stats(&self) -> &IplStats {
        &self.stats
    }

    pub fn flash_stats(&self) -> &FlashStats {
        self.chip.stats()
    }

    pub fn elapsed_ns(&self) -> u64 {
        self.chip.elapsed_ns()
    }

    /// Total log sector capacity of one block.
    fn log_capacity(&self) -> u32 {
        self.cfg.log_pages_per_block * self.sectors_per_log_page
    }

    /// Physical page index of the `i`-th log page in a block.
    fn log_page(&self, i: u32) -> u32 {
        self.usable_pages[(self.data_pages_per_block + i) as usize]
    }

    fn blank_page(&self) -> Vec<u8> {
        vec![0xFF; self.chip.geometry().page_size]
    }

    fn blank_oob(&self) -> Vec<u8> {
        vec![0xFF; self.chip.geometry().oob_size]
    }

    /// Is this LBA known to the store?
    pub fn is_mapped(&self, lba: u64) -> bool {
        self.l2p.contains_key(&lba)
    }

    /// Returns `(slot, physical address)` of the next free data slot.
    fn allocate_data_slot(&mut self) -> Result<(u32, Ppa)> {
        loop {
            if let Some(b) = self.open {
                let st = &mut self.blocks[b as usize];
                if st.data_used < self.data_pages_per_block {
                    let slot = st.data_used;
                    st.data_used += 1;
                    return Ok((slot, Ppa::new(b, self.usable_pages[slot as usize])));
                }
                self.open = None;
            }
            let b = self.free.pop_front().ok_or(IplError::DeviceFull)?;
            self.open = Some(b);
        }
    }

    /// First write of an LBA: place the data page.
    pub fn write_initial(&mut self, lba: u64) -> Result<()> {
        debug_assert!(!self.l2p.contains_key(&lba));
        let (slot, ppa) = self.allocate_data_slot()?;
        // Content is irrelevant to the accounting; program a marker page.
        let mut data = self.blank_page();
        data[0] = 0x00;
        self.chip.program_page(ppa, &data, &self.blank_oob())?;
        self.blocks[ppa.block as usize].lbas[slot as usize] = Some(lba);
        self.l2p.insert(lba, ppa);
        self.stats.data_page_writes += 1;
        Ok(())
    }

    /// Read a page: the data page plus every flushed log page of its block
    /// (IPL must scan the logs to reconstruct the current image).
    pub fn read(&mut self, lba: u64) -> Result<()> {
        let ppa = match self.l2p.get(&lba) {
            Some(p) => *p,
            None => {
                self.write_initial(lba)?;
                self.l2p[&lba]
            }
        };
        self.chip.read_page(ppa)?;
        self.stats.data_page_reads += 1;
        let flushed = self.blocks[ppa.block as usize].sectors_flushed;
        let log_pages = flushed.div_ceil(self.sectors_per_log_page);
        for i in 0..log_pages {
            let lp = Ppa::new(ppa.block, self.log_page(i));
            self.chip.read_page(lp)?;
            self.stats.log_page_reads += 1;
        }
        self.stats.host_reads += 1;
        Ok(())
    }

    /// Persist an update of `changed_bytes` net bytes on `lba`: append a
    /// log entry to the block's in-memory buffer, flushing sectors (and
    /// merging the block) as they fill.
    pub fn update(&mut self, lba: u64, changed_bytes: u32) -> Result<()> {
        if !self.l2p.contains_key(&lba) {
            self.write_initial(lba)?;
            return Ok(());
        }
        self.stats.host_updates += 1;
        let mut block = self.l2p[&lba].block;
        // Entries larger than a sector are split (structural rewrites).
        let mut remaining = self.cfg.entry_header + changed_bytes as usize * 3;
        while remaining > 0 {
            let take = remaining.min(self.cfg.sector_bytes);
            remaining -= take;
            self.blocks[block as usize].mem_buf += take;
            while self.blocks[block as usize].mem_buf >= self.cfg.sector_bytes {
                self.blocks[block as usize].mem_buf -= self.cfg.sector_bytes;
                block = self.flush_sector(block)?;
            }
        }
        Ok(())
    }

    /// Force out the partial in-memory sector of the block owning `lba`
    /// (commit boundary). Counts a sector write if anything was pending.
    pub fn flush(&mut self, lba: u64) -> Result<()> {
        let Some(ppa) = self.l2p.get(&lba).copied() else {
            return Ok(());
        };
        if self.blocks[ppa.block as usize].mem_buf > 0 {
            self.blocks[ppa.block as usize].mem_buf = 0;
            self.flush_sector(ppa.block)?;
        }
        Ok(())
    }

    /// Write one log sector; merges first when the log region is full.
    /// Returns the block the pages live in afterwards (merge relocates).
    fn flush_sector(&mut self, block: u32) -> Result<u32> {
        let block = if self.blocks[block as usize].sectors_flushed >= self.log_capacity() {
            self.merge(block)?
        } else {
            block
        };
        let st = &self.blocks[block as usize];
        let sector_idx = st.sectors_flushed;
        let log_page = self.log_page(sector_idx / self.sectors_per_log_page);
        let within = (sector_idx % self.sectors_per_log_page) as usize;
        let ppa = Ppa::new(block, log_page);
        let sector = vec![0xA5u8; self.cfg.sector_bytes];
        if within == 0 {
            // First sector of a fresh log page: full-page program with the
            // rest left erased.
            let mut page = self.blank_page();
            page[..self.cfg.sector_bytes].copy_from_slice(&sector);
            self.chip.program_page(ppa, &page, &self.blank_oob())?;
        } else {
            // Sector-partial program (same ISPP append physics as IPA).
            self.chip
                .append_region(ppa, within * self.cfg.sector_bytes, &sector, 0, &[])?;
        }
        self.blocks[block as usize].sectors_flushed += 1;
        self.stats.log_sector_writes += 1;
        Ok(block)
    }

    /// Merge a block: rewrite every valid data page into a fresh block,
    /// erase the old one. Costs reads of all data+log pages and writes of
    /// all data pages — IPL's GC.
    fn merge(&mut self, block: u32) -> Result<u32> {
        self.stats.merges += 1;
        let dst_block = self.free.pop_front().ok_or(IplError::DeviceFull)?;
        // Read every valid data page and all log pages.
        let st = self.blocks[block as usize].clone();
        for (slot, lba) in st.lbas.iter().enumerate() {
            if lba.is_some() {
                self.chip
                    .read_page(Ppa::new(block, self.usable_pages[slot]))?;
                self.stats.data_page_reads += 1;
            }
        }
        let log_pages = st.sectors_flushed.div_ceil(self.sectors_per_log_page);
        for i in 0..log_pages {
            self.chip.read_page(Ppa::new(block, self.log_page(i)))?;
            self.stats.log_page_reads += 1;
        }
        // Rewrite merged data pages into the destination block.
        let mut dst = BlockState::new(self.data_pages_per_block);
        for lba in st.lbas.iter().flatten() {
            let slot = dst.data_used;
            dst.data_used += 1;
            let ppa = Ppa::new(dst_block, self.usable_pages[slot as usize]);
            let mut data = self.blank_page();
            data[0] = 0x00;
            self.chip.program_page(ppa, &data, &self.blank_oob())?;
            self.stats.data_page_writes += 1;
            dst.lbas[slot as usize] = Some(*lba);
            self.l2p.insert(*lba, ppa);
        }
        dst.mem_buf = st.mem_buf; // pending in-memory entries follow the data
        self.chip.erase_block(block)?;
        self.blocks[block as usize] = BlockState::new(self.data_pages_per_block);
        // If the allocation target was merged, its data (and remaining
        // free slots) now live in the destination block — keep filling
        // there instead of stranding the partial block.
        if self.open == Some(block) {
            self.open = Some(dst_block);
        }
        self.free.push_back(block);
        self.blocks[dst_block as usize] = dst;
        Ok(dst_block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_flash::{DisturbRates, FlashMode, Geometry};

    fn store() -> IplStore {
        let dc = DeviceConfig::new(Geometry::new(64, 16, 2048, 64), FlashMode::Slc)
            .with_disturb(DisturbRates::none());
        IplStore::new(
            dc,
            IplConfig {
                log_pages_per_block: 2,
                sector_bytes: 512,
                entry_header: 8,
            },
        )
    }

    #[test]
    fn initial_write_then_read() {
        let mut s = store();
        s.write_initial(5).unwrap();
        s.read(5).unwrap();
        assert_eq!(s.stats().data_page_writes, 1);
        assert_eq!(s.stats().data_page_reads, 1);
        assert_eq!(s.stats().log_page_reads, 0, "no logs yet");
    }

    #[test]
    fn small_updates_accumulate_in_memory() {
        let mut s = store();
        s.write_initial(1).unwrap();
        // 10 changed bytes ⇒ 8 + 30 = 38 buffered bytes; far below a sector.
        s.update(1, 10).unwrap();
        assert_eq!(s.stats().log_sector_writes, 0);
        // Enough updates to cross the 512-byte sector.
        for _ in 0..20 {
            s.update(1, 10).unwrap();
        }
        assert!(s.stats().log_sector_writes >= 1);
    }

    #[test]
    fn reads_pay_for_flushed_logs() {
        let mut s = store();
        s.write_initial(1).unwrap();
        for _ in 0..30 {
            s.update(1, 10).unwrap();
        }
        let before = s.stats().log_page_reads;
        s.read(1).unwrap();
        assert!(
            s.stats().log_page_reads > before,
            "reads must scan the log pages"
        );
    }

    #[test]
    fn log_overflow_triggers_merge() {
        let mut s = store();
        s.write_initial(1).unwrap();
        // Log capacity: 2 pages × 4 sectors = 8 sectors = 4096 log bytes.
        // Each update buffers 38 bytes ⇒ ~110 updates to overflow.
        for _ in 0..200 {
            s.update(1, 10).unwrap();
        }
        assert!(s.stats().merges >= 1, "log region must have merged");
        assert!(s.flash_stats().block_erases >= 1);
        // Data still mapped and readable after relocation.
        s.read(1).unwrap();
    }

    #[test]
    fn flush_writes_partial_sector() {
        let mut s = store();
        s.write_initial(1).unwrap();
        s.update(1, 4).unwrap();
        assert_eq!(s.stats().log_sector_writes, 0);
        s.flush(1).unwrap();
        assert_eq!(s.stats().log_sector_writes, 1);
    }

    #[test]
    fn merge_preserves_all_lbas() {
        let mut s = store();
        for lba in 0..14u64 {
            s.write_initial(lba).unwrap();
        }
        for round in 0..40 {
            for lba in 0..14u64 {
                s.update(lba, 12 + round % 3).unwrap();
            }
        }
        assert!(s.stats().merges > 0);
        for lba in 0..14u64 {
            assert!(s.is_mapped(lba), "lba {lba} lost in merge");
            s.read(lba).unwrap();
        }
    }
}
