//! # `ipa-ipl` — the In-Page Logging baseline
//!
//! Re-implementation of IPL (Lee & Moon, *Design of Flash-Based DBMS: An
//! In-Page Logging Approach*, SIGMOD 2007), the paper's closest competitor:
//!
//! * [`IplStore`] — per-erase-block log regions, in-memory log buffers,
//!   sector-granular log flushes and block merges on log overflow.
//! * [`replay_ipl`] / [`replay_ipa`] — trace-driven comparison harness:
//!   the same [`ipa_storage::TraceEvent`] stream (recorded by the buffer
//!   pool during a benchmark run) drives both systems on identically
//!   configured flash, reproducing the paper's footnote-1 methodology.

pub mod replay;
pub mod store;

pub use replay::{replay_ipa, replay_ipl, IpaReplayer, LogicalState, ReplaySummary};
pub use store::{IplConfig, IplError, IplStats, IplStore};
