//! Seeded operation streams and the engine-vs-model harness.
//!
//! [`ModelHarness`] drives a [`StorageEngine`] and an in-memory
//! `HashMap<Rid, Option<Vec<u8>>>` model in lockstep with a reproducible
//! random mix of inserts, small field updates, whole-row updates, deletes,
//! aborted updates and read-verifies — the operation distribution of the
//! root `model_check` suite. The harness is strategy-agnostic: the same
//! seed produces the same logical operation stream no matter which write
//! path the engine is configured with, which is what makes cross-strategy
//! equivalence checks meaningful.

use std::collections::HashMap;

use ipa_storage::{Rid, StorageEngine, StorageError, TableId, TraceEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Row length used by the model harness (matches `fixtures::heap_engine`).
pub const ROW: usize = 48;

/// Engine + in-memory model driven in lockstep by a seeded op stream.
pub struct ModelHarness {
    rng: StdRng,
    /// `Some(row)` = live row with expected bytes; `None` = deleted.
    pub model: HashMap<Rid, Option<Vec<u8>>>,
    live: Vec<Rid>,
    label: String,
}

impl ModelHarness {
    pub fn new(seed: u64, label: impl Into<String>) -> Self {
        ModelHarness {
            rng: StdRng::seed_from_u64(seed),
            model: HashMap::new(),
            live: Vec::new(),
            label: label.into(),
        }
    }

    /// Apply `ops` random operations, flushing the pool every 50 steps so
    /// pages continuously round-trip through flash.
    pub fn run(&mut self, e: &mut StorageEngine, t: TableId, ops: usize) {
        for step in 0..ops {
            self.step(e, t, step);
            if step % 50 == 49 {
                e.flush_all().unwrap();
            }
        }
    }

    /// One random operation. The mix: 25 % insert, 45 % small field
    /// update, 10 % whole-row update, 5 % delete, 5 % aborted update,
    /// 10 % read-verify.
    pub fn step(&mut self, e: &mut StorageEngine, t: TableId, step: usize) {
        let label = &self.label;
        match self.rng.gen_range(0..100u32) {
            0..=24 => {
                let mut row = vec![0u8; ROW];
                self.rng.fill(&mut row[..]);
                let tx = e.begin();
                match e.insert(tx, t, &row) {
                    Ok(rid) => {
                        e.commit(tx).unwrap();
                        self.model.insert(rid, Some(row));
                        self.live.push(rid);
                    }
                    Err(StorageError::TableFull(_)) => {
                        e.commit(tx).unwrap();
                    }
                    Err(err) => panic!("{label} step {step}: insert: {err}"),
                }
            }
            25..=69 if !self.live.is_empty() => {
                let rid = self.live[self.rng.gen_range(0..self.live.len())];
                let off = self.rng.gen_range(0..ROW - 4);
                let bytes: [u8; 3] = self.rng.gen();
                let tx = e.begin();
                e.update_field(tx, t, rid, off, &bytes).unwrap();
                e.commit(tx).unwrap();
                let m = self.model.get_mut(&rid).unwrap().as_mut().unwrap();
                m[off..off + 3].copy_from_slice(&bytes);
            }
            70..=79 if !self.live.is_empty() => {
                let rid = self.live[self.rng.gen_range(0..self.live.len())];
                let mut row = vec![0u8; ROW];
                self.rng.fill(&mut row[..]);
                let tx = e.begin();
                e.update_row(tx, t, rid, &row).unwrap();
                e.commit(tx).unwrap();
                self.model.insert(rid, Some(row));
            }
            80..=84 if !self.live.is_empty() => {
                let idx = self.rng.gen_range(0..self.live.len());
                let rid = self.live.swap_remove(idx);
                let tx = e.begin();
                e.delete(tx, t, rid).unwrap();
                e.commit(tx).unwrap();
                self.model.insert(rid, None);
            }
            85..=89 if !self.live.is_empty() => {
                let rid = self.live[self.rng.gen_range(0..self.live.len())];
                let tx = e.begin();
                e.update_field(tx, t, rid, 0, &[0xAB, 0xCD]).unwrap();
                e.abort(tx).unwrap();
            }
            _ if !self.live.is_empty() => {
                let rid = self.live[self.rng.gen_range(0..self.live.len())];
                let got = e.get(t, rid).unwrap();
                assert_eq!(
                    &got,
                    self.model[&rid].as_ref().unwrap(),
                    "{label} step {step}: live read diverged"
                );
            }
            _ => {}
        }
    }

    /// Assert the engine agrees with the model byte-for-byte: every live
    /// row readable and identical, every deleted row gone. Call after
    /// `restart_clean()` to prove the state round-tripped through flash.
    pub fn assert_engine_matches(&self, e: &mut StorageEngine, t: TableId) {
        let label = &self.label;
        for (rid, expect) in &self.model {
            match expect {
                Some(row) => {
                    let got = e.get(t, *rid).unwrap();
                    assert_eq!(&got, row, "{label}: row {rid:?} diverged");
                }
                None => {
                    assert!(
                        e.get(t, *rid).is_err(),
                        "{label}: deleted row {rid:?} resurrected"
                    );
                }
            }
        }
    }

    /// The model's live rows in a canonical order, for comparing final
    /// logical state across independently-run engines.
    pub fn canonical_rows(&self) -> Vec<(Rid, Vec<u8>)> {
        let mut rows: Vec<(Rid, Vec<u8>)> = self
            .model
            .iter()
            .filter_map(|(rid, v)| v.as_ref().map(|row| (*rid, row.clone())))
            .collect();
        rows.sort();
        rows
    }
}

/// A synthetic OLTP-ish page trace: `pages` hot pages fetched (with two
/// read-ahead neighbours) and evicted with small deltas each round — the
/// shape both replay harnesses (`replay_ipa` / `replay_ipl`) consume.
pub fn synthetic_trace(pages: u64, rounds: u32) -> Vec<TraceEvent> {
    let mut t = Vec::new();
    for round in 0..rounds {
        for lba in 0..pages {
            t.push(TraceEvent::Fetch { lba });
            t.push(TraceEvent::Fetch {
                lba: (lba + 1) % pages,
            });
            t.push(TraceEvent::Fetch {
                lba: (lba + 2) % pages,
            });
            t.push(TraceEvent::Evict {
                lba,
                changed_bytes: 4 + (round % 3),
            });
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::heap_engine;
    use ipa_core::NmScheme;
    use ipa_ftl::WriteStrategy;

    #[test]
    fn same_seed_same_stream() {
        let mut ea = heap_engine(WriteStrategy::Traditional, NmScheme::disabled(), 1);
        let mut eb = heap_engine(WriteStrategy::Traditional, NmScheme::disabled(), 1);
        let ta = ea.table("m").unwrap();
        let tb = eb.table("m").unwrap();
        let mut ha = ModelHarness::new(99, "a");
        let mut hb = ModelHarness::new(99, "b");
        ha.run(&mut ea, ta, 150);
        hb.run(&mut eb, tb, 150);
        assert_eq!(ha.canonical_rows(), hb.canonical_rows());
    }

    #[test]
    fn harness_state_survives_restart() {
        let mut e = heap_engine(WriteStrategy::IpaNative, NmScheme::new(2, 4), 3);
        let t = e.table("m").unwrap();
        let mut h = ModelHarness::new(42, "restart");
        h.run(&mut e, t, 200);
        e.restart_clean().unwrap();
        h.assert_engine_matches(&mut e, t);
    }

    #[test]
    fn synthetic_trace_shape() {
        let t = synthetic_trace(8, 3);
        assert_eq!(t.len(), 8 * 3 * 4);
        let evictions = t
            .iter()
            .filter(|e| matches!(e, TraceEvent::Evict { .. }))
            .count();
        assert_eq!(evictions, 24);
    }
}
