//! # `ipa-testkit` — shared test fixtures for the IPA workspace
//!
//! Every suite in the workspace needs the same three ingredients:
//!
//! * **deterministic devices and engines** ([`fixtures`]) — small, quiet
//!   (no-disturb) flash configurations and storage engines built for a
//!   given write strategy, so a test exercises exactly one variable;
//! * **seeded operation streams** ([`ops`]) — the model-check harness: a
//!   reproducible random stream of inserts / field updates / row updates /
//!   deletes / aborts applied to an engine and an in-memory model in
//!   lockstep;
//! * **cross-strategy assertions** ([`check`]) — "run the same seed under
//!   Traditional, IpaConventional and IpaNative and the logical state must
//!   be identical" is the workspace's strongest equivalence claim, used by
//!   the root `model_check` suite and regression tests alike.
//!
//! The crate is a dev-dependency everywhere (including, via cargo's
//! dev-dependency-cycle support, in crates it itself depends on).

pub mod check;
pub mod fixtures;
pub mod ops;

pub use check::{assert_strategies_agree, quick_run};
pub use fixtures::{
    aggressive_heat_policy, all_strategies, compact_heap_engine, device_layout, engine,
    fleet_soak_config, heap_engine, heat_heap_engine, ipa_strategies, maintained_heap_engine,
    maintained_plane_engine, multi_plane_engine, quiet_device, quiet_slc, sharded_heap_engine,
    sharded_plane_engine, small_chip, small_pool, striped_device, striped_qos_device,
    traditional_ftl,
};
pub use ops::{synthetic_trace, ModelHarness};
