//! Cross-strategy assertion helpers.

use ipa_core::NmScheme;
use ipa_flash::FlashMode;
use ipa_ftl::WriteStrategy;
use ipa_workloads::{Driver, DriverConfig, RunResult, WorkloadKind};

use crate::fixtures::{all_strategies, heap_engine};
use crate::ops::ModelHarness;

/// Run the same seeded op stream under every write strategy and assert
/// all of them converge to the identical logical state — both against
/// their own model after a cold restart, and against each other.
///
/// This is the workspace's strongest equivalence statement: whatever the
/// device does underneath (full page writes, conventional-SSD in-place
/// detection, native `write_delta` appends, GC migrations, fallbacks),
/// the DBMS-visible bytes must not depend on the write path.
pub fn assert_strategies_agree(seed: u64, ops: usize) {
    let mut canonical: Option<Vec<(ipa_storage::Rid, Vec<u8>)>> = None;
    for (strategy, scheme) in all_strategies() {
        let mut e = heap_engine(strategy, scheme, seed);
        let t = e.table("m").unwrap();
        let mut h = ModelHarness::new(seed, format!("{strategy:?}(seed {seed})"));
        h.run(&mut e, t, ops);
        e.restart_clean().unwrap();
        h.assert_engine_matches(&mut e, t);
        let rows = h.canonical_rows();
        match &canonical {
            None => canonical = Some(rows),
            Some(expect) => assert_eq!(
                expect, &rows,
                "{strategy:?} diverged from the other strategies at seed {seed}"
            ),
        }
    }
}

/// A quick deterministic benchmark run: `txs` transactions of `kind` at
/// scale 1 on pSLC flash.
pub fn quick_run(
    kind: WorkloadKind,
    strategy: WriteStrategy,
    scheme: NmScheme,
    txs: u64,
    seed: u64,
) -> RunResult {
    let cfg = DriverConfig::default()
        .with_transactions(txs)
        .with_seed(seed);
    Driver::run_configured(kind, 1, strategy, scheme, FlashMode::PSlc, &cfg).expect("benchmark run")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_agree_on_a_short_stream() {
        assert_strategies_agree(0xA11CE, 250);
    }

    #[test]
    fn quick_run_is_deterministic() {
        let a = quick_run(
            WorkloadKind::TpcB,
            WriteStrategy::IpaNative,
            NmScheme::new(2, 4),
            120,
            9,
        );
        let b = quick_run(
            WorkloadKind::TpcB,
            WriteStrategy::IpaNative,
            NmScheme::new(2, 4),
            120,
            9,
        );
        assert_eq!(a.device.host_writes, b.device.host_writes);
        assert_eq!(a.device.page_invalidations, b.device.page_invalidations);
    }
}
