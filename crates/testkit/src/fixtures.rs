//! Deterministic device, FTL, pool and engine fixtures.
//!
//! Every constructor takes an explicit seed and disables program
//! interference (`DisturbRates::none()`) unless a test is *about*
//! interference — randomized disturbs belong in fault-injection suites,
//! not in correctness tests where they would add noise to every run.

use ipa_controller::ControllerConfig;
use ipa_core::{NmScheme, PageLayout};
use ipa_flash::{DeviceConfig, DisturbRates, FlashChip, FlashMode, Geometry};
use ipa_fleet::SoakConfig;
use ipa_ftl::{Ftl, FtlConfig, ShardedFtl, StripePolicy, WriteStrategy};
use ipa_heat::{DefaultPolicy, HeatDevice};
use ipa_maint::{MaintConfig, MaintainedFtl};
use ipa_storage::{BufferPool, EngineConfig, StorageEngine, TableSpec};

/// The paper's three write paths with their canonical N×M configurations:
/// the traditional out-of-place baseline and both IPA scenarios (§4).
pub fn all_strategies() -> [(WriteStrategy, NmScheme); 3] {
    [
        (WriteStrategy::Traditional, NmScheme::disabled()),
        (WriteStrategy::IpaConventional, NmScheme::new(2, 4)),
        (WriteStrategy::IpaNative, NmScheme::new(2, 4)),
    ]
}

/// Just the two IPA scenarios (conventional SSD and NoFTL-native).
pub fn ipa_strategies() -> [(WriteStrategy, NmScheme); 2] {
    [
        (WriteStrategy::IpaConventional, NmScheme::new(2, 4)),
        (WriteStrategy::IpaNative, NmScheme::new(2, 4)),
    ]
}

/// The standard small device: `DeviceConfig::small()` with a fixed seed.
pub fn quiet_device(seed: u64) -> DeviceConfig {
    DeviceConfig::small().with_seed(seed)
}

/// A small quiet SLC device with an explicit geometry — the shape used by
/// FTL and B+-tree suites (2 KiB pages, 64 B OOB).
pub fn quiet_slc(blocks: u32, pages_per_block: u32, seed: u64) -> DeviceConfig {
    DeviceConfig::new(
        Geometry::new(blocks, pages_per_block, 2048, 64),
        FlashMode::Slc,
    )
    .with_disturb(DisturbRates::none())
    .with_seed(seed)
}

/// A quiet SLC chip, 128 blocks × 16 pages.
pub fn small_chip(seed: u64) -> FlashChip {
    FlashChip::new(quiet_slc(128, 16, seed))
}

/// A traditionally configured page-mapping FTL on a tiny chip (24 × 8) —
/// small enough that random-op streams exercise GC within a few hundred
/// writes.
pub fn traditional_ftl(seed: u64) -> Ftl {
    Ftl::new(
        FlashChip::new(quiet_slc(24, 8, seed)),
        FtlConfig::traditional(),
    )
}

/// A buffer pool over [`small_chip`] under the traditional write path.
pub fn small_pool(frames: usize, seed: u64) -> BufferPool {
    BufferPool::new(
        Box::new(Ftl::new(small_chip(seed), FtlConfig::traditional())),
        WriteStrategy::Traditional,
        frames,
    )
}

/// Build a [`StorageEngine`] on [`quiet_device`] under the given strategy.
///
/// `Traditional` means a plain `EngineConfig` (no IPA plumbing at all),
/// matching how the baseline is configured throughout the paper repro.
pub fn engine(
    strategy: WriteStrategy,
    scheme: NmScheme,
    seed: u64,
    frames: usize,
    tables: &[TableSpec],
) -> StorageEngine {
    let config = match strategy {
        WriteStrategy::Traditional => EngineConfig::default(),
        _ => EngineConfig::default().with_strategy(strategy, scheme),
    }
    .with_buffer_frames(frames);
    StorageEngine::build(quiet_device(seed), config, tables).expect("testkit engine")
}

/// [`engine`] with a single 48-byte-row heap table named `"m"` and a tiny
/// pool — the model-check shape: maximal eviction churn.
pub fn heap_engine(strategy: WriteStrategy, scheme: NmScheme, seed: u64) -> StorageEngine {
    engine(
        strategy,
        scheme,
        seed,
        8,
        &[TableSpec::heap("m", crate::ops::ROW, 200)],
    )
}

/// Shared core of the striped heap-engine fixtures: the [`heap_engine`]
/// table shape and pool size over `dies` dies (≤ 4 channels, then
/// stacking dies per channel) with `planes` planes per die. The per-die
/// geometry divides [`quiet_device`]'s blocks across the dies, keeping
/// total raw capacity comparable at every die count. `maint =
/// Some(queue_cap)` wraps the stripe in an `ipa-maint` background
/// scheduler (with that optional NCQ cap); `None` keeps the historic
/// inline-GC device.
fn striped_heap_engine(
    strategy: WriteStrategy,
    scheme: NmScheme,
    seed: u64,
    dies: u32,
    planes: u32,
    policy: StripePolicy,
    maint: Option<Option<usize>>,
) -> StorageEngine {
    assert!(dies >= 1 && dies.is_power_of_two(), "die counts are 2^k");
    let channels = dies.min(4);
    let dies_per_channel = dies / channels;
    let base = quiet_device(seed).geometry;
    let per_die = Geometry::new(
        (base.blocks / dies).max(12).next_multiple_of(planes),
        base.pages_per_block,
        base.page_size,
        base.oob_size,
    )
    .with_planes(planes);
    let chip = quiet_device(seed).with_geometry(per_die);
    let mut controller = ControllerConfig::new(channels, dies_per_channel, chip);
    if let Some(Some(cap)) = maint {
        controller = controller.with_queue_cap(cap);
    }

    let config = match strategy {
        WriteStrategy::Traditional => EngineConfig::default(),
        _ => EngineConfig::default().with_strategy(strategy, scheme),
    }
    .with_buffer_frames(8);
    StorageEngine::build_with_device(
        per_die.page_size,
        config,
        &[TableSpec::heap("m", crate::ops::ROW, 200)],
        move |regions, ftl_config| match maint {
            None => Box::new(ShardedFtl::with_regions(
                controller, ftl_config, policy, regions,
            )),
            Some(_) => {
                let striped = ShardedFtl::with_regions(
                    controller,
                    ftl_config.with_background_gc(),
                    policy,
                    regions,
                );
                Box::new(MaintainedFtl::new(striped, MaintConfig::default()))
            }
        },
    )
    .expect("testkit striped engine")
}

/// [`heap_engine`]'s die-striped twin: the same table shape and pool size
/// over a `ShardedFtl` spanning `dies` dies, so `sharded_parity` can
/// compare the two run-for-run.
pub fn sharded_heap_engine(
    strategy: WriteStrategy,
    scheme: NmScheme,
    seed: u64,
    dies: u32,
    policy: StripePolicy,
) -> StorageEngine {
    striped_heap_engine(strategy, scheme, seed, dies, 1, policy, None)
}

/// [`sharded_heap_engine`] with a plane axis: `planes` planes per die, so
/// plane-parity suites can sweep the full dies × planes matrix without
/// hand-wiring controller configs.
pub fn sharded_plane_engine(
    strategy: WriteStrategy,
    scheme: NmScheme,
    seed: u64,
    dies: u32,
    planes: u32,
    policy: StripePolicy,
) -> StorageEngine {
    striped_heap_engine(strategy, scheme, seed, dies, planes, policy, None)
}

/// Deliberately aggressive placement thresholds so hot-tier absorption,
/// destages and wear-shifting stripe swaps all engage within a short op
/// stream — the knobs parity and crash suites run the heat device at.
pub fn aggressive_heat_policy() -> DefaultPolicy {
    DefaultPolicy::default()
        .with_hot_threshold(2)
        .with_range_pages(2)
        .with_tier_fraction(0.0001)
        .with_destage_high_water(0.4)
        .with_migrate_wear_delta(2)
}

/// [`sharded_plane_engine`]'s heat-placement twin: the identical table
/// shape and striped geometry, but the device is mounted behind an
/// `ipa-heat` [`HeatDevice`] (SLC hot tier + wear-shifting maintenance
/// jobs) under [`aggressive_heat_policy`] — so parity suites can prove
/// migration moves *placement* and never *state*.
pub fn heat_heap_engine(
    strategy: WriteStrategy,
    scheme: NmScheme,
    seed: u64,
    dies: u32,
    planes: u32,
    policy: StripePolicy,
) -> StorageEngine {
    compact_striped_engine(strategy, scheme, seed, dies, planes, policy, true)
}

/// [`heat_heap_engine`]'s no-migration reference: byte-identical table
/// shape and compact striped geometry, but the device is a plain
/// maintained stripe — no hot tier, no wear shifting. Parity suites
/// diff logical state against this to isolate the heat layer.
pub fn compact_heap_engine(
    strategy: WriteStrategy,
    scheme: NmScheme,
    seed: u64,
    dies: u32,
    planes: u32,
    policy: StripePolicy,
) -> StorageEngine {
    compact_striped_engine(strategy, scheme, seed, dies, planes, policy, false)
}

fn compact_striped_engine(
    strategy: WriteStrategy,
    scheme: NmScheme,
    seed: u64,
    dies: u32,
    planes: u32,
    policy: StripePolicy,
    heat: bool,
) -> StorageEngine {
    assert!(dies >= 1 && dies.is_power_of_two(), "die counts are 2^k");
    let channels = dies.min(4);
    let dies_per_channel = dies / channels;
    // Deliberately compact dies (small blocks, 2 KiB pages): garbage
    // collection — and with it real per-die erase deltas, the signal
    // wear-shifting migration triggers on — fires within the few hundred
    // ops a parity or crash suite runs, not after tens of thousands.
    let per_die = Geometry::new((64 / dies).max(12).next_multiple_of(planes), 8, 2048, 64)
        .with_planes(planes);
    let chip = quiet_slc(per_die.blocks, per_die.pages_per_block, seed).with_geometry(per_die);
    let controller = ControllerConfig::new(channels, dies_per_channel, chip);

    let config = match strategy {
        WriteStrategy::Traditional => EngineConfig::default(),
        _ => EngineConfig::default().with_strategy(strategy, scheme),
    }
    .with_buffer_frames(8);
    StorageEngine::build_with_device(
        per_die.page_size,
        config,
        &[TableSpec::heap("m", crate::ops::ROW, 200)],
        move |regions, ftl_config| {
            let striped = ShardedFtl::with_regions(
                controller,
                ftl_config.with_background_gc(),
                policy,
                regions,
            );
            let maintained = MaintainedFtl::new(striped, MaintConfig::default());
            if heat {
                Box::new(HeatDevice::new(
                    maintained,
                    Box::new(aggressive_heat_policy()),
                ))
            } else {
                Box::new(maintained)
            }
        },
    )
    .expect("testkit compact striped engine")
}

/// A single scheduled die with `planes` planes — the minimal multi-plane
/// engine: every throughput difference against [`heap_engine`]-shaped
/// runs comes from plane pairing alone, not die or channel parallelism.
pub fn multi_plane_engine(
    strategy: WriteStrategy,
    scheme: NmScheme,
    seed: u64,
    planes: u32,
) -> StorageEngine {
    striped_heap_engine(
        strategy,
        scheme,
        seed,
        1,
        planes,
        StripePolicy::RoundRobin,
        None,
    )
}

/// [`sharded_heap_engine`]'s background-maintenance twin: the identical
/// controller topology and table shape, but low-water GC deferred to an
/// `ipa-maint` scheduler ([`MaintainedFtl`]) and an optional NCQ queue
/// cap on the controller — so GC-parity suites can compare inline and
/// background reclaim run-for-run.
pub fn maintained_heap_engine(
    strategy: WriteStrategy,
    scheme: NmScheme,
    seed: u64,
    dies: u32,
    policy: StripePolicy,
    queue_cap: Option<usize>,
) -> StorageEngine {
    striped_heap_engine(strategy, scheme, seed, dies, 1, policy, Some(queue_cap))
}

/// [`maintained_heap_engine`] with a plane axis, for suites that check
/// background reclaim over plane-local victims end-to-end.
pub fn maintained_plane_engine(
    strategy: WriteStrategy,
    scheme: NmScheme,
    seed: u64,
    dies: u32,
    planes: u32,
    policy: StripePolicy,
    queue_cap: Option<usize>,
) -> StorageEngine {
    striped_heap_engine(
        strategy,
        scheme,
        seed,
        dies,
        planes,
        policy,
        Some(queue_cap),
    )
}

/// The canonical 2 KiB IPA page layout the device-level suites format
/// their regions with (24 B header, 8 B meta, 2×4 scheme).
pub fn device_layout() -> PageLayout {
    PageLayout::new(2048, 24, 8, NmScheme::new(2, 4))
}

/// A die-striped device for queued-vs-sync parity suites: `dies` dies
/// (≤ 4 channels, then stacking) × `planes` planes of quiet pSLC under
/// the given write path (traditional, conventional-IPA detection, or
/// native `write_delta` — via [`device_layout`]). Deterministic for a
/// seed, so two calls build identical twins to drive through different
/// interfaces.
pub fn striped_device(strategy: WriteStrategy, seed: u64, dies: u32, planes: u32) -> ShardedFtl {
    assert!(dies >= 1 && dies.is_power_of_two(), "die counts are 2^k");
    let cfg = match strategy {
        WriteStrategy::Traditional => FtlConfig::traditional(),
        WriteStrategy::IpaConventional => FtlConfig::ipa_conventional(device_layout()),
        WriteStrategy::IpaNative => FtlConfig::ipa_native(device_layout()),
    };
    let channels = dies.min(4);
    let chip = DeviceConfig::new(
        Geometry::new(24u32.next_multiple_of(planes), 8, 2048, 64).with_planes(planes),
        FlashMode::PSlc,
    )
    .with_disturb(DisturbRates::none())
    .with_seed(seed);
    ShardedFtl::new(
        ControllerConfig::new(channels, dies / channels, chip),
        cfg,
        StripePolicy::RoundRobin,
    )
}

/// [`striped_device`] with latency-QoS scheduling enabled on the
/// controller (read promotion over queued programs, erase suspend) — the
/// QoS-parity suites drive this twin against the FIFO [`striped_device`]
/// to prove the scheduler reorders *time* and never *state*.
pub fn striped_qos_device(
    strategy: WriteStrategy,
    seed: u64,
    dies: u32,
    planes: u32,
) -> ShardedFtl {
    assert!(dies >= 1 && dies.is_power_of_two(), "die counts are 2^k");
    let cfg = match strategy {
        WriteStrategy::Traditional => FtlConfig::traditional(),
        WriteStrategy::IpaConventional => FtlConfig::ipa_conventional(device_layout()),
        WriteStrategy::IpaNative => FtlConfig::ipa_native(device_layout()),
    };
    let channels = dies.min(4);
    let chip = DeviceConfig::new(
        Geometry::new(24u32.next_multiple_of(planes), 8, 2048, 64).with_planes(planes),
        FlashMode::PSlc,
    )
    .with_disturb(DisturbRates::none())
    .with_seed(seed);
    ShardedFtl::new(
        ControllerConfig::new(channels, dies / channels, chip).with_qos(),
        cfg,
        StripePolicy::RoundRobin,
    )
}

/// The canonical crash/recovery soak shape: `tenants` tenants sharing a
/// 4-channel × 2-die device under an NCQ cap with latency-QoS scheduling
/// on, 54 seeded kill/recover cycles (18 rounds × 3 kills), checkpoints
/// every other round. The root `fleet_soak` suite and the bench
/// `--fleet` smoke both run exactly this, at different tenant counts.
pub fn fleet_soak_config(tenants: usize, seed: u64) -> SoakConfig {
    let mut cfg = SoakConfig::default();
    cfg.fleet.queue_cap = Some(4);
    cfg.fleet.qos = true;
    cfg.fleet.seed = seed;
    cfg.tenants = tenants;
    cfg.seed = seed;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let a = quiet_slc(24, 8, 5);
        let b = quiet_slc(24, 8, 5);
        assert_eq!(a.geometry.page_size, b.geometry.page_size);
        // Engines built from the same seed start from identical stats.
        let ea = heap_engine(WriteStrategy::IpaNative, NmScheme::new(2, 4), 7);
        let eb = heap_engine(WriteStrategy::IpaNative, NmScheme::new(2, 4), 7);
        assert_eq!(ea.stats().device.host_writes, eb.stats().device.host_writes);
    }

    #[test]
    fn multi_plane_fixture_pairs_on_a_write_burst() {
        let mut e = multi_plane_engine(WriteStrategy::Traditional, NmScheme::disabled(), 11, 2);
        let t = e.table("m").unwrap();
        // Enough rows to dirty many 8 KB heap pages, so evictions and the
        // final flush emit consecutive out-of-place writes.
        let tx = e.begin();
        for i in 0..2000u64 {
            let mut row = [0u8; crate::ops::ROW];
            row[..8].copy_from_slice(&i.to_le_bytes());
            e.insert(tx, t, &row).unwrap();
        }
        e.commit(tx).unwrap();
        e.flush_all().unwrap();
        assert!(
            e.stats().device.multi_plane_pairs > 0,
            "a flush burst through the 2-plane fixture must pair"
        );
        // And the single-plane fixture, by construction, never does.
        let single = sharded_plane_engine(
            WriteStrategy::Traditional,
            NmScheme::disabled(),
            11,
            2,
            1,
            StripePolicy::RoundRobin,
        );
        assert_eq!(single.stats().device.multi_plane_pairs, 0);
    }

    #[test]
    fn strategy_matrix_covers_all_three_paths() {
        let kinds: Vec<WriteStrategy> = all_strategies().iter().map(|(s, _)| *s).collect();
        assert!(kinds.contains(&WriteStrategy::Traditional));
        assert!(kinds.contains(&WriteStrategy::IpaConventional));
        assert!(kinds.contains(&WriteStrategy::IpaNative));
    }
}
