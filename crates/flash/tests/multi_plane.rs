//! Multi-plane command constraints: the alignment rule, per-plane NOP and
//! reprogram budgets, atomicity, and the one-staircase timing claim.
//!
//! Cross-die pairings are impossible to *express* at this layer — a
//! [`FlashChip`] is one die, and the controller's `DieHandle` routes every
//! multi-plane command to exactly one die — so the typed-error surface
//! covers every same-die misalignment: wrong page offset, wrong in-plane
//! block index, a plane addressed twice, too few pages.

use ipa_flash::{
    DeviceConfig, DisturbRates, FlashChip, FlashError, FlashMode, Geometry, MultiPlaneWrite, Nand,
    Ppa,
};
use proptest::prelude::*;

fn chip(planes: u32) -> FlashChip {
    FlashChip::new(
        DeviceConfig::new(
            Geometry::new(16, 8, 2048, 64).with_planes(planes),
            FlashMode::Slc,
        )
        .with_disturb(DisturbRates::none()),
    )
}

fn img(chip: &FlashChip, fill: u8) -> (Vec<u8>, Vec<u8>) {
    (
        vec![fill; chip.geometry().page_size],
        vec![0xFF; chip.geometry().oob_size],
    )
}

#[test]
fn aligned_pair_programs_both_planes() {
    let mut c = chip(2);
    let (data, oob) = img(&c, 0x5A);
    let pages = [
        MultiPlaneWrite {
            ppa: Ppa::new(0, 3),
            data: &data,
            oob: &oob,
        },
        MultiPlaneWrite {
            ppa: Ppa::new(1, 3),
            data: &data,
            oob: &oob,
        },
    ];
    c.multi_plane_program(&pages).unwrap();
    assert_eq!(c.read_page(Ppa::new(0, 3)).unwrap().data, data);
    assert_eq!(c.read_page(Ppa::new(1, 3)).unwrap().data, data);
    let s = c.stats();
    assert_eq!(s.page_programs, 2);
    assert_eq!(s.multi_plane_programs, 1);
}

#[test]
fn misaligned_pairings_are_rejected_with_typed_errors() {
    let mut c = chip(2);
    let (data, oob) = img(&c, 0x00);
    fn pair<'a>(a: Ppa, b: Ppa, data: &'a [u8], oob: &'a [u8]) -> [MultiPlaneWrite<'a>; 2] {
        [
            MultiPlaneWrite { ppa: a, data, oob },
            MultiPlaneWrite { ppa: b, data, oob },
        ]
    }
    // Different page offset.
    let err = c
        .multi_plane_program(&pair(Ppa::new(0, 1), Ppa::new(1, 2), &data, &oob))
        .unwrap_err();
    assert!(matches!(
        err,
        FlashError::MultiPlaneMismatch {
            reason: "page offsets differ across planes",
            ..
        }
    ));
    // Different in-plane block index (block group).
    let err = c
        .multi_plane_program(&pair(Ppa::new(0, 1), Ppa::new(3, 1), &data, &oob))
        .unwrap_err();
    assert!(matches!(
        err,
        FlashError::MultiPlaneMismatch {
            reason: "in-plane block indexes differ",
            ..
        }
    ));
    // Same plane twice (the only same-group duplicate is the same block;
    // distinct blocks of one plane always differ in group and are caught
    // by the block-index rule above).
    let err = c
        .multi_plane_program(&pair(Ppa::new(0, 1), Ppa::new(0, 1), &data, &oob))
        .unwrap_err();
    assert!(matches!(
        err,
        FlashError::MultiPlaneMismatch {
            reason: "plane addressed more than once",
            ..
        }
    ));
    // A single page is not a multi-plane command.
    let one = [MultiPlaneWrite {
        ppa: Ppa::new(0, 1),
        data: &data,
        oob: &oob,
    }];
    assert!(matches!(
        c.multi_plane_program(&one),
        Err(FlashError::MultiPlaneMismatch { .. })
    ));
    // Nothing was programmed by any of the rejections.
    assert_eq!(c.stats().page_programs, 0);
    assert_eq!(c.stats().busy_ns, 0, "failed commands cost nothing");
}

#[test]
fn multi_plane_read_enforces_the_same_alignment() {
    let mut c = chip(2);
    let (data, oob) = img(&c, 0xA5);
    for b in [0, 1] {
        c.program_page(Ppa::new(b, 4), &data, &oob).unwrap();
    }
    let images = c
        .multi_plane_read(&[Ppa::new(0, 4), Ppa::new(1, 4)])
        .unwrap();
    assert_eq!(images.len(), 2);
    assert!(images.iter().all(|i| i.data == data));
    assert_eq!(c.stats().multi_plane_reads, 1);
    assert!(matches!(
        c.multi_plane_read(&[Ppa::new(0, 4), Ppa::new(1, 5)]),
        Err(FlashError::MultiPlaneMismatch { .. })
    ));
    // Reading an erased member rejects the whole command.
    assert!(matches!(
        c.multi_plane_read(&[Ppa::new(0, 5), Ppa::new(1, 5)]),
        Err(FlashError::ReadErased { .. })
    ));
}

#[test]
fn nop_budget_is_enforced_per_plane() {
    let mut c = FlashChip::new(
        DeviceConfig::new(
            Geometry::new(16, 8, 2048, 64).with_planes(2),
            FlashMode::Slc,
        )
        .with_disturb(DisturbRates::none())
        .with_nop(2),
    );
    let (mut a, oob) = img(&c, 0xFF);
    a[0] = 0xF0;
    // Exhaust plane 1's page NOP budget (2 programs) while plane 0's
    // partner page keeps a free program.
    c.program_page(Ppa::new(1, 0), &a, &oob).unwrap();
    a[1] = 0xF0;
    c.reprogram_page(Ppa::new(1, 0), &a, &oob).unwrap();
    c.program_page(Ppa::new(0, 0), &a, &oob).unwrap();

    // A multi-plane reprogram must check each plane's own budget: plane 1
    // is out, so the whole command is rejected even though plane 0 could
    // still program.
    let mut b = a.clone();
    b[2] = 0xF0;
    let pages = [
        MultiPlaneWrite {
            ppa: Ppa::new(0, 0),
            data: &b,
            oob: &oob,
        },
        MultiPlaneWrite {
            ppa: Ppa::new(1, 0),
            data: &b,
            oob: &oob,
        },
    ];
    match c.multi_plane_program(&pages) {
        Err(FlashError::NopExceeded { ppa, nop }) => {
            assert_eq!(ppa, Ppa::new(1, 0), "the exhausted plane is named");
            assert_eq!(nop, 2);
        }
        other => panic!("expected NopExceeded, got {other:?}"),
    }
    // Atomicity: plane 0's page kept its old image and budget.
    assert_eq!(c.program_count(Ppa::new(0, 0)).unwrap(), 1);
    assert_eq!(c.read_page(Ppa::new(0, 0)).unwrap().data, a);
}

#[test]
fn reprogram_members_obey_the_overwrite_rule_per_plane() {
    let mut c = chip(2);
    let (mut a, oob) = img(&c, 0xFF);
    a[10] = 0x0F;
    c.program_page(Ppa::new(0, 2), &a, &oob).unwrap();
    c.program_page(Ppa::new(1, 2), &a, &oob).unwrap();
    // Plane 0's member is a legal 1→0 append; plane 1's needs 0→1.
    let mut legal = a.clone();
    legal[11] = 0x00;
    let mut illegal = a.clone();
    illegal[10] = 0xFF;
    let pages = [
        MultiPlaneWrite {
            ppa: Ppa::new(0, 2),
            data: &legal,
            oob: &oob,
        },
        MultiPlaneWrite {
            ppa: Ppa::new(1, 2),
            data: &illegal,
            oob: &oob,
        },
    ];
    match c.multi_plane_program(&pages) {
        Err(FlashError::IllegalOverwrite { ppa, .. }) => assert_eq!(ppa, Ppa::new(1, 2)),
        other => panic!("expected IllegalOverwrite, got {other:?}"),
    }
    // Neither plane changed.
    assert_eq!(c.read_page(Ppa::new(0, 2)).unwrap().data, a);
    assert_eq!(c.read_page(Ppa::new(1, 2)).unwrap().data, a);

    // A fully legal pair of appends lands as one staircase.
    let pages = [
        MultiPlaneWrite {
            ppa: Ppa::new(0, 2),
            data: &legal,
            oob: &oob,
        },
        MultiPlaneWrite {
            ppa: Ppa::new(1, 2),
            data: &legal,
            oob: &oob,
        },
    ];
    c.multi_plane_program(&pages).unwrap();
    assert_eq!(c.stats().page_reprograms, 2);
    assert_eq!(c.stats().multi_plane_programs, 1);
}

#[test]
fn one_staircase_beats_two_sequential_programs() {
    // The point of the whole subsystem: a paired program charges one
    // staircase + both transfers, so it must land well under 2× a single
    // program and the derived program bandwidth must approach 2×.
    let (data, oob) = img(&chip(2), 0x00);
    let single = {
        let mut c = chip(2);
        c.program_page(Ppa::new(0, 0), &data, &oob).unwrap();
        c.elapsed_ns()
    };
    let paired = {
        let mut c = chip(2);
        let pages = [
            MultiPlaneWrite {
                ppa: Ppa::new(0, 0),
                data: &data,
                oob: &oob,
            },
            MultiPlaneWrite {
                ppa: Ppa::new(1, 0),
                data: &data,
                oob: &oob,
            },
        ];
        c.multi_plane_program(&pages).unwrap();
        c.elapsed_ns()
    };
    assert!(
        paired < 2 * single,
        "pair {paired} ns must beat two sequential programs 2×{single} ns"
    );
    // 2 pages / paired ns vs 1 page / single ns: ≥ 1.5× bandwidth.
    assert!(
        2 * single >= 3 * paired / 2,
        "paired program bandwidth below 1.5× ({paired} vs {single} ns)"
    );
}

#[test]
fn per_plane_erase_counters_aggregate_to_block_erases() {
    let mut c = chip(4);
    // Erase a skewed pattern: plane 1 twice, plane 3 once, plane 0 never.
    c.erase_block(1).unwrap();
    c.erase_block(5).unwrap();
    c.erase_block(3).unwrap();
    assert_eq!(c.plane_erase_count(0), 0);
    assert_eq!(c.plane_erase_count(1), 2);
    assert_eq!(c.plane_erase_count(2), 0);
    assert_eq!(c.plane_erase_count(3), 1);
    assert_eq!(
        c.plane_erase_counts().iter().sum::<u64>(),
        c.stats().block_erases
    );
}

#[test]
fn aligned_group_erase_is_one_pulse() {
    let (data, oob) = img(&chip(2), 0x00);
    // Two sequential erases pay two pulses…
    let sequential = {
        let mut c = chip(2);
        c.program_page(Ppa::new(0, 0), &data, &oob).unwrap();
        c.program_page(Ppa::new(1, 0), &data, &oob).unwrap();
        let t0 = c.elapsed_ns();
        c.erase_block(0).unwrap();
        c.erase_block(1).unwrap();
        c.elapsed_ns() - t0
    };
    // …one aligned group erase pays one.
    let mut c = chip(2);
    c.program_page(Ppa::new(0, 0), &data, &oob).unwrap();
    c.program_page(Ppa::new(1, 0), &data, &oob).unwrap();
    let t0 = c.elapsed_ns();
    c.multi_plane_erase(&[0, 1]).unwrap();
    let paired = c.elapsed_ns() - t0;
    assert!(c.is_erased(Ppa::new(0, 0)).unwrap());
    assert!(c.is_erased(Ppa::new(1, 0)).unwrap());
    let s = c.stats();
    assert_eq!(s.block_erases, 2, "member blocks count individually");
    assert_eq!(s.multi_plane_erases, 1, "one shared pulse in the books");
    assert_eq!(
        2 * paired,
        sequential,
        "the group erase charges exactly one pulse"
    );
    assert_eq!(c.erase_count(0).unwrap(), 1);
    assert_eq!(c.erase_count(1).unwrap(), 1);
}

#[test]
fn misaligned_erase_groups_rejected_with_typed_errors() {
    let mut c = chip(2);
    // Different in-plane block index (block group).
    assert!(matches!(
        c.multi_plane_erase(&[0, 3]),
        Err(FlashError::MultiPlaneMismatch {
            reason: "in-plane block indexes differ",
            ..
        })
    ));
    // Same plane twice.
    assert!(matches!(
        c.multi_plane_erase(&[0, 0]),
        Err(FlashError::MultiPlaneMismatch {
            reason: "plane addressed more than once",
            ..
        })
    ));
    // Too few blocks.
    assert!(matches!(
        c.multi_plane_erase(&[]),
        Err(FlashError::MultiPlaneMismatch { .. })
    ));
    assert!(matches!(
        c.multi_plane_erase(&[4]),
        Err(FlashError::MultiPlaneMismatch { .. })
    ));
    // Out of bounds.
    assert!(matches!(
        c.multi_plane_erase(&[98, 99]),
        Err(FlashError::OutOfBounds { .. })
    ));
    // Nothing was erased by any of the rejections.
    assert_eq!(c.stats().block_erases, 0);
    assert_eq!(c.stats().busy_ns, 0, "failed commands cost nothing");
}

#[test]
fn group_erase_is_atomic_over_bad_blocks() {
    let mut c = chip(2);
    let (data, oob) = img(&c, 0x00);
    c.program_page(Ppa::new(0, 0), &data, &oob).unwrap();
    c.retire_block(1).unwrap();
    // One bad member rejects the whole command; the good member's data
    // and wear are untouched.
    assert!(matches!(
        c.multi_plane_erase(&[0, 1]),
        Err(FlashError::BadBlock { block: 1 })
    ));
    assert!(!c.is_erased(Ppa::new(0, 0)).unwrap());
    assert_eq!(c.erase_count(0).unwrap(), 0);
    assert_eq!(c.stats().block_erases, 0);
}

#[test]
fn group_erase_counts_wear_per_plane_and_retires_on_endurance() {
    let mut cfg = DeviceConfig::new(
        Geometry::new(16, 8, 2048, 64).with_planes(2),
        FlashMode::Slc,
    )
    .with_disturb(DisturbRates::none());
    cfg.erase_endurance = 3;
    let mut c = FlashChip::new(cfg);
    for _ in 0..3 {
        c.multi_plane_erase(&[0, 1]).unwrap();
    }
    // Per-plane wear aggregates exactly like sequential erases…
    assert_eq!(c.plane_erase_count(0), 3);
    assert_eq!(c.plane_erase_count(1), 3);
    assert_eq!(
        c.plane_erase_counts().iter().sum::<u64>(),
        c.stats().block_erases
    );
    // …and endurance retires every member of the worn group.
    assert!(c.is_bad(0));
    assert!(c.is_bad(1));
    assert!(matches!(
        c.multi_plane_erase(&[0, 1]),
        Err(FlashError::BadBlock { .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any aligned pair round-trips through one command; state matches a
    /// chip that programmed the same pages sequentially.
    #[test]
    fn paired_state_matches_sequential_state(
        group in 0u32..8,
        page in 0u32..8,
        fill in 0u8..=0xFE,
    ) {
        let a = Ppa::new(group * 2, page);
        let b = Ppa::new(group * 2 + 1, page);
        let mut paired = chip(2);
        let (data, oob) = img(&paired, fill);
        let pages = [
            MultiPlaneWrite { ppa: a, data: &data, oob: &oob },
            MultiPlaneWrite { ppa: b, data: &data, oob: &oob },
        ];
        paired.multi_plane_program(&pages).unwrap();

        let mut sequential = chip(2);
        sequential.program_page(a, &data, &oob).unwrap();
        sequential.program_page(b, &data, &oob).unwrap();

        for ppa in [a, b] {
            prop_assert_eq!(paired.peek_data(ppa), sequential.peek_data(ppa));
            prop_assert_eq!(
                paired.program_count(ppa).unwrap(),
                sequential.program_count(ppa).unwrap()
            );
        }
        prop_assert!(paired.elapsed_ns() < sequential.elapsed_ns());
    }

    /// Any aligned block group erases to the same state as sequential
    /// erases, in strictly less time.
    #[test]
    fn group_erase_state_matches_sequential_state(
        group in 0u32..8,
        page in 0u32..8,
        fill in 0u8..=0xFE,
    ) {
        let a = group * 2;
        let b = group * 2 + 1;
        let mut grouped = chip(2);
        let (data, oob) = img(&grouped, fill);
        let mut sequential = chip(2);
        for c in [&mut grouped, &mut sequential] {
            c.program_page(Ppa::new(a, page), &data, &oob).unwrap();
            c.program_page(Ppa::new(b, page), &data, &oob).unwrap();
        }
        grouped.multi_plane_erase(&[a, b]).unwrap();
        sequential.erase_block(a).unwrap();
        sequential.erase_block(b).unwrap();
        for block in [a, b] {
            prop_assert!(grouped.is_erased(Ppa::new(block, page)).unwrap());
            prop_assert_eq!(
                grouped.erase_count(block).unwrap(),
                sequential.erase_count(block).unwrap()
            );
        }
        prop_assert!(grouped.elapsed_ns() < sequential.elapsed_ns());
    }
}

#[test]
fn default_trait_fallback_keeps_state_identical() {
    // A `Nand` implementor without native multi-plane support (the trait
    // default) must produce the same bytes, just without the overlap.
    struct Plain(FlashChip);
    impl std::ops::Deref for Plain {
        type Target = FlashChip;
        fn deref(&self) -> &FlashChip {
            &self.0
        }
    }
    // Route the default multi_plane_program through single programs by
    // NOT overriding it.
    impl Nand for Plain {
        fn geometry(&self) -> Geometry {
            *self.0.geometry()
        }
        fn mode(&self) -> FlashMode {
            FlashChip::mode(&self.0)
        }
        fn flash_stats(&self) -> ipa_flash::FlashStats {
            *self.0.stats()
        }
        fn elapsed_ns(&self) -> u64 {
            self.0.elapsed_ns()
        }
        fn nop_limit(&self, page: u32) -> u16 {
            self.0.nop_limit(page)
        }
        fn is_erased(&self, ppa: Ppa) -> ipa_flash::Result<bool> {
            self.0.is_erased(ppa)
        }
        fn program_count(&self, ppa: Ppa) -> ipa_flash::Result<u16> {
            self.0.program_count(ppa)
        }
        fn erase_count(&self, block: u32) -> ipa_flash::Result<u32> {
            self.0.erase_count(block)
        }
        fn max_erase_count(&self) -> u32 {
            self.0.max_erase_count()
        }
        fn is_bad(&self, block: u32) -> bool {
            self.0.is_bad(block)
        }
        fn peek_data(&self, ppa: Ppa) -> Option<Vec<u8>> {
            self.0.peek_data(ppa).map(<[u8]>::to_vec)
        }
        fn peek_oob(&self, ppa: Ppa) -> Option<Vec<u8>> {
            self.0.peek_oob(ppa).map(<[u8]>::to_vec)
        }
        fn read_page(&mut self, ppa: Ppa) -> ipa_flash::Result<ipa_flash::PageImage> {
            self.0.read_page(ppa)
        }
        fn program_page(&mut self, ppa: Ppa, data: &[u8], oob: &[u8]) -> ipa_flash::Result<()> {
            self.0.program_page(ppa, data, oob)
        }
        fn reprogram_page(&mut self, ppa: Ppa, data: &[u8], oob: &[u8]) -> ipa_flash::Result<()> {
            self.0.reprogram_page(ppa, data, oob)
        }
        fn append_region(
            &mut self,
            ppa: Ppa,
            data_off: usize,
            bytes: &[u8],
            oob_off: usize,
            oob_bytes: &[u8],
        ) -> ipa_flash::Result<()> {
            self.0
                .append_region(ppa, data_off, bytes, oob_off, oob_bytes)
        }
        fn erase_block(&mut self, block: u32) -> ipa_flash::Result<()> {
            self.0.erase_block(block)
        }
    }

    let mut plain = Plain(chip(2));
    let mut native = chip(2);
    let (data, oob) = img(&native, 0x3C);
    let pages = [
        MultiPlaneWrite {
            ppa: Ppa::new(0, 0),
            data: &data,
            oob: &oob,
        },
        MultiPlaneWrite {
            ppa: Ppa::new(1, 0),
            data: &data,
            oob: &oob,
        },
    ];
    Nand::multi_plane_program(&mut plain, &pages).unwrap();
    native.multi_plane_program(&pages).unwrap();
    for b in [0, 1] {
        assert_eq!(
            plain.peek_data(Ppa::new(b, 0)),
            native.peek_data(Ppa::new(b, 0)).map(<[u8]>::to_vec)
        );
    }
    // The fallback still rejects misaligned pairs.
    let bad = [
        MultiPlaneWrite {
            ppa: Ppa::new(0, 0),
            data: &data,
            oob: &oob,
        },
        MultiPlaneWrite {
            ppa: Ppa::new(2, 0),
            data: &data,
            oob: &oob,
        },
    ];
    assert!(matches!(
        Nand::multi_plane_program(&mut plain, &bad),
        Err(FlashError::MultiPlaneMismatch { .. })
    ));

    // The erase default falls back to sequential erases: same state,
    // same alignment rule.
    Nand::multi_plane_erase(&mut plain, &[0, 1]).unwrap();
    native.multi_plane_erase(&[0, 1]).unwrap();
    for b in [0, 1] {
        assert!(plain.0.is_erased(Ppa::new(b, 0)).unwrap());
        assert_eq!(
            plain.0.erase_count(b).unwrap(),
            native.erase_count(b).unwrap()
        );
    }
    assert_eq!(plain.0.stats().multi_plane_erases, 0, "fallback, no pulse");
    assert_eq!(native.stats().multi_plane_erases, 1);
    assert!(matches!(
        Nand::multi_plane_erase(&mut plain, &[0, 2]),
        Err(FlashError::MultiPlaneMismatch { .. })
    ));
}
