//! Property tests for the [`SimClock`] join algebra.
//!
//! The controller leans on two primitives: `advance_to` (clamp a clock
//! forward to an absolute instant) and `merge` (max-join two clocks at a
//! sync point). The whole multi-die timing model is sound only if these
//! form a proper join semilattice — monotone, commutative, associative,
//! idempotent — because die clocks are merged in arbitrary order at
//! barriers and the result must not depend on that order.

use ipa_flash::SimClock;
use proptest::collection::vec;
use proptest::prelude::*;

/// Cap instants far below `u64::MAX` so sums in the tests cannot saturate
/// (saturation is covered separately below).
const T: u64 = 1 << 48;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `advance_to` never moves a clock backwards, and lands exactly on
    /// the target when the target is ahead.
    #[test]
    fn advance_to_is_monotone(start in 0..T, target in 0..T) {
        let mut c = SimClock::at_ns(start);
        c.advance_to(target);
        prop_assert!(c.now_ns() >= start, "ran backwards");
        prop_assert!(c.now_ns() >= target, "fell short of the target");
        prop_assert_eq!(c.now_ns(), start.max(target));
    }

    /// Applying `advance_to` twice with the same target changes nothing —
    /// re-joining a die clock at the same sync point is free.
    #[test]
    fn advance_to_is_idempotent(start in 0..T, target in 0..T) {
        let mut once = SimClock::at_ns(start);
        once.advance_to(target);
        let mut twice = once;
        twice.advance_to(target);
        prop_assert_eq!(once, twice);
    }

    /// `merge` is commutative: `a ⊔ b = b ⊔ a`.
    #[test]
    fn merge_commutes(a in 0..T, b in 0..T) {
        let (ca, cb) = (SimClock::at_ns(a), SimClock::at_ns(b));
        let mut ab = ca;
        ab.merge(&cb);
        let mut ba = cb;
        ba.merge(&ca);
        prop_assert_eq!(ab, ba);
    }

    /// `merge` is associative and order-independent over any set of die
    /// clocks: folding in any permutation reaches the same barrier time.
    #[test]
    fn merge_is_order_independent(ns in vec(0..T, 1..12), rot in 0usize..12) {
        let clocks: Vec<SimClock> = ns.iter().map(|&n| SimClock::at_ns(n)).collect();
        let fold = |cs: &[SimClock]| {
            let mut acc = SimClock::new();
            for c in cs {
                acc.merge(c);
            }
            acc
        };
        let forward = fold(&clocks);
        let mut reversed: Vec<SimClock> = clocks.clone();
        reversed.reverse();
        let mut rotated = clocks.clone();
        let k = rot % rotated.len();
        rotated.rotate_left(k);
        prop_assert_eq!(forward, fold(&reversed));
        prop_assert_eq!(forward, fold(&rotated));
        prop_assert_eq!(forward.now_ns(), ns.iter().copied().max().unwrap());
    }

    /// `merge` is idempotent: `a ⊔ a = a`, and absorbing an earlier clock
    /// is a no-op.
    #[test]
    fn merge_is_idempotent_and_absorbing(a in 0..T, b in 0..T) {
        let mut c = SimClock::at_ns(a);
        c.merge(&c.clone());
        prop_assert_eq!(c.now_ns(), a);
        let mut hi = SimClock::at_ns(a.max(b));
        let lo = SimClock::at_ns(a.min(b));
        hi.merge(&lo);
        prop_assert_eq!(hi.now_ns(), a.max(b));
    }

    /// The idle predicate agrees with the merge order: a clock is idle at
    /// `ns` iff merging it into a clock positioned at `ns` is a no-op, and
    /// `busy_ns_after` measures exactly the merge displacement.
    #[test]
    fn idleness_agrees_with_merge(die in 0..T, observer in 0..T) {
        let d = SimClock::at_ns(die);
        let mut o = SimClock::at_ns(observer);
        o.merge(&d);
        let displaced = o.now_ns() - observer;
        prop_assert_eq!(d.is_idle_at(observer), displaced == 0);
        prop_assert_eq!(d.busy_ns_after(observer), displaced);
    }

    /// `advance_ns` saturates rather than wrapping, and stays monotone
    /// even at the top of the domain.
    #[test]
    fn advance_ns_saturates(start in 0..u64::MAX, dt in 0..u64::MAX) {
        let mut c = SimClock::at_ns(start);
        c.advance_ns(dt);
        prop_assert!(c.now_ns() >= start);
        prop_assert_eq!(c.now_ns(), start.saturating_add(dt));
    }
}
