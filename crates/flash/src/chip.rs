//! The simulated NAND chip: the only place flash physics is enforced.
//!
//! Operations:
//!
//! * [`FlashChip::program_page`] — first program of an erased page.
//! * [`FlashChip::reprogram_page`] — in-place overwrite of a programmed
//!   page; legal only if every bit transition is `1 → 0` (the IPA append).
//! * [`FlashChip::append_region`] — convenience for `write_delta`: splice a
//!   byte range into the current image and re-program in place, accounting
//!   bus transfer only for the delta bytes.
//! * [`FlashChip::erase_block`] — the only way to get `0 → 1` transitions.
//!
//! Each mutation advances the simulated clock by a datasheet-class latency
//! and exposes neighbouring pages to program interference.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::block::{build_blocks, Block};
use crate::cell::FlashMode;
use crate::clock::SimClock;
use crate::config::DeviceConfig;
use crate::error::{FlashError, Result};
use crate::geometry::{Geometry, Ppa};
use crate::interference::{Coupling, DisturbModel};
use crate::ispp::ProgramKind;
use crate::stats::FlashStats;

/// A page image returned by [`FlashChip::read_page`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageImage {
    pub data: Vec<u8>,
    pub oob: Vec<u8>,
}

/// One plane's page of a multi-plane program command.
#[derive(Debug, Clone, Copy)]
pub struct MultiPlaneWrite<'a> {
    pub ppa: Ppa,
    pub data: &'a [u8],
    pub oob: &'a [u8],
}

/// The simulated NAND device.
pub struct FlashChip {
    config: DeviceConfig,
    blocks: Vec<Block>,
    clock: SimClock,
    stats: FlashStats,
    disturb: DisturbModel,
    rng: StdRng,
    /// Erase operations per plane (`plane = block % planes`). The
    /// controller's die-level wear view must aggregate these — reporting
    /// plane 0 alone undercounts wear on every multi-plane die.
    plane_erases: Vec<u64>,
}

impl FlashChip {
    pub fn new(config: DeviceConfig) -> Self {
        let blocks = build_blocks(&config.geometry);
        let rng = StdRng::seed_from_u64(config.seed);
        let disturb = DisturbModel::new(config.disturb);
        let plane_erases = vec![0; config.geometry.planes as usize];
        FlashChip {
            config,
            blocks,
            clock: SimClock::new(),
            stats: FlashStats::default(),
            disturb,
            rng,
            plane_erases,
        }
    }

    #[inline]
    pub fn geometry(&self) -> &Geometry {
        &self.config.geometry
    }

    #[inline]
    pub fn mode(&self) -> FlashMode {
        self.config.mode
    }

    #[inline]
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    #[inline]
    pub fn stats(&self) -> &FlashStats {
        &self.stats
    }

    #[inline]
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Simulated time elapsed since device creation, nanoseconds.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// NOP budget (programs between erases) for a page index.
    #[inline]
    pub fn nop_limit(&self, page: u32) -> u16 {
        self.config
            .nop_override
            .unwrap_or_else(|| self.config.mode.default_nop(page))
    }

    fn check_bounds(&self, ppa: Ppa) -> Result<()> {
        if !self.config.geometry.contains(ppa) {
            return Err(FlashError::OutOfBounds { ppa });
        }
        if self.blocks[ppa.block as usize].bad {
            return Err(FlashError::BadBlock { block: ppa.block });
        }
        if !self.config.mode.page_usable(ppa.page) {
            return Err(FlashError::PageNotUsable { ppa });
        }
        Ok(())
    }

    fn check_sizes(&self, data: &[u8], oob: &[u8]) -> Result<()> {
        if data.len() != self.config.geometry.page_size {
            return Err(FlashError::SizeMismatch {
                expected: self.config.geometry.page_size,
                got: data.len(),
                what: "page data",
            });
        }
        if oob.len() != self.config.geometry.oob_size {
            return Err(FlashError::SizeMismatch {
                expected: self.config.geometry.oob_size,
                got: oob.len(),
                what: "page OOB",
            });
        }
        Ok(())
    }

    /// Is the page still erased (never programmed since last erase)?
    pub fn is_erased(&self, ppa: Ppa) -> Result<bool> {
        if !self.config.geometry.contains(ppa) {
            return Err(FlashError::OutOfBounds { ppa });
        }
        Ok(self.blocks[ppa.block as usize].page(ppa.page).is_erased())
    }

    /// Programs since last erase for a page.
    pub fn program_count(&self, ppa: Ppa) -> Result<u16> {
        if !self.config.geometry.contains(ppa) {
            return Err(FlashError::OutOfBounds { ppa });
        }
        Ok(self.blocks[ppa.block as usize].page(ppa.page).program_count)
    }

    /// Wear (erase count) of a block.
    pub fn erase_count(&self, block: u32) -> Result<u32> {
        if block >= self.config.geometry.blocks {
            return Err(FlashError::BlockOutOfBounds { block });
        }
        Ok(self.blocks[block as usize].erase_count)
    }

    /// Maximum erase count across all blocks (wear peak; drives the
    /// longevity experiment).
    pub fn max_erase_count(&self) -> u32 {
        self.blocks.iter().map(|b| b.erase_count).max().unwrap_or(0)
    }

    /// Side-effect-free view of a page's current data image, for tests and
    /// internal FTL bookkeeping. Returns `None` for never-programmed pages.
    pub fn peek_data(&self, ppa: Ppa) -> Option<&[u8]> {
        self.config
            .geometry
            .contains(ppa)
            .then(|| self.blocks[ppa.block as usize].page(ppa.page).data())
            .flatten()
    }

    /// Side-effect-free view of a page's OOB image.
    pub fn peek_oob(&self, ppa: Ppa) -> Option<&[u8]> {
        self.config
            .geometry
            .contains(ppa)
            .then(|| self.blocks[ppa.block as usize].page(ppa.page).oob())
            .flatten()
    }

    /// Read a page (data + OOB), advancing the clock by sense + transfer
    /// time. Reading an erased page is an explicit error so layering bugs
    /// surface immediately.
    pub fn read_page(&mut self, ppa: Ppa) -> Result<PageImage> {
        self.check_bounds(ppa)?;
        let g = self.config.geometry;
        let img = self.snapshot_image(ppa)?;

        let t = self.config.latency.read_sense_ns
            + self.config.latency.transfer_ns(g.page_size + g.oob_size);
        self.clock.advance_ns(t);
        self.stats.page_reads += 1;
        self.stats.bytes_read += (g.page_size + g.oob_size) as u64;
        self.stats.busy_ns += t;
        Ok(img)
    }

    /// Time-free core of every read command: reject erased pages, copy
    /// the current image out of the array. Shared by [`FlashChip::read_page`]
    /// and [`FlashChip::multi_plane_read`] so the two paths can never
    /// drift in what a read returns.
    fn snapshot_image(&self, ppa: Ppa) -> Result<PageImage> {
        let g = self.config.geometry;
        let page = self.blocks[ppa.block as usize].page(ppa.page);
        if page.is_erased() {
            return Err(FlashError::ReadErased { ppa });
        }
        Ok(PageImage {
            data: page
                .data()
                .map(<[u8]>::to_vec)
                .unwrap_or_else(|| vec![0xFF; g.page_size]),
            oob: page
                .oob()
                .map(<[u8]>::to_vec)
                .unwrap_or_else(|| vec![0xFF; g.oob_size]),
        })
    }

    /// Which ISPP staircase a program of this page runs.
    fn program_kind(&self, page: u32) -> ProgramKind {
        match self.config.mode {
            FlashMode::Slc => ProgramKind::SlcPage,
            FlashMode::PSlc => ProgramKind::MlcLsb,
            FlashMode::MlcFull | FlashMode::OddMlc => {
                if self.config.mode.is_lsb_page(page) {
                    ProgramKind::MlcLsb
                } else {
                    ProgramKind::MlcMsb
                }
            }
            FlashMode::Tlc3d => match page % 3 {
                0 => ProgramKind::TlcLsb,
                1 => ProgramKind::TlcCsb,
                _ => ProgramKind::TlcMsb,
            },
        }
    }

    /// First program of an erased page.
    pub fn program_page(&mut self, ppa: Ppa, data: &[u8], oob: &[u8]) -> Result<()> {
        self.check_bounds(ppa)?;
        self.check_sizes(data, oob)?;
        {
            let page = self.blocks[ppa.block as usize].page(ppa.page);
            if !page.is_erased() {
                return Err(FlashError::NotErased { ppa });
            }
        }
        self.program_raw(ppa, data, oob, data.len() + oob.len())
    }

    /// In-place overwrite of a programmed page. Every bit transition must
    /// be `1 → 0`; anything else is [`FlashError::IllegalOverwrite`]. The
    /// full new image is supplied (like re-programming the wordline with
    /// the page register contents); bus accounting charges the full page.
    pub fn reprogram_page(&mut self, ppa: Ppa, data: &[u8], oob: &[u8]) -> Result<()> {
        self.check_bounds(ppa)?;
        self.check_sizes(data, oob)?;
        self.validate_overwrite(ppa, data, oob)?;
        self.program_raw(ppa, data, oob, data.len() + oob.len())
    }

    /// `write_delta` primitive: splice `bytes` at `data_off` (and
    /// `oob_bytes` at `oob_off`) into the page's current image and
    /// re-program in place. Only the spliced bytes cross the bus.
    pub fn append_region(
        &mut self,
        ppa: Ppa,
        data_off: usize,
        bytes: &[u8],
        oob_off: usize,
        oob_bytes: &[u8],
    ) -> Result<()> {
        self.check_bounds(ppa)?;
        let g = self.config.geometry;
        if data_off + bytes.len() > g.page_size {
            return Err(FlashError::SizeMismatch {
                expected: g.page_size,
                got: data_off + bytes.len(),
                what: "append data range",
            });
        }
        if oob_off + oob_bytes.len() > g.oob_size {
            return Err(FlashError::SizeMismatch {
                expected: g.oob_size,
                got: oob_off + oob_bytes.len(),
                what: "append OOB range",
            });
        }
        let (mut data, mut oob) = {
            let page = self.blocks[ppa.block as usize].page(ppa.page);
            if page.is_erased() {
                return Err(FlashError::NotErased { ppa });
            }
            (
                page.data()
                    .map(<[u8]>::to_vec)
                    .unwrap_or_else(|| vec![0xFF; g.page_size]),
                page.oob()
                    .map(<[u8]>::to_vec)
                    .unwrap_or_else(|| vec![0xFF; g.oob_size]),
            )
        };
        data[data_off..data_off + bytes.len()].copy_from_slice(bytes);
        oob[oob_off..oob_off + oob_bytes.len()].copy_from_slice(oob_bytes);
        self.validate_overwrite(ppa, &data, &oob)?;
        self.program_raw(ppa, &data, &oob, bytes.len() + oob_bytes.len())
    }

    /// Enforce the erase-before-overwrite relaxation: a re-program is legal
    /// iff no bit goes `0 → 1`.
    fn validate_overwrite(&self, ppa: Ppa, data: &[u8], oob: &[u8]) -> Result<()> {
        let page = self.blocks[ppa.block as usize].page(ppa.page);
        if page.is_erased() {
            return Err(FlashError::NotErased { ppa });
        }
        if let Some(old) = page.data() {
            if let Some(off) = first_illegal_byte(old, data) {
                return Err(FlashError::IllegalOverwrite {
                    ppa,
                    byte_offset: off,
                    in_oob: false,
                });
            }
        }
        if let Some(old) = page.oob() {
            if let Some(off) = first_illegal_byte(old, oob) {
                return Err(FlashError::IllegalOverwrite {
                    ppa,
                    byte_offset: off,
                    in_oob: true,
                });
            }
        }
        Ok(())
    }

    /// Common single-page program path: NOP check, then the shared store
    /// core, then one staircase + transfer of time.
    fn program_raw(&mut self, ppa: Ppa, data: &[u8], oob: &[u8], transferred: usize) -> Result<()> {
        let nop = self.nop_limit(ppa.page);
        {
            let page = self.blocks[ppa.block as usize].page(ppa.page);
            if page.program_count >= nop {
                return Err(FlashError::NopExceeded { ppa, nop });
            }
        }

        let staircase = self.store_program(ppa, data, oob);
        let t = staircase + self.config.latency.transfer_ns(transferred);
        self.clock.advance_ns(t);
        self.stats.busy_ns += t;
        self.stats.bytes_written += transferred as u64;
        Ok(())
    }

    /// Time-free core of every program command: store the image, bump the
    /// per-page program count and the program/reprogram counters, expose
    /// the wordline to disturb noise. Whether this is a reprogram is read
    /// off the page itself (programmed = reprogram), so single-page and
    /// multi-plane paths cannot disagree. Returns this member's staircase
    /// latency — the caller decides how staircases combine (alone for a
    /// single command, `max` across planes for a multi-plane one).
    fn store_program(&mut self, ppa: Ppa, data: &[u8], oob: &[u8]) -> u64 {
        let g = self.config.geometry;
        let is_reprogram = !self.blocks[ppa.block as usize].page(ppa.page).is_erased();
        {
            let page = self.blocks[ppa.block as usize].page_mut(ppa.page);
            page.data_mut(g.page_size).copy_from_slice(data);
            page.oob_mut(g.oob_size).copy_from_slice(oob);
            page.program_count += 1;
        }
        if is_reprogram {
            self.stats.page_reprograms += 1;
        } else {
            self.stats.page_programs += 1;
        }
        self.apply_interference(ppa, is_reprogram);
        self.config
            .ispp
            .program_latency_ns(self.program_kind(ppa.page))
    }

    /// Expose victims of a program operation to disturb noise.
    fn apply_interference(&mut self, aggressor: Ppa, is_reprogram: bool) {
        let mode = self.config.mode;
        let mut victims: Vec<(u32, Coupling)> = Vec::with_capacity(8);
        for partner in mode.wordline_partners(aggressor.page).into_iter().flatten() {
            victims.push((partner, Coupling::SameWordline));
        }
        let wl = mode.wordline_of(aggressor.page);
        let ppb = self.config.geometry.pages_per_block;
        let ppw = mode.pages_per_wordline();
        for neighbour_wl in [wl.checked_sub(1), Some(wl + 1)].into_iter().flatten() {
            for k in 0..ppw {
                let page = neighbour_wl * ppw + k;
                if page < ppb && page != aggressor.page {
                    victims.push((page, Coupling::AdjacentWordline));
                }
            }
        }

        let nbits = self.config.geometry.page_size * 8;
        for (victim_page, coupling) in victims {
            let vppa = Ppa::new(aggressor.block, victim_page);
            // Only programmed victims hold data that can be corrupted.
            let programmed = !self.blocks[vppa.block as usize].page(vppa.page).is_erased();
            if !programmed {
                continue;
            }
            let p = self.disturb.flip_probability(
                mode,
                aggressor.page,
                victim_page,
                coupling,
                is_reprogram,
            );
            let count = self.disturb.draw_flip_count(&mut self.rng, nbits, p);
            if count == 0 {
                continue;
            }
            let g = self.config.geometry;
            let page = self.blocks[vppa.block as usize].page_mut(vppa.page);
            let flipped =
                self.disturb
                    .inject_flips(&mut self.rng, page.data_mut(g.page_size), count);
            self.stats.disturb_bits_injected += flipped as u64;
        }
    }

    /// One command staircase, one page per plane: validate the whole set
    /// first (plane alignment, bounds, sizes, per-plane NOP budgets and
    /// overwrite legality), then program every member. The command is
    /// atomic — any illegal member rejects it with flash state untouched.
    /// Time charged: the full transfer of every member (the bus is still
    /// serial) plus a *single* program staircase, which is the ~planes×
    /// per-die program-bandwidth win.
    pub fn multi_plane_program(&mut self, pages: &[MultiPlaneWrite<'_>]) -> Result<()> {
        let ppas: Vec<Ppa> = pages.iter().map(|p| p.ppa).collect();
        self.config.geometry.check_multi_plane(&ppas)?;
        let mut total = 0usize;
        for p in pages {
            self.check_bounds(p.ppa)?;
            self.check_sizes(p.data, p.oob)?;
            let nop = self.nop_limit(p.ppa.page);
            let page = self.blocks[p.ppa.block as usize].page(p.ppa.page);
            if page.program_count >= nop {
                return Err(FlashError::NopExceeded { ppa: p.ppa, nop });
            }
            if !page.is_erased() {
                self.validate_overwrite(p.ppa, p.data, p.oob)?;
            }
            total += p.data.len() + p.oob.len();
        }

        let mut staircase = 0u64;
        for p in pages {
            staircase = staircase.max(self.store_program(p.ppa, p.data, p.oob));
        }
        let t = staircase + self.config.latency.transfer_ns(total);
        self.clock.advance_ns(t);
        self.stats.busy_ns += t;
        self.stats.bytes_written += total as u64;
        self.stats.multi_plane_programs += 1;
        Ok(())
    }

    /// Cached (pipelined) program: the die's second page register lets
    /// the bus transfer of batch member `i + 1` overlap the program pulse
    /// of member `i`, so a batch costs
    /// `xfer(0) + Σ max(pulse(i), xfer(i+1)) + pulse(last)` instead of the
    /// sequential `Σ (xfer(i) + pulse(i))`. Members may address any pages
    /// of the die — the pipeline lives in the register file, not the
    /// array, so there is no plane-alignment rule — but each page may
    /// appear at most once per batch. The command is atomic: every member
    /// is validated (bounds, sizes, NOP budget, overwrite legality) before
    /// any is stored.
    pub fn cache_program(&mut self, pages: &[MultiPlaneWrite<'_>]) -> Result<()> {
        if pages.is_empty() {
            return Ok(());
        }
        let mut total = 0usize;
        for (i, p) in pages.iter().enumerate() {
            // A duplicate target would make the up-front validation lie:
            // the second store would be an overwrite of state the batch
            // itself created. Reject it like a twice-addressed plane.
            if let Some(dup) = pages[..i].iter().find(|q| q.ppa == p.ppa) {
                return Err(FlashError::MultiPlaneMismatch {
                    a: dup.ppa,
                    b: p.ppa,
                    reason: "page addressed twice in one cached-program batch",
                });
            }
            self.check_bounds(p.ppa)?;
            self.check_sizes(p.data, p.oob)?;
            let nop = self.nop_limit(p.ppa.page);
            let page = self.blocks[p.ppa.block as usize].page(p.ppa.page);
            if page.program_count >= nop {
                return Err(FlashError::NopExceeded { ppa: p.ppa, nop });
            }
            if !page.is_erased() {
                self.validate_overwrite(p.ppa, p.data, p.oob)?;
            }
            total += p.data.len() + p.oob.len();
        }

        let xfer: Vec<u64> = pages
            .iter()
            .map(|p| self.config.latency.transfer_ns(p.data.len() + p.oob.len()))
            .collect();
        let mut t = xfer[0];
        for (i, p) in pages.iter().enumerate() {
            let pulse = self.store_program(p.ppa, p.data, p.oob);
            t += match xfer.get(i + 1) {
                Some(&next) => pulse.max(next),
                None => pulse,
            };
        }
        self.clock.advance_ns(t);
        self.stats.busy_ns += t;
        self.stats.bytes_written += total as u64;
        self.stats.cache_programs += 1;
        Ok(())
    }

    /// Multi-plane read: one sense across the planes (they share the
    /// command path but sense concurrently), then each page's transfer
    /// over the serial bus. Same alignment rule and atomicity as
    /// [`FlashChip::multi_plane_program`]; images return in `ppas` order.
    pub fn multi_plane_read(&mut self, ppas: &[Ppa]) -> Result<Vec<PageImage>> {
        self.config.geometry.check_multi_plane(ppas)?;
        let g = self.config.geometry;
        let mut images = Vec::with_capacity(ppas.len());
        for &ppa in ppas {
            self.check_bounds(ppa)?;
            images.push(self.snapshot_image(ppa)?);
        }
        let total = ppas.len() * (g.page_size + g.oob_size);
        let t = self.config.latency.read_sense_ns + self.config.latency.transfer_ns(total);
        self.clock.advance_ns(t);
        self.stats.page_reads += ppas.len() as u64;
        self.stats.bytes_read += total as u64;
        self.stats.busy_ns += t;
        self.stats.multi_plane_reads += 1;
        Ok(images)
    }

    /// Erase operations a plane has absorbed (all its blocks summed).
    pub fn plane_erase_count(&self, plane: u32) -> u64 {
        self.plane_erases[plane as usize]
    }

    /// Per-plane erase counters, indexed by plane.
    pub fn plane_erase_counts(&self) -> &[u64] {
        &self.plane_erases
    }

    /// Erase a block: the only operation that restores `1` bits. Retires
    /// the block once endurance is exhausted.
    pub fn erase_block(&mut self, block: u32) -> Result<()> {
        if block >= self.config.geometry.blocks {
            return Err(FlashError::BlockOutOfBounds { block });
        }
        if self.blocks[block as usize].bad {
            return Err(FlashError::BadBlock { block });
        }
        self.plane_erases[self.config.geometry.plane_of(block) as usize] += 1;
        self.blocks[block as usize].erase();
        if self.blocks[block as usize].erase_count >= self.config.erase_endurance {
            self.blocks[block as usize].bad = true;
        }
        let t = self.config.latency.erase_ns;
        self.clock.advance_ns(t);
        self.stats.busy_ns += t;
        self.stats.block_erases += 1;
        Ok(())
    }

    /// Multi-plane erase: one erase pulse across an aligned block group
    /// (one block per plane, same in-plane index). Validates the whole
    /// set first — alignment, bounds, bad blocks — so the command is
    /// atomic like [`FlashChip::multi_plane_program`]: any illegal member
    /// rejects it with flash state (and the clock) untouched. Time
    /// charged is a *single* `erase_ns` pulse; per-plane wear counters,
    /// endurance retirement and `block_erases` advance per member.
    pub fn multi_plane_erase(&mut self, blocks: &[u32]) -> Result<()> {
        self.config.geometry.check_multi_plane_blocks(blocks)?;
        for &block in blocks {
            if self.blocks[block as usize].bad {
                return Err(FlashError::BadBlock { block });
            }
        }

        for &block in blocks {
            self.plane_erases[self.config.geometry.plane_of(block) as usize] += 1;
            self.blocks[block as usize].erase();
            if self.blocks[block as usize].erase_count >= self.config.erase_endurance {
                self.blocks[block as usize].bad = true;
            }
        }
        let t = self.config.latency.erase_ns;
        self.clock.advance_ns(t);
        self.stats.busy_ns += t;
        self.stats.block_erases += blocks.len() as u64;
        self.stats.multi_plane_erases += 1;
        Ok(())
    }

    /// Record an erase-suspend served by this die. The scheduler owns the
    /// erase-suspend *timing* (the suspend cost and the pushed-out resume
    /// live on the controller's die clock); the chip records the event and
    /// charges the park/resume overhead as array-busy time. State is
    /// untouched — the erase already completed eagerly when it was issued,
    /// and suspension reorders time, never state.
    pub fn record_erase_suspend(&mut self) {
        self.stats.erase_suspends += 1;
        self.stats.busy_ns += self.config.latency.erase_suspend_ns;
    }

    /// Mark a block bad by hand (failure-injection hooks).
    pub fn retire_block(&mut self, block: u32) -> Result<()> {
        if block >= self.config.geometry.blocks {
            return Err(FlashError::BlockOutOfBounds { block });
        }
        self.blocks[block as usize].bad = true;
        Ok(())
    }

    /// Is the block usable?
    pub fn is_bad(&self, block: u32) -> bool {
        self.blocks
            .get(block as usize)
            .map(|b| b.bad)
            .unwrap_or(true)
    }
}

/// First byte offset where `new` requires a `0 → 1` transition vs `old`.
#[inline]
fn first_illegal_byte(old: &[u8], new: &[u8]) -> Option<usize> {
    debug_assert_eq!(old.len(), new.len());
    old.iter().zip(new).position(|(&o, &n)| n & !o != 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::DisturbRates;

    fn quiet_chip() -> FlashChip {
        FlashChip::new(
            DeviceConfig::tiny()
                .with_mode(FlashMode::Slc)
                .with_disturb(DisturbRates::none()),
        )
    }

    fn page_of(chip: &FlashChip, fill: u8) -> (Vec<u8>, Vec<u8>) {
        (
            vec![fill; chip.geometry().page_size],
            vec![0xFF; chip.geometry().oob_size],
        )
    }

    #[test]
    fn program_then_read_round_trip() {
        let mut chip = quiet_chip();
        let (data, oob) = page_of(&chip, 0xAB);
        let ppa = Ppa::new(1, 2);
        chip.program_page(ppa, &data, &oob).unwrap();
        let img = chip.read_page(ppa).unwrap();
        assert_eq!(img.data, data);
        assert_eq!(img.oob, oob);
        assert_eq!(chip.stats().page_programs, 1);
        assert_eq!(chip.stats().page_reads, 1);
    }

    #[test]
    fn cache_program_pipelines_transfers_behind_pulses() {
        // Sequential reference: same batch, one program at a time.
        let mut seq = quiet_chip();
        let mut cached = quiet_chip();
        let (data, oob) = page_of(&seq, 0x3C);
        let batch: Vec<Ppa> = (0..4).map(|p| Ppa::new(0, p)).collect();
        for &ppa in &batch {
            seq.program_page(ppa, &data, &oob).unwrap();
        }
        let writes: Vec<MultiPlaneWrite<'_>> = batch
            .iter()
            .map(|&ppa| MultiPlaneWrite {
                ppa,
                data: &data,
                oob: &oob,
            })
            .collect();
        cached.cache_program(&writes).unwrap();

        // Byte-identical state, same program counters, one cached command.
        for &ppa in &batch {
            assert_eq!(
                cached.read_page(ppa).unwrap().data,
                seq.read_page(ppa).unwrap().data
            );
        }
        assert_eq!(cached.stats().page_programs, 4);
        assert_eq!(cached.stats().cache_programs, 1);
        assert_eq!(seq.stats().cache_programs, 0);

        // Pipelining wins time: strictly faster than sequential, but it
        // can never beat the un-overlappable floor (first transfer plus
        // every pulse).
        let seq_busy = seq.stats().busy_ns;
        let cached_busy = cached.stats().busy_ns;
        let xfer = seq.config().latency.transfer_ns(data.len() + oob.len());
        let pulses = seq_busy - 4 * xfer;
        assert!(
            cached_busy < seq_busy,
            "cached {cached_busy} !< sequential {seq_busy}"
        );
        assert!(
            cached_busy >= xfer + pulses,
            "cached {cached_busy} beat the floor {}",
            xfer + pulses
        );
    }

    #[test]
    fn cache_program_rejects_duplicate_target() {
        let mut chip = quiet_chip();
        let (data, oob) = page_of(&chip, 0x11);
        let w = MultiPlaneWrite {
            ppa: Ppa::new(0, 0),
            data: &data,
            oob: &oob,
        };
        assert!(matches!(
            chip.cache_program(&[w, w]),
            Err(FlashError::MultiPlaneMismatch { .. })
        ));
        // Atomic: nothing was stored.
        assert!(chip.is_erased(Ppa::new(0, 0)).unwrap());
        assert_eq!(chip.stats().cache_programs, 0);
    }

    #[test]
    fn read_of_erased_page_errors() {
        let mut chip = quiet_chip();
        assert!(matches!(
            chip.read_page(Ppa::new(0, 0)),
            Err(FlashError::ReadErased { .. })
        ));
    }

    #[test]
    fn double_program_requires_erase() {
        let mut chip = quiet_chip();
        let (data, oob) = page_of(&chip, 0x00);
        let ppa = Ppa::new(0, 0);
        chip.program_page(ppa, &data, &oob).unwrap();
        assert!(matches!(
            chip.program_page(ppa, &data, &oob),
            Err(FlashError::NotErased { .. })
        ));
    }

    #[test]
    fn legal_in_place_append() {
        let mut chip = quiet_chip();
        let ppa = Ppa::new(2, 3);
        let mut data = vec![0xFF; chip.geometry().page_size];
        data[..100].fill(0x5A); // "original content"
        let oob = vec![0xFF; chip.geometry().oob_size];
        chip.program_page(ppa, &data, &oob).unwrap();

        // Append into previously erased bytes: legal.
        let mut appended = data.clone();
        appended[100..116].fill(0x33);
        chip.reprogram_page(ppa, &appended, &oob).unwrap();
        assert_eq!(chip.read_page(ppa).unwrap().data, appended);
        assert_eq!(chip.stats().page_reprograms, 1);
    }

    #[test]
    fn illegal_overwrite_rejected_with_offset() {
        let mut chip = quiet_chip();
        let ppa = Ppa::new(2, 3);
        let mut data = vec![0xFF; chip.geometry().page_size];
        data[10] = 0x00;
        let oob = vec![0xFF; chip.geometry().oob_size];
        chip.program_page(ppa, &data, &oob).unwrap();

        // Byte 10 would need 0→1 transitions: illegal without erase.
        let mut bad = data.clone();
        bad[10] = 0x01;
        match chip.reprogram_page(ppa, &bad, &oob) {
            Err(FlashError::IllegalOverwrite {
                byte_offset,
                in_oob,
                ..
            }) => {
                assert_eq!(byte_offset, 10);
                assert!(!in_oob);
            }
            other => panic!("expected IllegalOverwrite, got {other:?}"),
        }
        // And the stored image is untouched.
        assert_eq!(chip.read_page(ppa).unwrap().data, data);
    }

    #[test]
    fn illegal_oob_overwrite_detected() {
        let mut chip = quiet_chip();
        let ppa = Ppa::new(0, 1);
        let data = vec![0xFF; chip.geometry().page_size];
        let mut oob = vec![0xFF; chip.geometry().oob_size];
        oob[4] = 0x00;
        chip.program_page(ppa, &data, &oob).unwrap();
        let mut bad_oob = oob.clone();
        bad_oob[4] = 0xFF;
        assert!(matches!(
            chip.reprogram_page(ppa, &data, &bad_oob),
            Err(FlashError::IllegalOverwrite { in_oob: true, .. })
        ));
    }

    #[test]
    fn erase_restores_programmability() {
        let mut chip = quiet_chip();
        let (data, oob) = page_of(&chip, 0x00);
        let ppa = Ppa::new(5, 0);
        chip.program_page(ppa, &data, &oob).unwrap();
        chip.erase_block(5).unwrap();
        assert!(chip.is_erased(ppa).unwrap());
        chip.program_page(ppa, &data, &oob).unwrap();
        assert_eq!(chip.erase_count(5).unwrap(), 1);
    }

    #[test]
    fn nop_budget_enforced() {
        let mut chip = FlashChip::new(
            DeviceConfig::tiny()
                .with_mode(FlashMode::Slc)
                .with_disturb(DisturbRates::none())
                .with_nop(2),
        );
        let ppa = Ppa::new(0, 0);
        let mut data = vec![0xFF; chip.geometry().page_size];
        let oob = vec![0xFF; chip.geometry().oob_size];
        data[0] = 0xF0;
        chip.program_page(ppa, &data, &oob).unwrap();
        data[1] = 0xF0;
        chip.reprogram_page(ppa, &data, &oob).unwrap();
        data[2] = 0xF0;
        assert!(matches!(
            chip.reprogram_page(ppa, &data, &oob),
            Err(FlashError::NopExceeded { nop: 2, .. })
        ));
    }

    #[test]
    fn pslc_blocks_msb_pages() {
        let mut chip = FlashChip::new(
            DeviceConfig::tiny()
                .with_mode(FlashMode::PSlc)
                .with_disturb(DisturbRates::none()),
        );
        let data = vec![0xFF; chip.geometry().page_size];
        let oob = vec![0xFF; chip.geometry().oob_size];
        assert!(matches!(
            chip.program_page(Ppa::new(0, 0), &data, &oob),
            Err(FlashError::PageNotUsable { .. })
        ));
        chip.program_page(Ppa::new(0, 1), &data, &oob).unwrap();
    }

    #[test]
    fn append_region_transfers_only_delta() {
        let mut chip = quiet_chip();
        let ppa = Ppa::new(1, 1);
        let mut data = vec![0xFF; chip.geometry().page_size];
        data[..64].fill(0x11);
        let oob = vec![0xFF; chip.geometry().oob_size];
        chip.program_page(ppa, &data, &oob).unwrap();
        let before = chip.stats().bytes_written;

        let delta = [0x22u8; 16];
        let ecc = [0x00u8; 4];
        chip.append_region(ppa, 100, &delta, 8, &ecc).unwrap();
        let transferred = chip.stats().bytes_written - before;
        assert_eq!(transferred, 16 + 4, "only delta bytes cross the bus");

        let img = chip.read_page(ppa).unwrap();
        assert_eq!(&img.data[100..116], &delta);
        assert_eq!(&img.data[..64], &data[..64], "original content intact");
        assert_eq!(&img.oob[8..12], &ecc);
    }

    #[test]
    fn append_region_rejects_conflicting_bytes() {
        let mut chip = quiet_chip();
        let ppa = Ppa::new(1, 1);
        let mut data = vec![0xFF; chip.geometry().page_size];
        data[50] = 0x00;
        let oob = vec![0xFF; chip.geometry().oob_size];
        chip.program_page(ppa, &data, &oob).unwrap();
        // Appending 0xFF over a programmed 0x00 byte needs an erase.
        assert!(matches!(
            chip.append_region(ppa, 50, &[0xFF], 0, &[]),
            Err(FlashError::IllegalOverwrite {
                byte_offset: 50,
                ..
            })
        ));
    }

    #[test]
    fn endurance_retires_blocks() {
        let mut cfg = DeviceConfig::tiny()
            .with_mode(FlashMode::Slc)
            .with_disturb(DisturbRates::none());
        cfg.erase_endurance = 3;
        let mut chip = FlashChip::new(cfg);
        for _ in 0..3 {
            chip.erase_block(0).unwrap();
        }
        assert!(chip.is_bad(0));
        assert!(matches!(
            chip.erase_block(0),
            Err(FlashError::BadBlock { block: 0 })
        ));
    }

    #[test]
    fn clock_advances_with_operations() {
        let mut chip = quiet_chip();
        let (data, oob) = page_of(&chip, 0x00);
        assert_eq!(chip.elapsed_ns(), 0);
        chip.program_page(Ppa::new(0, 0), &data, &oob).unwrap();
        let after_program = chip.elapsed_ns();
        assert!(after_program > 0);
        chip.read_page(Ppa::new(0, 0)).unwrap();
        assert!(chip.elapsed_ns() > after_program);
        assert_eq!(chip.stats().busy_ns, chip.elapsed_ns());
    }

    #[test]
    fn msb_program_slower_than_lsb_on_mlc() {
        let mut chip = FlashChip::new(
            DeviceConfig::tiny()
                .with_mode(FlashMode::MlcFull)
                .with_disturb(DisturbRates::none()),
        );
        let (data, oob) = (
            vec![0x00; chip.geometry().page_size],
            vec![0xFF; chip.geometry().oob_size],
        );
        let t0 = chip.elapsed_ns();
        chip.program_page(Ppa::new(0, 1), &data, &oob).unwrap(); // LSB (odd)
        let lsb_t = chip.elapsed_ns() - t0;
        let t1 = chip.elapsed_ns();
        chip.program_page(Ppa::new(0, 0), &data, &oob).unwrap(); // MSB (even)
        let msb_t = chip.elapsed_ns() - t1;
        assert!(msb_t > lsb_t, "MSB {msb_t} must exceed LSB {lsb_t}");
    }

    #[test]
    fn disturb_noise_reaches_stats_under_hostile_config() {
        let mut cfg = DeviceConfig::tiny().with_mode(FlashMode::MlcFull);
        cfg.disturb = DisturbRates {
            wide_margin: 0.0,
            narrow_margin: 1e-3,
            safe_reprogram_factor: 10.0,
            unsafe_reprogram_factor: 10.0,
            same_wordline_factor: 10.0,
        };
        cfg.nop_override = Some(16);
        let mut chip = FlashChip::new(cfg);
        let oob = vec![0xFF; chip.geometry().oob_size];
        // Program the victim (odd page 1, same wordline as 0).
        let victim = vec![0xFF; chip.geometry().page_size];
        chip.program_page(Ppa::new(0, 1), &victim, &oob).unwrap();
        // Hammer the aggressor with re-programs.
        let mut agg = vec![0xFF; chip.geometry().page_size];
        chip.program_page(Ppa::new(0, 0), &agg, &oob).unwrap();
        for i in 0..8 {
            agg[i] = 0x00;
            chip.reprogram_page(Ppa::new(0, 0), &agg, &oob).unwrap();
        }
        assert!(
            chip.stats().disturb_bits_injected > 0,
            "hostile config must corrupt the wordline partner"
        );
    }
}
