//! Device configuration: geometry + mode + timing + noise + endurance.

use serde::{Deserialize, Serialize};

use crate::cell::FlashMode;
use crate::geometry::Geometry;
use crate::interference::DisturbRates;
use crate::ispp::IsppParams;

/// Bus / array timing that is not derived from the ISPP staircase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Array-to-register sense time for a page read, nanoseconds.
    pub read_sense_ns: u64,
    /// Bus transfer time per byte (ONFI-class ~200 MB/s ⇒ 5 ns/B).
    pub bus_ns_per_byte: u64,
    /// Block erase time, nanoseconds.
    pub erase_ns: u64,
    /// Time for the array to park an in-flight erase pulse on an
    /// erase-suspend command, before the die can serve a read. Datasheet
    /// tESPD-class figures; well under one sense time.
    #[serde(default)]
    pub erase_suspend_ns: u64,
}

impl LatencyModel {
    /// SLC-class timings.
    pub fn slc() -> Self {
        LatencyModel {
            read_sense_ns: 25_000,
            bus_ns_per_byte: 5,
            erase_ns: 1_500_000,
            erase_suspend_ns: 20_000,
        }
    }

    /// MLC-class timings (the paper's K9LCG08U1M ballpark).
    pub fn mlc() -> Self {
        LatencyModel {
            read_sense_ns: 75_000,
            bus_ns_per_byte: 5,
            erase_ns: 3_000_000,
            erase_suspend_ns: 50_000,
        }
    }

    /// 3D-TLC timings (slower sense, comparable erase).
    pub fn tlc() -> Self {
        LatencyModel {
            read_sense_ns: 90_000,
            bus_ns_per_byte: 5,
            erase_ns: 3_500_000,
            erase_suspend_ns: 50_000,
        }
    }

    pub fn for_mode(mode: FlashMode) -> Self {
        match mode {
            FlashMode::Slc => Self::slc(),
            FlashMode::Tlc3d => Self::tlc(),
            _ => Self::mlc(),
        }
    }

    /// Bus time to move `bytes` across the channel.
    #[inline]
    pub fn transfer_ns(&self, bytes: usize) -> u64 {
        self.bus_ns_per_byte * bytes as u64
    }
}

/// Complete configuration of a simulated device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    pub geometry: Geometry,
    pub mode: FlashMode,
    pub ispp: IsppParams,
    pub latency: LatencyModel,
    pub disturb: DisturbRates,
    /// Seed for the device's fault-injection RNG.
    pub seed: u64,
    /// Override the per-mode NOP budget (programs per page between erases).
    pub nop_override: Option<u16>,
    /// Block erase endurance: erases before a block is retired. MLC-class
    /// default; the longevity experiment (E4) divides this by the measured
    /// erase rate.
    pub erase_endurance: u32,
    /// How many times one in-flight erase may be suspended for host reads
    /// before it runs to completion unsuspendably (datasheets bound the
    /// resume count so an erase under constant read pressure still
    /// finishes). Zero disables erase-suspend entirely.
    #[serde(default)]
    pub erase_resume_limit: u16,
}

impl DeviceConfig {
    /// Config with everything derived from a geometry and mode.
    pub fn new(geometry: Geometry, mode: FlashMode) -> Self {
        DeviceConfig {
            geometry,
            mode,
            ispp: IsppParams::for_cell(mode.cell_type()),
            latency: LatencyModel::for_mode(mode),
            disturb: DisturbRates::realistic(),
            seed: 0xF1A5_81A5,
            nop_override: None,
            erase_endurance: match mode {
                FlashMode::Slc => 100_000,
                FlashMode::Tlc3d => 3_000,
                _ => 5_000,
            },
            erase_resume_limit: 2,
        }
    }

    /// 4 MB device for unit tests.
    pub fn tiny() -> Self {
        DeviceConfig::new(Geometry::tiny(), FlashMode::PSlc)
    }

    /// 64 MB device (128 blocks × 64 pages × 8 KB) for examples.
    pub fn small() -> Self {
        DeviceConfig::new(Geometry::new(128, 64, 8192, 128), FlashMode::PSlc)
    }

    /// 512 MB device matching the experiments in `EXPERIMENTS.md`.
    pub fn experiment(mode: FlashMode) -> Self {
        DeviceConfig::new(Geometry::experiment(), mode)
    }

    /// The paper's 8 GB K9LCG08U1M package (lazy allocation keeps this
    /// cheap until written).
    pub fn jasmine(mode: FlashMode) -> Self {
        DeviceConfig::new(Geometry::jasmine(), mode)
    }

    /// Builder-style mode override (re-derives ISPP/latency/endurance).
    pub fn with_mode(mut self, mode: FlashMode) -> Self {
        let seed = self.seed;
        let nop = self.nop_override;
        let disturb = self.disturb;
        let resume_limit = self.erase_resume_limit;
        self = DeviceConfig::new(self.geometry, mode);
        self.seed = seed;
        self.nop_override = nop;
        self.disturb = disturb;
        self.erase_resume_limit = resume_limit;
        self
    }

    /// Builder-style erase-suspend resume bound (0 disables suspend).
    pub fn with_erase_resume_limit(mut self, limit: u16) -> Self {
        self.erase_resume_limit = limit;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_disturb(mut self, rates: DisturbRates) -> Self {
        self.disturb = rates;
        self
    }

    pub fn with_nop(mut self, nop: u16) -> Self {
        self.nop_override = Some(nop);
        self
    }

    pub fn with_geometry(mut self, geometry: Geometry) -> Self {
        self.geometry = geometry;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_derives_parameters() {
        let slc = DeviceConfig::new(Geometry::tiny(), FlashMode::Slc);
        let mlc = DeviceConfig::new(Geometry::tiny(), FlashMode::OddMlc);
        assert!(slc.latency.erase_ns < mlc.latency.erase_ns);
        assert!(slc.erase_endurance > mlc.erase_endurance);
    }

    #[test]
    fn builders_preserve_overrides() {
        let c = DeviceConfig::tiny()
            .with_seed(7)
            .with_nop(3)
            .with_mode(FlashMode::OddMlc);
        assert_eq!(c.seed, 7);
        assert_eq!(c.nop_override, Some(3));
        assert_eq!(c.mode, FlashMode::OddMlc);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let l = LatencyModel::mlc();
        assert_eq!(l.transfer_ns(8192), 8192 * 5);
        assert!(l.transfer_ns(100) < l.transfer_ns(8192));
    }
}
