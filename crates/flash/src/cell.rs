//! Cell types, operating modes and the page-pairing rules of MLC NAND.
//!
//! Section 3 of the paper ("Flash types and program interference")
//! distinguishes:
//!
//! * **SLC** — one bit per cell; large threshold-voltage margins make
//!   re-programming (appending) safe without restrictions.
//! * **MLC full** — two bits per cell; each wordline carries an LSB page and
//!   an MSB page. Margins are tight, so re-programming causes program
//!   interference; IPA is *not* safe here.
//! * **pSLC** — MLC silicon used SLC-style: only LSB pages are used, the
//!   capacity halves, and interference tolerance matches SLC.
//! * **odd-MLC** — full capacity is kept, but IPA is applied only to LSB
//!   ("odd-numbered" in the paper's convention) pages; MSB pages are always
//!   written out-of-place.
//!
//! The simulator keeps physics (what the chip *can* do) separate from policy
//! (what the FTL/DBMS *chooses* to do): [`FlashMode`] answers both "is this
//! page usable at all?" and "may deltas be appended to this page?", and the
//! interference model keys its error rates off the same classification.

use serde::{Deserialize, Serialize};

/// Bits-per-cell technology of the simulated NAND.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellType {
    /// Single-level cell: 1 bit/cell, 2 charge levels.
    Slc,
    /// Multi-level cell: 2 bits/cell, 4 charge levels.
    Mlc,
    /// Triple-level cell: 3 bits/cell, 8 charge levels (3D NAND).
    Tlc,
}

impl CellType {
    /// Number of distinguishable charge levels.
    #[inline]
    pub const fn levels(self) -> u8 {
        match self {
            CellType::Slc => 2,
            CellType::Mlc => 4,
            CellType::Tlc => 8,
        }
    }

    /// Bits stored per cell.
    #[inline]
    pub const fn bits_per_cell(self) -> u8 {
        match self {
            CellType::Slc => 1,
            CellType::Mlc => 2,
            CellType::Tlc => 3,
        }
    }
}

/// Operating mode of the device — the paper's three IPA-capable
/// configurations, the unsafe full-MLC reference used in the interference
/// experiment (E7), and the §3 "3D NAND" configuration (TLC silicon whose
/// manufacturing makes it "Bitline Interference Free / Wordline
/// Interference Almost Free", with the odd-MLC technique applied to its
/// LSB pages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlashMode {
    /// Native SLC silicon. All pages usable, all pages IPA-capable.
    Slc,
    /// MLC used at full capacity with no IPA restrictions. Re-programming
    /// MSB-coupled pages causes heavy program interference; exists so the
    /// danger the paper warns about is measurable.
    MlcFull,
    /// Pseudo-SLC: MLC silicon, only LSB pages used ("every second page"),
    /// halving capacity but restoring SLC-class interference margins.
    PSlc,
    /// Odd-MLC: full capacity; IPA allowed only on LSB (odd-numbered)
    /// pages, MSB (even-numbered) pages must be written out-of-place.
    OddMlc,
    /// 3D-NAND TLC: wordlines carry page triplets (LSB/CSB/MSB); IPA is
    /// applied odd-MLC-style to the LSB page of each triplet, and the
    /// interference margins are wide by construction (charge-trap 3D
    /// cells), per the paper's §3 and the Samsung V-NAND white paper.
    Tlc3d,
}

impl FlashMode {
    /// The underlying silicon for this mode.
    #[inline]
    pub const fn cell_type(self) -> CellType {
        match self {
            FlashMode::Slc => CellType::Slc,
            FlashMode::MlcFull | FlashMode::PSlc | FlashMode::OddMlc => CellType::Mlc,
            FlashMode::Tlc3d => CellType::Tlc,
        }
    }

    /// Is `page` (index within its block) an LSB page?
    ///
    /// The paper's convention is that *odd-numbered* pages are the LSB pages
    /// ("IPA are only applied to LSB pages (odd numbered pages)"); a
    /// wordline pair is `(2k, 2k+1)` with the MSB page even-numbered.
    /// On SLC every page is its own wordline and counts as LSB.
    #[inline]
    pub const fn is_lsb_page(self, page: u32) -> bool {
        match self {
            FlashMode::Slc => true,
            FlashMode::Tlc3d => page.is_multiple_of(3),
            _ => page % 2 == 1,
        }
    }

    /// The wordline index a page belongs to (pages `2k`/`2k+1` pair up on
    /// MLC; on SLC each page is its own wordline).
    #[inline]
    pub const fn wordline_of(self, page: u32) -> u32 {
        match self {
            FlashMode::Slc => page,
            FlashMode::Tlc3d => page / 3,
            _ => page / 2,
        }
    }

    /// The paired page sharing the wordline, if any (MLC modes only; TLC
    /// wordlines carry triplets — see [`FlashMode::wordline_partners`]).
    #[inline]
    pub const fn paired_page(self, page: u32) -> Option<u32> {
        match self {
            FlashMode::Slc | FlashMode::Tlc3d => None,
            _ => {
                if page.is_multiple_of(2) {
                    Some(page + 1)
                } else {
                    Some(page - 1)
                }
            }
        }
    }

    /// All other pages sharing the wordline (0, 1 or 2 of them).
    pub fn wordline_partners(self, page: u32) -> [Option<u32>; 2] {
        match self {
            FlashMode::Slc => [None, None],
            FlashMode::Tlc3d => {
                let base = page - page % 3;
                let mut out = [None, None];
                let mut k = 0;
                for p in base..base + 3 {
                    if p != page {
                        out[k] = Some(p);
                        k += 1;
                    }
                }
                out
            }
            _ => [self.paired_page(page), None],
        }
    }

    /// May this page be programmed at all in this mode?
    /// In pSLC mode the MSB (even) pages are skipped entirely.
    #[inline]
    pub const fn page_usable(self, page: u32) -> bool {
        match self {
            FlashMode::PSlc => page % 2 == 1,
            _ => true,
        }
    }

    /// Pages per wordline in this mode's silicon.
    #[inline]
    pub const fn pages_per_wordline(self) -> u32 {
        match self {
            FlashMode::Slc => 1,
            FlashMode::Tlc3d => 3,
            _ => 2,
        }
    }

    /// May delta records be appended (page re-programmed in place) on this
    /// page in this mode *safely*?
    ///
    /// `MlcFull` returns `true` for every page — the chip will execute the
    /// re-program — but the interference model makes doing so on
    /// MSB-coupled wordlines destructive. The *recommended* policy is
    /// expressed by [`FlashMode::ipa_safe`].
    #[inline]
    pub const fn ipa_safe(self, page: u32) -> bool {
        match self {
            FlashMode::Slc => true,
            FlashMode::PSlc => page % 2 == 1,
            FlashMode::OddMlc => page % 2 == 1,
            FlashMode::MlcFull => false,
            // §3: the odd-MLC technique on the LSB page of each triplet.
            FlashMode::Tlc3d => page.is_multiple_of(3),
        }
    }

    /// Fraction of raw capacity exposed to the host in this mode.
    #[inline]
    pub fn capacity_factor(self) -> f64 {
        match self {
            FlashMode::PSlc => 0.5,
            _ => 1.0,
        }
    }

    /// Number of usable pages per block for a block of `pages_per_block`
    /// physical pages.
    #[inline]
    pub fn usable_pages_per_block(self, pages_per_block: u32) -> u32 {
        match self {
            FlashMode::PSlc => pages_per_block / 2,
            _ => pages_per_block,
        }
    }

    /// Default partial-programming budget (NOP) for a page in this mode:
    /// how many program operations a page tolerates between erases.
    ///
    /// SLC datasheets typically allow NOP=4; the IPA prototype re-programs
    /// LSB pages several times, so SLC-margin modes get a generous budget
    /// (first program + appends), while MSB pages on MLC allow exactly one
    /// program.
    #[inline]
    pub const fn default_nop(self, page: u32) -> u16 {
        match self {
            FlashMode::Slc => 8,
            FlashMode::PSlc => 8,
            FlashMode::OddMlc => {
                if page % 2 == 1 {
                    8
                } else {
                    1
                }
            }
            // Full MLC officially allows a single program per page; the
            // chip still lets experiments override this via
            // `ProgramConstraints` to demonstrate *why* the limit exists.
            FlashMode::MlcFull => 1,
            FlashMode::Tlc3d => {
                if page.is_multiple_of(3) {
                    8
                } else {
                    1
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_and_bits() {
        assert_eq!(CellType::Slc.levels(), 2);
        assert_eq!(CellType::Mlc.levels(), 4);
        assert_eq!(CellType::Tlc.levels(), 8);
        assert_eq!(CellType::Slc.bits_per_cell(), 1);
        assert_eq!(CellType::Mlc.bits_per_cell(), 2);
        assert_eq!(CellType::Tlc.bits_per_cell(), 3);
    }

    #[test]
    fn slc_every_page_is_lsb_and_usable() {
        for p in 0..16 {
            assert!(FlashMode::Slc.is_lsb_page(p));
            assert!(FlashMode::Slc.page_usable(p));
            assert!(FlashMode::Slc.ipa_safe(p));
        }
    }

    #[test]
    fn pslc_uses_only_odd_pages() {
        let m = FlashMode::PSlc;
        assert!(!m.page_usable(0));
        assert!(m.page_usable(1));
        assert!(!m.page_usable(6));
        assert!(m.page_usable(7));
        assert_eq!(m.usable_pages_per_block(128), 64);
        assert!((m.capacity_factor() - 0.5).abs() < f64::EPSILON);
    }

    #[test]
    fn odd_mlc_ipa_only_on_odd_pages() {
        let m = FlashMode::OddMlc;
        for p in 0..16 {
            assert!(m.page_usable(p), "odd-MLC keeps full capacity");
            assert_eq!(m.ipa_safe(p), p % 2 == 1, "IPA only on LSB (odd) pages");
        }
    }

    #[test]
    fn mlc_full_never_ipa_safe() {
        for p in 0..16 {
            assert!(!FlashMode::MlcFull.ipa_safe(p));
        }
    }

    #[test]
    fn wordline_pairing() {
        let m = FlashMode::OddMlc;
        assert_eq!(m.wordline_of(0), 0);
        assert_eq!(m.wordline_of(1), 0);
        assert_eq!(m.wordline_of(7), 3);
        assert_eq!(m.paired_page(4), Some(5));
        assert_eq!(m.paired_page(5), Some(4));
        assert_eq!(FlashMode::Slc.paired_page(5), None);
    }

    #[test]
    fn tlc3d_triplets() {
        let m = FlashMode::Tlc3d;
        assert_eq!(m.pages_per_wordline(), 3);
        assert_eq!(m.wordline_of(7), 2);
        assert!(m.is_lsb_page(6));
        assert!(!m.is_lsb_page(7));
        assert!(m.ipa_safe(6) && !m.ipa_safe(7) && !m.ipa_safe(8));
        assert!(m.page_usable(5), "full capacity");
        let partners = m.wordline_partners(4); // triplet 3,4,5
        assert_eq!(partners, [Some(3), Some(5)]);
        assert_eq!(m.wordline_partners(3), [Some(4), Some(5)]);
        assert_eq!(m.default_nop(6), 8);
        assert_eq!(m.default_nop(7), 1);
        assert_eq!(m.cell_type(), CellType::Tlc);
    }

    #[test]
    fn nop_budgets() {
        assert_eq!(FlashMode::Slc.default_nop(0), 8);
        assert_eq!(FlashMode::OddMlc.default_nop(1), 8);
        assert_eq!(FlashMode::OddMlc.default_nop(2), 1);
        assert_eq!(FlashMode::MlcFull.default_nop(3), 1);
    }
}
