//! Operation counters for the simulated device.
//!
//! Everything Table 1 of the paper reports is derived from these counters
//! (host-level counts live in the FTL's own stats; these are the raw
//! device-level events).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Raw device-level counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashStats {
    /// Page read operations.
    pub page_reads: u64,
    /// First-time page program operations (out-of-place writes land here).
    pub page_programs: u64,
    /// In-place re-program operations (IPA appends land here).
    pub page_reprograms: u64,
    /// Block erase operations.
    pub block_erases: u64,
    /// Multi-plane program commands (each also counts its member pages in
    /// `page_programs`/`page_reprograms`; this counts command staircases).
    pub multi_plane_programs: u64,
    /// Multi-plane read commands (member pages count in `page_reads`).
    pub multi_plane_reads: u64,
    /// Multi-plane erase commands (member blocks count in
    /// `block_erases`; this counts single shared erase pulses).
    #[serde(default)]
    pub multi_plane_erases: u64,
    /// Cached (pipelined) program commands: one per batch whose member
    /// pages count in `page_programs`/`page_reprograms`; the batch
    /// overlaps each member's bus transfer with the previous member's
    /// program pulse.
    #[serde(default)]
    pub cache_programs: u64,
    /// Data+OOB bytes transferred over the bus for reads.
    pub bytes_read: u64,
    /// Data+OOB bytes transferred over the bus for programs.
    pub bytes_written: u64,
    /// Disturb-induced bit flips injected by the interference model.
    pub disturb_bits_injected: u64,
    /// Total simulated time the device spent busy, in nanoseconds.
    pub busy_ns: u64,
    /// Erase-suspend commands served: an in-flight block erase parked its
    /// pulse so the die could answer a host read, then resumed.
    #[serde(default)]
    pub erase_suspends: u64,
}

impl FlashStats {
    /// All program operations, first-time and in-place.
    #[inline]
    pub fn total_programs(&self) -> u64 {
        self.page_programs + self.page_reprograms
    }

    /// Element-wise sum — aggregates the dies of a multi-chip device.
    /// `busy_ns` adds too: it is total die-busy time, not wall time (on a
    /// parallel device the sum exceeds elapsed time; the ratio is the
    /// array-level utilisation).
    pub fn merged(&self, other: &FlashStats) -> FlashStats {
        FlashStats {
            page_reads: self.page_reads + other.page_reads,
            page_programs: self.page_programs + other.page_programs,
            page_reprograms: self.page_reprograms + other.page_reprograms,
            block_erases: self.block_erases + other.block_erases,
            multi_plane_programs: self.multi_plane_programs + other.multi_plane_programs,
            multi_plane_reads: self.multi_plane_reads + other.multi_plane_reads,
            multi_plane_erases: self.multi_plane_erases + other.multi_plane_erases,
            cache_programs: self.cache_programs + other.cache_programs,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
            disturb_bits_injected: self.disturb_bits_injected + other.disturb_bits_injected,
            busy_ns: self.busy_ns + other.busy_ns,
            erase_suspends: self.erase_suspends + other.erase_suspends,
        }
    }

    /// Difference of two snapshots (`self` later than `earlier`).
    pub fn delta_since(&self, earlier: &FlashStats) -> FlashStats {
        FlashStats {
            page_reads: self.page_reads - earlier.page_reads,
            page_programs: self.page_programs - earlier.page_programs,
            page_reprograms: self.page_reprograms - earlier.page_reprograms,
            block_erases: self.block_erases - earlier.block_erases,
            multi_plane_programs: self.multi_plane_programs - earlier.multi_plane_programs,
            multi_plane_reads: self.multi_plane_reads - earlier.multi_plane_reads,
            multi_plane_erases: self.multi_plane_erases - earlier.multi_plane_erases,
            cache_programs: self.cache_programs - earlier.cache_programs,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            disturb_bits_injected: self.disturb_bits_injected - earlier.disturb_bits_injected,
            busy_ns: self.busy_ns - earlier.busy_ns,
            erase_suspends: self.erase_suspends - earlier.erase_suspends,
        }
    }
}

impl fmt::Display for FlashStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} programs={} reprograms={} erases={} read_B={} written_B={} busy={:.3}s",
            self.page_reads,
            self.page_programs,
            self.page_reprograms,
            self.block_erases,
            self.bytes_read,
            self.bytes_written,
            self.busy_ns as f64 / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_delta() {
        let earlier = FlashStats {
            page_reads: 10,
            page_programs: 5,
            page_reprograms: 2,
            block_erases: 1,
            multi_plane_programs: 1,
            bytes_read: 100,
            bytes_written: 50,
            busy_ns: 1000,
            ..Default::default()
        };
        let later = FlashStats {
            page_reads: 15,
            page_programs: 9,
            page_reprograms: 6,
            block_erases: 2,
            multi_plane_programs: 3,
            bytes_read: 160,
            bytes_written: 90,
            disturb_bits_injected: 3,
            busy_ns: 2500,
            ..Default::default()
        };
        let d = later.delta_since(&earlier);
        assert_eq!(d.page_reads, 5);
        assert_eq!(d.total_programs(), 8);
        assert_eq!(d.multi_plane_programs, 2);
        assert_eq!(d.busy_ns, 1500);
    }

    #[test]
    fn display_mentions_core_counters() {
        let s = FlashStats::default().to_string();
        assert!(s.contains("reads=0"));
        assert!(s.contains("erases=0"));
    }
}
