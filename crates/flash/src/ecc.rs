//! SECDED error-correcting code for page data and delta records.
//!
//! Real MLC controllers use BCH/LDPC; for the simulator a single-error-
//! correcting, double-error-detecting (SECDED) code per chunk is sufficient
//! because the interference model injects sparse bit flips. The code is the
//! classic "XOR of set-bit positions" construction:
//!
//! * `locator` — XOR of `(bit_position + 1)` over all 1-bits. A single
//!   flipped bit at position `p` changes the locator by exactly `p + 1`,
//!   which both detects and locates it.
//! * `parity` — overall bit parity, which disambiguates single (correct)
//!   from double (detect-only) errors.
//!
//! Codewords are 4 bytes per chunk (`CHUNK = 512` data bytes), matching the
//! paper's Figure 3 OOB budget: an 8 KB page body needs 64 B for
//! `ECC_initial`, leaving room in a 128 B OOB for per-delta-record
//! codewords (`ECC_delta_rec 1..N`, one 4 B codeword each, delta records
//! being far smaller than a chunk).

use serde::{Deserialize, Serialize};

/// Data bytes covered by one codeword.
pub const CHUNK: usize = 512;

/// Encoded size of one codeword in the OOB area.
pub const CODEWORD_BYTES: usize = 4;

/// One SECDED codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Codeword {
    /// XOR of `(bit index + 1)` over all set bits of the chunk.
    pub locator: u16,
    /// Overall parity (number of set bits mod 2).
    pub parity: u8,
}

impl Codeword {
    /// Serialize to the on-flash OOB representation.
    ///
    /// An all-`0xFF` slot means "not yet written" on flash, so codewords are
    /// stored bit-inverted: the encoding of real data never equals `0xFF^4`
    /// padding... it *can*, so byte 3 is a marker (`0x00` = present). The
    /// marker byte also satisfies the 1→0 programming rule: erased `0xFF`
    /// slots can always be overwritten with any codeword.
    pub fn to_bytes(self) -> [u8; CODEWORD_BYTES] {
        [
            !(self.locator as u8),
            !((self.locator >> 8) as u8),
            !self.parity,
            0x00,
        ]
    }

    /// Parse a codeword slot; `None` if the slot is still erased.
    pub fn from_bytes(b: &[u8; CODEWORD_BYTES]) -> Option<Codeword> {
        if b == &[0xFF; CODEWORD_BYTES] {
            return None;
        }
        Some(Codeword {
            locator: (!b[0] as u16) | ((!b[1] as u16) << 8),
            parity: !b[2] & 1,
        })
    }
}

/// Result of a check-and-correct pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccOutcome {
    /// Data matched the codeword.
    Clean,
    /// A single-bit error was found and corrected in place; the payload is
    /// the corrected bit's absolute position within the checked region.
    Corrected { bit: usize },
    /// More errors than the code can correct.
    Uncorrectable,
}

/// Compute the codeword for up to [`CHUNK`] bytes of data.
///
/// Panics if `data` is longer than a chunk — callers split pages into
/// chunks with [`encode_region`].
pub fn encode_chunk(data: &[u8]) -> Codeword {
    assert!(data.len() <= CHUNK, "chunk too large: {}", data.len());
    let mut locator: u16 = 0;
    let mut ones: u32 = 0;
    for (byte_idx, &b) in data.iter().enumerate() {
        if b == 0 {
            continue;
        }
        ones += b.count_ones();
        let mut bits = b;
        while bits != 0 {
            let bit = bits.trailing_zeros() as usize;
            let pos = byte_idx * 8 + bit;
            locator ^= (pos + 1) as u16;
            bits &= bits - 1;
        }
    }
    Codeword {
        locator,
        parity: (ones & 1) as u8,
    }
}

/// Check one chunk against its codeword, correcting a single-bit error in
/// place if possible.
pub fn check_chunk(data: &mut [u8], expected: Codeword) -> EccOutcome {
    let actual = encode_chunk(data);
    if actual == expected {
        return EccOutcome::Clean;
    }
    let delta = actual.locator ^ expected.locator;
    let parity_differs = actual.parity != expected.parity;
    if parity_differs && delta != 0 {
        // Single-bit error at position delta - 1.
        let pos = (delta - 1) as usize;
        let (byte, bit) = (pos / 8, pos % 8);
        if byte >= data.len() {
            return EccOutcome::Uncorrectable;
        }
        data[byte] ^= 1 << bit;
        // Verify the correction actually reconciles the codeword (a 3-bit
        // error can masquerade as a single-bit one at a bogus position).
        if encode_chunk(data) == expected {
            EccOutcome::Corrected { bit: pos }
        } else {
            data[byte] ^= 1 << bit; // undo
            EccOutcome::Uncorrectable
        }
    } else {
        // Same parity but different locator => even number of flips >= 2.
        // Different parity but zero locator delta => >= 3 flips.
        EccOutcome::Uncorrectable
    }
}

/// Number of codewords needed to cover `len` bytes.
#[inline]
pub fn codewords_for(len: usize) -> usize {
    len.div_ceil(CHUNK)
}

/// Encode a whole region chunk-by-chunk.
pub fn encode_region(data: &[u8]) -> Vec<Codeword> {
    data.chunks(CHUNK).map(encode_chunk).collect()
}

/// Check (and correct in place) a whole region against its codewords.
///
/// Returns the total number of corrected bits, or `Err(chunk_index)` for the
/// first uncorrectable chunk.
pub fn check_region(data: &mut [u8], codewords: &[Codeword]) -> Result<usize, usize> {
    assert_eq!(
        codewords.len(),
        codewords_for(data.len()),
        "codeword count mismatch"
    );
    let mut corrected = 0usize;
    for (i, (chunk, &cw)) in data.chunks_mut(CHUNK).zip(codewords).enumerate() {
        match check_chunk(chunk, cw) {
            EccOutcome::Clean => {}
            EccOutcome::Corrected { .. } => corrected += 1,
            EccOutcome::Uncorrectable => return Err(i),
        }
    }
    Ok(corrected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn clean_round_trip() {
        let mut data = vec![0xA5u8; 300];
        let cw = encode_chunk(&data);
        assert_eq!(check_chunk(&mut data, cw), EccOutcome::Clean);
    }

    #[test]
    fn corrects_single_bit_flip() {
        let mut data: Vec<u8> = (0..CHUNK).map(|i| (i * 7) as u8).collect();
        let cw = encode_chunk(&data);
        let original = data.clone();
        data[123] ^= 0x10;
        match check_chunk(&mut data, cw) {
            EccOutcome::Corrected { bit } => assert_eq!(bit, 123 * 8 + 4),
            other => panic!("expected correction, got {other:?}"),
        }
        assert_eq!(data, original);
    }

    #[test]
    fn detects_double_bit_flip() {
        let mut data = vec![0x3Cu8; 64];
        let cw = encode_chunk(&data);
        data[1] ^= 0x01;
        data[2] ^= 0x01;
        assert_eq!(check_chunk(&mut data, cw), EccOutcome::Uncorrectable);
    }

    #[test]
    fn erased_codeword_slot_is_none() {
        assert_eq!(Codeword::from_bytes(&[0xFF; 4]), None);
    }

    #[test]
    fn codeword_bytes_round_trip() {
        let cw = Codeword {
            locator: 0xBEEF,
            parity: 1,
        };
        let b = cw.to_bytes();
        assert_eq!(Codeword::from_bytes(&b), Some(cw));
    }

    #[test]
    fn codeword_of_all_0xff_data_is_storable() {
        // Data of all 1-bits must still produce a codeword distinguishable
        // from an erased slot.
        let data = vec![0xFFu8; CHUNK];
        let cw = encode_chunk(&data);
        assert!(Codeword::from_bytes(&cw.to_bytes()).is_some());
    }

    #[test]
    fn region_helpers() {
        let mut data = vec![0u8; 8192];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        assert_eq!(codewords_for(8192), 16);
        let cws = encode_region(&data);
        assert_eq!(cws.len(), 16);
        data[5000] ^= 0x80;
        data[100] ^= 0x02;
        assert_eq!(check_region(&mut data, &cws), Ok(2));
    }

    #[test]
    fn region_uncorrectable_reports_chunk() {
        let mut data = vec![0x55u8; 1024];
        let cws = encode_region(&data);
        data[600] ^= 1;
        data[601] ^= 1;
        assert_eq!(check_region(&mut data, &cws), Err(1));
    }

    #[test]
    fn empty_region_is_trivially_clean() {
        let cws = encode_region(&[]);
        assert!(cws.is_empty());
        assert_eq!(check_region(&mut [], &cws), Ok(0));
    }

    proptest! {
        /// encode → check round-trips clean for any region, and a single
        /// bit flip anywhere (any chunk, including a short tail chunk) is
        /// corrected back to the original bytes.
        #[test]
        fn region_corrects_any_single_flip(
            data in proptest::collection::vec(any::<u8>(), 1..3 * CHUNK),
            flip in any::<usize>(),
        ) {
            let cws = encode_region(&data);
            let mut clean = data.clone();
            prop_assert_eq!(check_region(&mut clean, &cws), Ok(0));
            prop_assert_eq!(&clean, &data);

            let mut corrupted = data.clone();
            let bit = flip % (data.len() * 8);
            corrupted[bit / 8] ^= 1 << (bit % 8);
            prop_assert_eq!(check_region(&mut corrupted, &cws), Ok(1));
            prop_assert_eq!(corrupted, data);
        }

        /// A double flip inside one chunk is pinned to exactly that chunk
        /// index — never "corrected" into wrong data, never blamed on a
        /// neighbour.
        #[test]
        fn region_reports_the_corrupted_chunk(
            data in proptest::collection::vec(any::<u8>(), CHUNK + 1..4 * CHUNK),
            a in any::<usize>(),
            b in any::<usize>(),
            chunk_sel in any::<usize>(),
        ) {
            let cws = encode_region(&data);
            let chunk = chunk_sel % codewords_for(data.len());
            let start = chunk * CHUNK;
            let bits = (data.len() - start).min(CHUNK) * 8;
            let (pa, pb) = (a % bits, b % bits);
            prop_assume!(pa != pb);
            let mut corrupted = data.clone();
            corrupted[start + pa / 8] ^= 1 << (pa % 8);
            corrupted[start + pb / 8] ^= 1 << (pb % 8);
            prop_assert_eq!(check_region(&mut corrupted, &cws), Err(chunk));
        }

        /// Any single bit flip in any chunk is corrected back to the
        /// original data.
        #[test]
        fn corrects_any_single_flip(
            data in proptest::collection::vec(any::<u8>(), 1..CHUNK),
            flip in any::<usize>(),
        ) {
            let cw = encode_chunk(&data);
            let mut corrupted = data.clone();
            let pos = flip % (data.len() * 8);
            corrupted[pos / 8] ^= 1 << (pos % 8);
            let outcome = check_chunk(&mut corrupted, cw);
            prop_assert_eq!(outcome, EccOutcome::Corrected { bit: pos });
            prop_assert_eq!(corrupted, data);
        }

        /// Any two distinct bit flips are flagged uncorrectable — never
        /// silently "corrected" to wrong data.
        #[test]
        fn detects_any_double_flip(
            data in proptest::collection::vec(any::<u8>(), 1..CHUNK),
            a in any::<usize>(),
            b in any::<usize>(),
        ) {
            let bits = data.len() * 8;
            let (pa, pb) = (a % bits, b % bits);
            prop_assume!(pa != pb);
            let cw = encode_chunk(&data);
            let mut corrupted = data.clone();
            corrupted[pa / 8] ^= 1 << (pa % 8);
            corrupted[pb / 8] ^= 1 << (pb % 8);
            let outcome = check_chunk(&mut corrupted, cw);
            prop_assert_eq!(outcome, EccOutcome::Uncorrectable);
        }
    }
}
