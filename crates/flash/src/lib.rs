//! # `ipa-flash` — cell-accurate NAND flash simulator
//!
//! The hardware substrate for the IPA reproduction (the paper runs on the
//! OpenSSD Jasmine board; see `DESIGN.md` §2 for the substitution
//! rationale). The simulator enforces the physics the technique depends on:
//!
//! * **Erase-before-overwrite, relaxed precisely.** A page re-program is
//!   accepted iff every bit transition is `1 → 0` — the bitwise shadow of
//!   "ISPP can only add charge". Appends into still-erased bytes pass;
//!   anything else needs [`FlashChip::erase_block`].
//! * **ISPP timing** ([`ispp`]): program latency = pulse-staircase length,
//!   reproducing the fast-LSB / slow-MSB MLC asymmetry.
//! * **NOP budgets**: bounded partial programs per page between erases.
//! * **Program interference** ([`interference`]): re-programs disturb
//!   wordline neighbours; margins depend on [`FlashMode`], which is what
//!   makes pSLC / odd-MLC the safe IPA configurations.
//! * **OOB + SECDED ECC** ([`ecc`]): per-chunk codewords for page bodies
//!   and per-delta-record codewords, Figure 3 style.
//!
//! Every operation advances a deterministic [`SimClock`]; all randomness is
//! seeded. Two runs with the same config are identical.

pub mod block;
pub mod cell;
pub mod chip;
pub mod clock;
pub mod config;
pub mod ecc;
pub mod error;
pub mod geometry;
pub mod interference;
pub mod ispp;
pub mod nand;
pub mod stats;

pub use cell::{CellType, FlashMode};
pub use chip::{FlashChip, MultiPlaneWrite, PageImage};
pub use clock::SimClock;
pub use config::{DeviceConfig, LatencyModel};
pub use ecc::{check_region, encode_region, Codeword, EccOutcome};
pub use error::{FlashError, Result};
pub use geometry::{Geometry, Ppa};
pub use interference::{DisturbModel, DisturbRates};
pub use ispp::{IsppParams, ProgramKind};
pub use nand::Nand;
pub use stats::FlashStats;
