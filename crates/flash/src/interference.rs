//! Program-interference (disturb) model.
//!
//! Programming a wordline couples parasitically into neighbouring wordlines
//! and into the paired page of the same wordline, nudging victim cells'
//! charges upward. Whether that nudge flips a stored bit depends on the
//! threshold-voltage *margin* between levels — large on SLC/pSLC, small on
//! full MLC. The paper's §3 argues IPA is safe exactly where margins are
//! wide (SLC, pSLC, the LSB pages of odd-MLC) and unsafe on full-MLC;
//! experiment E7 makes that measurable by running the same append stream
//! under each mode and counting ECC events.
//!
//! Mechanics: each (re)program of page `p` in block `b` exposes a set of
//! victim pages — the paired page on the same wordline and the pages of the
//! two adjacent wordlines. For every *programmed* victim page the model
//! draws a Poisson-distributed number of bit flips with rate
//! `bits × flip_probability(mode, victim, reprogram)`, and flips charge-up
//! only (`1 → 0`), which is the physical direction of disturb.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::cell::FlashMode;

/// Per-bit flip probabilities for one program operation on a neighbouring
/// wordline. Values are per victim bit, per aggressor operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DisturbRates {
    /// Victim with SLC-class margins (SLC page, pSLC page, odd-MLC LSB).
    pub wide_margin: f64,
    /// Victim with MLC-class margins (full-MLC page, odd-MLC MSB page).
    pub narrow_margin: f64,
    /// Multiplier when the aggressor re-programs a page its mode marks
    /// IPA-*safe* (LSB pages): low program voltages, mild coupling — this
    /// is why pSLC and odd-MLC work on real hardware.
    pub safe_reprogram_factor: f64,
    /// Multiplier when the aggressor re-programs a page its mode marks
    /// IPA-*unsafe* (MSB-coupled pages on full MLC): the destructive case
    /// the paper warns about.
    pub unsafe_reprogram_factor: f64,
    /// Multiplier for the paired page of the *same* wordline (strongest
    /// coupling path).
    pub same_wordline_factor: f64,
}

impl DisturbRates {
    /// Calibrated defaults: wide-margin victims see a negligible rate;
    /// narrow-margin victims of *safe* re-programs (odd-MLC appends) stay
    /// within SECDED's correction budget across an experiment run; victims
    /// of *unsafe* re-programs (IPA forced onto full MLC) accumulate
    /// uncorrectable damage within tens of appends.
    pub fn realistic() -> Self {
        DisturbRates {
            wide_margin: 1e-12,
            narrow_margin: 1e-9,
            safe_reprogram_factor: 2.0,
            unsafe_reprogram_factor: 50_000.0,
            same_wordline_factor: 10.0,
        }
    }

    /// A zero-noise model for tests that need determinism.
    pub fn none() -> Self {
        DisturbRates {
            wide_margin: 0.0,
            narrow_margin: 0.0,
            safe_reprogram_factor: 1.0,
            unsafe_reprogram_factor: 1.0,
            same_wordline_factor: 1.0,
        }
    }
}

/// Where the victim sits relative to the aggressor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coupling {
    /// The paired page on the same physical wordline.
    SameWordline,
    /// A page on an adjacent wordline.
    AdjacentWordline,
}

/// The disturb model: stateless apart from its rate table; randomness comes
/// from the chip's seeded RNG so entire device runs are reproducible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisturbModel {
    pub rates: DisturbRates,
}

impl DisturbModel {
    pub fn new(rates: DisturbRates) -> Self {
        DisturbModel { rates }
    }

    /// Per-bit flip probability for one aggressor operation on
    /// `aggressor_page` observed by `victim_page`.
    pub fn flip_probability(
        &self,
        mode: FlashMode,
        aggressor_page: u32,
        victim_page: u32,
        coupling: Coupling,
        aggressor_is_reprogram: bool,
    ) -> f64 {
        // 3D NAND: "Bitline Interference Free / Wordline Interference
        // Almost Free" — every victim keeps wide margins.
        let margin_rate =
            if mode.ipa_safe(victim_page) || matches!(mode, FlashMode::Slc | FlashMode::Tlc3d) {
                self.rates.wide_margin
            } else {
                // Victims without IPA-safe margins: full-MLC pages and the MSB
                // pages of odd-MLC.
                self.rates.narrow_margin
            };
        let mut p = margin_rate;
        if aggressor_is_reprogram {
            // What matters is *which page* is being re-programmed: LSB
            // re-programs (pSLC / odd-MLC appends) couple mildly; MSB
            // re-programs (full-MLC IPA) are the destructive case.
            p *= if mode.ipa_safe(aggressor_page) {
                self.rates.safe_reprogram_factor
            } else {
                self.rates.unsafe_reprogram_factor
            };
        }
        if matches!(coupling, Coupling::SameWordline) {
            p *= self.rates.same_wordline_factor;
        }
        p.min(1.0)
    }

    /// Draw the number of bit flips to inject into a victim page of
    /// `bits` bits, using a Poisson approximation of the binomial (rates
    /// are tiny; λ = bits·p).
    pub fn draw_flip_count(&self, rng: &mut StdRng, bits: usize, p: f64) -> usize {
        if p <= 0.0 || bits == 0 {
            return 0;
        }
        let lambda = bits as f64 * p;
        if lambda > 20.0 {
            // Far past the regime we care about; clamp to a normal-ish
            // deterministic count to keep the simulation bounded.
            return lambda.round() as usize;
        }
        // Knuth's algorithm — fine for small λ.
        let l = (-lambda).exp();
        let mut k = 0usize;
        let mut prod: f64 = 1.0;
        loop {
            prod *= rng.gen::<f64>();
            if prod <= l {
                return k;
            }
            k += 1;
            if k > 64 {
                return k; // numerical safety valve
            }
        }
    }

    /// Apply `count` charge-up disturbs (`1 → 0` flips) at random positions
    /// of `data`. Bits that are already 0 absorb the disturb harmlessly
    /// (their charge rises within the same level). Returns how many bits
    /// actually flipped.
    pub fn inject_flips(&self, rng: &mut StdRng, data: &mut [u8], count: usize) -> usize {
        if data.is_empty() {
            return 0;
        }
        let nbits = data.len() * 8;
        let mut flipped = 0usize;
        for _ in 0..count {
            let pos = rng.gen_range(0..nbits);
            let (byte, bit) = (pos / 8, pos % 8);
            let mask = 1u8 << bit;
            if data[byte] & mask != 0 {
                data[byte] &= !mask; // 1 → 0 : charge added to an erased cell
                flipped += 1;
            }
        }
        flipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn wide_margin_modes_are_quiet() {
        let m = DisturbModel::new(DisturbRates::realistic());
        let p = m.flip_probability(FlashMode::PSlc, 3, 1, Coupling::AdjacentWordline, true);
        // pSLC LSB page victims: effectively zero.
        assert!(p < 1e-8);
    }

    #[test]
    fn full_mlc_reprogram_is_noisy() {
        let m = DisturbModel::new(DisturbRates::realistic());
        let quiet = m.flip_probability(FlashMode::MlcFull, 2, 3, Coupling::AdjacentWordline, false);
        let loud = m.flip_probability(FlashMode::MlcFull, 2, 3, Coupling::SameWordline, true);
        assert!(
            loud > quiet * 1_000.0,
            "reprogram+same-wordline must dominate"
        );
    }

    #[test]
    fn odd_mlc_msb_pages_are_vulnerable_lsb_not() {
        let m = DisturbModel::new(DisturbRates::realistic());
        let lsb = m.flip_probability(FlashMode::OddMlc, 3, 1, Coupling::AdjacentWordline, true);
        let msb = m.flip_probability(FlashMode::OddMlc, 3, 2, Coupling::AdjacentWordline, true);
        assert!(msb > lsb * 100.0);
    }

    #[test]
    fn odd_mlc_appends_far_milder_than_full_mlc_appends() {
        // The reason odd-MLC is viable and full-MLC IPA is not: the same
        // MSB victim sees orders of magnitude less disturb when the
        // aggressor re-program hits an LSB page.
        let m = DisturbModel::new(DisturbRates::realistic());
        let odd = m.flip_probability(FlashMode::OddMlc, 1, 2, Coupling::SameWordline, true);
        let full = m.flip_probability(FlashMode::MlcFull, 2, 3, Coupling::SameWordline, true);
        assert!(full > odd * 1_000.0, "full {full} vs odd {odd}");
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let m = DisturbModel::new(DisturbRates::none());
        let mut r = rng();
        assert_eq!(m.draw_flip_count(&mut r, 65536, 0.0), 0);
    }

    #[test]
    fn poisson_mean_roughly_lambda() {
        let m = DisturbModel::new(DisturbRates::realistic());
        let mut r = rng();
        let bits = 8192 * 8;
        let p = 1e-4; // λ ≈ 6.55
        let n = 2000;
        let total: usize = (0..n).map(|_| m.draw_flip_count(&mut r, bits, p)).sum();
        let mean = total as f64 / n as f64;
        let lambda = bits as f64 * p;
        assert!(
            (mean - lambda).abs() < lambda * 0.15,
            "mean {mean} too far from λ {lambda}"
        );
    }

    #[test]
    fn flips_are_one_to_zero_only() {
        let m = DisturbModel::new(DisturbRates::realistic());
        let mut r = rng();
        let mut data = vec![0xFFu8; 128];
        let flipped = m.inject_flips(&mut r, &mut data, 10);
        let zeros: u32 = data.iter().map(|b| b.count_zeros()).sum();
        assert_eq!(zeros as usize, flipped);

        // All-zero data cannot flip further.
        let mut zero_data = vec![0u8; 128];
        assert_eq!(m.inject_flips(&mut r, &mut zero_data, 50), 0);
        assert!(zero_data.iter().all(|&b| b == 0));
    }

    #[test]
    fn clamped_probability() {
        let m = DisturbModel::new(DisturbRates {
            wide_margin: 0.9,
            narrow_margin: 0.9,
            safe_reprogram_factor: 10.0,
            unsafe_reprogram_factor: 10.0,
            same_wordline_factor: 10.0,
        });
        let p = m.flip_probability(FlashMode::MlcFull, 1, 0, Coupling::SameWordline, true);
        assert!(p <= 1.0);
    }
}
