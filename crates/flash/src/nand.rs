//! The NAND operation contract — what it means to "be a flash target".
//!
//! [`FlashChip`] is the canonical implementation: a single die driven
//! directly, advancing its own clock. The multi-channel controller crate
//! provides a second one: a die *handle* that routes every command through
//! a scheduler modelling channel-bus and die-busy timing. The FTL is
//! generic over this trait, so the exact same translation-layer logic runs
//! unchanged on a bare chip or behind a controller.
//!
//! Inspection methods return owned values (`Geometry` and `FlashStats` are
//! `Copy`; peeks clone the page image) so implementations that proxy
//! through shared interior-mutable state can satisfy the trait without
//! leaking borrows.

use crate::cell::FlashMode;
use crate::chip::{FlashChip, MultiPlaneWrite, PageImage};
use crate::error::Result;
use crate::geometry::{Geometry, Ppa};
use crate::stats::FlashStats;

/// A target that obeys NAND physics: erase-before-overwrite (relaxed to
/// pure `1 → 0` re-programs), NOP budgets, per-block erase.
pub trait Nand {
    /// Static shape of the target.
    fn geometry(&self) -> Geometry;

    /// Cell mode (SLC / pSLC / MLC / …) of the target.
    fn mode(&self) -> FlashMode;

    /// Raw device-level counters.
    fn flash_stats(&self) -> FlashStats;

    /// Simulated time this target has consumed, nanoseconds.
    fn elapsed_ns(&self) -> u64;

    /// NOP budget (programs between erases) for a page index.
    fn nop_limit(&self, page: u32) -> u16;

    /// Is the page still erased (never programmed since last erase)?
    fn is_erased(&self, ppa: Ppa) -> Result<bool>;

    /// Programs since last erase for a page.
    fn program_count(&self, ppa: Ppa) -> Result<u16>;

    /// Wear (erase count) of a block.
    fn erase_count(&self, block: u32) -> Result<u32>;

    /// Maximum erase count across all blocks.
    fn max_erase_count(&self) -> u32;

    /// Is the block retired?
    fn is_bad(&self, block: u32) -> bool;

    /// Side-effect-free copy of a page's data image (`None` if never
    /// programmed).
    fn peek_data(&self, ppa: Ppa) -> Option<Vec<u8>>;

    /// Would `new` program over the page's current data without an erase
    /// (pure `1 → 0` transitions)? `None` if the page was never
    /// programmed. Implementations answer from a borrow — this is the
    /// hot-path query behind conventional-SSD in-place detection, asked
    /// (and usually answered "no") on every overwrite.
    fn peek_overwrite_compatible(&self, ppa: Ppa, new: &[u8]) -> Option<bool> {
        self.peek_data(ppa)
            .map(|old| old.iter().zip(new).all(|(&o, &n)| n & !o == 0))
    }

    /// Side-effect-free copy of a page's OOB image.
    fn peek_oob(&self, ppa: Ppa) -> Option<Vec<u8>>;

    /// Read a page (data + OOB), paying sense + transfer time.
    fn read_page(&mut self, ppa: Ppa) -> Result<PageImage>;

    /// Firmware-internal read (GC migration, wear levelling): the data
    /// lands in a controller buffer, not in host memory, so a scheduled
    /// implementation occupies the die and channel without stalling the
    /// host interface — host commands to the same die simply queue behind
    /// it. On a bare chip this is indistinguishable from [`Nand::read_page`].
    fn copyback_read(&mut self, ppa: Ppa) -> Result<PageImage> {
        self.read_page(ppa)
    }

    /// First program of an erased page.
    fn program_page(&mut self, ppa: Ppa, data: &[u8], oob: &[u8]) -> Result<()>;

    /// In-place overwrite of a programmed page (`1 → 0` transitions only).
    fn reprogram_page(&mut self, ppa: Ppa, data: &[u8], oob: &[u8]) -> Result<()>;

    /// Splice `bytes`/`oob_bytes` into the current image and re-program in
    /// place, transferring only the spliced bytes.
    fn append_region(
        &mut self,
        ppa: Ppa,
        data_off: usize,
        bytes: &[u8],
        oob_off: usize,
        oob_bytes: &[u8],
    ) -> Result<()>;

    /// Erase a block — the only way to restore `1` bits.
    fn erase_block(&mut self, block: u32) -> Result<()>;

    /// Program one page per plane under a single command staircase. The
    /// pages must be plane-aligned (same in-plane block index and page
    /// offset, distinct planes — see [`Geometry::check_multi_plane`]).
    /// The default implementation validates the alignment and then issues
    /// plain per-plane programs, so targets without multi-plane support
    /// keep identical state semantics and merely forgo the time overlap.
    fn multi_plane_program(&mut self, pages: &[MultiPlaneWrite<'_>]) -> Result<()> {
        self.geometry()
            .check_multi_plane(&pages.iter().map(|p| p.ppa).collect::<Vec<_>>())?;
        for p in pages {
            if self.is_erased(p.ppa)? {
                self.program_page(p.ppa, p.data, p.oob)?;
            } else {
                self.reprogram_page(p.ppa, p.data, p.oob)?;
            }
        }
        Ok(())
    }

    /// Read one plane-aligned page per plane under a single sense. The
    /// default falls back to sequential reads (same images, no overlap).
    fn multi_plane_read(&mut self, ppas: &[Ppa]) -> Result<Vec<PageImage>> {
        self.geometry().check_multi_plane(ppas)?;
        ppas.iter().map(|&ppa| self.read_page(ppa)).collect()
    }

    /// Program a batch of pages as one cached (pipelined) command: the
    /// bus transfer of member `i + 1` overlaps the program pulse of
    /// member `i`. Unlike the multi-plane command there is no alignment
    /// rule — any pages of the die qualify. The default falls back to
    /// plain sequential programs, so targets without a cache register
    /// keep identical state semantics and merely forgo the overlap.
    fn cache_program(&mut self, pages: &[MultiPlaneWrite<'_>]) -> Result<()> {
        for p in pages {
            if self.is_erased(p.ppa)? {
                self.program_page(p.ppa, p.data, p.oob)?;
            } else {
                self.reprogram_page(p.ppa, p.data, p.oob)?;
            }
        }
        Ok(())
    }

    /// Erase one block per plane under a single pulse. The blocks must be
    /// plane-aligned (same in-plane block index, distinct planes — see
    /// [`Geometry::check_multi_plane_blocks`]). The default validates the
    /// group and issues plain per-block erases: identical state, no time
    /// overlap.
    fn multi_plane_erase(&mut self, blocks: &[u32]) -> Result<()> {
        self.geometry().check_multi_plane_blocks(blocks)?;
        for &block in blocks {
            self.erase_block(block)?;
        }
        Ok(())
    }
}

impl Nand for FlashChip {
    fn geometry(&self) -> Geometry {
        *FlashChip::geometry(self)
    }

    fn mode(&self) -> FlashMode {
        FlashChip::mode(self)
    }

    fn flash_stats(&self) -> FlashStats {
        *FlashChip::stats(self)
    }

    fn elapsed_ns(&self) -> u64 {
        FlashChip::elapsed_ns(self)
    }

    fn nop_limit(&self, page: u32) -> u16 {
        FlashChip::nop_limit(self, page)
    }

    fn is_erased(&self, ppa: Ppa) -> Result<bool> {
        FlashChip::is_erased(self, ppa)
    }

    fn program_count(&self, ppa: Ppa) -> Result<u16> {
        FlashChip::program_count(self, ppa)
    }

    fn erase_count(&self, block: u32) -> Result<u32> {
        FlashChip::erase_count(self, block)
    }

    fn max_erase_count(&self) -> u32 {
        FlashChip::max_erase_count(self)
    }

    fn is_bad(&self, block: u32) -> bool {
        FlashChip::is_bad(self, block)
    }

    fn peek_data(&self, ppa: Ppa) -> Option<Vec<u8>> {
        FlashChip::peek_data(self, ppa).map(<[u8]>::to_vec)
    }

    fn peek_overwrite_compatible(&self, ppa: Ppa, new: &[u8]) -> Option<bool> {
        FlashChip::peek_data(self, ppa).map(|old| old.iter().zip(new).all(|(&o, &n)| n & !o == 0))
    }

    fn peek_oob(&self, ppa: Ppa) -> Option<Vec<u8>> {
        FlashChip::peek_oob(self, ppa).map(<[u8]>::to_vec)
    }

    fn read_page(&mut self, ppa: Ppa) -> Result<PageImage> {
        FlashChip::read_page(self, ppa)
    }

    fn program_page(&mut self, ppa: Ppa, data: &[u8], oob: &[u8]) -> Result<()> {
        FlashChip::program_page(self, ppa, data, oob)
    }

    fn reprogram_page(&mut self, ppa: Ppa, data: &[u8], oob: &[u8]) -> Result<()> {
        FlashChip::reprogram_page(self, ppa, data, oob)
    }

    fn append_region(
        &mut self,
        ppa: Ppa,
        data_off: usize,
        bytes: &[u8],
        oob_off: usize,
        oob_bytes: &[u8],
    ) -> Result<()> {
        FlashChip::append_region(self, ppa, data_off, bytes, oob_off, oob_bytes)
    }

    fn erase_block(&mut self, block: u32) -> Result<()> {
        FlashChip::erase_block(self, block)
    }

    fn multi_plane_program(&mut self, pages: &[MultiPlaneWrite<'_>]) -> Result<()> {
        FlashChip::multi_plane_program(self, pages)
    }

    fn multi_plane_read(&mut self, ppas: &[Ppa]) -> Result<Vec<PageImage>> {
        FlashChip::multi_plane_read(self, ppas)
    }

    fn cache_program(&mut self, pages: &[MultiPlaneWrite<'_>]) -> Result<()> {
        FlashChip::cache_program(self, pages)
    }

    fn multi_plane_erase(&mut self, blocks: &[u32]) -> Result<()> {
        FlashChip::multi_plane_erase(self, blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use crate::interference::DisturbRates;

    /// Drive a chip exclusively through the trait: the generic FTL path.
    fn via_trait<N: Nand>(n: &mut N) {
        let g = n.geometry();
        let ppa = Ppa::new(0, 0);
        let mut data = vec![0xFF; g.page_size];
        data[..16].fill(0x5A);
        let oob = vec![0xFF; g.oob_size];
        n.program_page(ppa, &data, &oob).unwrap();
        assert!(!n.is_erased(ppa).unwrap());
        assert_eq!(n.program_count(ppa).unwrap(), 1);
        assert_eq!(n.peek_data(ppa).unwrap(), data);
        data[16..24].fill(0x21);
        n.reprogram_page(ppa, &data, &oob).unwrap();
        let img = n.read_page(ppa).unwrap();
        assert_eq!(img.data, data);
        n.erase_block(0).unwrap();
        assert!(n.is_erased(ppa).unwrap());
        assert_eq!(n.erase_count(0).unwrap(), 1);
        assert!(n.elapsed_ns() > 0);
        assert_eq!(n.flash_stats().page_programs, 1);
    }

    #[test]
    fn flash_chip_satisfies_the_contract() {
        let mut chip = FlashChip::new(
            DeviceConfig::tiny()
                .with_mode(FlashMode::Slc)
                .with_disturb(DisturbRates::none()),
        );
        via_trait(&mut chip);
    }
}
