//! In-memory representation of erase blocks and pages.
//!
//! Page images are materialised lazily: an erased page stores no buffer and
//! reads as all-`0xFF` (the erased state of NAND), which keeps even the
//! paper's full 8 GB geometry cheap to construct.

use crate::geometry::Geometry;

/// Lifecycle state of a physical page since the last block erase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// All cells erased (reads as `0xFF`).
    Erased,
    /// Programmed at least once.
    Programmed,
}

/// One physical flash page: data area + OOB area + program bookkeeping.
#[derive(Debug, Clone)]
pub struct Page {
    /// Data-area image; `None` while erased.
    data: Option<Box<[u8]>>,
    /// OOB-area image; `None` while erased.
    oob: Option<Box<[u8]>>,
    /// Program operations since the last erase (NOP accounting).
    pub program_count: u16,
}

impl Page {
    /// A fresh, erased page.
    pub const fn erased() -> Self {
        Page {
            data: None,
            oob: None,
            program_count: 0,
        }
    }

    /// Current state.
    #[inline]
    pub fn state(&self) -> PageState {
        if self.program_count == 0 {
            PageState::Erased
        } else {
            PageState::Programmed
        }
    }

    #[inline]
    pub fn is_erased(&self) -> bool {
        self.program_count == 0
    }

    /// Data image, materialising an all-`0xFF` buffer on first touch.
    pub fn data_mut(&mut self, page_size: usize) -> &mut [u8] {
        self.data
            .get_or_insert_with(|| vec![0xFF; page_size].into_boxed_slice())
    }

    /// OOB image, materialising on first touch.
    pub fn oob_mut(&mut self, oob_size: usize) -> &mut [u8] {
        self.oob
            .get_or_insert_with(|| vec![0xFF; oob_size].into_boxed_slice())
    }

    /// Data image for reading; `None` while never programmed.
    #[inline]
    pub fn data(&self) -> Option<&[u8]> {
        self.data.as_deref()
    }

    /// OOB image for reading; `None` while never programmed.
    #[inline]
    pub fn oob(&self) -> Option<&[u8]> {
        self.oob.as_deref()
    }

    /// Drop buffers and reset bookkeeping (block erase path).
    pub fn erase(&mut self) {
        self.data = None;
        self.oob = None;
        self.program_count = 0;
    }
}

/// One erase block: pages plus wear bookkeeping.
#[derive(Debug, Clone)]
pub struct Block {
    pages: Vec<Page>,
    /// Erase operations this block has absorbed (wear).
    pub erase_count: u32,
    /// Retired blocks reject all operations.
    pub bad: bool,
}

impl Block {
    pub fn new(pages_per_block: u32) -> Self {
        Block {
            pages: (0..pages_per_block).map(|_| Page::erased()).collect(),
            erase_count: 0,
            bad: false,
        }
    }

    #[inline]
    pub fn page(&self, idx: u32) -> &Page {
        &self.pages[idx as usize]
    }

    #[inline]
    pub fn page_mut(&mut self, idx: u32) -> &mut Page {
        &mut self.pages[idx as usize]
    }

    /// Erase every page and bump the wear counter.
    pub fn erase(&mut self) {
        for p in &mut self.pages {
            p.erase();
        }
        self.erase_count += 1;
    }

    /// Number of pages programmed at least once since the last erase.
    pub fn programmed_pages(&self) -> u32 {
        self.pages.iter().filter(|p| !p.is_erased()).count() as u32
    }
}

/// Build the block array for a geometry.
pub fn build_blocks(geometry: &Geometry) -> Vec<Block> {
    (0..geometry.blocks)
        .map(|_| Block::new(geometry.pages_per_block))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erased_page_has_no_buffers() {
        let p = Page::erased();
        assert!(p.is_erased());
        assert_eq!(p.state(), PageState::Erased);
        assert!(p.data().is_none());
        assert!(p.oob().is_none());
    }

    #[test]
    fn materialises_as_all_ff() {
        let mut p = Page::erased();
        assert!(p.data_mut(64).iter().all(|&b| b == 0xFF));
        assert!(p.oob_mut(16).iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn erase_resets_everything() {
        let mut p = Page::erased();
        p.data_mut(32)[0] = 0x00;
        p.program_count = 3;
        p.erase();
        assert!(p.is_erased());
        assert!(p.data().is_none());
        assert_eq!(p.program_count, 0);
    }

    #[test]
    fn block_erase_bumps_wear_and_clears_pages() {
        let mut b = Block::new(4);
        b.page_mut(2).data_mut(16)[0] = 0;
        b.page_mut(2).program_count = 1;
        assert_eq!(b.programmed_pages(), 1);
        b.erase();
        assert_eq!(b.erase_count, 1);
        assert_eq!(b.programmed_pages(), 0);
    }

    #[test]
    fn build_matches_geometry() {
        let g = Geometry::new(7, 5, 128, 8);
        let blocks = build_blocks(&g);
        assert_eq!(blocks.len(), 7);
        assert_eq!(blocks[0].programmed_pages(), 0);
    }
}
