//! Error types for the flash simulator.
//!
//! Every physical constraint the paper's technique has to respect shows up
//! here as a distinct error: the erase-before-overwrite rule
//! ([`FlashError::IllegalOverwrite`]), the partial-programming budget
//! ([`FlashError::NopExceeded`]), mode restrictions on which pages may be
//! touched at all ([`FlashError::PageNotUsable`]), and data integrity
//! ([`FlashError::Uncorrectable`]).

use crate::geometry::Ppa;
use std::fmt;

/// Errors raised by the simulated NAND device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// A program operation attempted a `0 → 1` bit transition, which on real
    /// NAND would require a preceding block erase (charge can only be
    /// *added* by ISPP, never removed). `byte_offset` is the first offending
    /// byte; `in_oob` distinguishes data-area from OOB-area violations.
    IllegalOverwrite {
        ppa: Ppa,
        byte_offset: usize,
        in_oob: bool,
    },
    /// The page has exhausted its partial-programming budget (NOP — number
    /// of allowed program operations between erases).
    NopExceeded { ppa: Ppa, nop: u16 },
    /// A program targeted a page that is not erased and the operation
    /// requires an erased page.
    NotErased { ppa: Ppa },
    /// Attempt to read a page that has never been programmed since the last
    /// erase. Real controllers return all-`0xFF`; we surface it explicitly
    /// so layering bugs are loud. Use [`crate::chip::FlashChip::is_erased`]
    /// to probe.
    ReadErased { ppa: Ppa },
    /// The page is not usable in the current [`crate::cell::FlashMode`]
    /// (e.g. an MSB page in pSLC mode).
    PageNotUsable { ppa: Ppa },
    /// A multi-plane command addressed pages that cannot share one
    /// command staircase: different page offsets, different in-plane
    /// block indexes, a plane addressed twice, or fewer than two pages.
    /// `a` is the command's first page, `b` the first offender.
    MultiPlaneMismatch {
        a: Ppa,
        b: Ppa,
        reason: &'static str,
    },
    /// The block was retired (exceeded its erase endurance or marked bad).
    BadBlock { block: u32 },
    /// Address outside the device geometry.
    OutOfBounds { ppa: Ppa },
    /// Block index outside the device geometry.
    BlockOutOfBounds { block: u32 },
    /// ECC failed to correct the page content (more bit errors than the
    /// SECDED code can repair).
    Uncorrectable { ppa: Ppa },
    /// A buffer passed to a program/read call does not match the geometry.
    SizeMismatch {
        expected: usize,
        got: usize,
        what: &'static str,
    },
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::IllegalOverwrite {
                ppa,
                byte_offset,
                in_oob,
            } => write!(
                f,
                "illegal overwrite at {ppa} byte {byte_offset}{}: 0→1 transition requires erase",
                if *in_oob { " (OOB)" } else { "" }
            ),
            FlashError::NopExceeded { ppa, nop } => {
                write!(
                    f,
                    "NOP budget exceeded at {ppa}: {nop} programs since erase"
                )
            }
            FlashError::NotErased { ppa } => write!(f, "page {ppa} is not erased"),
            FlashError::ReadErased { ppa } => write!(f, "read of erased page {ppa}"),
            FlashError::PageNotUsable { ppa } => {
                write!(f, "page {ppa} is not usable in the current flash mode")
            }
            FlashError::MultiPlaneMismatch { a, b, reason } => {
                write!(f, "multi-plane mismatch between {a} and {b}: {reason}")
            }
            FlashError::BadBlock { block } => write!(f, "block {block} is retired/bad"),
            FlashError::OutOfBounds { ppa } => write!(f, "address {ppa} out of bounds"),
            FlashError::BlockOutOfBounds { block } => {
                write!(f, "block {block} out of bounds")
            }
            FlashError::Uncorrectable { ppa } => {
                write!(f, "uncorrectable ECC error at {ppa}")
            }
            FlashError::SizeMismatch {
                expected,
                got,
                what,
            } => write!(
                f,
                "size mismatch for {what}: expected {expected}, got {got}"
            ),
        }
    }
}

impl std::error::Error for FlashError {}

/// Result alias used throughout the simulator.
pub type Result<T> = std::result::Result<T, FlashError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FlashError::IllegalOverwrite {
            ppa: Ppa::new(3, 7),
            byte_offset: 42,
            in_oob: false,
        };
        let s = e.to_string();
        assert!(s.contains("0→1"));
        assert!(s.contains("byte 42"));
    }

    #[test]
    fn oob_flag_shown() {
        let e = FlashError::IllegalOverwrite {
            ppa: Ppa::new(0, 0),
            byte_offset: 1,
            in_oob: true,
        };
        assert!(e.to_string().contains("OOB"));
    }

    #[test]
    fn multi_plane_mismatch_display_names_both_pages() {
        let e = FlashError::MultiPlaneMismatch {
            a: Ppa::new(0, 4),
            b: Ppa::new(3, 4),
            reason: "in-plane block indexes differ",
        };
        let s = e.to_string();
        assert!(s.contains("(b0,p4)") && s.contains("(b3,p4)"));
        assert!(s.contains("block indexes"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(FlashError::BadBlock { block: 9 });
        assert!(e.to_string().contains("block 9"));
    }
}
