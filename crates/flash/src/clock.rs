//! Deterministic simulated clock.
//!
//! Every device operation advances this clock by its modeled latency;
//! transactional throughput in the experiments is `committed_tx /
//! elapsed()`. Using simulated rather than wall time makes the benchmark
//! results deterministic and independent of the host machine.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Nanosecond-resolution simulated time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SimClock {
    now_ns: u64,
}

impl SimClock {
    /// A clock starting at t=0.
    #[inline]
    pub const fn new() -> Self {
        SimClock { now_ns: 0 }
    }

    /// Current simulated time in nanoseconds.
    #[inline]
    pub const fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Current simulated time in seconds.
    #[inline]
    pub fn now_secs(&self) -> f64 {
        self.now_ns as f64 / 1e9
    }

    /// Advance the clock by `ns` nanoseconds, saturating on overflow (an
    /// experiment that runs for 584 simulated years has other problems).
    #[inline]
    pub fn advance_ns(&mut self, ns: u64) {
        self.now_ns = self.now_ns.saturating_add(ns);
    }

    /// Advance by microseconds.
    #[inline]
    pub fn advance_us(&mut self, us: u64) {
        self.advance_ns(us.saturating_mul(1000));
    }
}

impl fmt::Display for SimClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.now_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SimClock::new().now_ns(), 0);
    }

    #[test]
    fn advances() {
        let mut c = SimClock::new();
        c.advance_ns(1500);
        c.advance_us(2);
        assert_eq!(c.now_ns(), 3500);
    }

    #[test]
    fn saturates() {
        let mut c = SimClock::new();
        c.advance_ns(u64::MAX);
        c.advance_ns(10);
        assert_eq!(c.now_ns(), u64::MAX);
    }

    #[test]
    fn seconds_conversion() {
        let mut c = SimClock::new();
        c.advance_ns(2_500_000_000);
        assert!((c.now_secs() - 2.5).abs() < 1e-12);
        assert_eq!(c.to_string(), "2.500000s");
    }
}
