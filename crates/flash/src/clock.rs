//! Deterministic simulated clock.
//!
//! Every device operation advances this clock by its modeled latency;
//! transactional throughput in the experiments is `committed_tx /
//! elapsed()`. Using simulated rather than wall time makes the benchmark
//! results deterministic and independent of the host machine.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Nanosecond-resolution simulated time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SimClock {
    now_ns: u64,
}

impl SimClock {
    /// A clock starting at t=0.
    #[inline]
    pub const fn new() -> Self {
        SimClock { now_ns: 0 }
    }

    /// A clock positioned at an absolute instant.
    #[inline]
    pub const fn at_ns(ns: u64) -> Self {
        SimClock { now_ns: ns }
    }

    /// Current simulated time in nanoseconds.
    #[inline]
    pub const fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Current simulated time in seconds.
    #[inline]
    pub fn now_secs(&self) -> f64 {
        self.now_ns as f64 / 1e9
    }

    /// Advance the clock by `ns` nanoseconds, saturating on overflow (an
    /// experiment that runs for 584 simulated years has other problems).
    #[inline]
    pub fn advance_ns(&mut self, ns: u64) {
        self.now_ns = self.now_ns.saturating_add(ns);
    }

    /// Advance by microseconds.
    #[inline]
    pub fn advance_us(&mut self, us: u64) {
        self.advance_ns(us.saturating_mul(1000));
    }

    /// Advance to an absolute instant. A no-op when `ns` is in the past —
    /// simulated time never runs backwards, so independently-advancing
    /// clocks can be joined safely.
    #[inline]
    pub fn advance_to(&mut self, ns: u64) {
        self.now_ns = self.now_ns.max(ns);
    }

    /// Max-merge with another clock: afterwards `self` is at least as far
    /// along as `other`. This is the controller's sync-point primitive —
    /// per-die clocks run ahead independently and are merged (barrier
    /// semantics) wherever the host needs a single global "now".
    #[inline]
    pub fn merge(&mut self, other: &SimClock) {
        self.advance_to(other.now_ns);
    }

    /// Is this clock idle as seen from an observer whose "now" is `ns`?
    /// A die clock records when the die's array next falls idle, so the
    /// die is free for new work exactly when its clock is at or behind
    /// the observer. This is the maintenance scheduler's dispatch test.
    #[inline]
    pub const fn is_idle_at(&self, ns: u64) -> bool {
        self.now_ns <= ns
    }

    /// How far past the observer's "now" this clock is still busy — the
    /// queueing delay a command submitted at `ns` would pay before the
    /// resource frees up. Zero when idle.
    #[inline]
    pub const fn busy_ns_after(&self, ns: u64) -> u64 {
        self.now_ns.saturating_sub(ns)
    }
}

impl fmt::Display for SimClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.now_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SimClock::new().now_ns(), 0);
    }

    #[test]
    fn advances() {
        let mut c = SimClock::new();
        c.advance_ns(1500);
        c.advance_us(2);
        assert_eq!(c.now_ns(), 3500);
    }

    #[test]
    fn saturates() {
        let mut c = SimClock::new();
        c.advance_ns(u64::MAX);
        c.advance_ns(10);
        assert_eq!(c.now_ns(), u64::MAX);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let mut c = SimClock::new();
        c.advance_to(500);
        assert_eq!(c.now_ns(), 500);
        c.advance_to(200); // the past: no-op
        assert_eq!(c.now_ns(), 500);
        c.advance_to(500); // the present: no-op
        assert_eq!(c.now_ns(), 500);
        c.advance_to(1200);
        assert_eq!(c.now_ns(), 1200);
    }

    #[test]
    fn merge_is_max() {
        let mut a = SimClock::new();
        let mut b = SimClock::new();
        a.advance_ns(300);
        b.advance_ns(900);
        a.merge(&b);
        assert_eq!(a.now_ns(), 900, "merge takes the later clock");
        b.merge(&a);
        assert_eq!(b.now_ns(), 900, "merging the earlier clock is a no-op");
        // Merge is idempotent and commutative over any set of clocks.
        let mut c = SimClock::new();
        c.merge(&a);
        c.merge(&b);
        assert_eq!(c.now_ns(), 900);
        c.merge(&c.clone());
        assert_eq!(c.now_ns(), 900);
    }

    #[test]
    fn idleness_is_relative_to_the_observer() {
        let mut die = SimClock::new();
        die.advance_to(700);
        assert!(!die.is_idle_at(500), "still busy past the observer");
        assert_eq!(die.busy_ns_after(500), 200);
        assert!(die.is_idle_at(700), "idle the instant it frees up");
        assert!(die.is_idle_at(900));
        assert_eq!(die.busy_ns_after(900), 0);
    }

    #[test]
    fn seconds_conversion() {
        let mut c = SimClock::new();
        c.advance_ns(2_500_000_000);
        assert!((c.now_secs() - 2.5).abs() < 1e-12);
        assert_eq!(c.to_string(), "2.500000s");
    }
}
