//! Device geometry: blocks, pages, page/OOB sizes and physical addressing.
//!
//! The paper's hardware (OpenSSD Jasmine, Samsung K9LCG08U1M) exposes 4096
//! erase units of 128 × 16 KB pages per package with a 128-byte OOB area per
//! page. Experiments here default to a scaled-down geometry (the reported
//! metrics are ratios and therefore scale-free); [`Geometry::jasmine`]
//! recreates the paper's shape for completeness.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Physical page address: `(block, page-within-block)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ppa {
    /// Erase-block index within the device.
    pub block: u32,
    /// Page index within the block.
    pub page: u32,
}

impl Ppa {
    /// Construct a physical page address.
    #[inline]
    pub const fn new(block: u32, page: u32) -> Self {
        Ppa { block, page }
    }
}

impl fmt::Display for Ppa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(b{},p{})", self.block, self.page)
    }
}

/// Static shape of the simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Geometry {
    /// Number of erase blocks.
    pub blocks: u32,
    /// Pages per erase block.
    pub pages_per_block: u32,
    /// Data-area bytes per page.
    pub page_size: usize,
    /// Out-of-band (spare) bytes per page, used for ECC and FTL metadata.
    pub oob_size: usize,
}

impl Geometry {
    /// Create a geometry, panicking on degenerate shapes (zero-sized
    /// dimensions are programming errors, not runtime conditions).
    pub fn new(blocks: u32, pages_per_block: u32, page_size: usize, oob_size: usize) -> Self {
        assert!(blocks > 0, "geometry needs at least one block");
        assert!(
            pages_per_block > 0,
            "geometry needs at least one page per block"
        );
        assert!(page_size > 0, "geometry needs a non-zero page size");
        Geometry {
            blocks,
            pages_per_block,
            page_size,
            oob_size,
        }
    }

    /// Small default used by unit tests and quick examples:
    /// 64 blocks × 32 pages × 2 KB (+64 B OOB) = 4 MB.
    pub fn tiny() -> Self {
        Geometry::new(64, 32, 2048, 64)
    }

    /// Default experiment geometry: 512 blocks × 128 pages × 8 KB (+128 B
    /// OOB) = 512 MB. 8 KB is the DB page size the paper's DBMS uses.
    pub fn experiment() -> Self {
        Geometry::new(512, 128, 8192, 128)
    }

    /// The paper's K9LCG08U1M package shape: 4096 blocks × 128 pages ×
    /// 16 KB (+128 B OOB) = 8 GB. Pages are lazily materialised, so
    /// constructing this is cheap; writing all of it is not.
    pub fn jasmine() -> Self {
        Geometry::new(4096, 128, 16 * 1024, 128)
    }

    /// Total number of pages on the device.
    #[inline]
    pub fn total_pages(&self) -> u64 {
        self.blocks as u64 * self.pages_per_block as u64
    }

    /// Total data capacity in bytes (ignoring OOB).
    #[inline]
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_size as u64
    }

    /// Size of an erase block's data area in bytes.
    #[inline]
    pub fn block_bytes(&self) -> u64 {
        self.pages_per_block as u64 * self.page_size as u64
    }

    /// Whether `ppa` addresses a page inside this geometry.
    #[inline]
    pub fn contains(&self, ppa: Ppa) -> bool {
        ppa.block < self.blocks && ppa.page < self.pages_per_block
    }

    /// Flat page index (`block * pages_per_block + page`), useful as a map
    /// key or array index.
    #[inline]
    pub fn flat_index(&self, ppa: Ppa) -> u64 {
        ppa.block as u64 * self.pages_per_block as u64 + ppa.page as u64
    }

    /// Inverse of [`Geometry::flat_index`].
    #[inline]
    pub fn from_flat_index(&self, idx: u64) -> Ppa {
        Ppa::new(
            (idx / self.pages_per_block as u64) as u32,
            (idx % self.pages_per_block as u64) as u32,
        )
    }

    /// Iterator over every page address in the device, block-major.
    pub fn iter_pages(&self) -> impl Iterator<Item = Ppa> + '_ {
        let ppb = self.pages_per_block;
        (0..self.blocks).flat_map(move |b| (0..ppb).map(move |p| Ppa::new(b, p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let g = Geometry::new(4, 8, 2048, 64);
        assert_eq!(g.total_pages(), 32);
        assert_eq!(g.capacity_bytes(), 32 * 2048);
        assert_eq!(g.block_bytes(), 8 * 2048);
    }

    #[test]
    fn contains_bounds() {
        let g = Geometry::new(4, 8, 2048, 64);
        assert!(g.contains(Ppa::new(0, 0)));
        assert!(g.contains(Ppa::new(3, 7)));
        assert!(!g.contains(Ppa::new(4, 0)));
        assert!(!g.contains(Ppa::new(0, 8)));
    }

    #[test]
    fn flat_index_round_trip() {
        let g = Geometry::new(5, 9, 512, 16);
        for ppa in g.iter_pages() {
            let idx = g.flat_index(ppa);
            assert_eq!(g.from_flat_index(idx), ppa);
        }
    }

    #[test]
    fn iter_covers_all_pages_once() {
        let g = Geometry::new(3, 4, 128, 8);
        let all: Vec<Ppa> = g.iter_pages().collect();
        assert_eq!(all.len() as u64, g.total_pages());
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len(), "no duplicates");
    }

    #[test]
    fn jasmine_matches_paper_footnote() {
        // "4096 erase units each holding 128 16KB Flash pages"
        let g = Geometry::jasmine();
        assert_eq!(g.blocks, 4096);
        assert_eq!(g.pages_per_block, 128);
        assert_eq!(g.page_size, 16 * 1024);
        assert_eq!(g.capacity_bytes(), 8 * 1024 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_rejected() {
        let _ = Geometry::new(0, 8, 2048, 64);
    }

    #[test]
    fn ppa_display() {
        assert_eq!(Ppa::new(12, 3).to_string(), "(b12,p3)");
    }
}
