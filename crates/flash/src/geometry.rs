//! Device geometry: blocks, pages, page/OOB sizes and physical addressing.
//!
//! The paper's hardware (OpenSSD Jasmine, Samsung K9LCG08U1M) exposes 4096
//! erase units of 128 × 16 KB pages per package with a 128-byte OOB area per
//! page. Experiments here default to a scaled-down geometry (the reported
//! metrics are ratios and therefore scale-free); [`Geometry::jasmine`]
//! recreates the paper's shape for completeness.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::{FlashError, Result};

/// Physical page address: `(block, page-within-block)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ppa {
    /// Erase-block index within the device.
    pub block: u32,
    /// Page index within the block.
    pub page: u32,
}

impl Ppa {
    /// Construct a physical page address.
    #[inline]
    pub const fn new(block: u32, page: u32) -> Self {
        Ppa { block, page }
    }
}

impl fmt::Display for Ppa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(b{},p{})", self.block, self.page)
    }
}

/// Static shape of the simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Geometry {
    /// Number of erase blocks (total across all planes).
    pub blocks: u32,
    /// Pages per erase block.
    pub pages_per_block: u32,
    /// Data-area bytes per page.
    pub page_size: usize,
    /// Out-of-band (spare) bytes per page, used for ECC and FTL metadata.
    pub oob_size: usize,
    /// Planes per die. Each plane owns its own block/page arrays but
    /// shares the die's command path; block `b` belongs to plane
    /// `b % planes`, so the blocks of one plane *group* (`b / planes`)
    /// are consecutive indexes. Multi-plane commands move one page per
    /// plane under a single command staircase, which is where the per-die
    /// bandwidth doubling comes from.
    #[serde(default = "default_planes")]
    pub planes: u32,
}

/// Serde default: geometries recorded before planes existed are
/// one-plane. Also the value every constructor starts from.
fn default_planes() -> u32 {
    1
}

impl Geometry {
    /// Create a geometry, panicking on degenerate shapes (zero-sized
    /// dimensions are programming errors, not runtime conditions).
    pub fn new(blocks: u32, pages_per_block: u32, page_size: usize, oob_size: usize) -> Self {
        assert!(blocks > 0, "geometry needs at least one block");
        assert!(
            pages_per_block > 0,
            "geometry needs at least one page per block"
        );
        assert!(page_size > 0, "geometry needs a non-zero page size");
        Geometry {
            blocks,
            pages_per_block,
            page_size,
            oob_size,
            planes: default_planes(),
        }
    }

    /// Builder-style plane count. Physical addressing is unchanged —
    /// block `b` simply belongs to plane `b % planes` — so any plane
    /// count partitions the same blocks; it only changes which pages may
    /// ride one multi-plane command together.
    pub fn with_planes(mut self, planes: u32) -> Self {
        assert!(planes >= 1, "a die has at least one plane");
        assert!(
            planes <= self.blocks,
            "more planes ({planes}) than blocks ({})",
            self.blocks
        );
        self.planes = planes;
        self
    }

    /// Small default used by unit tests and quick examples:
    /// 64 blocks × 32 pages × 2 KB (+64 B OOB) = 4 MB.
    pub fn tiny() -> Self {
        Geometry::new(64, 32, 2048, 64)
    }

    /// Default experiment geometry: 512 blocks × 128 pages × 8 KB (+128 B
    /// OOB) = 512 MB. 8 KB is the DB page size the paper's DBMS uses.
    pub fn experiment() -> Self {
        Geometry::new(512, 128, 8192, 128)
    }

    /// The paper's K9LCG08U1M package shape: 4096 blocks × 128 pages ×
    /// 16 KB (+128 B OOB) = 8 GB. Pages are lazily materialised, so
    /// constructing this is cheap; writing all of it is not.
    pub fn jasmine() -> Self {
        Geometry::new(4096, 128, 16 * 1024, 128)
    }

    /// Total number of pages on the device.
    #[inline]
    pub fn total_pages(&self) -> u64 {
        self.blocks as u64 * self.pages_per_block as u64
    }

    /// Total data capacity in bytes (ignoring OOB).
    #[inline]
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_size as u64
    }

    /// Size of an erase block's data area in bytes.
    #[inline]
    pub fn block_bytes(&self) -> u64 {
        self.pages_per_block as u64 * self.page_size as u64
    }

    /// Whether `ppa` addresses a page inside this geometry.
    #[inline]
    pub fn contains(&self, ppa: Ppa) -> bool {
        ppa.block < self.blocks && ppa.page < self.pages_per_block
    }

    /// Flat page index (`block * pages_per_block + page`), useful as a map
    /// key or array index.
    #[inline]
    pub fn flat_index(&self, ppa: Ppa) -> u64 {
        ppa.block as u64 * self.pages_per_block as u64 + ppa.page as u64
    }

    /// Inverse of [`Geometry::flat_index`].
    #[inline]
    pub fn from_flat_index(&self, idx: u64) -> Ppa {
        Ppa::new(
            (idx / self.pages_per_block as u64) as u32,
            (idx % self.pages_per_block as u64) as u32,
        )
    }

    /// Iterator over every page address in the device, block-major.
    pub fn iter_pages(&self) -> impl Iterator<Item = Ppa> + '_ {
        let ppb = self.pages_per_block;
        (0..self.blocks).flat_map(move |b| (0..ppb).map(move |p| Ppa::new(b, p)))
    }

    /// The plane a block belongs to.
    #[inline]
    pub fn plane_of(&self, block: u32) -> u32 {
        block % self.planes
    }

    /// A block's plane-group index — its in-plane block address. Two
    /// blocks may share a multi-plane command iff their groups are equal.
    #[inline]
    pub fn plane_group(&self, block: u32) -> u32 {
        block / self.planes
    }

    /// Whole plane groups in the device (a trailing partial group, when
    /// `blocks` is not a multiple of `planes`, can never host a full
    /// multi-plane command and is not counted).
    #[inline]
    pub fn plane_groups(&self) -> u32 {
        self.blocks / self.planes
    }

    /// May these two pages ride one multi-plane command? Requires equal
    /// in-plane block index (shared wordline drivers run one address
    /// staircase), equal page offset, and distinct planes.
    #[inline]
    pub fn plane_aligned(&self, a: Ppa, b: Ppa) -> bool {
        self.plane_group(a.block) == self.plane_group(b.block)
            && a.page == b.page
            && self.plane_of(a.block) != self.plane_of(b.block)
    }

    /// Validate a multi-plane command's page set: at least two pages, all
    /// plane-aligned (same group + page offset), every plane addressed at
    /// most once. Returns the typed mismatch describing the first
    /// violation.
    pub fn check_multi_plane(&self, ppas: &[Ppa]) -> Result<()> {
        let Some((&first, rest)) = ppas.split_first() else {
            return Err(FlashError::MultiPlaneMismatch {
                a: Ppa::new(0, 0),
                b: Ppa::new(0, 0),
                reason: "a multi-plane command needs at least two pages",
            });
        };
        if rest.is_empty() {
            return Err(FlashError::MultiPlaneMismatch {
                a: first,
                b: first,
                reason: "a multi-plane command needs at least two pages",
            });
        }
        let mismatch = |b: Ppa, reason| FlashError::MultiPlaneMismatch {
            a: first,
            b,
            reason,
        };
        let mut seen_planes = vec![false; self.planes as usize];
        for &ppa in ppas {
            if !self.contains(ppa) {
                return Err(FlashError::OutOfBounds { ppa });
            }
            if ppa.page != first.page {
                return Err(mismatch(ppa, "page offsets differ across planes"));
            }
            if self.plane_group(ppa.block) != self.plane_group(first.block) {
                return Err(mismatch(ppa, "in-plane block indexes differ"));
            }
            let plane = self.plane_of(ppa.block) as usize;
            if std::mem::replace(&mut seen_planes[plane], true) {
                return Err(mismatch(ppa, "plane addressed more than once"));
            }
        }
        Ok(())
    }

    /// Validate a multi-plane *erase* command's block set: at least two
    /// blocks, all in one plane group (shared address staircase), every
    /// plane addressed at most once. Erases have no page offset, so that
    /// rule of [`Geometry::check_multi_plane`] does not apply.
    pub fn check_multi_plane_blocks(&self, blocks: &[u32]) -> Result<()> {
        let ppa = |b: u32| Ppa::new(b, 0);
        let Some((&first, rest)) = blocks.split_first() else {
            return Err(FlashError::MultiPlaneMismatch {
                a: Ppa::new(0, 0),
                b: Ppa::new(0, 0),
                reason: "a multi-plane erase needs at least two blocks",
            });
        };
        if rest.is_empty() {
            return Err(FlashError::MultiPlaneMismatch {
                a: ppa(first),
                b: ppa(first),
                reason: "a multi-plane erase needs at least two blocks",
            });
        }
        let mismatch = |b: u32, reason| FlashError::MultiPlaneMismatch {
            a: ppa(first),
            b: ppa(b),
            reason,
        };
        let mut seen_planes = vec![false; self.planes as usize];
        for &block in blocks {
            if block >= self.blocks {
                return Err(FlashError::OutOfBounds { ppa: ppa(block) });
            }
            if self.plane_group(block) != self.plane_group(first) {
                return Err(mismatch(block, "in-plane block indexes differ"));
            }
            let plane = self.plane_of(block) as usize;
            if std::mem::replace(&mut seen_planes[plane], true) {
                return Err(mismatch(block, "plane addressed more than once"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let g = Geometry::new(4, 8, 2048, 64);
        assert_eq!(g.total_pages(), 32);
        assert_eq!(g.capacity_bytes(), 32 * 2048);
        assert_eq!(g.block_bytes(), 8 * 2048);
    }

    #[test]
    fn contains_bounds() {
        let g = Geometry::new(4, 8, 2048, 64);
        assert!(g.contains(Ppa::new(0, 0)));
        assert!(g.contains(Ppa::new(3, 7)));
        assert!(!g.contains(Ppa::new(4, 0)));
        assert!(!g.contains(Ppa::new(0, 8)));
    }

    #[test]
    fn flat_index_round_trip() {
        let g = Geometry::new(5, 9, 512, 16);
        for ppa in g.iter_pages() {
            let idx = g.flat_index(ppa);
            assert_eq!(g.from_flat_index(idx), ppa);
        }
    }

    #[test]
    fn iter_covers_all_pages_once() {
        let g = Geometry::new(3, 4, 128, 8);
        let all: Vec<Ppa> = g.iter_pages().collect();
        assert_eq!(all.len() as u64, g.total_pages());
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len(), "no duplicates");
    }

    #[test]
    fn jasmine_matches_paper_footnote() {
        // "4096 erase units each holding 128 16KB Flash pages"
        let g = Geometry::jasmine();
        assert_eq!(g.blocks, 4096);
        assert_eq!(g.pages_per_block, 128);
        assert_eq!(g.page_size, 16 * 1024);
        assert_eq!(g.capacity_bytes(), 8 * 1024 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_rejected() {
        let _ = Geometry::new(0, 8, 2048, 64);
    }

    #[test]
    fn ppa_display() {
        assert_eq!(Ppa::new(12, 3).to_string(), "(b12,p3)");
    }

    #[test]
    fn plane_addressing_partitions_blocks() {
        let g = Geometry::new(8, 4, 512, 16).with_planes(2);
        assert_eq!(g.planes, 2);
        assert_eq!(g.plane_groups(), 4);
        // Consecutive blocks alternate planes within one group.
        assert_eq!(g.plane_of(0), 0);
        assert_eq!(g.plane_of(1), 1);
        assert_eq!(g.plane_of(2), 0);
        assert_eq!(g.plane_group(0), 0);
        assert_eq!(g.plane_group(1), 0);
        assert_eq!(g.plane_group(2), 1);
        // Total pages/capacity are unchanged by the plane split.
        assert_eq!(g.total_pages(), Geometry::new(8, 4, 512, 16).total_pages());
    }

    #[test]
    fn plane_alignment_rule() {
        let g = Geometry::new(8, 4, 512, 16).with_planes(2);
        assert!(g.plane_aligned(Ppa::new(0, 2), Ppa::new(1, 2)));
        // Same plane twice.
        assert!(!g.plane_aligned(Ppa::new(0, 2), Ppa::new(2, 2)));
        // Different page offset.
        assert!(!g.plane_aligned(Ppa::new(0, 2), Ppa::new(1, 3)));
        // Different in-plane block index.
        assert!(!g.plane_aligned(Ppa::new(0, 2), Ppa::new(3, 2)));
    }

    #[test]
    fn check_multi_plane_reports_typed_mismatches() {
        let g = Geometry::new(8, 4, 512, 16).with_planes(4);
        g.check_multi_plane(&[Ppa::new(0, 1), Ppa::new(1, 1)])
            .unwrap();
        g.check_multi_plane(&[
            Ppa::new(0, 1),
            Ppa::new(1, 1),
            Ppa::new(2, 1),
            Ppa::new(3, 1),
        ])
        .unwrap();
        let reason = |r: Result<()>| match r {
            Err(FlashError::MultiPlaneMismatch { reason, .. }) => reason,
            other => panic!("expected MultiPlaneMismatch, got {other:?}"),
        };
        assert!(reason(g.check_multi_plane(&[])).contains("at least two"));
        assert!(reason(g.check_multi_plane(&[Ppa::new(0, 1)])).contains("at least two"));
        assert!(
            reason(g.check_multi_plane(&[Ppa::new(0, 1), Ppa::new(1, 2)])).contains("page offsets")
        );
        assert!(
            reason(g.check_multi_plane(&[Ppa::new(0, 1), Ppa::new(5, 1)]))
                .contains("block indexes")
        );
        assert!(
            reason(g.check_multi_plane(&[Ppa::new(0, 1), Ppa::new(1, 1), Ppa::new(1, 1)]))
                .contains("more than once")
        );
        assert!(matches!(
            g.check_multi_plane(&[Ppa::new(0, 1), Ppa::new(99, 1)]),
            Err(FlashError::OutOfBounds { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "more planes")]
    fn more_planes_than_blocks_rejected() {
        let _ = Geometry::new(2, 4, 512, 16).with_planes(4);
    }

    #[test]
    fn constructors_default_to_one_plane() {
        assert_eq!(Geometry::tiny().planes, 1);
        assert_eq!(Geometry::experiment().planes, 1);
        assert_eq!(Geometry::jasmine().planes, 1);
    }
}
