//! Incremental Step Pulse Programming (ISPP) model — Figure 2 of the paper.
//!
//! Real NAND programs a wordline by applying a staircase of voltage pulses
//! (`Vstart`, `Vstart + ΔVpgm`, …), sensing the cells after each pulse and
//! inhibiting those that reached their target threshold. Two consequences
//! matter for IPA:
//!
//! 1. **Charge only increases.** A program operation can raise a cell's
//!    threshold voltage but never lower it; lowering requires a block erase.
//!    This is *the* physical fact IPA exploits, and
//!    [`simulate_wordline_program`] enforces it at the charge level.
//! 2. **Latency is proportional to pulse count.** Higher target levels need
//!    more pulses, which reproduces the classic fast-LSB / slow-MSB MLC
//!    asymmetry in the latency model.
//!
//! The byte-level chip model (`chip.rs`) uses the *rule* (bitwise 1→0) and
//! the *latency* from here; the explicit per-cell simulation below backs the
//! Figure 2 experiment and the property tests tying the bitwise rule to the
//! charge rule.

use serde::{Deserialize, Serialize};

use crate::cell::CellType;

/// What kind of page a program operation targets; determines the highest
/// charge level the ISPP staircase must reach.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProgramKind {
    /// SLC page (or pSLC LSB page): one level above erased.
    SlcPage,
    /// MLC LSB page: programs the lower bit, intermediate target level.
    MlcLsb,
    /// MLC MSB page: final target levels, slowest.
    MlcMsb,
    /// 3D-TLC LSB page: first of three program passes.
    TlcLsb,
    /// 3D-TLC CSB/MSB pages: deeper staircases.
    TlcCsb,
    /// See [`ProgramKind::TlcCsb`].
    TlcMsb,
}

/// ISPP staircase parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IsppParams {
    /// Threshold-voltage gain per pulse (ΔVpgm effect on the cell), volts.
    pub delta_v: f64,
    /// Duration of one program pulse, nanoseconds.
    pub t_pulse_ns: u64,
    /// Duration of the verify (sense) step after each pulse, nanoseconds.
    pub t_verify_ns: u64,
    /// Target threshold voltage per charge level (index = level). Level 0
    /// is the erased state (0 V by convention). Only the first
    /// [`CellType::levels`] entries are meaningful.
    pub level_vt: [f64; 8],
}

impl IsppParams {
    /// Datasheet-class SLC parameters (~300 µs page program).
    pub fn slc() -> Self {
        IsppParams {
            delta_v: 0.30,
            t_pulse_ns: 25_000,
            t_verify_ns: 12_000,
            level_vt: [0.0, 2.4, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        }
    }

    /// Datasheet-class MLC parameters (~440 µs LSB, ~1.3 ms MSB page
    /// program; finer ΔVpgm for the tighter level placement).
    pub fn mlc() -> Self {
        IsppParams {
            delta_v: 0.15,
            t_pulse_ns: 22_000,
            t_verify_ns: 18_000,
            level_vt: [0.0, 1.6, 2.6, 3.6, 0.0, 0.0, 0.0, 0.0],
        }
    }

    /// Datasheet-class 3D-TLC parameters (8 levels; charge-trap cells
    /// program with a coarser ΔVpgm than planar MLC thanks to the wider
    /// 3D margins).
    pub fn tlc() -> Self {
        IsppParams {
            delta_v: 0.20,
            t_pulse_ns: 20_000,
            t_verify_ns: 15_000,
            level_vt: [0.0, 1.2, 1.9, 2.6, 3.3, 4.0, 4.7, 5.4],
        }
    }

    /// Parameters appropriate for `cell`.
    pub fn for_cell(cell: CellType) -> Self {
        match cell {
            CellType::Slc => Self::slc(),
            CellType::Mlc => Self::mlc(),
            CellType::Tlc => Self::tlc(),
        }
    }

    /// Number of ISPP pulses needed to raise a cell from threshold voltage
    /// `from_vt` to `to_vt`. Zero if the cell is already at or above target.
    #[inline]
    pub fn pulses_between(&self, from_vt: f64, to_vt: f64) -> u32 {
        if to_vt <= from_vt {
            return 0;
        }
        ((to_vt - from_vt) / self.delta_v).ceil() as u32
    }

    /// Pulses to program an erased cell to `level`.
    #[inline]
    pub fn pulses_for_level(&self, level: u8) -> u32 {
        self.pulses_between(0.0, self.level_vt[level as usize])
    }

    /// Latency of a page program of the given kind. The staircase length is
    /// set by the highest level the operation must reach; every pulse is
    /// followed by a verify step.
    pub fn program_latency_ns(&self, kind: ProgramKind) -> u64 {
        let pulses = match kind {
            ProgramKind::SlcPage => self.pulses_for_level(1),
            // LSB programming places cells at an intermediate distribution
            // (level 1 of the final map).
            ProgramKind::MlcLsb => self.pulses_for_level(1),
            // MSB programming finishes the staircase to the top level.
            ProgramKind::MlcMsb => self.pulses_for_level(3),
            ProgramKind::TlcLsb => self.pulses_for_level(1),
            ProgramKind::TlcCsb => self.pulses_for_level(3),
            ProgramKind::TlcMsb => self.pulses_for_level(7),
        };
        pulses as u64 * (self.t_pulse_ns + self.t_verify_ns)
    }
}

/// Outcome of an explicit wordline ISPP simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct IsppTrace {
    /// Total pulses applied (the staircase length actually used).
    pub pulses: u32,
    /// Final threshold voltage of every cell.
    pub final_vt: Vec<f64>,
    /// Number of cells whose charge was raised by this operation.
    pub cells_programmed: usize,
}

/// Error from the explicit cell-level simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChargeDecreaseError {
    /// Index of the first cell that would need its charge *lowered*.
    pub cell: usize,
}

impl std::fmt::Display for ChargeDecreaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell {} requires a charge decrease; only a block erase can do that",
            self.cell
        )
    }
}

impl std::error::Error for ChargeDecreaseError {}

/// Explicitly simulate ISPP programming of one wordline: raise each cell
/// from its current level to its target level with the shared pulse
/// staircase, verifying (and inhibiting) after every pulse.
///
/// Returns an error — without touching anything — if any cell's target level
/// is *below* its current level: that transition needs an erase. This is the
/// cell-level twin of the byte-level `new & !old == 0` rule, and the
/// property test in this module proves the two agree for SLC data.
pub fn simulate_wordline_program(
    params: &IsppParams,
    current_levels: &[u8],
    target_levels: &[u8],
) -> Result<IsppTrace, ChargeDecreaseError> {
    assert_eq!(
        current_levels.len(),
        target_levels.len(),
        "wordline width mismatch"
    );
    // Validate first: ISPP can only add charge.
    for (i, (&cur, &tgt)) in current_levels.iter().zip(target_levels).enumerate() {
        if tgt < cur {
            return Err(ChargeDecreaseError { cell: i });
        }
    }

    let mut vt: Vec<f64> = current_levels
        .iter()
        .map(|&l| params.level_vt[l as usize])
        .collect();
    let targets: Vec<f64> = target_levels
        .iter()
        .map(|&l| params.level_vt[l as usize])
        .collect();

    let mut pulses = 0u32;
    let mut cells_programmed = 0usize;
    for (v, (&t, &cur)) in vt.iter_mut().zip(targets.iter().zip(current_levels)) {
        let need = params.pulses_between(*v, t);
        if need > 0 {
            cells_programmed += 1;
            // Verify-and-inhibit: the cell stops exactly at (or just above)
            // its target after `need` pulses.
            *v += need as f64 * params.delta_v;
            pulses = pulses.max(need);
        }
        let _ = cur;
    }

    Ok(IsppTrace {
        pulses,
        final_vt: vt,
        cells_programmed,
    })
}

/// Map an SLC data byte to its 8 cell levels (bit 7 first). Erased bit = 1
/// = level 0; programmed bit = 0 = level 1.
pub fn slc_byte_to_levels(byte: u8) -> [u8; 8] {
    let mut out = [0u8; 8];
    for (i, slot) in out.iter_mut().enumerate() {
        let bit = (byte >> (7 - i)) & 1;
        *slot = if bit == 0 { 1 } else { 0 };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tlc_staircase_is_deepest() {
        let p = IsppParams::tlc();
        let lsb = p.program_latency_ns(ProgramKind::TlcLsb);
        let csb = p.program_latency_ns(ProgramKind::TlcCsb);
        let msb = p.program_latency_ns(ProgramKind::TlcMsb);
        assert!(lsb < csb && csb < msb, "TLC pass latencies must ascend");
    }

    #[test]
    fn msb_program_slower_than_lsb() {
        let p = IsppParams::mlc();
        assert!(
            p.program_latency_ns(ProgramKind::MlcMsb) > p.program_latency_ns(ProgramKind::MlcLsb),
            "MSB pages must be slower to program"
        );
    }

    #[test]
    fn slc_program_latency_in_datasheet_range() {
        let p = IsppParams::slc();
        let t = p.program_latency_ns(ProgramKind::SlcPage);
        // ~8 pulses * 37 µs ≈ 296 µs; accept a broad datasheet-class range.
        assert!(
            t > 150_000 && t < 600_000,
            "SLC program {t} ns out of range"
        );
    }

    #[test]
    fn pulses_zero_when_already_at_target() {
        let p = IsppParams::slc();
        assert_eq!(p.pulses_between(2.4, 2.4), 0);
        assert_eq!(p.pulses_between(3.0, 2.4), 0);
    }

    #[test]
    fn wordline_program_appends_into_erased_cells() {
        let p = IsppParams::slc();
        // 4 cells: two already programmed, two erased. Target re-states the
        // programmed cells and programs one new cell — a legal append.
        let cur = [1, 0, 1, 0];
        let tgt = [1, 0, 1, 1];
        let trace = simulate_wordline_program(&p, &cur, &tgt).unwrap();
        assert_eq!(trace.cells_programmed, 1);
        assert!(trace.pulses > 0);
        assert!(trace.final_vt[3] >= p.level_vt[1]);
        // Untouched cells keep their charge exactly.
        assert_eq!(trace.final_vt[1], p.level_vt[0]);
    }

    #[test]
    fn wordline_program_rejects_charge_decrease() {
        let p = IsppParams::slc();
        let cur = [1, 0];
        let tgt = [0, 0]; // cell 0 would need charge removed
        let err = simulate_wordline_program(&p, &cur, &tgt).unwrap_err();
        assert_eq!(err.cell, 0);
        assert!(err.to_string().contains("erase"));
    }

    #[test]
    fn slc_byte_levels() {
        assert_eq!(slc_byte_to_levels(0xFF), [0; 8]);
        assert_eq!(slc_byte_to_levels(0x00), [1; 8]);
        assert_eq!(slc_byte_to_levels(0b0111_1111), [1, 0, 0, 0, 0, 0, 0, 0]);
    }

    proptest! {
        /// The byte-level overwrite rule (`new & !old == 0`) holds exactly
        /// when the cell-level ISPP simulation accepts the transition.
        #[test]
        fn bitwise_rule_equals_charge_rule(old in any::<u8>(), new in any::<u8>()) {
            let p = IsppParams::slc();
            let cur = slc_byte_to_levels(old);
            let tgt = slc_byte_to_levels(new);
            let cell_ok = simulate_wordline_program(&p, &cur, &tgt).is_ok();
            let bit_ok = new & !old == 0;
            prop_assert_eq!(cell_ok, bit_ok);
        }

        /// Charge is monotone: after a legal program no cell's Vt dropped.
        #[test]
        fn charge_monotone(pairs in proptest::collection::vec((0u8..=1, 0u8..=1), 1..64)) {
            let (cur, tgt): (Vec<u8>, Vec<u8>) = pairs.into_iter().unzip();
            let p = IsppParams::slc();
            if let Ok(trace) = simulate_wordline_program(&p, &cur, &tgt) {
                for (i, &l) in cur.iter().enumerate() {
                    prop_assert!(trace.final_vt[i] >= p.level_vt[l as usize] - 1e-9);
                }
            }
        }
    }
}
