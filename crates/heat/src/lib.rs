//! # `ipa-heat` — heat-based data placement and active wear shifting
//!
//! The IPA device defers erases; *where* the deferred erase pressure
//! lands is still set by the workload. This crate closes that loop with
//! three cooperating pieces:
//!
//! * [`LbaHeatTracker`] — bounded, decaying per-LBA-range write/delta
//!   frequency counters, fed from the device's write and `write_delta`
//!   paths. Memory is one saturating counter per range, never per LBA.
//! * [`HotTier`] — a reserved SLC plane/die set (its own chip, the
//!   dedicated-controller pattern the striped WAL uses) absorbing
//!   hot-range writes as a write-back cache, with a background destage
//!   path returning images to the main stripe via cached-program
//!   batches.
//! * [`HeatShifter`] — an [`ipa_maint::WearShifter`] proposing
//!   [`ipa_ftl::ReclaimJob::Destage`] and
//!   [`ipa_ftl::ReclaimJob::MigrateRange`] jobs to the idle-die
//!   maintenance scheduler: tier flushes when the high-water mark trips,
//!   and hot/cold stripe-slot swaps
//!   ([`ipa_ftl::ShardedFtl::swap_stripe`]) that move hot LBA ranges off
//!   dies accumulating erase deltas fastest.
//!
//! [`HeatDevice`] assembles the stack around a
//! [`ipa_maint::MaintainedFtl`] and speaks the same
//! [`ipa_ftl::NativeFlashDevice`] contract, so the storage engine mounts
//! it like any other device. Thresholds, decay, tier sizing and
//! migration pacing live behind the [`PlacementPolicy`] trait
//! ([`DefaultPolicy`] is the reference implementation).

pub mod device;
pub mod policy;
pub mod shifter;
pub mod stats;
pub mod tier;
pub mod tracker;

pub use device::HeatDevice;
pub use policy::{DefaultPolicy, PlacementPolicy};
pub use shifter::HeatShifter;
pub use stats::HeatStats;
pub use tier::HotTier;
pub use tracker::LbaHeatTracker;

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_controller::ControllerConfig;
    use ipa_flash::{DeviceConfig, DisturbRates, FlashMode, Geometry};
    use ipa_ftl::{BlockDevice, FtlConfig, ShardedFtl, StripePolicy};
    use ipa_maint::{MaintConfig, MaintainedFtl};

    fn heat_device(channels: u32, dpc: u32, policy: DefaultPolicy) -> HeatDevice {
        let chip = DeviceConfig::new(Geometry::new(16, 8, 2048, 64), FlashMode::Slc)
            .with_disturb(DisturbRates::none());
        let striped = ShardedFtl::new(
            ControllerConfig::new(channels, dpc, chip),
            FtlConfig::traditional().with_background_gc(),
            StripePolicy::RoundRobin,
        );
        HeatDevice::new(
            MaintainedFtl::new(striped, MaintConfig::default()),
            Box::new(policy),
        )
    }

    #[test]
    fn hot_writes_land_in_the_tier_and_read_back() {
        let mut dev = heat_device(2, 1, DefaultPolicy::default().with_hot_threshold(3));
        let mut buf = vec![0u8; 2048];
        // Hammer a small range hot, scatter some cold writes.
        for round in 0..8u64 {
            for lba in 0..4u64 {
                dev.write(lba, &vec![(round * 4 + lba) as u8; 2048])
                    .unwrap();
            }
            dev.write(40 + round, &vec![0xEEu8; 2048]).unwrap();
        }
        let h = dev.heat_stats();
        assert!(h.hot_hits > 0, "hot range must be absorbed: {h}");
        assert!(h.writes_seen >= 40);
        assert!(h.tier_resident > 0);
        // Reads see the tier's (freshest) images.
        for lba in 0..4u64 {
            dev.read(lba, &mut buf).unwrap();
            assert!(
                buf.iter().all(|&b| b == (28 + lba) as u8),
                "lba {lba} stale"
            );
        }
        assert!(dev.heat_stats().tier_read_hits >= 4);
        // Cold LBAs still live on the stripe.
        dev.read(40, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0xEE));
        dev.check_invariants();
    }

    #[test]
    fn full_tier_destages_in_the_background() {
        // A tiny tier and everything hot: the high-water mark must trip
        // and the scheduler must drain images back to the stripe.
        let policy = DefaultPolicy::default()
            .with_hot_threshold(1)
            .with_tier_fraction(0.02)
            .with_destage_high_water(0.5);
        let mut dev = heat_device(2, 1, policy);
        let span = 32u64;
        let mut buf = vec![0u8; 2048];
        for round in 0..40u64 {
            for lba in 0..span {
                dev.write(lba, &vec![((round * span + lba) % 251) as u8; 2048])
                    .unwrap();
            }
            // Reads advance the host clock so dies go idle for the
            // scheduler (live traffic does this naturally).
            for lba in 0..span {
                dev.read(lba, &mut buf).unwrap();
            }
        }
        let h = dev.heat_stats();
        let m = dev.maint_stats();
        assert!(h.destaged_pages > 0, "tier never destaged: {h} / {m}");
        assert_eq!(m.destages, h.destaged_pages, "scheduler and heat agree");
        assert!(
            h.tier_resident <= h.tier_slots,
            "tier can never overfill: {h}"
        );
        // Every LBA still reads the latest round, resident or destaged.
        for lba in 0..span {
            dev.read(lba, &mut buf).unwrap();
            assert!(
                buf.iter().all(|&b| b == ((39 * span + lba) % 251) as u8),
                "lba {lba} corrupted"
            );
        }
        dev.check_invariants();
    }

    #[test]
    fn skewed_stream_triggers_wear_shifting_swaps() {
        // Aggressive thresholds so the erase-delta gate trips inside a
        // short test; a round-robin stripe + hot half-span concentrates
        // erases on the hot dies.
        let policy = DefaultPolicy::default()
            .with_hot_threshold(u32::MAX) // tier off: isolate migration
            .with_migrate_wear_delta(2)
            .with_range_pages(2);
        let mut dev = heat_device(2, 2, policy);
        let mut buf = vec![0u8; 2048];
        for i in 0..6000u64 {
            // Heavy skew: LBAs 0/1 (dies 0/1 under round-robin on the
            // 2×2 stripe) take almost all rewrites; the cold stream
            // stays on LBAs ≡ 2,3 (mod 4), i.e. dies 2/3.
            let lba = if i % 16 < 14 {
                i % 2
            } else {
                2 + (i % 8) * 4 + (i % 2)
            };
            dev.write(lba, &vec![(i % 251) as u8; 2048]).unwrap();
            if i % 4 == 0 {
                dev.read(lba, &mut buf).unwrap();
            }
        }
        let h = dev.heat_stats();
        let m = dev.maint_stats();
        assert!(
            h.range_migrations > 0,
            "skew must trigger stripe swaps: {h} / {m}"
        );
        assert_eq!(
            m.range_migrations,
            h.range_migrations + h.migrations_skipped
        );
        dev.check_invariants();
        // Data integrity across all swaps.
        for lba in 0..2u64 {
            let last = (0..6000u64).rev().find(|i| i % 16 < 14 && i % 2 == lba);
            if let Some(i) = last {
                dev.read(lba, &mut buf).unwrap();
                assert!(buf.iter().all(|&b| b == (i % 251) as u8), "lba {lba}");
            }
        }
    }

    #[test]
    fn delta_appends_fold_into_resident_images() {
        use ipa_core::NmScheme;
        use ipa_ftl::{NativeFlashDevice, Region, RegionTable};

        // An IPA-formatted region so write_delta is legal, behind the
        // heat device.
        let layout = ipa_core::PageLayout::new(2048, 24, 8, NmScheme::new(2, 4));
        let mut regions = RegionTable::new();
        regions.add(Region {
            name: "t".into(),
            lbas: 0..64,
            layout: Some(layout),
        });
        let chip = DeviceConfig::new(Geometry::new(16, 8, 2048, 64), FlashMode::PSlc)
            .with_disturb(DisturbRates::none());
        let striped = ShardedFtl::with_regions(
            ControllerConfig::new(2, 1, chip),
            FtlConfig::traditional().with_background_gc(),
            StripePolicy::RoundRobin,
            regions,
        );
        let mut dev = HeatDevice::new(
            MaintainedFtl::new(striped, MaintConfig::default()),
            Box::new(DefaultPolicy::default().with_hot_threshold(2)),
        );

        // Make LBA 5 hot and tier-resident with a valid IPA image.
        let mut img = vec![0xFFu8; 2048];
        img[..layout.delta_area_offset()].fill(0x33);
        for _ in 0..4 {
            dev.write(5, &img).unwrap();
        }
        assert!(dev.heat_stats().hot_hits > 0);

        let rs = layout.record_size();
        let delta = vec![0x21u8; rs];
        dev.write_delta(5, layout.delta_area_offset(), &delta)
            .unwrap();
        assert_eq!(dev.heat_stats().tier_rmw_deltas, 1);
        let mut buf = vec![0u8; 2048];
        dev.read(5, &mut buf).unwrap();
        assert_eq!(
            &buf[layout.delta_area_offset()..layout.delta_area_offset() + rs],
            &delta[..]
        );
        dev.check_invariants();
    }
}
