//! Decaying per-LBA-range write-frequency tracking.

use ipa_ftl::Lba;

/// Bounded, decaying write/delta frequency counters over fixed-size LBA
/// ranges.
///
/// Memory is O(capacity / range_pages) — one saturating `u32` per range,
/// never per LBA — so the tracker fits in firmware-sized state however
/// large the exported LBA space is. Every [`LbaHeatTracker::record`]
/// bumps the range the LBA falls in; every `decay_interval` records all
/// counters are halved, so heat is an exponential moving count: a range
/// that stops being written cools to zero in a few intervals instead of
/// staying hot forever (the classic aging scheme, e.g. "On Efficient
/// Wear Leveling for Large-Scale Flash-Memory Storage Systems").
#[derive(Debug, Clone)]
pub struct LbaHeatTracker {
    counters: Vec<u32>,
    range_pages: u64,
    decay_interval: u64,
    /// Records since the last halving.
    since_decay: u64,
    decays: u64,
    total_records: u64,
}

impl LbaHeatTracker {
    /// Track `capacity_pages` LBAs in buckets of `range_pages`, halving
    /// all counters every `decay_interval` recorded writes.
    pub fn new(capacity_pages: u64, range_pages: u64, decay_interval: u64) -> Self {
        assert!(range_pages > 0, "range_pages must be positive");
        assert!(decay_interval > 0, "decay_interval must be positive");
        let ranges = capacity_pages.div_ceil(range_pages).max(1) as usize;
        LbaHeatTracker {
            counters: vec![0; ranges],
            range_pages,
            decay_interval,
            since_decay: 0,
            decays: 0,
            total_records: 0,
        }
    }

    /// The range index `lba` falls in.
    #[inline]
    pub fn range_of(&self, lba: Lba) -> usize {
        ((lba / self.range_pages) as usize).min(self.counters.len() - 1)
    }

    /// Number of ranges tracked (the memory bound).
    #[inline]
    pub fn ranges(&self) -> usize {
        self.counters.len()
    }

    /// Count one write (or delta append) against `lba`'s range.
    pub fn record(&mut self, lba: Lba) {
        let r = self.range_of(lba);
        self.counters[r] = self.counters[r].saturating_add(1);
        self.total_records += 1;
        self.since_decay += 1;
        if self.since_decay >= self.decay_interval {
            self.since_decay = 0;
            self.decays += 1;
            for c in &mut self.counters {
                *c >>= 1;
            }
        }
    }

    /// Current heat of `lba`'s range.
    #[inline]
    pub fn heat(&self, lba: Lba) -> u32 {
        self.counters[self.range_of(lba)]
    }

    /// Is `lba`'s range at or above `threshold`?
    #[inline]
    pub fn is_hot(&self, lba: Lba, threshold: u32) -> bool {
        self.heat(lba) >= threshold
    }

    /// Ranges ordered hottest first (ties broken by lower index), at most
    /// `n` entries, zero-heat ranges omitted.
    pub fn hottest(&self, n: usize) -> Vec<(usize, u32)> {
        let mut v: Vec<(usize, u32)> = self
            .counters
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// The raw per-range counters (metrics export).
    #[inline]
    pub fn snapshot(&self) -> &[u32] {
        &self.counters
    }

    /// Halvings applied so far.
    #[inline]
    pub fn decays(&self) -> u64 {
        self.decays
    }

    /// Writes recorded over the tracker's lifetime.
    #[inline]
    pub fn total_records(&self) -> u64 {
        self.total_records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_is_bounded_by_range_count() {
        let t = LbaHeatTracker::new(1 << 30, 1 << 20, 1000);
        assert_eq!(t.ranges(), 1024);
        let t = LbaHeatTracker::new(100, 8, 1000);
        assert_eq!(t.ranges(), 13);
        // Degenerate capacities still get one bucket.
        assert_eq!(LbaHeatTracker::new(0, 8, 10).ranges(), 1);
    }

    #[test]
    fn records_accumulate_per_range() {
        let mut t = LbaHeatTracker::new(64, 8, 1_000_000);
        for _ in 0..5 {
            t.record(3); // range 0
        }
        t.record(9); // range 1
        assert_eq!(t.heat(0), 5);
        assert_eq!(t.heat(7), 5, "same range shares the counter");
        assert_eq!(t.heat(9), 1);
        assert_eq!(t.heat(63), 0);
        assert!(t.is_hot(3, 5));
        assert!(!t.is_hot(9, 5));
        assert_eq!(t.total_records(), 6);
    }

    #[test]
    fn decay_halves_every_counter() {
        let mut t = LbaHeatTracker::new(64, 8, 10);
        for _ in 0..8 {
            t.record(0);
        }
        t.record(60); // 9th record
        assert_eq!(t.decays(), 0);
        t.record(60); // 10th record trips the halving
        assert_eq!(t.decays(), 1);
        assert_eq!(t.heat(0), 4, "8 -> 4");
        assert_eq!(t.heat(60), 1, "2 -> 1");
        // Idle ranges cool to zero after a few more intervals.
        for _ in 0..30 {
            t.record(60);
        }
        assert_eq!(t.heat(0), 0);
        assert!(t.heat(60) > 0);
    }

    #[test]
    fn hottest_orders_and_truncates() {
        let mut t = LbaHeatTracker::new(64, 8, 1_000_000);
        for _ in 0..3 {
            t.record(0);
        }
        for _ in 0..7 {
            t.record(16);
        }
        t.record(40);
        let top = t.hottest(2);
        assert_eq!(top, vec![(2, 7), (0, 3)]);
        assert_eq!(t.hottest(10).len(), 3, "zero-heat ranges omitted");
    }

    #[test]
    fn out_of_range_lba_clamps_to_last_bucket() {
        let mut t = LbaHeatTracker::new(16, 8, 1000);
        t.record(1_000_000);
        assert_eq!(t.heat(15), 1);
    }
}
