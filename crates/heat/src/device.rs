//! The heat-placement device: a [`MaintainedFtl`] fronted by the heat
//! tracker and the SLC hot tier, with the wear shifter installed in the
//! maintenance scheduler.

use std::sync::{Arc, Mutex, MutexGuard};

use ipa_controller::ControllerStats;
use ipa_core::PageLayout;
use ipa_flash::FlashStats;
use ipa_ftl::{
    BlockDevice, DeviceStats, FtlError, IoCompletion, IoQueue, IoRequest, IoToken, Lba,
    NativeFlashDevice, Result, SubmissionState,
};
use ipa_maint::{MaintStats, MaintainedFtl};

use crate::policy::PlacementPolicy;
use crate::shifter::HeatShifter;
use crate::stats::HeatStats;
use crate::tier::HotTier;
use crate::tracker::LbaHeatTracker;

/// The state the device and the shifter share: tracker, tier, policy
/// and the subsystem counters. Always lock this *around* heat
/// decisions, never across a call into the wrapped device — the
/// maintenance poll inside every inner command re-enters the core
/// through the shifter.
pub(crate) struct HeatCore {
    pub(crate) tracker: LbaHeatTracker,
    pub(crate) tier: HotTier,
    pub(crate) policy: Box<dyn PlacementPolicy>,
    pub(crate) stats: HeatStats,
}

impl HeatCore {
    /// Record heat for a full-page write and try to absorb it in the
    /// tier. Absorbs when the LBA is already resident (the tier holds
    /// the freshest image — routing elsewhere would go stale) or its
    /// range is hot; a full tier spills to the caller.
    fn absorb_write(&mut self, lba: Lba, data: &[u8]) -> Result<bool> {
        self.tracker.record(lba);
        self.stats.writes_seen += 1;
        self.stats.decays = self.tracker.decays();
        let route =
            self.tier.contains(lba) || self.tracker.is_hot(lba, self.policy.hot_threshold());
        if !route {
            return Ok(false);
        }
        if self.tier.write(lba, data)? {
            self.stats.hot_hits += 1;
            Ok(true)
        } else {
            self.stats.hot_spills += 1;
            Ok(false)
        }
    }

    /// Record heat for a delta append and fold it into a resident tier
    /// image. `Ok(false)` routes the append to the main device.
    fn absorb_delta(
        &mut self,
        lba: Lba,
        offset: usize,
        delta: &[u8],
        layout: Option<PageLayout>,
    ) -> Result<bool> {
        self.tracker.record(lba);
        self.stats.deltas_seen += 1;
        self.stats.decays = self.tracker.decays();
        if !self.tier.contains(lba) {
            return Ok(false);
        }
        let applied = self.tier.apply_delta(lba, offset, delta, layout)?;
        if applied {
            self.stats.tier_rmw_deltas += 1;
        }
        Ok(applied)
    }
}

/// Poison-tolerant core lock (mirrors the stripe's shard locking).
pub(crate) fn lock_core(core: &Arc<Mutex<HeatCore>>) -> MutexGuard<'_, HeatCore> {
    core.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Own-token namespace: completions the heat layer services itself use
/// the top token bit, so they can never collide with the wrapped
/// device's tokens.
const TIER_TOKEN_BIT: u64 = 1 << 63;

/// A [`MaintainedFtl`] with heat-based placement on top:
///
/// * every full write and delta append feeds the [`LbaHeatTracker`];
/// * hot-range full writes are absorbed by the SLC [`HotTier`] (reads
///   and delta appends to resident pages are served there too);
/// * a [`HeatShifter`] installed in the maintenance scheduler destages
///   the tier back to the main stripe and re-stripes hot LBA ranges off
///   high-erase-delta dies, both gated on idle dies.
///
/// Tier operations run on the tier chip's own clock; the device horizon
/// ([`BlockDevice::elapsed_ns`]) is the max of both devices, while the
/// per-stream submission clock stays with the main stripe (a tier hit
/// behaves like a controller-buffer hit).
pub struct HeatDevice {
    inner: MaintainedFtl,
    core: Arc<Mutex<HeatCore>>,
    sub: SubmissionState,
}

impl HeatDevice {
    /// Wrap `inner`, sizing the tracker and tier from `policy`, and
    /// install the wear shifter in `inner`'s scheduler.
    pub fn new(mut inner: MaintainedFtl, policy: Box<dyn PlacementPolicy>) -> Self {
        let capacity = inner.capacity_pages();
        let page_size = inner.page_size();
        let tracker = LbaHeatTracker::new(capacity, policy.range_pages(), policy.decay_interval());
        let slots = ((capacity as f64 * policy.tier_fraction()).ceil() as u64).max(4);
        let tier = HotTier::new(page_size, slots);
        let core = Arc::new(Mutex::new(HeatCore {
            tracker,
            tier,
            policy,
            stats: HeatStats::default(),
        }));
        inner.set_wear_shifter(Box::new(HeatShifter::new(Arc::clone(&core))));
        HeatDevice {
            inner,
            core,
            sub: SubmissionState::default(),
        }
    }

    /// The heat subsystem's counters, with the tier gauges refreshed.
    pub fn heat_stats(&self) -> HeatStats {
        let mut core = lock_core(&self.core);
        core.stats.tier_resident = core.tier.resident();
        core.stats.tier_slots = core.tier.slots();
        core.stats
    }

    /// The wrapped maintenance scheduler's counters.
    pub fn maint_stats(&self) -> MaintStats {
        self.inner.maint_stats()
    }

    /// The wrapped maintained stripe (inspection only).
    pub fn inner(&self) -> &MaintainedFtl {
        &self.inner
    }

    /// The hottest tracked ranges, hottest first (metrics export).
    pub fn hottest_ranges(&self, n: usize) -> Vec<(usize, u32)> {
        lock_core(&self.core).tracker.hottest(n)
    }

    /// Raw counters of the tier's own chip.
    pub fn tier_flash_stats(&self) -> FlashStats {
        lock_core(&self.core).tier.flash_stats()
    }

    /// Run every shard's exhaustive invariant check.
    pub fn check_invariants(&self) {
        self.inner.check_invariants();
    }

    /// Own-token constructor.
    fn own_token(&mut self, data: Vec<Vec<u8>>, rejected: Vec<usize>, t0: u64) -> IoToken {
        let done = self.inner.submission_clock_ns();
        let raw = self.sub.complete_with_rejections(data, rejected, t0, done);
        IoToken(raw.0 | TIER_TOKEN_BIT)
    }
}

impl BlockDevice for HeatDevice {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn capacity_pages(&self) -> u64 {
        self.inner.capacity_pages()
    }

    fn read(&mut self, lba: Lba, buf: &mut [u8]) -> Result<()> {
        let hit = {
            let mut core = lock_core(&self.core);
            let hit = core.tier.read(lba, buf)?;
            if hit {
                core.stats.tier_read_hits += 1;
            }
            hit
        };
        if hit {
            self.inner.poll_now()
        } else {
            self.inner.read(lba, buf)
        }
    }

    fn write(&mut self, lba: Lba, data: &[u8]) -> Result<()> {
        let absorbed = lock_core(&self.core).absorb_write(lba, data)?;
        if absorbed {
            self.inner.poll_now()
        } else {
            self.inner.write(lba, data)
        }
    }

    fn trim(&mut self, lba: Lba) -> Result<()> {
        lock_core(&self.core).tier.remove(lba)?;
        self.inner.trim(lba)
    }

    fn is_mapped(&self, lba: Lba) -> bool {
        lock_core(&self.core).tier.contains(lba) || self.inner.is_mapped(lba)
    }

    fn layout_for(&self, lba: Lba) -> Option<PageLayout> {
        self.inner.layout_for(lba)
    }

    /// Host counters of the whole placement stack: the main stripe plus
    /// the tier's host-facing traffic (absorbed writes/hits are host
    /// commands too), plus this layer's queued-path counters.
    fn device_stats(&self) -> DeviceStats {
        let mut d = self.sub.fold_into(self.inner.device_stats());
        let t = lock_core(&self.core).tier.device_stats();
        d.host_reads += t.host_reads;
        d.host_writes += t.host_writes;
        d.bytes_host_read += t.bytes_host_read;
        d.bytes_host_written += t.bytes_host_written;
        d
    }

    /// Raw flash counters over main dies *and* the tier chip — wear and
    /// traffic on the reserved SLC set stay visible.
    fn flash_stats(&self) -> FlashStats {
        self.inner
            .flash_stats()
            .merged(&lock_core(&self.core).tier.flash_stats())
    }

    fn elapsed_ns(&self) -> u64 {
        self.inner
            .elapsed_ns()
            .max(lock_core(&self.core).tier.elapsed_ns())
    }

    /// Peak wear of the *main* stripe — the tier is a separate
    /// high-endurance SLC reserve whose wear is reported in the heat
    /// section, not mixed into the data device's longevity number.
    fn max_erase_count(&self) -> u32 {
        self.inner.max_erase_count()
    }

    fn raw_blocks(&self) -> u32 {
        self.inner.raw_blocks()
    }

    fn controller_stats(&self) -> Option<ControllerStats> {
        BlockDevice::controller_stats(&self.inner)
    }

    fn set_submission_clock_ns(&mut self, ns: u64) {
        self.inner.set_submission_clock_ns(ns);
    }

    fn submission_clock_ns(&self) -> u64 {
        self.inner.submission_clock_ns()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

impl NativeFlashDevice for HeatDevice {
    fn write_delta(&mut self, lba: Lba, offset: usize, delta_bytes: &[u8]) -> Result<()> {
        let layout = self.inner.layout_for(lba);
        let absorbed = lock_core(&self.core).absorb_delta(lba, offset, delta_bytes, layout)?;
        if absorbed {
            self.inner.poll_now()
        } else {
            self.inner.write_delta(lba, offset, delta_bytes)
        }
    }
}

/// The queued face. Requests with no tier involvement forward verbatim
/// (keeping the stripe's posted overlap); a request touching a resident
/// or hot page is serviced member-by-member through the tier-aware sync
/// paths and completes immediately on an own-namespace token.
impl IoQueue for HeatDevice {
    fn submit(&mut self, req: IoRequest) -> Result<IoToken> {
        match req {
            IoRequest::ReadV(ref lbas) | IoRequest::HighPriorityReadV(ref lbas) => {
                let any_resident = {
                    let core = lock_core(&self.core);
                    lbas.iter().any(|&l| core.tier.contains(l))
                };
                if !any_resident {
                    return self.inner.submit(req);
                }
                self.sub.count_request(&req);
                let t0 = self.inner.submission_clock_ns();
                let ps = self.page_size();
                let mut data = Vec::with_capacity(lbas.len());
                for &lba in lbas {
                    let mut buf = vec![0u8; ps];
                    self.read(lba, &mut buf)?;
                    data.push(buf);
                }
                Ok(self.own_token(data, Vec::new(), t0))
            }
            IoRequest::WriteV(pages) => {
                let mut remainder = Vec::with_capacity(pages.len());
                {
                    let mut core = lock_core(&self.core);
                    for (lba, data) in pages {
                        if !core.absorb_write(lba, &data)? {
                            remainder.push((lba, data));
                        }
                    }
                }
                if remainder.is_empty() {
                    let t0 = self.inner.submission_clock_ns();
                    self.inner.poll_now()?;
                    Ok(self.own_token(Vec::new(), Vec::new(), t0))
                } else {
                    // Heat for the spilled members is already recorded;
                    // the stripe just programs them.
                    self.inner.submit(IoRequest::WriteV(remainder))
                }
            }
            IoRequest::WriteDelta { lba, offset, delta } => {
                let layout = self.inner.layout_for(lba);
                let absorbed = lock_core(&self.core).absorb_delta(lba, offset, &delta, layout)?;
                if absorbed {
                    let t0 = self.inner.submission_clock_ns();
                    self.inner.poll_now()?;
                    Ok(self.own_token(Vec::new(), Vec::new(), t0))
                } else {
                    self.inner
                        .submit(IoRequest::WriteDelta { lba, offset, delta })
                }
            }
            IoRequest::WriteDeltaV(members) => {
                let any_resident = {
                    let core = lock_core(&self.core);
                    members.iter().any(|(l, _, _)| core.tier.contains(*l))
                };
                if !any_resident {
                    // Record heat before forwarding — the stripe has no
                    // tracker.
                    {
                        let mut core = lock_core(&self.core);
                        for (lba, _, _) in &members {
                            core.tracker.record(*lba);
                            core.stats.deltas_seen += 1;
                        }
                        core.stats.decays = core.tracker.decays();
                    }
                    return self.inner.submit(IoRequest::WriteDeltaV(members));
                }
                let req = IoRequest::WriteDeltaV(members.clone());
                self.sub.count_request(&req);
                let t0 = self.inner.submission_clock_ns();
                // Mixed batch: service every member through the sync
                // path, mirroring the stripe's per-member rejection
                // contract (an in-place rejection is reported, not
                // fatal; tier RMWs never reject).
                let mut rejected = Vec::new();
                for (i, (lba, offset, delta)) in members.into_iter().enumerate() {
                    match self.write_delta(lba, offset, &delta) {
                        Ok(()) => {}
                        Err(FtlError::InPlaceRejected { .. }) => rejected.push(i),
                        Err(e) => return Err(e),
                    }
                }
                Ok(self.own_token(Vec::new(), rejected, t0))
            }
            IoRequest::Trim(lba) => {
                lock_core(&self.core).tier.remove(lba)?;
                self.inner.submit(IoRequest::Trim(lba))
            }
            IoRequest::Flush => self.inner.submit(IoRequest::Flush),
        }
    }

    fn poll(&mut self, token: IoToken) -> Option<IoCompletion> {
        if token.0 & TIER_TOKEN_BIT != 0 {
            let mut c = self.sub.take(IoToken(token.0 & !TIER_TOKEN_BIT))?;
            c.token = token;
            Some(c)
        } else {
            self.inner.poll(token)
        }
    }

    fn poll_checked(&mut self, token: IoToken) -> Result<IoCompletion> {
        if token.0 & TIER_TOKEN_BIT != 0 {
            let mut c = self.sub.take_checked(IoToken(token.0 & !TIER_TOKEN_BIT))?;
            c.token = token;
            Ok(c)
        } else {
            self.inner.poll_checked(token)
        }
    }

    fn sync(&mut self) -> u64 {
        let merged = self.inner.sync();
        merged.max(lock_core(&self.core).tier.elapsed_ns())
    }

    fn forget(&mut self, token: IoToken) {
        if token.0 & TIER_TOKEN_BIT != 0 {
            self.sub.forget(IoToken(token.0 & !TIER_TOKEN_BIT));
        } else {
            self.inner.forget(token);
        }
    }

    fn note_readahead_hit(&mut self) {
        self.inner.note_readahead_hit();
    }

    fn note_wal_stripe_write(&mut self) {
        self.inner.note_wal_stripe_write();
    }

    fn note_wal_stripe_reclaimed(&mut self) {
        self.inner.note_wal_stripe_reclaimed();
    }
}
