//! Counters the heat-placement subsystem keeps about itself.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What the tracker, tier and shifter did. Counters unless noted;
/// gauges are refreshed when the snapshot is taken.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeatStats {
    /// Full-page host writes observed by the tracker.
    pub writes_seen: u64,
    /// Host delta appends observed by the tracker.
    pub deltas_seen: u64,
    /// Hot full-page writes absorbed by the SLC tier.
    pub hot_hits: u64,
    /// Hot writes that found the tier full and spilled to the main
    /// stripe.
    pub hot_spills: u64,
    /// Host reads served from the tier.
    pub tier_read_hits: u64,
    /// Delta appends applied as read-modify-writes of a tier-resident
    /// image (the tier converts in-place appends into rewrites, so NOP
    /// budgets never bind there).
    pub tier_rmw_deltas: u64,
    /// Pages destaged from the tier back to the main stripe.
    pub destaged_pages: u64,
    /// Hot/cold stripe-slot swaps executed ([`ipa_ftl::ShardedFtl::swap_stripe`]
    /// returned `true`).
    pub range_migrations: u64,
    /// Proposed swaps the stripe refused (layout mismatch, identical
    /// LBAs) — counted so a misconfigured pairing policy is visible.
    pub migrations_skipped: u64,
    /// Heat-counter halvings applied (tracker aging).
    pub decays: u64,
    /// Gauge: host pages resident in the tier right now.
    pub tier_resident: u64,
    /// Gauge: total tier page slots.
    pub tier_slots: u64,
}

impl HeatStats {
    /// Fraction of tier slots occupied, 0.0 on a zero-slot tier.
    pub fn tier_occupancy(&self) -> f64 {
        if self.tier_slots == 0 {
            0.0
        } else {
            self.tier_resident as f64 / self.tier_slots as f64
        }
    }
}

impl fmt::Display for HeatStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "writes={} deltas={} hot_hits={} spills={} read_hits={} rmw={} \
             destaged={} migrations={} (skipped={}) decays={} tier={}/{}",
            self.writes_seen,
            self.deltas_seen,
            self.hot_hits,
            self.hot_spills,
            self.tier_read_hits,
            self.tier_rmw_deltas,
            self.destaged_pages,
            self.range_migrations,
            self.migrations_skipped,
            self.decays,
            self.tier_resident,
            self.tier_slots
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_handles_zero_slots() {
        assert_eq!(HeatStats::default().tier_occupancy(), 0.0);
        let s = HeatStats {
            tier_resident: 3,
            tier_slots: 12,
            ..Default::default()
        };
        assert!((s.tier_occupancy() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_is_informative() {
        let s = HeatStats::default().to_string();
        assert!(s.contains("hot_hits=0"));
        assert!(s.contains("tier=0/0"));
    }
}
