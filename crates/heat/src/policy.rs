//! Pluggable placement policy: thresholds, decay, tier sizing and
//! migration pacing live behind a trait so experiments can swap them
//! without touching the device or the shifter.

/// The knobs a [`crate::HeatDevice`] and its wear shifter consult. All
/// methods are pull-style so a policy may adapt over time (e.g. tighten
/// the hot threshold as the tier fills).
pub trait PlacementPolicy: Send {
    /// LBAs per heat-tracking range (the tracker's bucket size).
    fn range_pages(&self) -> u64;

    /// Recorded writes between counter halvings.
    fn decay_interval(&self) -> u64;

    /// Range heat at or above which full-page writes route to the SLC
    /// tier.
    fn hot_threshold(&self) -> u32;

    /// Hot-tier capacity as a fraction of the exported LBA space.
    fn tier_fraction(&self) -> f64;

    /// Tier occupancy fraction at which the shifter proposes destage
    /// jobs.
    fn destage_high_water(&self) -> f64;

    /// Pages per destage job (each page is one scheduler step).
    fn destage_batch(&self) -> usize;

    /// Cross-die erase spread (max − min, counted over the whole run) at
    /// which the shifter proposes wear-shifting migrations.
    fn migrate_wear_delta(&self) -> u64;

    /// Hot/cold LBA pairs per migration job (each pair is one step).
    fn migrate_batch(&self) -> usize;
}

/// The default policy: small tracking ranges, a tier sized at 1/16 of
/// the LBA space, destage at 75 % full, and migration once the die
/// erase spread exceeds 4.
#[derive(Debug, Clone)]
pub struct DefaultPolicy {
    pub range_pages: u64,
    pub decay_interval: u64,
    pub hot_threshold: u32,
    pub tier_fraction: f64,
    pub destage_high_water: f64,
    pub destage_batch: usize,
    pub migrate_wear_delta: u64,
    pub migrate_batch: usize,
}

impl Default for DefaultPolicy {
    fn default() -> Self {
        DefaultPolicy {
            range_pages: 8,
            decay_interval: 1024,
            hot_threshold: 4,
            tier_fraction: 1.0 / 16.0,
            destage_high_water: 0.75,
            destage_batch: 8,
            migrate_wear_delta: 4,
            migrate_batch: 4,
        }
    }
}

impl DefaultPolicy {
    pub fn with_hot_threshold(mut self, t: u32) -> Self {
        self.hot_threshold = t;
        self
    }

    pub fn with_tier_fraction(mut self, f: f64) -> Self {
        assert!(f > 0.0 && f < 1.0, "tier fraction in (0,1)");
        self.tier_fraction = f;
        self
    }

    pub fn with_range_pages(mut self, pages: u64) -> Self {
        self.range_pages = pages;
        self
    }

    pub fn with_decay_interval(mut self, records: u64) -> Self {
        self.decay_interval = records;
        self
    }

    pub fn with_migrate_wear_delta(mut self, spread: u64) -> Self {
        self.migrate_wear_delta = spread;
        self
    }

    pub fn with_destage_high_water(mut self, frac: f64) -> Self {
        assert!(frac > 0.0 && frac <= 1.0, "high water in (0,1]");
        self.destage_high_water = frac;
        self
    }
}

impl PlacementPolicy for DefaultPolicy {
    fn range_pages(&self) -> u64 {
        self.range_pages
    }

    fn decay_interval(&self) -> u64 {
        self.decay_interval
    }

    fn hot_threshold(&self) -> u32 {
        self.hot_threshold
    }

    fn tier_fraction(&self) -> f64 {
        self.tier_fraction
    }

    fn destage_high_water(&self) -> f64 {
        self.destage_high_water
    }

    fn destage_batch(&self) -> usize {
        self.destage_batch
    }

    fn migrate_wear_delta(&self) -> u64 {
        self.migrate_wear_delta
    }

    fn migrate_batch(&self) -> usize {
        self.migrate_batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane_and_builders_apply() {
        let p = DefaultPolicy::default()
            .with_hot_threshold(9)
            .with_tier_fraction(0.25)
            .with_range_pages(4)
            .with_decay_interval(64)
            .with_migrate_wear_delta(2)
            .with_destage_high_water(0.5);
        assert_eq!(p.hot_threshold(), 9);
        assert!((p.tier_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(p.range_pages(), 4);
        assert_eq!(p.decay_interval(), 64);
        assert_eq!(p.migrate_wear_delta(), 2);
        assert!((p.destage_high_water() - 0.5).abs() < 1e-12);
        assert!(p.destage_batch() > 0);
        assert!(p.migrate_batch() > 0);
    }

    #[test]
    #[should_panic(expected = "tier fraction")]
    fn tier_fraction_must_be_fractional() {
        let _ = DefaultPolicy::default().with_tier_fraction(1.5);
    }
}
