//! The [`WearShifter`] implementation: turns heat and wear views into
//! the cross-die jobs the idle-die maintenance scheduler dispatches.

use std::sync::{Arc, Mutex};

use ipa_ftl::{BlockDevice, Lba, ReclaimJob, Result, ShardedFtl};
use ipa_maint::WearShifter;

use crate::device::{lock_core, HeatCore};

/// Proposes and executes [`ReclaimJob::Destage`] and
/// [`ReclaimJob::MigrateRange`] jobs from the shared heat state.
///
/// Destage wins over migration: a tier above its high-water mark is
/// immediate pressure (hot writes start spilling), while wear imbalance
/// accumulates over thousands of erases. Migration triggers on per-die
/// erase *deltas* since the last proposal epoch — not lifetime totals —
/// so a historic imbalance that host traffic has since corrected does
/// not keep proposing swaps forever.
pub struct HeatShifter {
    core: Arc<Mutex<HeatCore>>,
    /// Per-die erase counters at the last migration proposal (the epoch
    /// baseline the wear deltas are measured against).
    last_wear: Vec<u64>,
}

impl HeatShifter {
    pub(crate) fn new(core: Arc<Mutex<HeatCore>>) -> Self {
        HeatShifter {
            core,
            last_wear: Vec::new(),
        }
    }

    /// Erase deltas per die since the epoch baseline.
    fn wear_deltas(&self, now: &[u64]) -> Vec<u64> {
        now.iter()
            .enumerate()
            .map(|(d, &e)| e.saturating_sub(self.last_wear.get(d).copied().unwrap_or(0)))
            .collect()
    }

    fn propose_destage(&self, ftl: &ShardedFtl) -> Option<ReclaimJob> {
        let core = lock_core(&self.core);
        if core.tier.occupancy() < core.policy.destage_high_water() || core.tier.resident() == 0 {
            return None;
        }
        // Destage coldest-first: the pages least likely to be rewritten
        // in the tier soon, so the hot set keeps its slots. Only pages
        // the main stripe can address are eligible.
        let mut hosts: Vec<Lba> = core
            .tier
            .resident_hosts()
            .into_iter()
            .filter(|&h| ftl.locate(h).is_ok())
            .collect();
        hosts.sort_by_key(|&h| (core.tracker.heat(h), h));
        hosts.truncate(core.policy.destage_batch().max(1));
        if hosts.is_empty() {
            return None;
        }
        Some(ReclaimJob::Destage {
            lbas: hosts,
            next: 0,
        })
    }

    fn propose_migration(&mut self, ftl: &ShardedFtl) -> Option<ReclaimJob> {
        let now = ftl.controller().stats().die_erases;
        let deltas = self.wear_deltas(&now);
        let (&max_d, &min_d) = match (deltas.iter().max(), deltas.iter().min()) {
            (Some(a), Some(b)) => (a, b),
            _ => return None,
        };
        let core = lock_core(&self.core);
        if ftl.dies() < 2 || max_d - min_d < core.policy.migrate_wear_delta() {
            return None;
        }
        let worn = deltas.iter().position(|&d| d == max_d).unwrap() as u32;
        let healthy = deltas.iter().rposition(|&d| d == min_d).unwrap() as u32;

        // Hot LBAs on the worn die, hottest first; cold LBAs on the
        // healthy die, coldest first. Greedily pair them where the swap
        // actually moves heat (strictly hotter onto the healthy die) and
        // the slot layouts agree (the stripe refuses mismatches anyway —
        // pre-filtering keeps the job's steps useful).
        let mut hot: Vec<Lba> = ftl.host_lbas_on_die(worn);
        hot.sort_by_key(|&h| (std::cmp::Reverse(core.tracker.heat(h)), h));
        let mut cold: Vec<Lba> = ftl.host_lbas_on_die(healthy);
        cold.sort_by_key(|&h| (core.tracker.heat(h), h));

        let mut pairs: Vec<(Lba, Lba)> = Vec::new();
        let mut used = vec![false; cold.len()];
        for &h in hot.iter().take(core.policy.migrate_batch().max(1)) {
            let hh = core.tracker.heat(h);
            if hh == 0 {
                break;
            }
            let hl = ftl.layout_for(h);
            if let Some(j) = (0..cold.len()).find(|&j| {
                !used[j] && core.tracker.heat(cold[j]) < hh && ftl.layout_for(cold[j]) == hl
            }) {
                used[j] = true;
                pairs.push((h, cold[j]));
            }
            if pairs.len() >= core.policy.migrate_batch().max(1) {
                break;
            }
        }
        drop(core);
        // Reset the epoch whether or not a job came out: the spread has
        // been acted on (or found unactionable) at this wear level.
        self.last_wear = now;
        if pairs.is_empty() {
            None
        } else {
            Some(ReclaimJob::MigrateRange { pairs, next: 0 })
        }
    }
}

impl WearShifter for HeatShifter {
    fn propose(&mut self, ftl: &ShardedFtl) -> Option<ReclaimJob> {
        self.propose_destage(ftl)
            .or_else(|| self.propose_migration(ftl))
    }

    fn next_dies(&self, job: &ReclaimJob, ftl: &ShardedFtl) -> Vec<u32> {
        match job {
            ReclaimJob::MigrateRange { pairs, next } => match pairs.get(*next) {
                Some(&(a, b)) => {
                    let mut dies: Vec<u32> = [a, b]
                        .iter()
                        .filter_map(|&l| ftl.locate(l).ok())
                        .map(|(d, _)| d)
                        .collect();
                    dies.dedup();
                    dies
                }
                None => Vec::new(),
            },
            ReclaimJob::Destage { lbas, next } => lbas
                .get(*next)
                .and_then(|&l| ftl.locate(l).ok())
                .map(|(d, _)| vec![d])
                .unwrap_or_default(),
            ReclaimJob::Gc(_) => Vec::new(),
        }
    }

    fn step(&mut self, job: &mut ReclaimJob, ftl: &mut ShardedFtl) -> Result<bool> {
        match job {
            ReclaimJob::MigrateRange { pairs, next } => {
                let (a, b) = pairs[*next];
                *next += 1;
                let swapped = ftl.swap_stripe(a, b)?;
                let mut core = lock_core(&self.core);
                if swapped {
                    core.stats.range_migrations += 1;
                } else {
                    core.stats.migrations_skipped += 1;
                }
                Ok(*next >= pairs.len())
            }
            ReclaimJob::Destage { lbas, next } => {
                let lba = lbas[*next];
                *next += 1;
                // Copy first, drop the tier entry only once the stripe
                // write landed — a failure mid-destage loses nothing.
                let img = lock_core(&self.core).tier.peek_image(lba)?;
                if let Some(img) = img {
                    ftl.write_batch_cached(&[(lba, img)])?;
                    let mut core = lock_core(&self.core);
                    core.tier.remove(lba)?;
                    core.stats.destaged_pages += 1;
                }
                Ok(*next >= lbas.len())
            }
            // GC jobs belong to the per-die scheduler, not the shifter.
            ReclaimJob::Gc(_) => Ok(true),
        }
    }
}
