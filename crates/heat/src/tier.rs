//! The SLC hot tier: a small dedicated SLC device absorbing hot-range
//! writes as a write-back cache in front of the main stripe.

use std::collections::BTreeMap;

use ipa_core::PageLayout;
use ipa_flash::{DeviceConfig, DisturbRates, FlashChip, FlashMode, FlashStats, Geometry};
use ipa_ftl::{BlockDevice, Ftl, FtlConfig, FtlError, Lba, Result};

/// A reserved SLC plane/die set (modelled as its own [`FlashChip`], the
/// dedicated-controller pattern the striped WAL uses) holding full-page
/// images of hot host LBAs.
///
/// The tier is a write-back cache keyed by host LBA: a hit rewrites the
/// image in the tier (out of place, on fast SLC), a miss allocates a
/// free tier slot, and the destage path hands the image back to the
/// main stripe via its cached-program batch writer. Delta appends to a
/// resident page are folded into the cached image as read-modify-writes
/// — each lands as a fresh SLC program, so the NOP budget that gates
/// in-place appends on the main device never binds here.
///
/// The host↔tier map is a `BTreeMap` so candidate enumeration (and with
/// it destage order) is deterministic.
pub struct HotTier {
    ftl: Ftl<FlashChip>,
    /// host LBA → tier LBA of the resident image.
    map: BTreeMap<Lba, Lba>,
    /// Tier LBAs not currently holding an image (LIFO).
    free: Vec<Lba>,
    slots: u64,
}

impl HotTier {
    /// A tier of at least `slots_wanted` page slots of `page_size`
    /// bytes. SLC mode, its own clock; disturb is off — the tier is a
    /// small, furiously rewritten region that real firmware would scrub
    /// continuously.
    pub fn new(page_size: usize, slots_wanted: u64) -> Self {
        let slots_wanted = slots_wanted.max(4);
        let ppb = 32u32;
        // Size raw blocks so the exported capacity clears the ask even
        // after over-provisioning, with slack for GC churn.
        let blocks = ((slots_wanted * 2).div_ceil(ppb as u64) as u32).max(4) + 4;
        let chip = FlashChip::new(
            DeviceConfig::new(Geometry::new(blocks, ppb, page_size, 128), FlashMode::Slc)
                .with_disturb(DisturbRates::none()),
        );
        let ftl = Ftl::new(chip, FtlConfig::traditional());
        let slots = ftl.capacity_pages().min(slots_wanted);
        let free: Vec<Lba> = (0..slots).rev().collect();
        HotTier {
            ftl,
            map: BTreeMap::new(),
            free,
            slots,
        }
    }

    /// Total page slots.
    #[inline]
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// Host pages resident right now.
    #[inline]
    pub fn resident(&self) -> u64 {
        self.map.len() as u64
    }

    /// Fraction of slots occupied.
    pub fn occupancy(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.resident() as f64 / self.slots as f64
        }
    }

    /// Is `host` resident?
    #[inline]
    pub fn contains(&self, host: Lba) -> bool {
        self.map.contains_key(&host)
    }

    /// Resident host LBAs in ascending order — the destage candidate
    /// pool.
    pub fn resident_hosts(&self) -> Vec<Lba> {
        self.map.keys().copied().collect()
    }

    /// Absorb a full-page write. `Ok(true)` if the tier took it (hit on
    /// a resident image, or a free slot was available); `Ok(false)` if
    /// the tier is full and `host` is not resident — the caller spills
    /// to the main stripe.
    pub fn write(&mut self, host: Lba, data: &[u8]) -> Result<bool> {
        if let Some(&slot) = self.map.get(&host) {
            self.ftl.write(slot, data)?;
            return Ok(true);
        }
        let Some(slot) = self.free.pop() else {
            return Ok(false);
        };
        if let Err(e) = self.ftl.write(slot, data) {
            self.free.push(slot);
            return Err(e);
        }
        self.map.insert(host, slot);
        Ok(true)
    }

    /// Read a resident image into `buf`. `Ok(false)` on a miss.
    pub fn read(&mut self, host: Lba, buf: &mut [u8]) -> Result<bool> {
        match self.map.get(&host) {
            Some(&slot) => {
                self.ftl.read(slot, buf)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Fold a delta append into a resident image (read-modify-write).
    /// `Ok(false)` on a miss. The offset/length rules of the host-side
    /// `write_delta` are enforced against `layout` so the tier accepts
    /// exactly the appends the main device would.
    pub fn apply_delta(
        &mut self,
        host: Lba,
        offset: usize,
        delta: &[u8],
        layout: Option<PageLayout>,
    ) -> Result<bool> {
        let Some(&slot) = self.map.get(&host) else {
            return Ok(false);
        };
        let layout = layout.ok_or(FtlError::LayoutRequired { lba: host })?;
        let rs = layout.record_size();
        let area = layout.delta_area_offset();
        if offset < area || !(offset - area).is_multiple_of(rs) {
            return Err(FtlError::BadWriteDelta {
                lba: host,
                reason: "offset is not a record-slot boundary",
            });
        }
        if delta.is_empty() || !delta.len().is_multiple_of(rs) {
            return Err(FtlError::BadWriteDelta {
                lba: host,
                reason: "length is not a whole number of record slots",
            });
        }
        let first_slot = ((offset - area) / rs) as u16;
        let count = (delta.len() / rs) as u16;
        if first_slot + count > layout.scheme.n {
            return Err(FtlError::BadWriteDelta {
                lba: host,
                reason: "append beyond the delta-record area",
            });
        }
        let mut img = vec![0u8; self.ftl.page_size()];
        self.ftl.read(slot, &mut img)?;
        // Same cell semantics as the physical append: programming can
        // only clear bits, so the stored slot becomes `old & new`.
        for (i, &b) in delta.iter().enumerate() {
            img[offset + i] &= b;
        }
        self.ftl.write(slot, &img)?;
        Ok(true)
    }

    /// Read a resident image without evicting it (the destage path
    /// copies first, drops the entry only after the main-stripe write
    /// lands). `None` on a miss.
    pub fn peek_image(&mut self, host: Lba) -> Result<Option<Vec<u8>>> {
        let Some(&slot) = self.map.get(&host) else {
            return Ok(None);
        };
        let mut img = vec![0u8; self.ftl.page_size()];
        self.ftl.read(slot, &mut img)?;
        Ok(Some(img))
    }

    /// Drop `host`'s entry and recycle its slot. No-op on a miss.
    pub fn remove(&mut self, host: Lba) -> Result<()> {
        if let Some(slot) = self.map.remove(&host) {
            self.ftl.trim(slot)?;
            self.free.push(slot);
        }
        Ok(())
    }

    /// The tier device's clock.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.ftl.elapsed_ns()
    }

    /// Raw counters of the tier's chip.
    pub fn flash_stats(&self) -> FlashStats {
        self.ftl.flash_stats()
    }

    /// Host-level counters of the tier's internal FTL (its GC and
    /// per-op traffic — reported under the heat section, never folded
    /// into the main device's host counters).
    pub fn device_stats(&self) -> ipa_ftl::DeviceStats {
        self.ftl.device_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_core::NmScheme;

    fn layout(page: usize) -> PageLayout {
        PageLayout::new(page, 24, 8, NmScheme::new(2, 4))
    }

    #[test]
    fn write_read_round_trip_and_occupancy() {
        let mut t = HotTier::new(2048, 8);
        assert!(t.slots() >= 8);
        assert_eq!(t.resident(), 0);
        let img = vec![0xABu8; 2048];
        assert!(t.write(42, &img).unwrap());
        assert!(t.contains(42));
        let mut buf = vec![0u8; 2048];
        assert!(t.read(42, &mut buf).unwrap());
        assert_eq!(buf, img);
        assert!(!t.read(43, &mut buf).unwrap(), "miss reports false");
        assert!(t.occupancy() > 0.0);
        // Rewrite hits the same slot (no second slot consumed).
        let img2 = vec![0xCDu8; 2048];
        assert!(t.write(42, &img2).unwrap());
        assert_eq!(t.resident(), 1);
        t.read(42, &mut buf).unwrap();
        assert_eq!(buf, img2);
    }

    #[test]
    fn full_tier_refuses_new_hosts_but_keeps_hits() {
        let mut t = HotTier::new(2048, 4);
        let slots = t.slots();
        let img = vec![0x11u8; 2048];
        for h in 0..slots {
            assert!(t.write(h, &img).unwrap());
        }
        assert!(!t.write(slots + 7, &img).unwrap(), "full tier spills");
        assert!(t.write(0, &img).unwrap(), "resident rewrite still lands");
        t.remove(0).unwrap();
        assert!(t.write(slots + 7, &img).unwrap(), "freed slot is reused");
    }

    #[test]
    fn apply_delta_folds_like_the_physical_append() {
        let l = layout(2048);
        let mut t = HotTier::new(2048, 8);
        // An IPA image: erased (0xFF) delta area after the body.
        let mut img = vec![0xFFu8; 2048];
        img[..l.delta_area_offset()].fill(0x5A);
        t.write(9, &img).unwrap();

        let rs = l.record_size();
        let delta = vec![0x0Fu8; rs];
        assert!(t
            .apply_delta(9, l.delta_area_offset(), &delta, Some(l))
            .unwrap());
        let mut buf = vec![0u8; 2048];
        t.read(9, &mut buf).unwrap();
        assert_eq!(
            &buf[l.delta_area_offset()..l.delta_area_offset() + rs],
            &delta[..]
        );
        assert_eq!(buf[0], 0x5A, "body untouched");

        // Misses and malformed appends are distinguished.
        assert!(!t
            .apply_delta(10, l.delta_area_offset(), &delta, Some(l))
            .unwrap());
        assert!(matches!(
            t.apply_delta(9, 1, &delta, Some(l)),
            Err(FtlError::BadWriteDelta { .. })
        ));
        assert!(matches!(
            t.apply_delta(9, l.delta_area_offset(), &delta, None),
            Err(FtlError::LayoutRequired { .. })
        ));
    }

    #[test]
    fn peek_then_remove_is_the_destage_walk() {
        let mut t = HotTier::new(2048, 8);
        let img = vec![0x77u8; 2048];
        t.write(3, &img).unwrap();
        t.write(1, &img).unwrap();
        assert_eq!(t.resident_hosts(), vec![1, 3], "deterministic order");
        let got = t.peek_image(3).unwrap().unwrap();
        assert_eq!(got, img);
        assert!(t.contains(3), "peek does not evict");
        t.remove(3).unwrap();
        assert!(!t.contains(3));
        assert!(t.peek_image(3).unwrap().is_none());
    }
}
