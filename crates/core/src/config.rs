//! The N×M configuration scheme.
//!
//! `N` bounds how many delta records a page can accumulate on flash before
//! it must be rewritten out-of-place; `M` bounds how many modified bytes a
//! single delta record can carry. The paper's headline configuration is
//! `[2×4]`; `[0×0]` denotes IPA disabled (the traditional write path).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Bytes used to encode one `<new_value, offset>` pair (2-byte offset +
/// 1-byte value) — the `3M` in the paper's sizing formula.
pub const PAIR_BYTES: usize = 3;

/// Maximum pairs per record encodable in the control byte (7 bits).
pub const MAX_M: u16 = 127;

/// The N×M scheme: at most `n` delta records per page, at most `m` changed
/// bytes per record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NmScheme {
    /// Maximum delta records per page (on flash).
    pub n: u16,
    /// Maximum `<new_value, offset>` pairs per record.
    pub m: u16,
}

impl NmScheme {
    /// Create a scheme. `new(0, 0)` disables IPA; a scheme with exactly one
    /// zero component is meaningless and rejected.
    pub fn new(n: u16, m: u16) -> Self {
        assert!(
            (n == 0) == (m == 0),
            "N and M must both be zero (disabled) or both be positive, got [{n}x{m}]"
        );
        assert!(m <= MAX_M, "M must fit the control byte (≤ {MAX_M})");
        NmScheme { n, m }
    }

    /// The `[0×0]` scheme: IPA disabled, traditional writes only.
    pub const fn disabled() -> Self {
        NmScheme { n: 0, m: 0 }
    }

    /// The paper's headline `[2×4]` configuration.
    pub const fn paper_default() -> Self {
        NmScheme { n: 2, m: 4 }
    }

    /// Is IPA disabled under this scheme?
    #[inline]
    pub const fn is_disabled(&self) -> bool {
        self.n == 0
    }

    /// Encoded size of one delta record:
    /// `1 (control byte) + 3·M (pairs) + Δmetadata`.
    #[inline]
    pub const fn record_size(&self, meta_len: usize) -> usize {
        if self.is_disabled() {
            0
        } else {
            1 + PAIR_BYTES * self.m as usize + meta_len
        }
    }

    /// Size of the reserved delta-record area:
    /// `N × (1 + 3·M + Δmetadata)` — the paper's formula verbatim.
    #[inline]
    pub const fn delta_area_size(&self, meta_len: usize) -> usize {
        self.n as usize * self.record_size(meta_len)
    }

    /// Maximum changed body bytes a page can absorb in-place over its whole
    /// on-flash lifetime under this scheme.
    #[inline]
    pub const fn total_capacity(&self) -> usize {
        self.n as usize * self.m as usize
    }

    /// How many records are needed to carry `changed` modified bytes.
    #[inline]
    pub const fn records_for(&self, changed: usize) -> usize {
        if self.is_disabled() || changed == 0 {
            0
        } else {
            changed.div_ceil(self.m as usize)
        }
    }
}

impl fmt::Display for NmScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}x{}]", self.n, self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_formula() {
        // N × (1 + 3M + Δmetadata) with the paper's [2×4] and a 32-byte
        // metadata delta: 2 × (1 + 12 + 32) = 90.
        let s = NmScheme::new(2, 4);
        assert_eq!(s.record_size(32), 45);
        assert_eq!(s.delta_area_size(32), 90);
    }

    #[test]
    fn disabled_scheme_is_zero_sized() {
        let s = NmScheme::disabled();
        assert!(s.is_disabled());
        assert_eq!(s.record_size(32), 0);
        assert_eq!(s.delta_area_size(32), 0);
        assert_eq!(s.total_capacity(), 0);
        assert_eq!(s.to_string(), "[0x0]");
    }

    #[test]
    fn records_for_rounds_up() {
        let s = NmScheme::new(4, 4);
        assert_eq!(s.records_for(0), 0);
        assert_eq!(s.records_for(1), 1);
        assert_eq!(s.records_for(4), 1);
        assert_eq!(s.records_for(5), 2);
        assert_eq!(s.records_for(16), 4);
    }

    #[test]
    fn display_formats_like_the_paper() {
        assert_eq!(NmScheme::new(2, 4).to_string(), "[2x4]");
    }

    #[test]
    #[should_panic(expected = "both be zero")]
    fn half_disabled_rejected() {
        let _ = NmScheme::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "control byte")]
    fn oversized_m_rejected() {
        let _ = NmScheme::new(1, 200);
    }
}
