//! The IPA database-page layout — Figure 3 of the paper.
//!
//! ```text
//! ┌────────────────────────────────────────────────────────────┐
//! │ Page Header                                                │ header_len
//! ├────────────────────────────────────────────────────────────┤
//! │ Tuple 1 │ Tuple 2 │ Tuple 3 │ … free space … │ slot dir    │ body
//! ├────────────────────────────────────────────────────────────┤
//! │ Delta-Record Area:  rec 0 │ rec 1 │ … │ rec N-1            │ N×(1+3M+Δmeta)
//! ├────────────────────────────────────────────────────────────┤
//! │ Page Footer                                                │ footer_len
//! └────────────────────────────────────────────────────────────┘
//! ```
//!
//! The delta-record area is carved out *before* the footer and stays
//! all-`0xFF` (the erased state) in every out-of-place page image, so that
//! appending a record later is always a legal `1 → 0` flash program.
//! `Δmetadata` is the concatenated header + footer image: the one part of
//! the page that changes on *every* update (LSN, free-space counters) and
//! therefore cannot be byte-diffed economically.

use serde::{Deserialize, Serialize};
use std::ops::Range;

use crate::config::NmScheme;

/// Geometry of an IPA-formatted database page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageLayout {
    /// Total page size in bytes (must match the flash page size).
    pub page_size: usize,
    /// Bytes of page header captured in `Δmetadata`.
    pub header_len: usize,
    /// Bytes of page footer captured in `Δmetadata`.
    pub footer_len: usize,
    /// The N×M scheme carving out the delta-record area.
    pub scheme: NmScheme,
}

impl PageLayout {
    pub fn new(page_size: usize, header_len: usize, footer_len: usize, scheme: NmScheme) -> Self {
        let l = PageLayout {
            page_size,
            header_len,
            footer_len,
            scheme,
        };
        assert!(
            header_len + footer_len + l.delta_area_len() < page_size,
            "layout leaves no body space: page {page_size}, header {header_len}, \
             footer {footer_len}, delta area {}",
            l.delta_area_len()
        );
        l
    }

    /// Length of `Δmetadata` (header + footer image).
    #[inline]
    pub const fn meta_len(&self) -> usize {
        self.header_len + self.footer_len
    }

    /// Encoded size of one delta record under this layout.
    #[inline]
    pub const fn record_size(&self) -> usize {
        self.scheme.record_size(self.meta_len())
    }

    /// Total bytes reserved for the delta-record area.
    #[inline]
    pub const fn delta_area_len(&self) -> usize {
        self.scheme.delta_area_size(self.meta_len())
    }

    /// Byte offset where the delta-record area starts.
    #[inline]
    pub const fn delta_area_offset(&self) -> usize {
        self.page_size - self.footer_len - self.delta_area_len()
    }

    /// Byte range of the delta-record area.
    #[inline]
    pub fn delta_area_range(&self) -> Range<usize> {
        self.delta_area_offset()..self.page_size - self.footer_len
    }

    /// Byte range of the tuple body (between header and delta area).
    #[inline]
    pub fn body_range(&self) -> Range<usize> {
        self.header_len..self.delta_area_offset()
    }

    /// Byte range of the header.
    #[inline]
    pub fn header_range(&self) -> Range<usize> {
        0..self.header_len
    }

    /// Byte range of the footer.
    #[inline]
    pub fn footer_range(&self) -> Range<usize> {
        self.page_size - self.footer_len..self.page_size
    }

    /// Offset of delta record `i` within the page.
    #[inline]
    pub fn record_offset(&self, i: u16) -> usize {
        debug_assert!(i < self.scheme.n);
        self.delta_area_offset() + i as usize * self.record_size()
    }

    /// Does `offset` fall in the tuple body (i.e. is it representable as a
    /// delta pair)?
    #[inline]
    pub fn in_body(&self, offset: usize) -> bool {
        self.body_range().contains(&offset)
    }

    /// Does `offset` fall in the header or footer (captured via
    /// `Δmetadata` instead of pairs)?
    #[inline]
    pub fn in_meta(&self, offset: usize) -> bool {
        offset < self.header_len || offset >= self.page_size - self.footer_len
    }

    /// Copy the current `Δmetadata` (header ‖ footer) out of a page image.
    pub fn capture_meta(&self, page: &[u8]) -> Vec<u8> {
        debug_assert_eq!(page.len(), self.page_size);
        let mut meta = Vec::with_capacity(self.meta_len());
        meta.extend_from_slice(&page[self.header_range()]);
        meta.extend_from_slice(&page[self.footer_range()]);
        meta
    }

    /// Write a captured `Δmetadata` back into a page image.
    pub fn restore_meta(&self, page: &mut [u8], meta: &[u8]) {
        debug_assert_eq!(page.len(), self.page_size);
        assert_eq!(meta.len(), self.meta_len(), "Δmetadata length mismatch");
        let hr = self.header_range();
        page[hr].copy_from_slice(&meta[..self.header_len]);
        let fr = self.footer_range();
        page[fr].copy_from_slice(&meta[self.header_len..]);
    }

    /// Reset the delta-record area to the erased state (`0xFF`), as the
    /// paper requires before every out-of-place write.
    pub fn wipe_delta_area(&self, page: &mut [u8]) {
        let r = self.delta_area_range();
        page[r].fill(0xFF);
    }

    /// Is the delta-record area entirely erased?
    pub fn delta_area_is_clean(&self, page: &[u8]) -> bool {
        page[self.delta_area_range()].iter().all(|&b| b == 0xFF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> PageLayout {
        PageLayout::new(8192, 24, 8, NmScheme::new(2, 4))
    }

    #[test]
    fn regions_partition_the_page() {
        let l = layout();
        assert_eq!(l.header_range().end, l.body_range().start);
        assert_eq!(l.body_range().end, l.delta_area_range().start);
        assert_eq!(l.delta_area_range().end, l.footer_range().start);
        assert_eq!(l.footer_range().end, l.page_size);
    }

    #[test]
    fn sizes_follow_paper_formula() {
        let l = layout();
        // meta = 24+8 = 32; record = 1+12+32 = 45; area = 2*45 = 90.
        assert_eq!(l.meta_len(), 32);
        assert_eq!(l.record_size(), 45);
        assert_eq!(l.delta_area_len(), 90);
        assert_eq!(l.delta_area_offset(), 8192 - 8 - 90);
    }

    #[test]
    fn record_offsets_are_contiguous() {
        let l = layout();
        assert_eq!(l.record_offset(0), l.delta_area_offset());
        assert_eq!(l.record_offset(1), l.delta_area_offset() + 45);
    }

    #[test]
    fn classification() {
        let l = layout();
        assert!(l.in_meta(0));
        assert!(l.in_meta(23));
        assert!(l.in_body(24));
        assert!(l.in_body(l.delta_area_offset() - 1));
        assert!(!l.in_body(l.delta_area_offset()));
        assert!(l.in_meta(8191));
        assert!(!l.in_meta(l.delta_area_offset())); // delta area is neither
        assert!(!l.in_body(8191));
    }

    #[test]
    fn meta_capture_restore_round_trip() {
        let l = layout();
        let mut page = vec![0u8; l.page_size];
        for (i, b) in page.iter_mut().enumerate() {
            *b = (i % 256) as u8;
        }
        let meta = l.capture_meta(&page);
        assert_eq!(meta.len(), 32);
        let mut other = vec![0xAAu8; l.page_size];
        l.restore_meta(&mut other, &meta);
        assert_eq!(&other[..24], &page[..24]);
        assert_eq!(&other[8192 - 8..], &page[8192 - 8..]);
        assert!(other[24..8192 - 8].iter().all(|&b| b == 0xAA));
    }

    #[test]
    fn wipe_and_cleanliness() {
        let l = layout();
        let mut page = vec![0u8; l.page_size];
        assert!(!l.delta_area_is_clean(&page));
        l.wipe_delta_area(&mut page);
        assert!(l.delta_area_is_clean(&page));
        // Body and footer untouched.
        assert_eq!(page[0], 0);
        assert_eq!(page[8191], 0);
    }

    #[test]
    fn disabled_scheme_has_empty_area() {
        let l = PageLayout::new(8192, 24, 8, NmScheme::disabled());
        assert_eq!(l.delta_area_len(), 0);
        assert_eq!(l.body_range(), 24..8184);
        assert!(l.delta_area_is_clean(&vec![0u8; 8192]));
    }

    #[test]
    #[should_panic(expected = "no body space")]
    fn degenerate_layout_rejected() {
        // Delta area would swallow the whole page.
        let _ = PageLayout::new(256, 24, 8, NmScheme::new(10, 60));
    }
}
