//! # `ipa-core` — In-Place Appends: the paper's contribution
//!
//! Everything that is *IPA itself*, independent of the storage engine and
//! the device:
//!
//! * [`NmScheme`] — the N×M configuration (≤ N delta records per page,
//!   ≤ M modified bytes per record) and the paper's delta-area sizing
//!   formula `N × (1 + 3M + Δmetadata)`.
//! * [`PageLayout`] — the Figure 3 page format with the reserved
//!   delta-record area kept erased in every out-of-place image.
//! * [`DeltaRecord`] — the on-flash codec (control byte, `<new_value,
//!   offset>` pairs, `Δmetadata`), guaranteed to be a legal `1 → 0` flash
//!   append into an erased slot.
//! * [`ChangeTracker`] — buffer-side net-change tracking, the conformance
//!   check with the sticky out-of-place flag, and eviction-time record /
//!   image construction for both the native (`write_delta`) and the
//!   conventional-SSD paths.
//!
//! The crate is engine- and device-agnostic: `ipa-storage` wires it into a
//! buffer pool, `ipa-ftl` persists its records.

pub mod config;
pub mod delta;
pub mod layout;
pub mod tracker;

pub use config::{NmScheme, MAX_M, PAIR_BYTES};
pub use delta::{apply_all, apply_and_collect, scan_records, write_record_into, DeltaRecord};
pub use layout::PageLayout;
pub use tracker::{ChangeTracker, IpaVerdict};
