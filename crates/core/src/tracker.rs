//! Buffer-side change tracking and the N×M conformance check.
//!
//! The paper (§3, "Page operations"): *"When a transaction updates the
//! content of the page, the buffer manager checks if it conforms to the IPA
//! N×M scheme … The violation of one of the above conditions means that
//! upon eviction the page cannot be written out using IPA, and will
//! therefore be written in a traditional out-of-place manner. In this case,
//! the out-of-place flag is set, and further updates are not tracked until
//! eviction."*
//!
//! One [`ChangeTracker`] lives next to every buffered page. The buffer
//! manager reports byte writes; the tracker
//!
//! * keeps the **net** set of changed body bytes (a byte rewritten to its
//!   at-fetch value drops out — this is what makes the "<100 net bytes per
//!   dirty page" statistic of Figure 1 measurable),
//! * notes whether the metadata region (header/footer) changed,
//! * enforces the N×M budget against the records already on flash, and
//! * builds the delta records (native path) or the full overwrite-
//!   compatible page image (conventional-SSD path) at eviction time.

use std::collections::BTreeMap;

use crate::delta::{write_record_into, DeltaRecord};
use crate::layout::PageLayout;

/// Eviction-time decision for a dirty page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpaVerdict {
    /// Nothing changed; no write needed.
    Clean,
    /// The update history fits the scheme: append `records` delta records
    /// in place.
    InPlace {
        /// Number of new records this eviction will append.
        records: u16,
    },
    /// Budget exceeded (or tracking disabled): full out-of-place write.
    OutOfPlace,
}

/// Net change to one body byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ByteChange {
    /// Value the byte had when first touched since the last eviction.
    base: u8,
    /// Latest value written.
    latest: u8,
}

/// Per-buffered-page update tracker.
#[derive(Debug, Clone)]
pub struct ChangeTracker {
    layout: PageLayout,
    /// Delta records already present on the physical flash page.
    on_flash: Vec<DeltaRecord>,
    /// Net changed body bytes since the last eviction, by offset.
    changes: BTreeMap<u16, ByteChange>,
    /// Whether any header/footer byte changed since the last eviction.
    meta_changed: bool,
    /// Sticky out-of-place flag; set on budget violation or structural
    /// modification, cleared by an out-of-place eviction.
    out_of_place: bool,
}

impl ChangeTracker {
    /// Tracker for a freshly fetched page. `existing` are the delta records
    /// found on flash (from [`crate::delta::apply_and_collect`]).
    pub fn new(layout: PageLayout, existing: Vec<DeltaRecord>) -> Self {
        assert!(
            layout.page_size <= u16::MAX as usize + 1,
            "delta pair offsets are u16; page too large"
        );
        let over = existing.len() > layout.scheme.n as usize;
        ChangeTracker {
            layout,
            on_flash: existing,
            changes: BTreeMap::new(),
            meta_changed: false,
            // A page carrying more records than the scheme allows (scheme
            // reconfiguration) must go out-of-place next time.
            out_of_place: over,
        }
    }

    /// Tracker for a brand-new page that has never been written to flash
    /// (first eviction is necessarily out-of-place: there is no original
    /// image to append to).
    pub fn new_unflashed(layout: PageLayout) -> Self {
        let mut t = ChangeTracker::new(layout, Vec::new());
        t.out_of_place = true;
        t
    }

    #[inline]
    pub fn layout(&self) -> &PageLayout {
        &self.layout
    }

    /// Records already on the physical page.
    #[inline]
    pub fn records_on_flash(&self) -> u16 {
        self.on_flash.len() as u16
    }

    /// Net changed body bytes currently pending.
    #[inline]
    pub fn changed_body_bytes(&self) -> usize {
        self.changes.len()
    }

    /// Has anything (body or metadata) changed since the last eviction?
    #[inline]
    pub fn dirty(&self) -> bool {
        !self.changes.is_empty() || self.meta_changed || self.out_of_place
    }

    #[inline]
    pub fn is_out_of_place(&self) -> bool {
        self.out_of_place
    }

    /// Force the next eviction out-of-place (structural page changes, slot
    /// compaction, anything not expressible as byte deltas). Pending change
    /// tracking stops, as in the paper.
    pub fn mark_out_of_place(&mut self) {
        self.out_of_place = true;
        self.changes.clear();
        self.meta_changed = true;
    }

    /// Report one byte write: `old` is the value before this write. Calls
    /// after the out-of-place flag is set are cheap no-ops.
    pub fn record_write(&mut self, offset: usize, old: u8, new: u8) {
        if self.out_of_place || old == new {
            return;
        }
        if self.layout.in_meta(offset) {
            self.meta_changed = true;
            return;
        }
        if !self.layout.in_body(offset) {
            // Writes into the reserved delta area are a layering bug.
            debug_assert!(false, "engine wrote into the delta-record area");
            self.mark_out_of_place();
            return;
        }
        let off = offset as u16;
        match self.changes.entry(off) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(ByteChange {
                    base: old,
                    latest: new,
                });
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                if o.get().base == new {
                    // Byte returned to its at-fetch value: net change gone.
                    o.remove();
                } else {
                    o.get_mut().latest = new;
                }
            }
        }
        // Conformance check (paper: checked on update, not at eviction).
        if self.pending_records() + self.records_on_flash() as usize > self.layout.scheme.n as usize
        {
            self.mark_out_of_place();
        }
    }

    /// Report a multi-byte write; `old` is the region content before the
    /// write.
    pub fn record_range_write(&mut self, offset: usize, old: &[u8], new: &[u8]) {
        debug_assert_eq!(old.len(), new.len());
        for (i, (&o, &n)) in old.iter().zip(new).enumerate() {
            if self.out_of_place {
                return;
            }
            self.record_write(offset + i, o, n);
        }
    }

    /// Delta records the pending changes would need.
    fn pending_records(&self) -> usize {
        if self.changes.is_empty() {
            usize::from(self.meta_changed)
        } else {
            self.layout.scheme.records_for(self.changes.len())
        }
    }

    /// Eviction-time decision.
    pub fn verdict(&self) -> IpaVerdict {
        if self.out_of_place {
            return IpaVerdict::OutOfPlace;
        }
        if self.changes.is_empty() && !self.meta_changed {
            return IpaVerdict::Clean;
        }
        if self.layout.scheme.is_disabled() {
            return IpaVerdict::OutOfPlace;
        }
        let pending = self.pending_records();
        if pending + self.on_flash.len() <= self.layout.scheme.n as usize {
            IpaVerdict::InPlace {
                records: pending as u16,
            }
        } else {
            IpaVerdict::OutOfPlace
        }
    }

    /// Build the new delta records for an in-place eviction. `current_page`
    /// supplies the up-to-date `Δmetadata`. Panics if the verdict is not
    /// [`IpaVerdict::InPlace`].
    pub fn build_new_records(&self, current_page: &[u8]) -> Vec<DeltaRecord> {
        let records = match self.verdict() {
            IpaVerdict::InPlace { records } => records,
            v => panic!("build_new_records on a page with verdict {v:?}"),
        };
        let meta = self.layout.capture_meta(current_page);
        let m = self.layout.scheme.m as usize;
        let pairs: Vec<(u16, u8)> = self
            .changes
            .iter()
            .map(|(&off, ch)| (off, ch.latest))
            .collect();
        let mut out = Vec::with_capacity(records as usize);
        if pairs.is_empty() {
            // Metadata-only update: one record with zero pairs.
            out.push(DeltaRecord::new(Vec::new(), meta, self.layout.scheme));
        } else {
            for chunk in pairs.chunks(m) {
                out.push(DeltaRecord::new(
                    chunk.to_vec(),
                    meta.clone(),
                    self.layout.scheme,
                ));
            }
        }
        debug_assert_eq!(out.len(), records as usize);
        out
    }

    /// Build the full page image for the **conventional-SSD** IPA path
    /// (demo scenario 2): the *original* flash image (body untouched) with
    /// the new records appended into its delta area. Writing this image
    /// through a block interface is overwrite-compatible with the stored
    /// page, so an IPA-aware FTL can program it in place.
    ///
    /// `original` is the raw flash image captured at fetch time (before
    /// delta application); `current_page` supplies the up-to-date metadata.
    pub fn build_conventional_image(&self, original: &[u8], current_page: &[u8]) -> Vec<u8> {
        let new_records = self.build_new_records(current_page);
        let mut image = original.to_vec();
        for (slot, rec) in (self.records_on_flash()..).zip(new_records.iter()) {
            write_record_into(&mut image, &self.layout, slot, rec);
        }
        image
    }

    /// Account a successful in-place eviction: the new records are now on
    /// flash, pending changes are consumed.
    pub fn commit_in_place(&mut self, new_records: Vec<DeltaRecord>) {
        self.on_flash.extend(new_records);
        debug_assert!(self.on_flash.len() <= self.layout.scheme.n as usize);
        self.changes.clear();
        self.meta_changed = false;
    }

    /// Account a successful out-of-place eviction: the rewritten page has
    /// an empty delta area and a clean history.
    pub fn commit_out_of_place(&mut self) {
        self.on_flash.clear();
        self.changes.clear();
        self.meta_changed = false;
        self.out_of_place = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NmScheme;
    use proptest::prelude::*;

    fn layout() -> PageLayout {
        PageLayout::new(2048, 24, 8, NmScheme::new(2, 4))
    }

    fn body_off(l: &PageLayout, i: usize) -> usize {
        l.body_range().start + i
    }

    #[test]
    fn clean_page_verdict() {
        let t = ChangeTracker::new(layout(), Vec::new());
        assert_eq!(t.verdict(), IpaVerdict::Clean);
        assert!(!t.dirty());
    }

    #[test]
    fn small_update_fits_in_place() {
        let l = layout();
        let mut t = ChangeTracker::new(l, Vec::new());
        for i in 0..3 {
            t.record_write(body_off(&l, i), 0, 1);
        }
        assert_eq!(t.verdict(), IpaVerdict::InPlace { records: 1 });
        assert_eq!(t.changed_body_bytes(), 3);
    }

    #[test]
    fn updates_spanning_two_records() {
        let l = layout();
        let mut t = ChangeTracker::new(l, Vec::new());
        for i in 0..6 {
            t.record_write(body_off(&l, i), 0, 1);
        }
        // 6 bytes / M=4 → 2 records; N=2 → still in place.
        assert_eq!(t.verdict(), IpaVerdict::InPlace { records: 2 });
    }

    #[test]
    fn budget_violation_sets_sticky_flag() {
        let l = layout();
        let mut t = ChangeTracker::new(l, Vec::new());
        for i in 0..9 {
            t.record_write(body_off(&l, i), 0, 1);
        }
        // 9 bytes needs 3 records > N=2.
        assert!(t.is_out_of_place());
        assert_eq!(t.verdict(), IpaVerdict::OutOfPlace);
        // Tracking stopped: further updates are no-ops.
        t.record_write(body_off(&l, 100), 0, 1);
        assert_eq!(t.changed_body_bytes(), 0);
    }

    #[test]
    fn existing_records_consume_budget() {
        let l = layout();
        let existing = vec![DeltaRecord::new(
            vec![(100, 1)],
            vec![0; l.meta_len()],
            l.scheme,
        )];
        let mut t = ChangeTracker::new(l, existing);
        for i in 0..5 {
            t.record_write(body_off(&l, i), 0, 1);
        }
        // 5 bytes needs 2 records; 1 already on flash → 3 > N=2.
        assert_eq!(t.verdict(), IpaVerdict::OutOfPlace);
    }

    #[test]
    fn rewriting_base_value_cancels_change() {
        let l = layout();
        let mut t = ChangeTracker::new(l, Vec::new());
        let off = body_off(&l, 10);
        t.record_write(off, 7, 9);
        assert_eq!(t.changed_body_bytes(), 1);
        t.record_write(off, 9, 7); // back to base
        assert_eq!(t.changed_body_bytes(), 0);
        assert_eq!(t.verdict(), IpaVerdict::Clean);
    }

    #[test]
    fn same_byte_many_times_is_one_pair() {
        let l = layout();
        let mut t = ChangeTracker::new(l, Vec::new());
        let off = body_off(&l, 10);
        let mut v = 0u8;
        for next in 1..100u8 {
            t.record_write(off, v, next);
            v = next;
        }
        assert_eq!(t.changed_body_bytes(), 1);
        assert_eq!(t.verdict(), IpaVerdict::InPlace { records: 1 });
    }

    #[test]
    fn meta_only_update_needs_one_record() {
        let l = layout();
        let mut t = ChangeTracker::new(l, Vec::new());
        t.record_write(0, 1, 2); // header byte
        assert!(t.dirty());
        assert_eq!(t.changed_body_bytes(), 0);
        assert_eq!(t.verdict(), IpaVerdict::InPlace { records: 1 });
        let page = vec![0x42u8; l.page_size];
        let recs = t.build_new_records(&page);
        assert_eq!(recs.len(), 1);
        assert!(recs[0].pairs.is_empty());
        assert_eq!(recs[0].meta, l.capture_meta(&page));
    }

    #[test]
    fn build_records_chunks_by_m() {
        let l = layout();
        let mut t = ChangeTracker::new(l, Vec::new());
        for i in 0..6 {
            t.record_write(body_off(&l, i), 0, (i + 1) as u8);
        }
        let page = vec![0u8; l.page_size];
        let recs = t.build_new_records(&page);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].pairs.len(), 4);
        assert_eq!(recs[1].pairs.len(), 2);
        let all: Vec<(u16, u8)> = recs.iter().flat_map(|r| r.pairs.clone()).collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], (body_off(&l, 0) as u16, 1));
    }

    #[test]
    fn commit_in_place_accumulates_budget() {
        let l = layout();
        let mut t = ChangeTracker::new(l, Vec::new());
        t.record_write(body_off(&l, 0), 0, 1);
        let page = vec![0u8; l.page_size];
        let recs = t.build_new_records(&page);
        t.commit_in_place(recs);
        assert_eq!(t.records_on_flash(), 1);
        assert!(!t.dirty());
        // Second round: one more record fits, then the budget is gone.
        t.record_write(body_off(&l, 1), 0, 1);
        assert_eq!(t.verdict(), IpaVerdict::InPlace { records: 1 });
        let recs = t.build_new_records(&page);
        t.commit_in_place(recs);
        t.record_write(body_off(&l, 2), 0, 1);
        assert_eq!(t.verdict(), IpaVerdict::OutOfPlace);
    }

    #[test]
    fn commit_out_of_place_resets_everything() {
        let l = layout();
        let mut t = ChangeTracker::new(l, Vec::new());
        for i in 0..20 {
            t.record_write(body_off(&l, i), 0, 1);
        }
        assert!(t.is_out_of_place());
        t.commit_out_of_place();
        assert!(!t.is_out_of_place());
        assert_eq!(t.records_on_flash(), 0);
        assert_eq!(t.verdict(), IpaVerdict::Clean);
    }

    #[test]
    fn unflashed_page_goes_out_of_place_first() {
        let l = layout();
        let mut t = ChangeTracker::new_unflashed(l);
        t.record_write(body_off(&l, 0), 0, 1);
        assert_eq!(t.verdict(), IpaVerdict::OutOfPlace);
        t.commit_out_of_place();
        t.record_write(body_off(&l, 0), 1, 2);
        assert_eq!(t.verdict(), IpaVerdict::InPlace { records: 1 });
    }

    #[test]
    fn conventional_image_preserves_original_body() {
        let l = layout();
        // Original flash image: recognizable body, clean delta area.
        let mut original = vec![0x5Au8; l.page_size];
        l.wipe_delta_area(&mut original);
        // Buffered image: body updated at two offsets, header LSN bumped.
        let mut current = original.clone();
        let o1 = body_off(&l, 3);
        let o2 = body_off(&l, 4);
        current[o1] = 0x11;
        current[o2] = 0x22;
        current[0] = 0x99;

        let mut t = ChangeTracker::new(l, Vec::new());
        t.record_write(o1, 0x5A, 0x11);
        t.record_write(o2, 0x5A, 0x22);
        t.record_write(0, 0x5A, 0x99);

        let image = t.build_conventional_image(&original, &current);
        // Body outside the delta area identical to the original → the
        // image is flash-overwrite-compatible.
        assert_eq!(
            &image[..l.delta_area_offset()],
            &original[..l.delta_area_offset()]
        );
        let legal = image.iter().zip(&original).all(|(&n, &o)| n & !o == 0);
        assert!(legal, "conventional image must be a pure append");

        // Applying the image's delta records reproduces the buffer state.
        let mut reconstructed = image.clone();
        let recs = crate::delta::apply_and_collect(&mut reconstructed, &l);
        assert_eq!(recs.len(), 1);
        assert_eq!(reconstructed[o1], 0x11);
        assert_eq!(reconstructed[o2], 0x22);
        assert_eq!(reconstructed[0], 0x99);
    }

    proptest! {
        /// Tracked net changes always equal the brute-force diff of body
        /// bytes between the evolving page and its at-fetch snapshot.
        #[test]
        fn net_changes_match_brute_force_diff(
            writes in proptest::collection::vec((0usize..1800, any::<u8>()), 0..40)
        ) {
            let l = PageLayout::new(2048, 24, 8, NmScheme::new(16, 8));
            let mut page = vec![0u8; l.page_size];
            let snapshot = page.clone();
            let mut t = ChangeTracker::new(l, Vec::new());
            for (rel, val) in writes {
                let off = l.body_range().start + rel % (l.body_range().len());
                let old = page[off];
                page[off] = val;
                t.record_write(off, old, val);
            }
            if !t.is_out_of_place() {
                let expect: Vec<usize> = l
                    .body_range()
                    .filter(|&i| page[i] != snapshot[i])
                    .collect();
                prop_assert_eq!(t.changed_body_bytes(), expect.len());
            }
        }

        /// For any in-place verdict, applying the built records to the
        /// at-fetch snapshot reproduces the current body exactly.
        #[test]
        fn records_reconstruct_page(
            writes in proptest::collection::vec((0usize..1500, 1u8..255), 1..24)
        ) {
            let l = PageLayout::new(2048, 24, 8, NmScheme::new(8, 4));
            let mut page = vec![0u8; l.page_size];
            let snapshot = page.clone();
            let mut t = ChangeTracker::new(l, Vec::new());
            for (rel, val) in writes {
                let off = l.body_range().start + rel % l.body_range().len();
                let old = page[off];
                page[off] = val;
                t.record_write(off, old, val);
            }
            if let IpaVerdict::InPlace { .. } = t.verdict() {
                let recs = t.build_new_records(&page);
                let mut rebuilt = snapshot.clone();
                for r in &recs {
                    r.apply(&mut rebuilt, &l);
                }
                // Body must match; meta was restored from `page`.
                prop_assert_eq!(&rebuilt[l.body_range()], &page[l.body_range()]);
            }
        }
    }
}
