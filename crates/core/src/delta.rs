//! Delta-record encoding — the on-flash format of one update delta.
//!
//! ```text
//! ┌──────────┬───────────────────────────────┬────────────────┐
//! │ control  │ pairs: M × (off_lo off_hi val)│ Δmetadata      │
//! │ 1 byte   │ 3·M bytes                     │ header‖footer  │
//! └──────────┴───────────────────────────────┴────────────────┘
//! ```
//!
//! * `control` — presence flag + used-pair count. An erased slot reads
//!   `0xFF`; a written record has bit 7 = 0 and the low 7 bits hold the
//!   number of valid pairs (hence `M ≤ 127`). Because the slot starts
//!   erased, writing any control value is a legal `1 → 0` program.
//! * unused pair slots stay `0xFF` (erased) so a record with fewer than M
//!   pairs is still append-only on flash.
//! * `Δmetadata` — the page header+footer image as of this delta; on apply,
//!   later records win.

use serde::{Deserialize, Serialize};

use crate::config::{NmScheme, PAIR_BYTES};
use crate::layout::PageLayout;

/// A decoded delta record: byte-granular body updates plus the metadata
/// image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaRecord {
    /// `<offset, new_value>` pairs (offset is absolute within the page, and
    /// must lie in the body region).
    pub pairs: Vec<(u16, u8)>,
    /// `Δmetadata`: header ‖ footer image (length = `layout.meta_len()`).
    pub meta: Vec<u8>,
}

/// Control-byte presence mask: bit 7 clear ⇒ record present.
const PRESENT_MASK: u8 = 0x80;

impl DeltaRecord {
    /// Create a record, checking the pair count against the scheme.
    pub fn new(pairs: Vec<(u16, u8)>, meta: Vec<u8>, scheme: NmScheme) -> Self {
        assert!(
            pairs.len() <= scheme.m as usize,
            "record with {} pairs exceeds M={}",
            pairs.len(),
            scheme.m
        );
        DeltaRecord { pairs, meta }
    }

    /// Encode into exactly `layout.record_size()` bytes.
    pub fn encode(&self, layout: &PageLayout) -> Vec<u8> {
        let m = layout.scheme.m as usize;
        assert!(self.pairs.len() <= m, "too many pairs for scheme");
        assert_eq!(
            self.meta.len(),
            layout.meta_len(),
            "Δmetadata size mismatch"
        );
        let mut out = Vec::with_capacity(layout.record_size());
        out.push(self.pairs.len() as u8); // bit 7 clear = present
        for &(off, val) in &self.pairs {
            out.push((off & 0xFF) as u8);
            out.push((off >> 8) as u8);
            out.push(val);
        }
        // Unused pair slots stay erased.
        out.resize(1 + PAIR_BYTES * m, 0xFF);
        out.extend_from_slice(&self.meta);
        debug_assert_eq!(out.len(), layout.record_size());
        out
    }

    /// Decode a record slot. Returns `None` if the slot is still erased
    /// (control byte `0xFF` — bit 7 set).
    pub fn decode(buf: &[u8], layout: &PageLayout) -> Option<DeltaRecord> {
        assert_eq!(buf.len(), layout.record_size(), "record slot size mismatch");
        let control = buf[0];
        if control & PRESENT_MASK != 0 {
            return None;
        }
        let used = (control & 0x7F) as usize;
        let m = layout.scheme.m as usize;
        // A corrupt count beyond M means the slot is garbage; surface as
        // absent rather than fabricating pairs (ECC should have caught it).
        if used > m {
            return None;
        }
        let mut pairs = Vec::with_capacity(used);
        for i in 0..used {
            let base = 1 + i * PAIR_BYTES;
            let off = buf[base] as u16 | ((buf[base + 1] as u16) << 8);
            pairs.push((off, buf[base + 2]));
        }
        let meta = buf[1 + PAIR_BYTES * m..].to_vec();
        Some(DeltaRecord { pairs, meta })
    }

    /// Apply this record to a full page image: patch body bytes, then
    /// restore the metadata image.
    pub fn apply(&self, page: &mut [u8], layout: &PageLayout) {
        for &(off, val) in &self.pairs {
            debug_assert!(
                layout.in_body(off as usize),
                "delta pair offset {off} outside body"
            );
            page[off as usize] = val;
        }
        layout.restore_meta(page, &self.meta);
    }
}

/// Decode every present record in a page's delta area, in append order.
/// Stops at the first erased slot (records are appended sequentially).
pub fn scan_records(page: &[u8], layout: &PageLayout) -> Vec<DeltaRecord> {
    let mut out = Vec::new();
    for i in 0..layout.scheme.n {
        let off = layout.record_offset(i);
        let slot = &page[off..off + layout.record_size()];
        match DeltaRecord::decode(slot, layout) {
            Some(rec) => out.push(rec),
            None => break,
        }
    }
    out
}

/// Serialize a record into the page image at slot `index`.
pub fn write_record_into(page: &mut [u8], layout: &PageLayout, index: u16, record: &DeltaRecord) {
    let off = layout.record_offset(index);
    let bytes = record.encode(layout);
    page[off..off + bytes.len()].copy_from_slice(&bytes);
}

/// Fetch-time reconstruction (paper §3, "Page operations"): apply every
/// delta record in order, then wipe the delta area so the buffered image is
/// ready for a future out-of-place write. Returns the records that were on
/// flash (seeding the tracker's budget and the conventional-SSD image
/// builder).
pub fn apply_and_collect(page: &mut [u8], layout: &PageLayout) -> Vec<DeltaRecord> {
    if layout.scheme.is_disabled() {
        return Vec::new();
    }
    let records = scan_records(page, layout);
    for rec in &records {
        rec.apply(page, layout);
    }
    layout.wipe_delta_area(page);
    records
}

/// Like [`apply_and_collect`], returning only the record count.
pub fn apply_all(page: &mut [u8], layout: &PageLayout) -> u16 {
    apply_and_collect(page, layout).len() as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NmScheme;
    use proptest::prelude::*;

    fn layout() -> PageLayout {
        PageLayout::new(2048, 24, 8, NmScheme::new(3, 4))
    }

    fn meta_of(layout: &PageLayout, fill: u8) -> Vec<u8> {
        vec![fill; layout.meta_len()]
    }

    #[test]
    fn encode_decode_round_trip() {
        let l = layout();
        let rec = DeltaRecord::new(vec![(100, 0xAB), (515, 0x01)], meta_of(&l, 7), l.scheme);
        let bytes = rec.encode(&l);
        assert_eq!(bytes.len(), l.record_size());
        assert_eq!(DeltaRecord::decode(&bytes, &l), Some(rec));
    }

    #[test]
    fn erased_slot_decodes_to_none() {
        let l = layout();
        let slot = vec![0xFFu8; l.record_size()];
        assert_eq!(DeltaRecord::decode(&slot, &l), None);
    }

    #[test]
    fn empty_pairs_record_is_present() {
        // A meta-only record (e.g. header-only update) is legal.
        let l = layout();
        let rec = DeltaRecord::new(vec![], meta_of(&l, 3), l.scheme);
        let bytes = rec.encode(&l);
        assert_eq!(bytes[0], 0);
        let back = DeltaRecord::decode(&bytes, &l).unwrap();
        assert!(back.pairs.is_empty());
        assert_eq!(back.meta, meta_of(&l, 3));
    }

    #[test]
    fn unused_pair_slots_stay_erased() {
        let l = layout();
        let rec = DeltaRecord::new(vec![(40, 0x00)], meta_of(&l, 0), l.scheme);
        let bytes = rec.encode(&l);
        // Pair slots 1..4 (bytes 4..13) must be 0xFF.
        assert!(bytes[4..13].iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn encoding_is_flash_appendable() {
        // Any record written into an erased slot must be a legal 1→0
        // program: trivially true because the slot is all 0xFF, but assert
        // the invariant the design relies on.
        let l = layout();
        let rec = DeltaRecord::new(vec![(99, 0xFF)], meta_of(&l, 0xFF), l.scheme);
        let bytes = rec.encode(&l);
        let erased = vec![0xFFu8; bytes.len()];
        assert!(bytes.iter().zip(&erased).all(|(&n, &o)| n & !o == 0));
    }

    #[test]
    fn apply_patches_body_and_meta() {
        let l = layout();
        let mut page = vec![0x55u8; l.page_size];
        let mut meta = meta_of(&l, 0x55);
        meta[0] = 0x99; // header byte 0 changed
        let rec = DeltaRecord::new(vec![(30, 0xAA)], meta, l.scheme);
        rec.apply(&mut page, &l);
        assert_eq!(page[30], 0xAA);
        assert_eq!(page[0], 0x99);
    }

    #[test]
    fn scan_stops_at_first_erased_slot() {
        let l = layout();
        let mut page = vec![0x00u8; l.page_size];
        l.wipe_delta_area(&mut page);
        let r0 = DeltaRecord::new(vec![(50, 1)], meta_of(&l, 1), l.scheme);
        let r1 = DeltaRecord::new(vec![(51, 2)], meta_of(&l, 2), l.scheme);
        write_record_into(&mut page, &l, 0, &r0);
        write_record_into(&mut page, &l, 1, &r1);
        let scanned = scan_records(&page, &l);
        assert_eq!(scanned, vec![r0, r1]);
    }

    #[test]
    fn apply_all_applies_in_order_and_wipes() {
        let l = layout();
        let mut page = vec![0x11u8; l.page_size];
        l.wipe_delta_area(&mut page);
        // Two records touching the same byte: the later one must win.
        let r0 = DeltaRecord::new(vec![(100, 0xAA)], meta_of(&l, 1), l.scheme);
        let r1 = DeltaRecord::new(vec![(100, 0xBB)], meta_of(&l, 2), l.scheme);
        write_record_into(&mut page, &l, 0, &r0);
        write_record_into(&mut page, &l, 1, &r1);
        let n = apply_all(&mut page, &l);
        assert_eq!(n, 2);
        assert_eq!(page[100], 0xBB);
        assert_eq!(page[0], 2, "latest Δmetadata wins");
        assert!(l.delta_area_is_clean(&page));
    }

    #[test]
    fn apply_all_noop_on_clean_page() {
        let l = layout();
        let mut page = vec![0x11u8; l.page_size];
        l.wipe_delta_area(&mut page);
        let copy = page.clone();
        assert_eq!(apply_all(&mut page, &l), 0);
        assert_eq!(page, copy);
    }

    #[test]
    fn corrupt_pair_count_treated_as_absent() {
        let l = layout();
        let mut slot = vec![0xFFu8; l.record_size()];
        slot[0] = 0x50; // present flag, but 80 pairs > M=4
        assert_eq!(DeltaRecord::decode(&slot, &l), None);
    }

    proptest! {
        /// The zero-length delta (no pairs — a pure Δmetadata append) is a
        /// first-class record: slot-sized, round-trippable, and applying
        /// it never touches a body byte.
        #[test]
        fn zero_length_delta_round_trips(
            meta_fill in any::<u8>(),
            body_fill in any::<u8>(),
        ) {
            let l = layout();
            let rec = DeltaRecord::new(Vec::new(), vec![meta_fill; l.meta_len()], l.scheme);
            let bytes = rec.encode(&l);
            prop_assert_eq!(bytes.len(), l.record_size());
            prop_assert_eq!(DeltaRecord::decode(&bytes, &l).as_ref(), Some(&rec));

            let mut page = vec![body_fill; l.page_size];
            let before: Vec<u8> = l.body_range().map(|i| page[i]).collect();
            rec.apply(&mut page, &l);
            let after: Vec<u8> = l.body_range().map(|i| page[i]).collect();
            prop_assert_eq!(before, after);
        }

        /// Arbitrary single-bit corruption of an encoded slot must never
        /// panic the decoder or yield a record that violates the N×M
        /// scheme — corrupt slots decode as `None` or as a conforming
        /// record (whose damage is then ECC's job to catch, Figure 3).
        #[test]
        fn corrupted_slots_never_yield_nonconforming_records(
            pairs in proptest::collection::vec((24u16..2000, any::<u8>()), 0..=4),
            meta_fill in any::<u8>(),
            flip in any::<usize>(),
        ) {
            let l = layout();
            let rec = DeltaRecord::new(pairs, vec![meta_fill; l.meta_len()], l.scheme);
            let mut bytes = rec.encode(&l);
            let bit = flip % (bytes.len() * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
            if let Some(got) = DeltaRecord::decode(&bytes, &l) {
                prop_assert!(got.pairs.len() <= l.scheme.m as usize);
                prop_assert_eq!(got.meta.len(), l.meta_len());
                prop_assert_eq!(got.encode(&l).len(), l.record_size());
            }
        }

        /// encode → decode is the identity for any conformant record.
        #[test]
        fn codec_round_trip(
            pairs in proptest::collection::vec((24u16..2000, any::<u8>()), 0..=4),
            meta_fill in any::<u8>(),
        ) {
            let l = layout();
            let rec = DeltaRecord::new(pairs, vec![meta_fill; l.meta_len()], l.scheme);
            let bytes = rec.encode(&l);
            prop_assert_eq!(DeltaRecord::decode(&bytes, &l), Some(rec));
        }

        /// Records always encode to slot size, and the first byte never has
        /// the erased bit set.
        #[test]
        fn encoded_records_are_distinguishable_from_erased(
            npairs in 0usize..=4,
            meta_fill in any::<u8>(),
        ) {
            let l = layout();
            let pairs = (0..npairs).map(|i| (24 + i as u16, 0xFFu8)).collect();
            let rec = DeltaRecord::new(pairs, vec![meta_fill; l.meta_len()], l.scheme);
            let bytes = rec.encode(&l);
            prop_assert_eq!(bytes.len(), l.record_size());
            prop_assert_eq!(bytes[0] & 0x80, 0);
        }
    }
}
