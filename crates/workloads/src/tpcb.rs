//! TPC-B: the bank-transfer benchmark the paper's Table 1 runs.
//!
//! Schema (100-byte rows per the spec; cardinalities scaled down from
//! 100 000 accounts/branch so simulator runs stay minutes, not hours —
//! the reported metrics are ratios and scale-free):
//!
//! * `branch`   — 1 per scale unit
//! * `teller`   — 10 per branch
//! * `account`  — [`ACCOUNTS_PER_BRANCH`] per branch, B+-tree indexed
//! * `history`  — append-only 50-byte rows, in a *non-IPA* region (pure
//!   inserts; the paper applies IPA selectively via NoFTL regions)
//!
//! Each transaction updates one account, teller and branch balance
//! (`balance += Δ`, a sub-10-byte net change — Figure 1's whole premise)
//! and appends a history row.

use rand::rngs::StdRng;
use rand::Rng;

use ipa_storage::{Result, Rid, StorageEngine, TableId, TableSpec};

use crate::spec::{heap_pages, index_pages, Benchmark};
use crate::util::{get_i64, put_i64, put_u64, ZipfTable};

/// Accounts per branch (spec value 100 000; scaled for simulation but
/// kept far larger than the buffer pool so account pages actually evict).
pub const ACCOUNTS_PER_BRANCH: u64 = 10_000;
/// Tellers per branch (spec value).
pub const TELLERS_PER_BRANCH: u64 = 10;
/// Account/teller/branch row size (spec: 100 bytes).
pub const ROW_LEN: usize = 100;
/// History row size (spec: ~50 bytes).
pub const HISTORY_LEN: usize = 50;
/// Byte offset of the balance field in account/teller/branch rows.
pub const BALANCE_OFF: usize = 16;
/// Initial balance: large and positive so ±Δ updates never flip the sign
/// (a sign flip would rewrite all 8 bytes of the LE i64 and defeat the
/// byte-delta encoding — real deployments run large positive balances).
pub const INITIAL_BALANCE: i64 = 1 << 40;

/// TPC-B benchmark state.
pub struct TpcB {
    scale: u32,
    page_size: usize,
    headroom_tx: u64,
    accounts: Option<TableId>,
    tellers: Option<TableId>,
    branches: Option<TableId>,
    history: Option<TableId>,
    accounts_pk: Option<TableId>,
    teller_rids: Vec<Rid>,
    branch_rids: Vec<Rid>,
    history_full: bool,
    /// Zipf(θ) account-key sampler when the driver asks for skew.
    account_zipf: Option<ZipfTable>,
}

impl TpcB {
    pub fn new(scale: u32, page_size: usize) -> Self {
        Self::with_headroom(scale, page_size, 100_000)
    }

    /// `headroom_tx` bounds how many history rows (one per transaction)
    /// the append-only region is budgeted for.
    pub fn with_headroom(scale: u32, page_size: usize, headroom_tx: u64) -> Self {
        assert!(scale >= 1);
        TpcB {
            scale,
            page_size,
            headroom_tx,
            accounts: None,
            tellers: None,
            branches: None,
            history: None,
            accounts_pk: None,
            teller_rids: Vec::new(),
            branch_rids: Vec::new(),
            history_full: false,
            account_zipf: None,
        }
    }

    pub fn n_accounts(&self) -> u64 {
        self.scale as u64 * ACCOUNTS_PER_BRANCH
    }

    fn n_tellers(&self) -> u64 {
        self.scale as u64 * TELLERS_PER_BRANCH
    }

    fn row(id: u64, branch: u64, len: usize) -> Vec<u8> {
        let mut r = vec![0u8; len];
        put_u64(&mut r, 0, id);
        put_u64(&mut r, 8, branch);
        put_i64(&mut r, BALANCE_OFF, INITIAL_BALANCE);
        r
    }
}

impl Benchmark for TpcB {
    fn name(&self) -> &'static str {
        "TPC-B"
    }

    fn tables(&self) -> Vec<TableSpec> {
        let ps = self.page_size;
        // History grows ~1 row/tx; budget for the configured run length.
        let history_rows = self.headroom_tx.max(self.n_accounts());
        vec![
            TableSpec::heap(
                "account",
                ROW_LEN,
                heap_pages(self.n_accounts(), ROW_LEN, ps),
            ),
            TableSpec::heap("teller", ROW_LEN, heap_pages(self.n_tellers(), ROW_LEN, ps)),
            TableSpec::heap(
                "branch",
                ROW_LEN,
                heap_pages(self.scale as u64, ROW_LEN, ps),
            ),
            TableSpec::heap(
                "history",
                HISTORY_LEN,
                heap_pages(history_rows, HISTORY_LEN, ps),
            )
            .without_ipa(),
            TableSpec::index("account_pk", index_pages(self.n_accounts(), ps)),
        ]
    }

    fn load(&mut self, engine: &mut StorageEngine, _rng: &mut StdRng) -> Result<()> {
        let accounts = engine.table("account")?;
        let tellers = engine.table("teller")?;
        let branches = engine.table("branch")?;
        let history = engine.table("history")?;
        let accounts_pk = engine.table("account_pk")?;

        let tx = engine.begin();
        for b in 0..self.scale as u64 {
            self.branch_rids
                .push(engine.insert(tx, branches, &Self::row(b, b, ROW_LEN))?);
        }
        for t in 0..self.n_tellers() {
            let b = t / TELLERS_PER_BRANCH;
            self.teller_rids
                .push(engine.insert(tx, tellers, &Self::row(t, b, ROW_LEN))?);
        }
        for a in 0..self.n_accounts() {
            let b = a / ACCOUNTS_PER_BRANCH;
            let rid = engine.insert(tx, accounts, &Self::row(a, b, ROW_LEN))?;
            engine.index_insert(tx, accounts_pk, a, rid)?;
        }
        engine.commit(tx)?;
        engine.flush_all()?;

        self.accounts = Some(accounts);
        self.tellers = Some(tellers);
        self.branches = Some(branches);
        self.history = Some(history);
        self.accounts_pk = Some(accounts_pk);
        Ok(())
    }

    fn run_tx(&mut self, engine: &mut StorageEngine, rng: &mut StdRng) -> Result<()> {
        let accounts = self.accounts.expect("load first");
        let tellers = self.tellers.unwrap();
        let branches = self.branches.unwrap();
        let history = self.history.unwrap();
        let accounts_pk = self.accounts_pk.unwrap();

        let aid = match &self.account_zipf {
            Some(z) => z.sample(rng),
            None => rng.gen_range(0..self.n_accounts()),
        };
        let tid = rng.gen_range(0..self.n_tellers());
        let bid = tid / TELLERS_PER_BRANCH;
        let delta: i64 = rng.gen_range(-99_999..=99_999);

        let tx = engine.begin();
        // Account: index lookup, read, balance update.
        let arid = engine
            .index_lookup(accounts_pk, aid)?
            .expect("loaded account");
        let row = engine.get(accounts, arid)?;
        let new_bal = get_i64(&row, BALANCE_OFF) + delta;
        let mut bytes = [0u8; 8];
        put_i64(&mut bytes, 0, new_bal);
        engine.update_field(tx, accounts, arid, BALANCE_OFF, &bytes)?;

        // Teller.
        let trid = self.teller_rids[tid as usize];
        let row = engine.get(tellers, trid)?;
        let mut bytes = [0u8; 8];
        put_i64(&mut bytes, 0, get_i64(&row, BALANCE_OFF) + delta);
        engine.update_field(tx, tellers, trid, BALANCE_OFF, &bytes)?;

        // Branch.
        let brid = self.branch_rids[bid as usize];
        let row = engine.get(branches, brid)?;
        let mut bytes = [0u8; 8];
        put_i64(&mut bytes, 0, get_i64(&row, BALANCE_OFF) + delta);
        engine.update_field(tx, branches, brid, BALANCE_OFF, &bytes)?;

        // History append (region capacity permitting; a full history is a
        // benchmark-duration artifact, not an error — drop the insert and
        // keep measuring updates, as a circular history file would).
        if !self.history_full {
            let mut h = vec![0u8; HISTORY_LEN];
            put_u64(&mut h, 0, aid);
            put_u64(&mut h, 8, tid);
            put_u64(&mut h, 16, bid);
            put_i64(&mut h, 24, delta);
            match engine.insert(tx, history, &h) {
                Ok(_) => {}
                Err(ipa_storage::StorageError::TableFull(_)) => self.history_full = true,
                Err(e) => {
                    engine.abort(tx)?;
                    return Err(e);
                }
            }
        }
        engine.commit(tx)
    }

    fn set_key_skew(&mut self, theta: Option<f64>) {
        self.account_zipf = theta.map(|t| ZipfTable::new(self.n_accounts(), t));
    }

    fn read_fraction(&self) -> f64 {
        0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_core::NmScheme;
    use ipa_flash::{DeviceConfig, DisturbRates, FlashMode, Geometry};
    use ipa_storage::EngineConfig;
    use rand::SeedableRng;

    fn engine(b: &TpcB, ipa: bool) -> StorageEngine {
        let dc = DeviceConfig::new(Geometry::new(512, 32, 2048, 64), FlashMode::PSlc)
            .with_disturb(DisturbRates::none());
        let cfg = if ipa {
            EngineConfig::default().with_ipa(NmScheme::new(2, 4))
        } else {
            EngineConfig::default()
        };
        StorageEngine::build(dc, cfg.with_buffer_frames(64), &b.tables()).unwrap()
    }

    #[test]
    fn load_and_run() {
        let mut b = TpcB::with_headroom(1, 2048, 2_000);
        let mut e = engine(&b, true);
        let mut rng = StdRng::seed_from_u64(1);
        b.load(&mut e, &mut rng).unwrap();
        for _ in 0..200 {
            b.run_tx(&mut e, &mut rng).unwrap();
        }
        let s = e.stats();
        assert_eq!(s.committed, 201); // load tx + 200
        assert!(s.device.host_reads > 0);
    }

    #[test]
    fn balances_conserve_money() {
        // Sum of all account balances == sum of branch balances == sum of
        // teller balances (every delta hits one of each).
        let mut b = TpcB::with_headroom(1, 2048, 2_000);
        let mut e = engine(&b, true);
        let mut rng = StdRng::seed_from_u64(2);
        b.load(&mut e, &mut rng).unwrap();
        for _ in 0..150 {
            b.run_tx(&mut e, &mut rng).unwrap();
        }
        e.flush_all().unwrap();
        e.restart_clean().unwrap(); // force everything through flash

        let sum_table = |e: &mut StorageEngine, name: &str| -> i64 {
            let t = e.table(name).unwrap();
            let mut sum = 0i64;
            e.scan(t, |_, row| {
                sum += get_i64(row, BALANCE_OFF) - INITIAL_BALANCE
            })
            .unwrap();
            sum
        };
        let acc = sum_table(&mut e, "account");
        let tel = sum_table(&mut e, "teller");
        let bra = sum_table(&mut e, "branch");
        assert_eq!(acc, tel, "account vs teller totals");
        assert_eq!(tel, bra, "teller vs branch totals");
    }

    #[test]
    fn ipa_beats_traditional_on_invalidations() {
        let run = |ipa: bool| {
            let mut b = TpcB::with_headroom(1, 2048, 2_000);
            let mut e = engine(&b, ipa);
            let mut rng = StdRng::seed_from_u64(3);
            b.load(&mut e, &mut rng).unwrap();
            for _ in 0..400 {
                b.run_tx(&mut e, &mut rng).unwrap();
            }
            e.flush_all().unwrap();
            e.stats().device
        };
        let trad = run(false);
        let ipa = run(true);
        assert!(
            ipa.page_invalidations < trad.page_invalidations,
            "IPA {} vs traditional {}",
            ipa.page_invalidations,
            trad.page_invalidations
        );
        assert!(ipa.in_place_appends > 0);
    }
}
