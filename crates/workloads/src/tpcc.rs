//! TPC-C (scaled): the order-entry benchmark with the standard five-
//! transaction mix.
//!
//! | transaction  | share | writes                                        |
//! |--------------|-------|-----------------------------------------------|
//! | New-Order    | 45 %  | district `next_o_id`, 5–15 stock updates, inserts |
//! | Payment      | 43 %  | warehouse/district YTD, customer balance, history |
//! | Order-Status | 4 %   | — (reads)                                     |
//! | Delivery     | 4 %   | order carrier, line `delivery_d`, customer    |
//! | Stock-Level  | 4 %   | — (reads)                                     |
//!
//! Cardinalities are scaled down (customers, items) so simulator runs stay
//! short; the update-size *distribution* — the property IPA exploits — is
//! preserved: YTD/balance/quantity updates touch a handful of bytes inside
//! 100–200-byte rows.
//!
//! Secondary access paths that a full system would route through indexes
//! (customer lookup, stock lookup, undelivered-order queues) use in-memory
//! RID tables here; the `orders` primary key is a real B+-tree so index
//! maintenance traffic is represented. New-Order aborts 1 % of the time
//! (the spec's invalid-item rollback), exercising transaction undo.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::Rng;

use ipa_storage::{Result, Rid, StorageEngine, StorageError, TableId, TableSpec};

use crate::spec::{heap_pages, index_pages, Benchmark};
use crate::util::{get_i64, nurand, put_i64, put_u64};

pub const DISTRICTS_PER_WH: u64 = 10;
pub const CUSTOMERS_PER_DISTRICT: u64 = 60;
pub const ITEMS: u64 = 1_000;

pub const WH_ROW: usize = 100;
pub const DIST_ROW: usize = 100;
pub const CUST_ROW: usize = 200;
pub const ITEM_ROW: usize = 60;
pub const STOCK_ROW: usize = 100;
pub const ORDER_ROW: usize = 60;
pub const OL_ROW: usize = 60;
pub const NO_ROW: usize = 30;
pub const HIST_ROW: usize = 50;

/// Offsets (bytes) of the updated fields.
const YTD_OFF: usize = 16; // warehouse, district (i64)
const NEXT_O_OFF: usize = 24; // district next_o_id (u64)
const CBAL_OFF: usize = 16; // customer balance (i64)
const CPAY_OFF: usize = 24; // customer ytd_payment (i64)
const CCNT_OFF: usize = 32; // customer payment_cnt / delivery_cnt (2×u16)
const SQTY_OFF: usize = 8; // stock quantity (i32) + ytd (u32) + cnts (2×u16)
const OCARRIER_OFF: usize = 24; // order carrier id (u8)
const OLDELIV_OFF: usize = 24; // order line delivery_d (u64)

struct OpenOrder {
    order_rid: Rid,
    line_rids: Vec<Rid>,
    new_order_rid: Rid,
    customer: usize,
}

pub struct TpcC {
    warehouses: u32,
    page_size: usize,
    headroom_tx: u64,
    t_wh: Option<TableId>,
    t_dist: Option<TableId>,
    t_cust: Option<TableId>,
    t_item: Option<TableId>,
    t_stock: Option<TableId>,
    t_order: Option<TableId>,
    t_ol: Option<TableId>,
    t_no: Option<TableId>,
    t_hist: Option<TableId>,
    order_pk: Option<TableId>,
    wh_rids: Vec<Rid>,
    dist_rids: Vec<Rid>,
    cust_rids: Vec<Rid>,
    item_rids: Vec<Rid>,
    stock_rids: Vec<Rid>,
    /// Undelivered orders per (w, d).
    undelivered: Vec<VecDeque<OpenOrder>>,
    /// Recent orders per (w, d) for Stock-Level.
    recent: Vec<VecDeque<Vec<Rid>>>,
    /// Last order per customer for Order-Status.
    last_order: Vec<Option<(Rid, Vec<Rid>)>>,
    next_o_id: Vec<u64>,
    hist_full: bool,
}

impl TpcC {
    pub fn new(warehouses: u32, page_size: usize) -> Self {
        Self::with_headroom(warehouses, page_size, 20_000)
    }

    /// `headroom_tx` bounds how many transactions the grow-only tables
    /// (orders, order lines, history) are budgeted for.
    pub fn with_headroom(warehouses: u32, page_size: usize, headroom_tx: u64) -> Self {
        assert!(warehouses >= 1);
        let wd = (warehouses as u64 * DISTRICTS_PER_WH) as usize;
        TpcC {
            warehouses,
            page_size,
            headroom_tx,
            t_wh: None,
            t_dist: None,
            t_cust: None,
            t_item: None,
            t_stock: None,
            t_order: None,
            t_ol: None,
            t_no: None,
            t_hist: None,
            order_pk: None,
            wh_rids: Vec::new(),
            dist_rids: Vec::new(),
            cust_rids: Vec::new(),
            item_rids: Vec::new(),
            stock_rids: Vec::new(),
            undelivered: (0..wd).map(|_| VecDeque::new()).collect(),
            recent: (0..wd).map(|_| VecDeque::new()).collect(),
            last_order: vec![None; wd * CUSTOMERS_PER_DISTRICT as usize],
            next_o_id: vec![0; wd],
            hist_full: false,
        }
    }

    fn n_wd(&self) -> u64 {
        self.warehouses as u64 * DISTRICTS_PER_WH
    }

    fn cust_index(&self, w: u64, d: u64, c: u64) -> usize {
        ((w * DISTRICTS_PER_WH + d) * CUSTOMERS_PER_DISTRICT + c) as usize
    }

    fn order_key(&self, w: u64, d: u64, o: u64) -> u64 {
        ((w * DISTRICTS_PER_WH + d) << 40) | o
    }
}

impl Benchmark for TpcC {
    fn name(&self) -> &'static str {
        "TPC-C"
    }

    fn tables(&self) -> Vec<TableSpec> {
        let ps = self.page_size;
        let w = self.warehouses as u64;
        let orders = self.headroom_tx / 2 + 100;
        let lines = orders * 10;
        vec![
            TableSpec::heap("warehouse", WH_ROW, heap_pages(w, WH_ROW, ps)),
            TableSpec::heap("district", DIST_ROW, heap_pages(self.n_wd(), DIST_ROW, ps)),
            TableSpec::heap(
                "customer",
                CUST_ROW,
                heap_pages(self.n_wd() * CUSTOMERS_PER_DISTRICT, CUST_ROW, ps),
            ),
            TableSpec::heap("item", ITEM_ROW, heap_pages(ITEMS, ITEM_ROW, ps)).without_ipa(),
            TableSpec::heap("stock", STOCK_ROW, heap_pages(w * ITEMS, STOCK_ROW, ps)),
            TableSpec::heap("orders", ORDER_ROW, heap_pages(orders, ORDER_ROW, ps)).without_ipa(),
            TableSpec::heap("order_line", OL_ROW, heap_pages(lines, OL_ROW, ps)).with_ipa(),
            TableSpec::heap("new_order", NO_ROW, heap_pages(orders, NO_ROW, ps)).without_ipa(),
            TableSpec::heap("history", HIST_ROW, heap_pages(orders, HIST_ROW, ps)).without_ipa(),
            TableSpec::index("order_pk", index_pages(orders, ps)),
        ]
    }

    fn load(&mut self, engine: &mut StorageEngine, rng: &mut StdRng) -> Result<()> {
        self.t_wh = Some(engine.table("warehouse")?);
        self.t_dist = Some(engine.table("district")?);
        self.t_cust = Some(engine.table("customer")?);
        self.t_item = Some(engine.table("item")?);
        self.t_stock = Some(engine.table("stock")?);
        self.t_order = Some(engine.table("orders")?);
        self.t_ol = Some(engine.table("order_line")?);
        self.t_no = Some(engine.table("new_order")?);
        self.t_hist = Some(engine.table("history")?);
        self.order_pk = Some(engine.table("order_pk")?);

        let tx = engine.begin();
        for w in 0..self.warehouses as u64 {
            let mut row = vec![0u8; WH_ROW];
            put_u64(&mut row, 0, w);
            self.wh_rids
                .push(engine.insert(tx, self.t_wh.unwrap(), &row)?);
            for d in 0..DISTRICTS_PER_WH {
                let mut row = vec![0u8; DIST_ROW];
                put_u64(&mut row, 0, w * DISTRICTS_PER_WH + d);
                self.dist_rids
                    .push(engine.insert(tx, self.t_dist.unwrap(), &row)?);
                for c in 0..CUSTOMERS_PER_DISTRICT {
                    let mut row = vec![0u8; CUST_ROW];
                    put_u64(&mut row, 0, self.cust_index(w, d, c) as u64);
                    self.cust_rids
                        .push(engine.insert(tx, self.t_cust.unwrap(), &row)?);
                }
            }
            for i in 0..ITEMS {
                let mut row = vec![0u8; STOCK_ROW];
                put_u64(&mut row, 0, w * ITEMS + i);
                row[SQTY_OFF] = 100; // initial quantity
                self.stock_rids
                    .push(engine.insert(tx, self.t_stock.unwrap(), &row)?);
            }
        }
        for i in 0..ITEMS {
            let mut row = vec![0u8; ITEM_ROW];
            put_u64(&mut row, 0, i);
            put_i64(&mut row, 8, rng.gen_range(100..10_000)); // price
            self.item_rids
                .push(engine.insert(tx, self.t_item.unwrap(), &row)?);
        }
        engine.commit(tx)?;
        engine.flush_all()?;
        Ok(())
    }

    fn run_tx(&mut self, engine: &mut StorageEngine, rng: &mut StdRng) -> Result<()> {
        let dice = rng.gen_range(0..100u32);
        match dice {
            0..=44 => self.new_order(engine, rng),
            45..=87 => self.payment(engine, rng),
            88..=91 => self.order_status(engine, rng),
            92..=95 => self.delivery(engine, rng),
            _ => self.stock_level(engine, rng),
        }
    }

    fn read_fraction(&self) -> f64 {
        0.7
    }
}

impl TpcC {
    fn new_order(&mut self, engine: &mut StorageEngine, rng: &mut StdRng) -> Result<()> {
        let w = rng.gen_range(0..self.warehouses as u64);
        let d = rng.gen_range(0..DISTRICTS_PER_WH);
        let c = nurand(rng, 255, 0, CUSTOMERS_PER_DISTRICT - 1);
        let wd = (w * DISTRICTS_PER_WH + d) as usize;
        let ol_cnt = rng.gen_range(5..=15usize);
        let rollback = rng.gen_range(0..100) == 0; // spec: 1 % invalid item

        let tx = engine.begin();

        // District: read, take next_o_id, bump it (8-byte field, ~1 byte
        // of net change).
        let drid = self.dist_rids[wd];
        let drow = engine.get(self.t_dist.unwrap(), drid)?;
        let o_id = crate::util::get_u64(&drow, NEXT_O_OFF);
        let mut bytes = [0u8; 8];
        put_u64(&mut bytes, 0, o_id + 1);
        engine.update_field(tx, self.t_dist.unwrap(), drid, NEXT_O_OFF, &bytes)?;

        // Order + new-order rows.
        let mut orow = vec![0u8; ORDER_ROW];
        put_u64(&mut orow, 0, self.order_key(w, d, o_id));
        put_u64(&mut orow, 8, self.cust_index(w, d, c) as u64);
        orow[25] = ol_cnt as u8;
        let order_rid = engine.insert(tx, self.t_order.unwrap(), &orow)?;
        engine.index_insert(
            tx,
            self.order_pk.unwrap(),
            self.order_key(w, d, o_id),
            order_rid,
        )?;
        let mut nrow = vec![0u8; NO_ROW];
        put_u64(&mut nrow, 0, self.order_key(w, d, o_id));
        let new_order_rid = engine.insert(tx, self.t_no.unwrap(), &nrow)?;

        // Lines + stock updates.
        let mut line_rids = Vec::with_capacity(ol_cnt);
        for l in 0..ol_cnt {
            let item = nurand(rng, 1023, 0, ITEMS - 1);
            let _irow = engine.get(self.t_item.unwrap(), self.item_rids[item as usize])?;
            let srid = self.stock_rids[(w * ITEMS + item) as usize];
            let srow = engine.get(self.t_stock.unwrap(), srid)?;
            // quantity -= qty (refill below 10), ytd += qty, order_cnt += 1:
            // one contiguous 10-byte field update.
            let qty = rng.gen_range(1..=10);
            let mut q = i32::from_le_bytes(srow[SQTY_OFF..SQTY_OFF + 4].try_into().unwrap());
            q = if q - qty < 10 { q - qty + 91 } else { q - qty };
            let ytd = u32::from_le_bytes(srow[SQTY_OFF + 4..SQTY_OFF + 8].try_into().unwrap()) + 1;
            let cnt = u16::from_le_bytes(srow[SQTY_OFF + 8..SQTY_OFF + 10].try_into().unwrap()) + 1;
            let mut field = [0u8; 10];
            field[..4].copy_from_slice(&q.to_le_bytes());
            field[4..8].copy_from_slice(&ytd.to_le_bytes());
            field[8..].copy_from_slice(&cnt.to_le_bytes());
            engine.update_field(tx, self.t_stock.unwrap(), srid, SQTY_OFF, &field)?;

            let mut lrow = vec![0u8; OL_ROW];
            put_u64(&mut lrow, 0, self.order_key(w, d, o_id));
            lrow[8] = l as u8;
            put_u64(&mut lrow, 16, item);
            line_rids.push(engine.insert(tx, self.t_ol.unwrap(), &lrow)?);
        }

        if rollback {
            engine.abort(tx)?;
            // Heap writes are undone physically; index undo is logical
            // (compensating delete), mirroring Shore-MT's logical index
            // rollback. The tx id is irrelevant for index compensation.
            engine
                .index_delete(0, self.order_pk.unwrap(), self.order_key(w, d, o_id))
                .ok();
            return Ok(());
        }

        engine.commit(tx)?;
        self.next_o_id[wd] = o_id + 1;
        let open = OpenOrder {
            order_rid,
            line_rids: line_rids.clone(),
            new_order_rid,
            customer: self.cust_index(w, d, c),
        };
        self.undelivered[wd].push_back(open);
        self.recent[wd].push_back(line_rids.clone());
        if self.recent[wd].len() > 20 {
            self.recent[wd].pop_front();
        }
        let ci = self.cust_index(w, d, c);
        self.last_order[ci] = Some((order_rid, line_rids));
        Ok(())
    }

    fn payment(&mut self, engine: &mut StorageEngine, rng: &mut StdRng) -> Result<()> {
        let w = rng.gen_range(0..self.warehouses as u64);
        let d = rng.gen_range(0..DISTRICTS_PER_WH);
        let c = nurand(rng, 255, 0, CUSTOMERS_PER_DISTRICT - 1);
        let wd = (w * DISTRICTS_PER_WH + d) as usize;
        let amount: i64 = rng.gen_range(100..=500_000);

        let tx = engine.begin();
        // Warehouse YTD.
        let wrid = self.wh_rids[w as usize];
        let row = engine.get(self.t_wh.unwrap(), wrid)?;
        let mut b = [0u8; 8];
        put_i64(&mut b, 0, get_i64(&row, YTD_OFF) + amount);
        engine.update_field(tx, self.t_wh.unwrap(), wrid, YTD_OFF, &b)?;
        // District YTD.
        let drid = self.dist_rids[wd];
        let row = engine.get(self.t_dist.unwrap(), drid)?;
        let mut b = [0u8; 8];
        put_i64(&mut b, 0, get_i64(&row, YTD_OFF) + amount);
        engine.update_field(tx, self.t_dist.unwrap(), drid, YTD_OFF, &b)?;
        // Customer: balance -= amount; ytd += amount; payment_cnt += 1 —
        // one 18-byte contiguous field write, few net bytes.
        let crid = self.cust_rids[self.cust_index(w, d, c)];
        let row = engine.get(self.t_cust.unwrap(), crid)?;
        let mut field = [0u8; 18];
        field[..8].copy_from_slice(&(get_i64(&row, CBAL_OFF) - amount).to_le_bytes());
        field[8..16].copy_from_slice(&(get_i64(&row, CPAY_OFF) + amount).to_le_bytes());
        let cnt = u16::from_le_bytes(row[CCNT_OFF..CCNT_OFF + 2].try_into().unwrap()) + 1;
        field[16..].copy_from_slice(&cnt.to_le_bytes());
        engine.update_field(tx, self.t_cust.unwrap(), crid, CBAL_OFF, &field)?;
        // History.
        if !self.hist_full {
            let mut h = vec![0u8; HIST_ROW];
            put_u64(&mut h, 0, self.cust_index(w, d, c) as u64);
            put_i64(&mut h, 8, amount);
            match engine.insert(tx, self.t_hist.unwrap(), &h) {
                Ok(_) => {}
                Err(StorageError::TableFull(_)) => self.hist_full = true,
                Err(e) => {
                    engine.abort(tx)?;
                    return Err(e);
                }
            }
        }
        engine.commit(tx)
    }

    fn order_status(&mut self, engine: &mut StorageEngine, rng: &mut StdRng) -> Result<()> {
        let w = rng.gen_range(0..self.warehouses as u64);
        let d = rng.gen_range(0..DISTRICTS_PER_WH);
        let c = nurand(rng, 255, 0, CUSTOMERS_PER_DISTRICT - 1);
        let ci = self.cust_index(w, d, c);
        let _crow = engine.get(self.t_cust.unwrap(), self.cust_rids[ci])?;
        if let Some((orid, lines)) = &self.last_order[ci] {
            let _ = engine.get(self.t_order.unwrap(), *orid)?;
            for l in lines {
                let _ = engine.get(self.t_ol.unwrap(), *l)?;
            }
        }
        Ok(())
    }

    fn delivery(&mut self, engine: &mut StorageEngine, rng: &mut StdRng) -> Result<()> {
        let w = rng.gen_range(0..self.warehouses as u64);
        let carrier = rng.gen_range(1..=10u8);
        let tx = engine.begin();
        for d in 0..DISTRICTS_PER_WH {
            let wd = (w * DISTRICTS_PER_WH + d) as usize;
            let Some(open) = self.undelivered[wd].pop_front() else {
                continue;
            };
            // Delete the new-order row, stamp the order, stamp each line.
            engine.delete(tx, self.t_no.unwrap(), open.new_order_rid)?;
            engine.update_field(
                tx,
                self.t_order.unwrap(),
                open.order_rid,
                OCARRIER_OFF,
                &[carrier],
            )?;
            let now = [0x11u8; 8];
            for l in &open.line_rids {
                engine.update_field(tx, self.t_ol.unwrap(), *l, OLDELIV_OFF, &now)?;
            }
            // Customer: balance += total; delivery_cnt += 1.
            let crid = self.cust_rids[open.customer];
            let row = engine.get(self.t_cust.unwrap(), crid)?;
            let mut b = [0u8; 8];
            put_i64(&mut b, 0, get_i64(&row, CBAL_OFF) + 500);
            engine.update_field(tx, self.t_cust.unwrap(), crid, CBAL_OFF, &b)?;
            let dcnt = u16::from_le_bytes(row[CCNT_OFF + 2..CCNT_OFF + 4].try_into().unwrap()) + 1;
            engine.update_field(
                tx,
                self.t_cust.unwrap(),
                crid,
                CCNT_OFF + 2,
                &dcnt.to_le_bytes(),
            )?;
        }
        engine.commit(tx)
    }

    fn stock_level(&mut self, engine: &mut StorageEngine, rng: &mut StdRng) -> Result<()> {
        let w = rng.gen_range(0..self.warehouses as u64);
        let d = rng.gen_range(0..DISTRICTS_PER_WH);
        let wd = (w * DISTRICTS_PER_WH + d) as usize;
        let _drow = engine.get(self.t_dist.unwrap(), self.dist_rids[wd])?;
        let recents: Vec<Vec<Rid>> = self.recent[wd].iter().cloned().collect();
        for lines in recents {
            for l in lines {
                let lrow = engine.get(self.t_ol.unwrap(), l)?;
                let item = crate::util::get_u64(&lrow, 16);
                let srid = self.stock_rids[(w * ITEMS + item) as usize];
                let _ = engine.get(self.t_stock.unwrap(), srid)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_core::NmScheme;
    use ipa_flash::{DeviceConfig, DisturbRates, FlashMode, Geometry};
    use ipa_storage::EngineConfig;
    use rand::SeedableRng;

    fn run(ipa: bool, txs: u64) -> ipa_storage::EngineStats {
        let mut b = TpcC::with_headroom(1, 2048, 2_000);
        let dc = DeviceConfig::new(Geometry::new(2048, 32, 2048, 64), FlashMode::PSlc)
            .with_disturb(DisturbRates::none());
        let cfg = if ipa {
            EngineConfig::default().with_ipa(NmScheme::new(2, 4))
        } else {
            EngineConfig::default()
        };
        let mut e = StorageEngine::build(dc, cfg.with_buffer_frames(128), &b.tables()).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        b.load(&mut e, &mut rng).unwrap();
        for _ in 0..txs {
            b.run_tx(&mut e, &mut rng).unwrap();
        }
        e.flush_all().unwrap();
        e.stats()
    }

    #[test]
    fn mix_runs_clean() {
        let s = run(true, 300);
        assert!(s.committed > 250);
        assert!(s.device.host_reads > 0);
        assert!(s.device.total_host_writes() > 0);
        assert!(s.device.in_place_appends > 0, "small updates must append");
    }

    #[test]
    fn ipa_reduces_invalidations() {
        let trad = run(false, 300);
        let ipa = run(true, 300);
        assert!(
            ipa.device.page_invalidations < trad.device.page_invalidations,
            "IPA {} vs trad {}",
            ipa.device.page_invalidations,
            trad.device.page_invalidations
        );
    }
}
