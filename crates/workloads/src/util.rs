//! Small utilities shared by the workload generators: field codecs over
//! fixed-width rows and skewed samplers.

use rand::rngs::StdRng;
use rand::Rng;

/// Write a `u64` little-endian at `off`.
#[inline]
pub fn put_u64(row: &mut [u8], off: usize, v: u64) {
    row[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// Read a `u64` little-endian at `off`.
#[inline]
pub fn get_u64(row: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(row[off..off + 8].try_into().unwrap())
}

/// Write an `i64` little-endian at `off`.
#[inline]
pub fn put_i64(row: &mut [u8], off: usize, v: i64) {
    row[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// Read an `i64` little-endian at `off`.
#[inline]
pub fn get_i64(row: &[u8], off: usize) -> i64 {
    i64::from_le_bytes(row[off..off + 8].try_into().unwrap())
}

/// Write a `u32` little-endian at `off`.
#[inline]
pub fn put_u32(row: &mut [u8], off: usize, v: u32) {
    row[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Read a `u32` little-endian at `off`.
#[inline]
pub fn get_u32(row: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(row[off..off + 4].try_into().unwrap())
}

/// TPC-C's non-uniform random function `NURand(A, x..=y)`.
pub fn nurand(rng: &mut StdRng, a: u64, x: u64, y: u64) -> u64 {
    let c = a / 2; // fixed run constant (spec allows any constant)
    ((rng.gen_range(0..=a) | rng.gen_range(x..=y)) + c) % (y - x + 1) + x
}

/// Zipf-like sampler over `0..n` with exponent `s ≈ 1`, implemented via
/// the inverse-CDF approximation of Gray et al. — exact enough for
/// hot-spot skew without a per-item table.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    theta: f64,
}

impl Zipf {
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0);
        assert!((0.0..1.0).contains(&theta), "theta in [0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            alpha,
            zetan,
            eta,
            theta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact up to a cutoff, then the Euler–Maclaurin tail — keeps
        // construction O(1)-ish for large n.
        let cutoff = n.min(10_000);
        let mut sum = 0.0;
        for i in 1..=cutoff {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > cutoff {
            let a = cutoff as f64;
            let b = n as f64;
            sum += (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta);
        }
        sum
    }

    /// Draw an item in `0..n`; item 0 is the hottest.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }
}

/// Exact Zipf(θ) sampler over `0..n`: item `i` is drawn with probability
/// `(i+1)^-θ / ζ_n(θ)`. Unlike [`Zipf`], this builds the full cumulative
/// table and draws via binary search, so the per-item probabilities are
/// exact — the heat-placement experiments need a key distribution whose
/// frequency ranks can be checked against the analytic values.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    /// `cdf[i]` = P(item ≤ i); the last entry is 1.0 by construction.
    cdf: Vec<f64>,
    theta: f64,
}

impl ZipfTable {
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!(theta >= 0.0 && theta.is_finite(), "theta must be ≥ 0");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut sum = 0.0f64;
        for i in 0..n {
            sum += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(sum);
        }
        let norm = sum;
        for c in &mut cdf {
            *c /= norm;
        }
        *cdf.last_mut().unwrap() = 1.0;
        ZipfTable { cdf, theta }
    }

    /// Number of items.
    #[inline]
    pub fn n(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// The skew exponent.
    #[inline]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Exact probability of item `i`.
    pub fn probability(&self, i: u64) -> f64 {
        let i = i as usize;
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Draw an item in `0..n`; item 0 is the hottest.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        // First index whose cumulative mass covers u.
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn codec_round_trips() {
        let mut row = vec![0u8; 32];
        put_u64(&mut row, 0, 0xDEAD_BEEF);
        put_i64(&mut row, 8, -12345);
        put_u32(&mut row, 16, 777);
        assert_eq!(get_u64(&row, 0), 0xDEAD_BEEF);
        assert_eq!(get_i64(&row, 8), -12345);
        assert_eq!(get_u32(&row, 16), 777);
    }

    #[test]
    fn nurand_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = nurand(&mut rng, 1023, 1, 3000);
            assert!((1..=3000).contains(&v));
        }
    }

    #[test]
    fn zipf_respects_bounds_and_skews() {
        let mut rng = StdRng::seed_from_u64(2);
        let z = Zipf::new(10_000, 0.9);
        let mut head = 0u64;
        let n = 20_000;
        for _ in 0..n {
            let v = z.sample(&mut rng);
            assert!(v < 10_000);
            if v < 100 {
                head += 1;
            }
        }
        // With theta=0.9 the top 1 % of items draws far more than 1 % of
        // accesses.
        assert!(
            head > n / 10,
            "expected heavy head, got {head}/{n} in top 100"
        );
    }

    #[test]
    fn zipf_table_matches_the_analytic_oracle() {
        // Empirical frequencies vs the exact per-item probabilities,
        // and the frequency ranks vs the analytic ranks (descending in
        // item index by construction).
        let n = 64u64;
        let theta = 0.99;
        let z = ZipfTable::new(n, theta);
        let zeta: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let mut counts = vec![0u64; n as usize];
        let draws = 200_000u64;
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for i in 0..n {
            let analytic = 1.0 / ((i + 1) as f64).powf(theta) / zeta;
            assert!(
                (z.probability(i) - analytic).abs() < 1e-12,
                "item {i}: table {} vs analytic {analytic}",
                z.probability(i)
            );
        }
        // The head items must come out in analytic frequency-rank order
        // (their expected gaps are far above sampling noise at 200k).
        for i in 0..8usize {
            assert!(
                counts[i] > counts[i + 1],
                "rank inversion at {i}: {} !> {}",
                counts[i],
                counts[i + 1]
            );
            let expect = draws as f64 * z.probability(i as u64);
            let got = counts[i] as f64;
            assert!(
                (got - expect).abs() < expect * 0.15,
                "item {i}: {got} draws vs expected {expect}"
            );
        }
        // CDF ends exactly at 1 so every u ∈ [0,1) maps to an item.
        assert_eq!(z.n(), n);
        assert!((z.cdf[n as usize - 1] - 1.0).abs() == 0.0);
    }

    #[test]
    fn zipf_table_theta_zero_is_uniform() {
        let z = ZipfTable::new(10, 0.0);
        for i in 0..10 {
            assert!((z.probability(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_deterministic_for_seed() {
        let z = Zipf::new(1000, 0.8);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..50).map(|_| z.sample(&mut a)).collect();
        let vb: Vec<u64> = (0..50).map(|_| z.sample(&mut b)).collect();
        assert_eq!(va, vb);
    }
}
