//! TATP — the telecom benchmark (80 % reads, tiny updates).
//!
//! Standard mix:
//!
//! | transaction              | share | kind                           |
//! |--------------------------|-------|--------------------------------|
//! | GET_SUBSCRIBER_DATA      | 35 %  | read                           |
//! | GET_NEW_DESTINATION      | 10 %  | read (call-forwarding)         |
//! | GET_ACCESS_DATA          | 35 %  | read (access-info)             |
//! | UPDATE_SUBSCRIBER_DATA   | 2 %   | 3-byte update                  |
//! | UPDATE_LOCATION          | 14 %  | 4-byte update (`vlr_location`) |
//! | INSERT_CALL_FORWARDING   | 2 %   | insert                         |
//! | DELETE_CALL_FORWARDING   | 2 %   | delete                         |
//!
//! The update transactions change ≤4 bytes of one row — TATP is the
//! workload where IPA shines brightest in the paper's analysis, and the
//! read-heavy mix is exactly where IPL's read amplification hurts.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::Rng;

use ipa_storage::{Result, Rid, StorageEngine, StorageError, TableId, TableSpec};

use crate::spec::{heap_pages, index_pages, Benchmark};
use crate::util::{put_u32, put_u64};

/// Subscribers per scale unit (spec: 100 000; scaled down).
pub const SUBSCRIBERS_PER_SCALE: u64 = 2_000;
/// Subscriber row length.
pub const SUB_ROW: usize = 100;
/// Access-info row length (up to 4 per subscriber).
pub const AI_ROW: usize = 40;
/// Call-forwarding row length.
pub const CF_ROW: usize = 40;
/// Offset of `vlr_location` (u32) in the subscriber row.
pub const VLR_OFF: usize = 12;
/// Offset of the bit/data fields UPDATE_SUBSCRIBER_DATA touches.
pub const BITS_OFF: usize = 16;

pub struct Tatp {
    scale: u32,
    page_size: usize,
    subscribers: Option<TableId>,
    access_info: Option<TableId>,
    call_fwd: Option<TableId>,
    sub_pk: Option<TableId>,
    cf_pk: Option<TableId>,
    ai_rids: Vec<Rid>,
    /// Live call-forwarding keys (mirrors the cf_pk index; lets the
    /// generator pick deletable keys without scanning).
    cf_keys: HashSet<u64>,
    cf_full: bool,
}

impl Tatp {
    pub fn new(scale: u32, page_size: usize) -> Self {
        assert!(scale >= 1);
        Tatp {
            scale,
            page_size,
            subscribers: None,
            access_info: None,
            call_fwd: None,
            sub_pk: None,
            cf_pk: None,
            ai_rids: Vec::new(),
            cf_keys: HashSet::new(),
            cf_full: false,
        }
    }

    pub fn n_subs(&self) -> u64 {
        self.scale as u64 * SUBSCRIBERS_PER_SCALE
    }

    /// Composite key for call-forwarding rows: sub_id ‖ sf_type ‖ start.
    fn cf_key(sub: u64, sf_type: u8, start: u8) -> u64 {
        (sub << 16) | ((sf_type as u64) << 8) | start as u64
    }
}

impl Benchmark for Tatp {
    fn name(&self) -> &'static str {
        "TATP"
    }

    fn tables(&self) -> Vec<TableSpec> {
        let ps = self.page_size;
        let n = self.n_subs();
        vec![
            TableSpec::heap("subscriber", SUB_ROW, heap_pages(n, SUB_ROW, ps)),
            TableSpec::heap("access_info", AI_ROW, heap_pages(n * 2, AI_ROW, ps)),
            // Call-forwarding churns (insert+delete) — keep it IPA too;
            // tombstones make its pages go out-of-place naturally.
            TableSpec::heap("call_forwarding", CF_ROW, heap_pages(n * 3, CF_ROW, ps)),
            TableSpec::index("sub_pk", index_pages(n, ps)),
            TableSpec::index("cf_pk", index_pages(n * 2, ps)),
        ]
    }

    fn load(&mut self, engine: &mut StorageEngine, rng: &mut StdRng) -> Result<()> {
        let subscribers = engine.table("subscriber")?;
        let access_info = engine.table("access_info")?;
        let call_fwd = engine.table("call_forwarding")?;
        let sub_pk = engine.table("sub_pk")?;
        let cf_pk = engine.table("cf_pk")?;

        let tx = engine.begin();
        for s in 0..self.n_subs() {
            let mut row = vec![0u8; SUB_ROW];
            put_u64(&mut row, 0, s);
            put_u32(&mut row, VLR_OFF, rng.gen());
            let rid = engine.insert(tx, subscribers, &row)?;
            engine.index_insert(tx, sub_pk, s, rid)?;

            // 1–2 access-info rows per subscriber, addressed by position.
            let n_ai = 1 + (s % 2) as usize;
            for ai in 0..n_ai {
                let mut arow = vec![0u8; AI_ROW];
                put_u64(&mut arow, 0, s);
                arow[8] = ai as u8;
                self.ai_rids.push(engine.insert(tx, access_info, &arow)?);
            }

            // ~25 % of subscribers start with one call-forwarding entry.
            if s % 4 == 0 {
                let key = Self::cf_key(s, 0, 8);
                let mut crow = vec![0u8; CF_ROW];
                put_u64(&mut crow, 0, key);
                let rid = engine.insert(tx, call_fwd, &crow)?;
                engine.index_insert(tx, cf_pk, key, rid)?;
                self.cf_keys.insert(key);
            }
        }
        engine.commit(tx)?;
        engine.flush_all()?;

        self.subscribers = Some(subscribers);
        self.access_info = Some(access_info);
        self.call_fwd = Some(call_fwd);
        self.sub_pk = Some(sub_pk);
        self.cf_pk = Some(cf_pk);
        Ok(())
    }

    fn run_tx(&mut self, engine: &mut StorageEngine, rng: &mut StdRng) -> Result<()> {
        let subscribers = self.subscribers.expect("load first");
        let call_fwd = self.call_fwd.unwrap();
        let sub_pk = self.sub_pk.unwrap();
        let cf_pk = self.cf_pk.unwrap();

        let sub = rng.gen_range(0..self.n_subs());
        let dice = rng.gen_range(0..100u32);

        match dice {
            // GET_SUBSCRIBER_DATA — 35 %
            0..=34 => {
                if let Some(rid) = engine.index_lookup(sub_pk, sub)? {
                    let _ = engine.get(subscribers, rid)?;
                }
                Ok(())
            }
            // GET_NEW_DESTINATION — 10 %
            35..=44 => {
                let key = Self::cf_key(sub, 0, 8);
                if let Some(rid) = engine.index_lookup(cf_pk, key)? {
                    let _ = engine.get(call_fwd, rid)?;
                }
                Ok(())
            }
            // GET_ACCESS_DATA — 35 %
            45..=79 => {
                let rid = self.ai_rids[rng.gen_range(0..self.ai_rids.len())];
                let _ = engine.get(self.access_info.unwrap(), rid)?;
                Ok(())
            }
            // UPDATE_SUBSCRIBER_DATA — 2 %: bit_1 (1 B) + sf data (2 B)
            80..=81 => {
                let tx = engine.begin();
                if let Some(rid) = engine.index_lookup(sub_pk, sub)? {
                    let bytes = [rng.gen::<u8>() & 1, rng.gen(), rng.gen()];
                    engine.update_field(tx, subscribers, rid, BITS_OFF, &bytes)?;
                }
                engine.commit(tx)
            }
            // UPDATE_LOCATION — 14 %: vlr_location (4 B)
            82..=95 => {
                let tx = engine.begin();
                if let Some(rid) = engine.index_lookup(sub_pk, sub)? {
                    let mut bytes = [0u8; 4];
                    put_u32(&mut bytes, 0, rng.gen());
                    engine.update_field(tx, subscribers, rid, VLR_OFF, &bytes)?;
                }
                engine.commit(tx)
            }
            // INSERT_CALL_FORWARDING — 2 %
            96..=97 => {
                if self.cf_full {
                    return Ok(());
                }
                let key = Self::cf_key(sub, rng.gen_range(0..4), rng.gen_range(0..24));
                if self.cf_keys.contains(&key) {
                    return Ok(()); // spec: insert of existing key fails; no-op here
                }
                let tx = engine.begin();
                let mut row = vec![0u8; CF_ROW];
                put_u64(&mut row, 0, key);
                match engine.insert(tx, call_fwd, &row) {
                    Ok(rid) => {
                        engine.index_insert(tx, cf_pk, key, rid)?;
                        self.cf_keys.insert(key);
                        engine.commit(tx)
                    }
                    Err(StorageError::TableFull(_)) => {
                        self.cf_full = true;
                        engine.commit(tx)
                    }
                    Err(e) => {
                        engine.abort(tx)?;
                        Err(e)
                    }
                }
            }
            // DELETE_CALL_FORWARDING — 2 %
            _ => {
                // Find any live key for this subscriber (try the common one
                // first, then give up — the spec's miss rate is part of the
                // workload).
                let key = Self::cf_key(sub, 0, 8);
                if !self.cf_keys.contains(&key) {
                    return Ok(());
                }
                let tx = engine.begin();
                if let Some(rid) = engine.index_lookup(cf_pk, key)? {
                    engine.delete(tx, call_fwd, rid)?;
                    engine.index_delete(tx, cf_pk, key)?;
                    self.cf_keys.remove(&key);
                }
                engine.commit(tx)
            }
        }
    }

    fn read_fraction(&self) -> f64 {
        0.80
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_core::NmScheme;
    use ipa_flash::{DeviceConfig, DisturbRates, FlashMode, Geometry};
    use ipa_storage::EngineConfig;
    use rand::SeedableRng;

    #[test]
    fn load_and_mix() {
        let mut b = Tatp::new(1, 2048);
        let dc = DeviceConfig::new(Geometry::new(640, 32, 2048, 64), FlashMode::PSlc)
            .with_disturb(DisturbRates::none());
        let mut e = StorageEngine::build(
            dc,
            EngineConfig::default()
                .with_ipa(NmScheme::new(2, 4))
                .with_buffer_frames(64),
            &b.tables(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        b.load(&mut e, &mut rng).unwrap();
        for _ in 0..500 {
            b.run_tx(&mut e, &mut rng).unwrap();
        }
        e.flush_all().unwrap();
        let s = e.stats();
        // Read-dominated: reads far exceed writes.
        assert!(s.device.host_reads > s.device.total_host_writes());
        // The tiny updates produced in-place appends.
        assert!(s.device.in_place_appends > 0);
    }

    #[test]
    fn updates_persist() {
        let mut b = Tatp::new(1, 2048);
        let dc = DeviceConfig::new(Geometry::new(640, 32, 2048, 64), FlashMode::PSlc)
            .with_disturb(DisturbRates::none());
        let mut e = StorageEngine::build(
            dc,
            EngineConfig::default().with_ipa(NmScheme::new(2, 4)),
            &b.tables(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        b.load(&mut e, &mut rng).unwrap();
        for _ in 0..300 {
            b.run_tx(&mut e, &mut rng).unwrap();
        }
        e.restart_clean().unwrap();
        // Every subscriber row still resolves through the index.
        let sub_pk = e.table("sub_pk").unwrap();
        let subscribers = e.table("subscriber").unwrap();
        for s in (0..b.n_subs()).step_by(97) {
            let rid = e.index_lookup(sub_pk, s).unwrap().expect("subscriber");
            let row = e.get(subscribers, rid).unwrap();
            assert_eq!(crate::util::get_u64(&row, 0), s);
        }
    }
}
