//! The benchmark driver: load → warm up → measure, with deterministic
//! seeding and simulated-time throughput.
//!
//! Throughput follows the simulator's time model: the run takes as long as
//! the busier of the data/log devices, plus a fixed CPU cost per
//! transaction (the OpenSSD experiments are I/O-bound, so device time
//! dominates exactly as in the paper).

use rand::rngs::StdRng;
use rand::SeedableRng;

use ipa_controller::{ControllerConfig, ControllerStats, FlashController};
use ipa_core::NmScheme;
use ipa_flash::{DeviceConfig, DisturbRates, FlashMode, FlashStats, Geometry};
use ipa_ftl::{
    BlockDevice, DeviceStats, FtlConfig, IoRequest, ShardedFtl, StripePolicy, WriteStrategy,
};
use ipa_heat::{DefaultPolicy, HeatDevice, HeatStats};
use ipa_maint::{MaintConfig, MaintStats, MaintainedFtl};
use ipa_storage::{EngineConfig, NetBytesHistogram, PoolStats, Result, StorageEngine, TableKind};
use ipa_trace::{LatencyHistogram, MetricsSnapshot, RingRecorder, TraceEvent};

use crate::metrics::engine_metrics;
use crate::spec::{build, Benchmark, WorkloadKind};

/// Simulated per-transaction latency distribution (device time only; add
/// `cpu_ns_per_tx` for end-to-end figures).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyPercentiles {
    /// Samples the distribution was computed from.
    pub count: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    /// The deep-tail percentile queueing effects live in: a multi-client
    /// run with contended dies shows up here long before it moves p50.
    pub p999_ns: u64,
    pub max_ns: u64,
}

impl LatencyPercentiles {
    /// Compute from raw samples (sorted internally). An empty sample set —
    /// a client stream that never got a transaction in, a zero-length
    /// measurement window — yields all-zero percentiles rather than
    /// panicking.
    pub fn from_samples(mut samples: Vec<u64>) -> LatencyPercentiles {
        if samples.is_empty() {
            return LatencyPercentiles::default();
        }
        samples.sort_unstable();
        let at = |q: f64| samples[((samples.len() - 1) as f64 * q) as usize];
        LatencyPercentiles {
            count: samples.len() as u64,
            p50_ns: at(0.50),
            p95_ns: at(0.95),
            p99_ns: at(0.99),
            p999_ns: at(0.999),
            max_ns: *samples.last().unwrap(),
        }
    }

    /// Compute from a bounded log2 histogram — the long-soak path, where
    /// no exact sample buffer exists. Each percentile is the histogram's
    /// bucket-upper-bound estimate, clamped to the observed min/max, so
    /// it lands in the same log2 bucket as the exact-sample answer.
    pub fn from_histogram(h: &LatencyHistogram) -> LatencyPercentiles {
        if h.is_empty() {
            return LatencyPercentiles::default();
        }
        LatencyPercentiles {
            count: h.count(),
            p50_ns: h.percentile(0.50),
            p95_ns: h.percentile(0.95),
            p99_ns: h.percentile(0.99),
            p999_ns: h.percentile(0.999),
            max_ns: h.max(),
        }
    }
}

/// A controller topology for benchmark runs: how many channels and dies
/// the device spreads over, how many planes each die splits into, and
/// how LBAs stripe onto the dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    pub channels: u32,
    pub dies_per_channel: u32,
    /// Planes per die (multi-plane program pairing); 1 = classic dies.
    pub planes: u32,
    pub policy: StripePolicy,
}

impl Topology {
    pub fn new(channels: u32, dies_per_channel: u32, policy: StripePolicy) -> Self {
        Topology {
            channels,
            dies_per_channel,
            planes: 1,
            policy,
        }
    }

    /// The 1 × 1 baseline every sweep compares against.
    pub fn single() -> Self {
        Topology::new(1, 1, StripePolicy::RoundRobin)
    }

    /// Split every die into `planes` planes. Channels × dies are
    /// untouched, so a plane sweep varies per-die pairing alone.
    pub fn with_planes(mut self, planes: u32) -> Self {
        assert!(planes >= 1, "a die has at least one plane");
        self.planes = planes;
        self
    }

    #[inline]
    pub fn dies(&self) -> u32 {
        self.channels * self.dies_per_channel
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}ch×{}d/{}",
            self.channels,
            self.dies_per_channel,
            match self.policy {
                StripePolicy::RoundRobin => "rr",
                StripePolicy::Hash => "hash",
            }
        )?;
        if self.planes > 1 {
            write!(f, "×{}p", self.planes)?;
        }
        Ok(())
    }
}

/// Device maintenance policy for a benchmark run: whether low-water GC
/// runs inline with host writes or on the background scheduler, and the
/// controller's NCQ queue cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MaintMode {
    /// Defer low-water GC to an [`ipa_maint::MaintenanceScheduler`]
    /// dispatching reclaim steps onto idle dies.
    pub background_gc: bool,
    /// Per-die cap on posted host commands (NCQ depth); `None` leaves the
    /// queues unbounded.
    pub queue_cap: Option<usize>,
    /// Scheduler policy for the background mode (step budget, early
    /// refill margin). Ignored when `background_gc` is false.
    pub maint: MaintConfig,
    /// Latency-QoS scheduling on the controller
    /// ([`ControllerConfig::with_qos`]): short host reads jump queued
    /// programs and suspend in-flight erases. Off = FIFO reference
    /// timing.
    pub qos: bool,
}

impl MaintMode {
    /// The historic behaviour: inline GC, unbounded queues.
    pub fn inline() -> Self {
        MaintMode {
            background_gc: false,
            queue_cap: None,
            maint: MaintConfig::default(),
            qos: false,
        }
    }

    /// Background GC with an optional NCQ cap.
    pub fn background(queue_cap: Option<usize>) -> Self {
        MaintMode {
            background_gc: true,
            queue_cap,
            maint: MaintConfig::default(),
            qos: false,
        }
    }

    /// Inline GC, but with an NCQ cap (isolates the cap's effect).
    pub fn capped(queue_cap: usize) -> Self {
        MaintMode {
            background_gc: false,
            queue_cap: Some(queue_cap),
            maint: MaintConfig::default(),
            qos: false,
        }
    }

    /// Override the background scheduler's policy knobs.
    pub fn with_maint_config(mut self, maint: MaintConfig) -> Self {
        self.maint = maint;
        self
    }

    /// Enable latency-QoS scheduling (read promotion + erase suspend) on
    /// the controller.
    pub fn with_qos(mut self) -> Self {
        self.qos = true;
        self
    }
}

impl std::fmt::Display for MaintMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}",
            if self.background_gc { "bg" } else { "inline" },
            match self.queue_cap {
                Some(cap) => format!("q{cap}"),
                None => "q∞".into(),
            }
        )?;
        if self.qos {
            write!(f, "+qos")?;
        }
        Ok(())
    }
}

/// One client stream's view of a multi-client run.
#[derive(Debug, Clone)]
pub struct StreamLatency {
    /// Stream index (0-based).
    pub stream: u32,
    /// Transactions this stream committed in the measured window.
    pub transactions: u64,
    /// This stream's own latency distribution.
    pub latency: LatencyPercentiles,
}

/// Driver parameters.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Measured transactions.
    pub transactions: u64,
    /// Unmeasured warm-up transactions.
    pub warmup: u64,
    /// Workload RNG seed (same seed ⇒ identical run).
    pub seed: u64,
    /// CPU time modeled per transaction, nanoseconds.
    pub cpu_ns_per_tx: u64,
    /// Buffer-pool frames; `None` uses the paper-like default of a buffer
    /// far smaller than the working set (evictions dominate).
    pub buffer_frames: Option<usize>,
    /// When set, run until this much *simulated* time has elapsed in the
    /// measured window instead of a fixed transaction count — the paper's
    /// Table 1 methodology (fixed two-hour runs), which is what makes the
    /// faster system show *more* absolute I/O.
    pub simulated_duration_ns: Option<u64>,
    /// Concurrent client streams. 1 reproduces the classic single-client
    /// walk; K > 1 interleaves K independently-seeded transaction streams
    /// round-robin, so posted device work from one stream queues under the
    /// next — the condition that surfaces controller queueing in the
    /// latency tail.
    pub streams: u32,
    /// Buffer-pool read-ahead window (pages posted as one vectored read
    /// past a sequential miss); 0 disables read-ahead.
    pub readahead: usize,
    /// Stripe the WAL over its own `(channels, dies_per_channel)` SLC
    /// controller; `None` keeps the historic single-chip log device.
    pub wal_stripe: Option<(u32, u32)>,
    /// Commits per WAL flush; `None` keeps the loaded-multi-client
    /// default (32). Small values make the WAL the bottleneck — the
    /// configuration where striping the log pays.
    pub group_commit: Option<u32>,
    /// Attach a bounded ring recorder of this capacity to the data
    /// controller for the measured window; the retained events land in
    /// [`RunResult::trace`]. `None` runs untraced (zero cost).
    pub trace_capacity: Option<usize>,
    /// Keep read latencies only in the fixed-memory histogram (no exact
    /// per-read sample buffer) — the long-soak memory bound.
    /// [`RunResult::read_latency`] then comes from the histogram.
    pub bounded_latency: bool,
    /// Draw benchmark primary keys Zipf(θ)-skewed instead of uniformly
    /// (via [`Benchmark::set_key_skew`]); `None` keeps each benchmark's
    /// native distribution.
    pub zipf_theta: Option<f64>,
    /// Mount the device behind an [`ipa_heat::HeatDevice`] with this
    /// placement policy: hot ranges absorb into the SLC tier and the
    /// maintenance scheduler runs destage/wear-shifting jobs. Implies
    /// background GC.
    pub heat: Option<DefaultPolicy>,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            transactions: 10_000,
            warmup: 1_000,
            seed: 0x7C_B5EED,
            cpu_ns_per_tx: 30_000,
            buffer_frames: None,
            simulated_duration_ns: None,
            streams: 1,
            readahead: 0,
            wal_stripe: None,
            group_commit: None,
            trace_capacity: None,
            bounded_latency: false,
            zipf_theta: None,
            heat: None,
        }
    }
}

impl DriverConfig {
    pub fn quick() -> Self {
        DriverConfig {
            transactions: 2_000,
            warmup: 200,
            ..Default::default()
        }
    }

    pub fn with_transactions(mut self, n: u64) -> Self {
        self.transactions = n;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Run for a fixed simulated duration (Table 1 style).
    pub fn for_simulated_secs(mut self, secs: f64) -> Self {
        self.simulated_duration_ns = Some((secs * 1e9) as u64);
        self
    }

    /// Issue transactions from `n` interleaved client streams.
    pub fn with_streams(mut self, n: u32) -> Self {
        assert!(n >= 1, "at least one client stream");
        self.streams = n;
        self
    }

    /// Enable stripe-aware read-ahead with the given window.
    pub fn with_readahead(mut self, window: usize) -> Self {
        self.readahead = window;
        self
    }

    /// Stripe the WAL over a `channels × dies_per_channel` controller.
    pub fn with_wal_stripe(mut self, channels: u32, dies_per_channel: u32) -> Self {
        self.wal_stripe = Some((channels, dies_per_channel));
        self
    }

    /// Override commits-per-WAL-flush (1 = flush on every commit).
    pub fn with_group_commit(mut self, group: u32) -> Self {
        assert!(group >= 1);
        self.group_commit = Some(group);
        self
    }

    /// Record the measured window's command lifecycle into a ring of at
    /// most `capacity` events ([`RunResult::trace`]).
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Bound read-latency memory to the log2 histogram (no exact sample
    /// buffer) — required for unbounded soaks.
    pub fn with_bounded_latency(mut self) -> Self {
        self.bounded_latency = true;
        self
    }

    /// Skew benchmark key draws Zipf(θ).
    pub fn with_zipf_theta(mut self, theta: f64) -> Self {
        assert!(theta >= 0.0 && theta.is_finite(), "theta must be ≥ 0");
        self.zipf_theta = Some(theta);
        self
    }

    /// Mount the heat-placement device with this policy.
    pub fn with_heat(mut self, policy: DefaultPolicy) -> Self {
        self.heat = Some(policy);
        self
    }
}

/// Everything a bench table needs about one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub benchmark: String,
    pub strategy: WriteStrategy,
    pub scheme: NmScheme,
    pub mode: FlashMode,
    pub transactions: u64,
    /// Simulated wall time of the measured window, nanoseconds.
    pub elapsed_ns: u64,
    /// Committed transactions per simulated second.
    pub tps: f64,
    /// Device counters over the measured window.
    pub device: DeviceStats,
    /// Log-device counters over the measured window (`None` when the
    /// engine runs without a WAL). `wal_stripe_writes` lives here.
    pub wal_device: Option<DeviceStats>,
    /// Raw flash counters over the measured window.
    pub flash: FlashStats,
    /// Buffer-pool counters (whole run).
    pub pool: PoolStats,
    /// Net modified bytes per dirty eviction (whole run, if measured).
    pub net_bytes: NetBytesHistogram,
    /// Peak block wear at the end of the run.
    pub max_erase_count: u32,
    /// Raw erase blocks of the device (for per-silicon wear comparisons).
    pub raw_blocks: u32,
    /// Per-transaction simulated device-time distribution (all streams).
    pub latency: LatencyPercentiles,
    /// Per-*read* device latency over the measured window (submit→done
    /// of host-visible synchronous reads at the controller) — the QoS
    /// SLO metric; `p999_ns` here is the sweep's `p999_read_ns` column.
    /// All-zero when the device has no controller.
    pub read_latency: LatencyPercentiles,
    /// Per-stream distributions; one entry per client stream when the run
    /// used `DriverConfig::streams > 1`, empty for single-client runs.
    pub per_stream: Vec<StreamLatency>,
    /// Scheduler counters (whole run), when the device is a multi-channel
    /// controller.
    pub controller: Option<ControllerStats>,
    /// Background-maintenance counters, when the device runs GC on the
    /// idle-die scheduler ([`Driver::run_maintained`]).
    pub maint: Option<MaintStats>,
    /// Heat-placement counters, when the run mounted the device behind a
    /// [`HeatDevice`] ([`DriverConfig::with_heat`]).
    pub heat: Option<HeatStats>,
    /// Host-read latency histogram over the measured window (always
    /// populated on controller devices; the only latency record in
    /// [`DriverConfig::bounded_latency`] mode).
    pub read_latency_hist: LatencyHistogram,
    /// Command lifecycle events retained by the measured window's ring
    /// recorder; empty unless [`DriverConfig::trace_capacity`] was set.
    pub trace: Vec<TraceEvent>,
    /// Events the ring evicted (0 = the trace is complete).
    pub trace_dropped: u64,
    /// The unified metrics tree at end of run (whole-run totals; window
    /// with [`MetricsSnapshot::delta_since`] against another snapshot).
    pub metrics: MetricsSnapshot,
}

impl RunResult {
    /// Table 1's "Page Migrations per Host Write".
    pub fn migrations_per_host_write(&self) -> f64 {
        self.device.migrations_per_host_write()
    }

    /// Table 1's "GC Erases per Host Write".
    pub fn erases_per_host_write(&self) -> f64 {
        self.device.erases_per_host_write()
    }

    /// Page programs (first-time + in-place) per simulated second — the
    /// plane-scaling sweep's program-bandwidth metric.
    pub fn programs_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.flash.total_programs() as f64 / (self.elapsed_ns as f64 / 1e9)
        }
    }

    /// Per-stream (per-tenant) deep-tail latencies, stream-indexed. Empty
    /// for single-client runs.
    pub fn per_stream_p999_ns(&self) -> Vec<u64> {
        self.per_stream.iter().map(|s| s.latency.p999_ns).collect()
    }

    /// Cross-stream p99.9 fairness: the max/min ratio of per-stream deep
    /// tails ([`fairness_spread`]). 1.0 = perfectly fair.
    pub fn p999_spread(&self) -> f64 {
        fairness_spread(&self.per_stream_p999_ns())
    }
}

/// Cross-client fairness of a set of per-client p99.9 latencies: the
/// max/min ratio over the clients that *measured anything*. 1.0 is
/// perfect fairness; a starved-but-measuring client drives the ratio up.
///
/// A zero tail means the stream recorded no reads at all (a write-only
/// tenant, or a round too short to sample) — not an infinitely fast one —
/// so zero entries are excluded instead of poisoning the ratio with a
/// zero denominator (the old behaviour returned `inf`, which any
/// `spread < threshold` assertion silently converts into a guaranteed
/// failure, and one sample plus rounding could produce NaN). An empty
/// set, or a set with no measuring streams, reports 1.0.
pub fn fairness_spread(p999s: &[u64]) -> f64 {
    let measured = p999s.iter().copied().filter(|&p| p > 0);
    let Some(max) = measured.clone().max() else {
        return 1.0;
    };
    let min = measured.min().unwrap();
    max as f64 / min as f64
}

/// One sequential-scan measurement (the read-ahead experiment).
#[derive(Debug, Clone, Copy)]
pub struct ScanResult {
    /// Pages fetched by the pool during the scan (pool misses).
    pub pages: u64,
    /// Simulated time of the scan window, nanoseconds.
    pub elapsed_ns: u64,
    /// Fetches served from posted read-ahead completions.
    pub readahead_hits: u64,
    /// Vectored read submissions the pool posted.
    pub vectored_reads: u64,
}

impl ScanResult {
    /// Scanned pages per simulated second.
    pub fn pages_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.pages as f64 / (self.elapsed_ns as f64 / 1e9)
        }
    }
}

/// The driver.
pub struct Driver;

impl Driver {
    /// Load the benchmark into the engine and run the measured window.
    pub fn run(
        bench: &mut dyn Benchmark,
        engine: &mut StorageEngine,
        cfg: &DriverConfig,
    ) -> Result<RunResult> {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        bench.set_key_skew(cfg.zipf_theta);
        bench.load(engine, &mut rng)?;

        for _ in 0..cfg.warmup {
            bench.run_tx(engine, &mut rng)?;
        }
        engine.flush_all()?;

        // Stream 0 continues the warm-up RNG (identical to the historic
        // single-client behaviour); extra streams get derived seeds.
        let streams = cfg.streams.max(1) as usize;
        let mut stream_rngs: Vec<StdRng> = Vec::with_capacity(streams);
        stream_rngs.push(rng);
        for s in 1..streams {
            stream_rngs.push(StdRng::seed_from_u64(
                cfg.seed ^ (s as u64).wrapping_mul(0xA24B_AED4_963E_E407),
            ));
        }

        let before = engine.stats();
        let ctrl = Self::controller_of(engine);
        if cfg.bounded_latency {
            if let Some(c) = &ctrl {
                c.set_bounded_read_latencies(true);
            }
        }
        // Read-latency samples accumulated before the measured window
        // (load + warm-up) are excluded by remembering the cursor; the
        // histogram is windowed the same way via a snapshot + delta.
        let read_lat_cursor = ctrl.as_ref().map(|c| c.read_latency_count()).unwrap_or(0);
        let hist_before = ctrl
            .as_ref()
            .map(|c| c.read_latency_histogram())
            .unwrap_or_default();
        let recorder = cfg.trace_capacity.and_then(|cap| {
            ctrl.as_ref().map(|c| {
                let rec = std::sync::Arc::new(std::sync::Mutex::new(RingRecorder::new(cap)));
                let sink: ipa_trace::SharedSink = rec.clone();
                c.set_tracer(sink);
                rec
            })
        });
        let mut committed: u64 = 0;
        let mut samples: Vec<u64> = Vec::with_capacity(4096);
        let mut stream_samples: Vec<Vec<u64>> = vec![Vec::new(); streams];
        let mut stream_clock_span: u64 = 0;
        if streams == 1 {
            // The historic single-client walk: one thread, every device
            // wait on the critical path, CPU cost strictly serial.
            loop {
                match cfg.simulated_duration_ns {
                    Some(limit) => {
                        let device_ns = engine.stats().elapsed_ns - before.elapsed_ns;
                        if device_ns + committed * cfg.cpu_ns_per_tx >= limit {
                            break;
                        }
                    }
                    None => {
                        if committed >= cfg.transactions {
                            break;
                        }
                    }
                }
                let t0 = engine.stats().elapsed_ns;
                bench.run_tx(engine, &mut stream_rngs[0])?;
                samples.push(engine.stats().elapsed_ns - t0);
                committed += 1;
            }
        } else {
            // Multi-client: every stream keeps its own logical clock (its
            // thread's "now", including per-transaction CPU time). The
            // next transaction always comes from the earliest-clock stream
            // — the client that would reach the device first — and its
            // commands are submitted at that instant, so reads from
            // different streams overlap while contended dies and channels
            // still queue. A stream's latency sample is the device-time
            // advance of its own clock — waits included, queueing behind
            // other streams' posted work included, CPU excluded — the same
            // quantity the single-client path samples.
            let start_ns = engine.pool().device().submission_clock_ns();
            let mut clocks = vec![start_ns; streams];
            loop {
                let virtual_now = *clocks.iter().max().unwrap();
                match cfg.simulated_duration_ns {
                    Some(limit) => {
                        if virtual_now - start_ns >= limit {
                            break;
                        }
                    }
                    None => {
                        if committed >= cfg.transactions {
                            break;
                        }
                    }
                }
                let s = (0..streams)
                    .min_by_key(|&i| clocks[i])
                    .expect("streams >= 1");
                engine
                    .pool_mut()
                    .device_mut()
                    .set_submission_clock_ns(clocks[s]);
                bench.run_tx(engine, &mut stream_rngs[s])?;
                let device_done = engine.pool().device().submission_clock_ns();
                let dt = device_done - clocks[s];
                // CPU advances the stream's clock (it gates when this
                // client can submit again) but is not device latency.
                clocks[s] = device_done + cfg.cpu_ns_per_tx;
                samples.push(dt);
                stream_samples[s].push(dt);
                committed += 1;
            }
            stream_clock_span = clocks.iter().max().unwrap() - start_ns;
        }
        engine.flush_all()?;
        let after = engine.stats();

        // Detach the recorder before results are built so the trace ends
        // with the measured window, then take its retained events.
        let (trace, trace_dropped) = match &recorder {
            Some(rec) => {
                if let Some(c) = &ctrl {
                    c.clear_tracer();
                }
                let rec = rec
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                (rec.to_vec(), rec.dropped())
            }
            None => (Vec::new(), 0),
        };
        let read_latency_hist = ctrl
            .as_ref()
            .map(|c| c.read_latency_histogram())
            .unwrap_or_default()
            .delta_since(&hist_before);

        let per_stream = if streams > 1 {
            stream_samples
                .into_iter()
                .enumerate()
                .map(|(s, samples)| StreamLatency {
                    stream: s as u32,
                    transactions: samples.len() as u64,
                    latency: LatencyPercentiles::from_samples(samples),
                })
                .collect()
        } else {
            Vec::new()
        };

        let device_ns = after.elapsed_ns - before.elapsed_ns;
        let elapsed_ns = if streams == 1 {
            device_ns + committed * cfg.cpu_ns_per_tx
        } else {
            // Client CPU time is already inside the stream clocks and runs
            // concurrently across streams; the run takes as long as the
            // busier of "last client done" and "device (incl. posted
            // background work and the WAL) done".
            device_ns.max(stream_clock_span)
        };
        let tps = committed as f64 / (elapsed_ns as f64 / 1e9);

        Ok(RunResult {
            benchmark: bench.name().to_string(),
            strategy: engine.config().strategy,
            scheme: engine.config().scheme,
            mode: FlashMode::Slc, // callers overwrite via run_configured
            transactions: committed,
            elapsed_ns,
            tps,
            device: after.device.delta_since(&before.device),
            wal_device: after
                .wal_device
                .zip(before.wal_device)
                .map(|(now, then)| now.delta_since(&then)),
            flash: after.flash.delta_since(&before.flash),
            pool: after.pool,
            net_bytes: after.pool.net_bytes,
            max_erase_count: after.max_erase_count,
            raw_blocks: engine.pool().device().raw_blocks(),
            latency: LatencyPercentiles::from_samples(samples),
            read_latency: match &ctrl {
                Some(c) if !cfg.bounded_latency => {
                    LatencyPercentiles::from_samples(c.read_latencies()[read_lat_cursor..].to_vec())
                }
                Some(_) => LatencyPercentiles::from_histogram(&read_latency_hist),
                None => LatencyPercentiles::default(),
            },
            per_stream,
            controller: engine.pool().device().controller_stats(),
            maint: engine
                .device_as::<MaintainedFtl>()
                .map(MaintainedFtl::maint_stats)
                .or_else(|| {
                    engine
                        .device_as::<HeatDevice>()
                        .map(HeatDevice::maint_stats)
                }),
            heat: engine.device_as::<HeatDevice>().map(HeatDevice::heat_stats),
            read_latency_hist,
            trace,
            trace_dropped,
            metrics: engine_metrics(engine),
        })
    }

    /// The controller behind the engine's device, whichever wrapper it
    /// sits under (`HeatDevice`, `MaintainedFtl` or a bare `ShardedFtl`).
    /// `None` for single-chip devices.
    pub fn controller_of(engine: &StorageEngine) -> Option<std::sync::Arc<FlashController>> {
        if let Some(h) = engine.device_as::<HeatDevice>() {
            return Some(std::sync::Arc::clone(h.inner().inner().controller()));
        }
        if let Some(m) = engine.device_as::<MaintainedFtl>() {
            return Some(std::sync::Arc::clone(m.inner().controller()));
        }
        engine
            .device_as::<ShardedFtl>()
            .map(|s| std::sync::Arc::clone(s.controller()))
    }

    /// One-call experiment: build the benchmark, size a device for it,
    /// build the engine, run.
    ///
    /// The device is sized from the benchmark's table budget with ~40 %
    /// headroom (over-provisioning + GC room), mirroring a mostly-full SSD
    /// as in the paper's two-hour runs.
    pub fn run_configured(
        kind: WorkloadKind,
        scale: u32,
        strategy: WriteStrategy,
        scheme: NmScheme,
        mode: FlashMode,
        cfg: &DriverConfig,
    ) -> Result<RunResult> {
        let page_size = 8 * 1024;
        let mut bench = build(kind, scale, page_size);
        let mut engine = Self::make_engine(
            bench.as_mut(),
            strategy,
            scheme,
            mode,
            page_size,
            cfg.buffer_frames,
        )?;
        let mut result = Self::run(bench.as_mut(), &mut engine, cfg)?;
        result.mode = mode;
        Ok(result)
    }

    /// [`Driver::run_configured`] over a die-striped device: same
    /// benchmark sizing, but the blocks are spread across a
    /// `channels × dies_per_channel` controller topology. Combine with
    /// `cfg.streams > 1` so queueing effects reach the latency tail.
    pub fn run_sharded(
        kind: WorkloadKind,
        scale: u32,
        strategy: WriteStrategy,
        scheme: NmScheme,
        mode: FlashMode,
        topology: Topology,
        cfg: &DriverConfig,
    ) -> Result<RunResult> {
        Self::run_maintained(
            kind,
            scale,
            strategy,
            scheme,
            mode,
            topology,
            MaintMode::inline(),
            cfg,
        )
    }

    /// [`Driver::run_sharded`] with an explicit [`MaintMode`]: an NCQ
    /// queue cap on the controller and, when `maint.background_gc`, the
    /// idle-die maintenance scheduler in place of inline low-water GC.
    #[allow(clippy::too_many_arguments)]
    pub fn run_maintained(
        kind: WorkloadKind,
        scale: u32,
        strategy: WriteStrategy,
        scheme: NmScheme,
        mode: FlashMode,
        topology: Topology,
        maint: MaintMode,
        cfg: &DriverConfig,
    ) -> Result<RunResult> {
        let page_size = 8 * 1024;
        let mut bench = build(kind, scale, page_size);
        let mut engine = Self::make_maintained_engine(
            bench.as_mut(),
            strategy,
            scheme,
            mode,
            page_size,
            topology,
            maint,
            cfg,
        )?;
        let mut result = Self::run(bench.as_mut(), &mut engine, cfg)?;
        result.mode = mode;
        Ok(result)
    }

    /// [`Driver::make_sharded_engine`] under a [`MaintMode`]: same device
    /// sizing and striping, with the queue cap applied to the controller
    /// and — for background GC — the shards configured to defer low-water
    /// reclaim to a [`MaintainedFtl`] wrapper around the stripe. The
    /// driver config supplies the host-side tuning: buffer frames,
    /// read-ahead window, WAL striping and group-commit depth.
    #[allow(clippy::too_many_arguments)]
    pub fn make_maintained_engine(
        bench: &mut dyn Benchmark,
        strategy: WriteStrategy,
        scheme: NmScheme,
        mode: FlashMode,
        page_size: usize,
        topology: Topology,
        maint: MaintMode,
        cfg: &DriverConfig,
    ) -> Result<StorageEngine> {
        let tables = bench.tables();
        let pages_needed: u64 = tables.iter().map(|t| t.pages).sum();
        let ppb = 128u32;
        let usable_ppb = mode.usable_pages_per_block(ppb) as u64;
        let dies = topology.dies() as u64;
        let blocks_per_die = (((pages_needed * 14 / 10).div_ceil(usable_ppb * dies)) as u32 + 8)
            .next_multiple_of(topology.planes);
        let chip = DeviceConfig::new(
            Geometry::new(blocks_per_die, ppb, page_size, 128).with_planes(topology.planes),
            mode,
        );
        let mut controller =
            ControllerConfig::new(topology.channels, topology.dies_per_channel, chip);
        if let Some(cap) = maint.queue_cap {
            controller = controller.with_queue_cap(cap);
        }
        if maint.qos {
            controller = controller.with_qos();
        }

        let frames = cfg.buffer_frames.unwrap_or(32);
        let mut config = if strategy.needs_layout() {
            EngineConfig::default().with_strategy(strategy, scheme)
        } else {
            EngineConfig::default()
        }
        .with_buffer_frames(frames)
        .with_group_commit(cfg.group_commit.unwrap_or(32));
        if cfg.readahead > 0 {
            config = config.with_readahead(cfg.readahead);
        }
        if let Some((wal_ch, wal_dies)) = cfg.wal_stripe {
            config = config.with_striped_wal(wal_ch, wal_dies);
        }
        let policy = topology.policy;
        let heat = cfg.heat.clone();
        StorageEngine::build_with_device(page_size, config, &tables, move |regions, ftl_config| {
            if let Some(placement) = heat {
                // Heat placement needs the scheduler, so it always runs
                // with deferred (background) GC.
                let ftl_config = ftl_config.with_background_gc();
                let striped = ShardedFtl::with_regions(controller, ftl_config, policy, regions);
                Box::new(HeatDevice::new(
                    MaintainedFtl::new(striped, maint.maint),
                    Box::new(placement),
                ))
            } else if maint.background_gc {
                let ftl_config = ftl_config.with_background_gc();
                let striped = ShardedFtl::with_regions(controller, ftl_config, policy, regions);
                Box::new(MaintainedFtl::new(striped, maint.maint))
            } else {
                Box::new(ShardedFtl::with_regions(
                    controller, ftl_config, policy, regions,
                ))
            }
        })
    }

    /// Build an engine whose device is a [`ShardedFtl`] over the given
    /// topology. Total raw capacity matches the single-chip sizing of
    /// [`Driver::make_engine`] (the same ~40 % headroom divided across the
    /// dies), plus a per-die GC reserve — so a topology sweep varies
    /// *parallelism*, not usable space. Exactly
    /// [`Driver::make_maintained_engine`] under [`MaintMode::inline`],
    /// so the maintenance sweeps compare like-for-like devices.
    pub fn make_sharded_engine(
        bench: &mut dyn Benchmark,
        strategy: WriteStrategy,
        scheme: NmScheme,
        mode: FlashMode,
        page_size: usize,
        topology: Topology,
        cfg: &DriverConfig,
    ) -> Result<StorageEngine> {
        Self::make_maintained_engine(
            bench,
            strategy,
            scheme,
            mode,
            page_size,
            topology,
            MaintMode::inline(),
            cfg,
        )
    }

    /// One-call read-ahead experiment: build a striped engine for
    /// `kind`, load it, then run [`Driver::sequential_scan`] over its
    /// largest heap table. `cfg.readahead` decides whether the pool
    /// prefetches — run it at 0 and again at a window to measure the
    /// all-channels-scan win.
    pub fn run_scan(
        kind: WorkloadKind,
        scale: u32,
        topology: Topology,
        passes: u32,
        cfg: &DriverConfig,
    ) -> Result<ScanResult> {
        let page_size = 8 * 1024;
        let mut bench = build(kind, scale, page_size);
        let mut engine = Self::make_sharded_engine(
            bench.as_mut(),
            WriteStrategy::Traditional,
            NmScheme::disabled(),
            FlashMode::PSlc,
            page_size,
            topology,
            cfg,
        )?;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        bench.load(&mut engine, &mut rng)?;
        engine.flush_all()?;
        // Scan the biggest *populated* heap table (budgeted-but-empty
        // append targets like TPC-B's history don't make a scan).
        let table = bench
            .tables()
            .into_iter()
            .filter(|t| t.kind == TableKind::Heap)
            .max_by_key(|t| {
                engine
                    .table(&t.name)
                    .map(|id| engine.table_info(id).allocated_pages)
                    .unwrap_or(0)
            })
            .expect("benchmark has a heap table")
            .name;
        Self::sequential_scan(&mut engine, &table, passes)
    }

    /// Cold sequential scan of `table`, end to end, `passes` times, with
    /// the cache dropped between passes so every page is fetched from
    /// flash — the read-ahead experiment's measured window. With
    /// read-ahead enabled the pool posts neighbour fetches as vectored
    /// reads, so a round-robin-striped table streams off all channels at
    /// once; without it every page pays its sense + transfer serially.
    pub fn sequential_scan(
        engine: &mut StorageEngine,
        table: &str,
        passes: u32,
    ) -> Result<ScanResult> {
        let t = engine.table(table)?;
        let before = engine.stats();
        // Measure the data device's own horizon: a scan writes nothing,
        // so the engine-level max(data, wal) clock would hide it behind
        // log time from the load phase.
        let device_t0 = engine.pool().device().elapsed_ns();
        for _ in 0..passes {
            engine.restart_clean()?;
            engine.scan(t, |_, _| {})?;
        }
        let after = engine.stats();
        let device = after.device.delta_since(&before.device);
        Ok(ScanResult {
            pages: after.pool.misses - before.pool.misses,
            elapsed_ns: engine.pool().device().elapsed_ns() - device_t0,
            readahead_hits: device.readahead_hits,
            vectored_reads: device.vectored_reads,
        })
    }

    /// Build an engine with a device sized for the benchmark.
    pub fn make_engine(
        bench: &mut dyn Benchmark,
        strategy: WriteStrategy,
        scheme: NmScheme,
        mode: FlashMode,
        page_size: usize,
        buffer_frames: Option<usize>,
    ) -> Result<StorageEngine> {
        let tables = bench.tables();
        let pages_needed: u64 = tables.iter().map(|t| t.pages).sum();
        let ppb = 128u32;
        let usable_ppb = mode.usable_pages_per_block(ppb) as u64;
        let blocks = (pages_needed * 14 / 10 / usable_ppb + 8) as u32;
        let device = DeviceConfig::new(Geometry::new(blocks, ppb, page_size, 128), mode);

        // Buffer-constrained by default, like the paper's runs: the hot
        // update set does not fit, so dirty pages are evicted with only a
        // handful of accumulated byte changes each — the condition that
        // makes the N×M scheme effective.
        let frames = buffer_frames.unwrap_or(32);
        // Group commit of 32 models the loaded multi-client system the
        // paper benchmarks (Shore-MT runs many worker threads; per-commit
        // log flushes amortize across the group).
        let config = if strategy.needs_layout() {
            EngineConfig::default()
                .with_strategy(strategy, scheme)
                .with_buffer_frames(frames)
                .with_group_commit(32)
        } else {
            EngineConfig::default()
                .with_buffer_frames(frames)
                .with_group_commit(32)
        };
        StorageEngine::build(device, config, &tables)
    }
}

/// Parameters of a [`Driver::run_threaded`] churn run.
///
/// The workload is defined by `streams`, not by `threads`: a fixed set of
/// `streams` logical clients, each owning a disjoint die-affine LBA
/// window on a standalone striped device and executing a deterministic
/// per-stream op sequence. `threads` only decides how many OS threads
/// the streams are distributed over — so any two runs with equal
/// `streams` (and the rest of the config equal) end in the same logical
/// state and the same host-op counters, whatever the thread count or OS
/// scheduling. That is the threaded determinism wall.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedConfig {
    /// OS threads submitting concurrently. 1 = the serial reference.
    pub threads: u32,
    /// Logical client streams (the workload's identity). Must be ≥ 1;
    /// distributed round-robin over the threads.
    pub streams: u32,
    /// Ops per stream (3 writes : 1 read).
    pub ops_per_stream: u64,
    /// Slots (distinct LBAs) in each stream's private window.
    pub window: u64,
    /// Workload and device RNG seed.
    pub seed: u64,
    /// Shared-device topology. Round-robin striping makes the per-stream
    /// windows die-affine (streams ≤ dies ⇒ zero die-lock contention).
    pub topology: Topology,
    /// Latency-QoS scheduling on the shared controller.
    pub qos: bool,
    /// NCQ cap on the shared controller.
    pub queue_cap: Option<usize>,
    /// Device page size, bytes.
    pub page_size: usize,
    /// Bounded read-latency accounting (the long-soak default). Opt out
    /// only to use the exact sample buffer as an oracle.
    pub bounded_latency: bool,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            threads: 1,
            streams: 8,
            ops_per_stream: 1_500,
            window: 48,
            seed: 0x7C_B5EED,
            topology: Topology::new(4, 2, StripePolicy::RoundRobin),
            qos: false,
            queue_cap: None,
            page_size: 2048,
            bounded_latency: true,
        }
    }
}

impl ThreadedConfig {
    pub fn with_threads(mut self, threads: u32) -> Self {
        assert!(threads >= 1, "at least one submitting thread");
        self.threads = threads;
        self
    }
}

/// What a [`Driver::run_threaded`] run measured.
#[derive(Debug, Clone)]
pub struct ThreadedRunResult {
    /// OS threads that submitted.
    pub threads: u32,
    /// Logical streams executed.
    pub streams: u32,
    /// Host ops submitted (writes + reads, digest pass excluded).
    pub ops: u64,
    /// Host wall-clock time of the submission phase, nanoseconds.
    pub wall_ns: u64,
    /// Simulated device horizon after the final sync, nanoseconds.
    pub sim_ns: u64,
    /// FNV-1a digest over the final logical contents of every stream
    /// window, read back in canonical (stream, slot) order. Equal digests
    /// ⇒ identical host-visible final state.
    pub logical_digest: u64,
    /// Device counters at the end of the submission phase.
    pub device: DeviceStats,
}

impl ThreadedRunResult {
    /// Simulated host ops retired per second of *host wall-clock* — the
    /// harness-throughput figure the threads-scaling sweep reports.
    pub fn wall_ops_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.ops as f64 / (self.wall_ns as f64 / 1e9)
        }
    }
}

impl Driver {
    /// Multi-threaded churn over one shared [`ShardedFtl`]: `threads` OS
    /// threads drive `streams` deterministic client streams concurrently
    /// through the device's queued face ([`ipa_ftl::IoQueue`] semantics
    /// via the `&self` submit/poll API). Each stream owns a private LBA
    /// window (die-affine under round-robin striping), keeps a model of
    /// what it wrote, and verifies every read against it — so the run is
    /// itself a wall, not just a throughput meter.
    ///
    /// Timing-independent outputs (`logical_digest`, host-op counters in
    /// `device`) depend only on `cfg.streams` and the per-stream
    /// sequences — never on `cfg.threads`; `tests/threaded_parity.rs`
    /// holds that equivalence. Timing-dependent counters (GC, queue
    /// waits, latencies) legitimately vary with interleaving when
    /// several streams share a die.
    pub fn run_threaded(cfg: &ThreadedConfig) -> ThreadedRunResult {
        use rand::Rng as _;
        assert!(cfg.threads >= 1 && cfg.streams >= 1);
        let topo = cfg.topology;
        let dies = topo.dies() as u64;
        let ranks = (cfg.streams as u64).div_ceil(dies);

        // Size the device for every stream's window plus GC headroom.
        let ppb = 32u32;
        let usable_ppb = FlashMode::Slc.usable_pages_per_block(ppb) as u64;
        let subs_per_die = ranks * cfg.window;
        let blocks_per_die = ((subs_per_die * 14 / 10).div_ceil(usable_ppb) as u32 + 8)
            .max(12)
            .next_multiple_of(topo.planes);
        let chip = DeviceConfig::new(
            Geometry::new(blocks_per_die, ppb, cfg.page_size, 64).with_planes(topo.planes),
            FlashMode::Slc,
        )
        .with_disturb(DisturbRates::none())
        .with_seed(cfg.seed);
        let mut controller = ControllerConfig::new(topo.channels, topo.dies_per_channel, chip);
        if let Some(cap) = cfg.queue_cap {
            controller = controller.with_queue_cap(cap);
        }
        if cfg.qos {
            controller = controller.with_qos();
        }
        let dev = std::sync::Arc::new(ShardedFtl::new(
            controller,
            FtlConfig::traditional(),
            topo.policy,
        ));
        dev.controller()
            .set_bounded_read_latencies(cfg.bounded_latency);
        assert!(
            ranks * cfg.window * dies <= dev.capacity_pages(),
            "threaded windows exceed device capacity"
        );

        // Stream s owns slots {(rank·window + slot)·dies + die} with
        // die = s mod dies, rank = s div dies: disjoint by construction,
        // and exactly one round-robin die per stream.
        let lba_of = |s: u64, slot: u64| ((s / dies) * cfg.window + slot) * dies + (s % dies);

        let run_stream = |s: u64| {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ (s).wrapping_mul(0xA24B_AED4_963E_E407));
            let mut model: std::collections::HashMap<u64, u8> = Default::default();
            let mut buf = vec![0u8; cfg.page_size];
            for i in 0..cfg.ops_per_stream {
                let slot = rng.gen_range(0..cfg.window);
                let lba = lba_of(s, slot);
                if i % 4 == 3 && model.contains_key(&slot) {
                    // Point read on the priority lane, checked against
                    // the stream's own model (read-your-writes holds per
                    // LBA whatever the cross-stream interleaving).
                    dev.read_shared(lba, &mut buf)
                        .expect("modelled slot must read back");
                    let want = model[&slot];
                    assert!(
                        buf.iter().all(|&b| b == want),
                        "stream {s}: slot {slot} returned foreign data"
                    );
                } else {
                    let fill = ((s * 131 + slot * 31 + i) % 251) as u8;
                    let token = dev
                        .submit_io(IoRequest::WriteV(vec![(lba, vec![fill; cfg.page_size])]))
                        .expect("write submits");
                    dev.poll_io_checked(token).expect("fresh token completes");
                    model.insert(slot, fill);
                }
            }
        };

        let wall_start = std::time::Instant::now();
        std::thread::scope(|scope| {
            for t in 0..cfg.threads {
                let run_stream = &run_stream;
                scope.spawn(move || {
                    for s in (t..cfg.streams).step_by(cfg.threads as usize) {
                        run_stream(s as u64);
                    }
                });
            }
        });
        let wall_ns = wall_start.elapsed().as_nanos() as u64;
        let sim_ns = dev.sync();
        let device = dev.device_stats();

        // Canonical read-back digest of the final logical state. Runs
        // after the stats snapshot so the digest pass never perturbs the
        // counters the parity wall compares.
        let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fnv = |byte: u8| {
            digest ^= byte as u64;
            digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
        };
        let mut buf = vec![0u8; cfg.page_size];
        for s in 0..cfg.streams as u64 {
            for slot in 0..cfg.window {
                let lba = lba_of(s, slot);
                if dev.is_mapped(lba) {
                    dev.read_shared(lba, &mut buf).expect("mapped page reads");
                    for &b in &buf {
                        fnv(b);
                    }
                } else {
                    fnv(0xFF);
                }
            }
        }
        dev.check_invariants();

        ThreadedRunResult {
            threads: cfg.threads,
            streams: cfg.streams,
            ops: cfg.streams as u64 * cfg.ops_per_stream,
            wall_ns,
            sim_ns,
            logical_digest: digest,
            device,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_tpcb_run_all_strategies() {
        let cfg = DriverConfig {
            transactions: 300,
            warmup: 50,
            ..Default::default()
        };
        let trad = Driver::run_configured(
            WorkloadKind::TpcB,
            1,
            WriteStrategy::Traditional,
            NmScheme::disabled(),
            FlashMode::PSlc,
            &cfg,
        )
        .unwrap();
        let native = Driver::run_configured(
            WorkloadKind::TpcB,
            1,
            WriteStrategy::IpaNative,
            NmScheme::new(2, 4),
            FlashMode::PSlc,
            &cfg,
        )
        .unwrap();
        assert_eq!(trad.transactions, 300);
        assert!(trad.tps > 0.0);
        assert!(native.device.in_place_appends > 0);
        assert!(
            native.device.page_invalidations <= trad.device.page_invalidations,
            "IPA should not invalidate more"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = DriverConfig {
            transactions: 150,
            warmup: 20,
            seed: 42,
            ..Default::default()
        };
        let a = Driver::run_configured(
            WorkloadKind::Tatp,
            1,
            WriteStrategy::IpaNative,
            NmScheme::new(2, 4),
            FlashMode::PSlc,
            &cfg,
        )
        .unwrap();
        let b = Driver::run_configured(
            WorkloadKind::Tatp,
            1,
            WriteStrategy::IpaNative,
            NmScheme::new(2, 4),
            FlashMode::PSlc,
            &cfg,
        )
        .unwrap();
        assert_eq!(a.device, b.device, "same seed ⇒ identical counters");
        assert_eq!(a.elapsed_ns, b.elapsed_ns);
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;

    #[test]
    fn percentiles_ordered() {
        let p = LatencyPercentiles::from_samples((1..=1000u64).collect());
        assert_eq!(p.count, 1000);
        assert_eq!(p.p50_ns, 500);
        assert_eq!(p.p95_ns, 950);
        assert_eq!(p.p99_ns, 990);
        assert_eq!(p.p999_ns, 999);
        assert_eq!(p.max_ns, 1000);
        assert!(p.p50_ns <= p.p95_ns && p.p95_ns <= p.p99_ns);
        assert!(p.p99_ns <= p.p999_ns && p.p999_ns <= p.max_ns);
    }

    #[test]
    fn empty_samples_yield_zeroes_not_panics() {
        let p = LatencyPercentiles::from_samples(vec![]);
        assert_eq!(p, LatencyPercentiles::default());
        assert_eq!(p.count, 0);
        assert_eq!(p.p999_ns, 0);
        assert_eq!(p.max_ns, 0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let p = LatencyPercentiles::from_samples(vec![42]);
        assert_eq!(
            (p.p50_ns, p.p95_ns, p.p99_ns, p.p999_ns, p.max_ns),
            (42, 42, 42, 42, 42)
        );
    }

    #[test]
    fn fairness_spread_is_max_over_min() {
        assert_eq!(fairness_spread(&[100, 200, 150]), 2.0);
        assert_eq!(fairness_spread(&[77]), 1.0);
        assert_eq!(fairness_spread(&[]), 1.0, "no clients, nothing unfair");
        assert_eq!(fairness_spread(&[0, 0]), 1.0, "no samples anywhere");
    }

    #[test]
    fn fairness_spread_ignores_streams_with_no_reads() {
        // A zero p99.9 is "this stream never measured a read", not "this
        // stream was infinitely fast": it must drop out of the ratio
        // instead of making the spread inf (or NaN through downstream
        // arithmetic) and poisoning every `spread < bound` assertion.
        assert_eq!(fairness_spread(&[0, 500]), 1.0);
        assert_eq!(fairness_spread(&[0, 300, 600]), 2.0);
        assert!(fairness_spread(&[0, 500]).is_finite());
        assert!(!fairness_spread(&[0, 0, 9]).is_nan());
    }

    #[test]
    fn threaded_run_is_thread_count_invariant() {
        let cfg = ThreadedConfig {
            streams: 4,
            ops_per_stream: 200,
            window: 16,
            topology: Topology::new(2, 2, StripePolicy::RoundRobin),
            ..Default::default()
        };
        let serial = Driver::run_threaded(&cfg);
        let threaded = Driver::run_threaded(&cfg.with_threads(2));
        assert_eq!(serial.logical_digest, threaded.logical_digest);
        assert_eq!(serial.ops, threaded.ops);
        assert_eq!(serial.device.host_writes, threaded.device.host_writes);
        assert_eq!(serial.device.host_reads, threaded.device.host_reads);
        assert!(threaded.wall_ns > 0 && threaded.sim_ns > 0);
        assert!(threaded.wall_ops_per_sec() > 0.0);
    }
}

#[cfg(test)]
mod multi_client_tests {
    use super::*;

    #[test]
    fn multi_stream_run_reports_per_stream_percentiles() {
        let cfg = DriverConfig {
            transactions: 240,
            warmup: 40,
            ..Default::default()
        }
        .with_streams(4);
        let r = Driver::run_sharded(
            WorkloadKind::TpcB,
            1,
            WriteStrategy::IpaNative,
            NmScheme::new(2, 4),
            FlashMode::PSlc,
            Topology::new(2, 2, StripePolicy::RoundRobin),
            &cfg,
        )
        .unwrap();
        assert_eq!(r.transactions, 240);
        assert_eq!(r.per_stream.len(), 4);
        let total: u64 = r.per_stream.iter().map(|s| s.transactions).sum();
        assert_eq!(total, 240, "every committed tx belongs to one stream");
        for s in &r.per_stream {
            // Earliest-clock scheduling is approximately fair: no stream
            // starves, none hogs the device.
            assert!(
                (30..=90).contains(&s.transactions),
                "stream {} got {} of 240 transactions",
                s.stream,
                s.transactions
            );
            assert_eq!(s.latency.count, s.transactions);
        }
        assert!(r.tps > 0.0);
    }

    #[test]
    fn single_stream_run_leaves_per_stream_empty() {
        let cfg = DriverConfig {
            transactions: 120,
            warmup: 20,
            ..Default::default()
        };
        let r = Driver::run_sharded(
            WorkloadKind::TpcB,
            1,
            WriteStrategy::Traditional,
            NmScheme::disabled(),
            FlashMode::PSlc,
            Topology::single(),
            &cfg,
        )
        .unwrap();
        assert!(r.per_stream.is_empty());
        assert_eq!(r.latency.count, 120);
    }

    #[test]
    fn maintained_run_reports_scheduler_stats() {
        let cfg = DriverConfig {
            transactions: 200,
            warmup: 40,
            ..Default::default()
        }
        .with_streams(4);
        let r = Driver::run_maintained(
            WorkloadKind::TpcB,
            1,
            WriteStrategy::IpaNative,
            NmScheme::new(2, 4),
            FlashMode::PSlc,
            Topology::new(2, 2, StripePolicy::RoundRobin),
            MaintMode::background(Some(8)),
            &cfg,
        )
        .unwrap();
        assert_eq!(r.transactions, 200);
        let m = r.maint.expect("maintained device reports its stats");
        assert!(m.polls > 0, "every host command polls the scheduler");
        let c = r.controller.expect("controller-backed");
        assert!(c.wear_spread() <= c.max_die_erases);
        // Inline mode must NOT report maintenance stats.
        let inline = Driver::run_maintained(
            WorkloadKind::TpcB,
            1,
            WriteStrategy::IpaNative,
            NmScheme::new(2, 4),
            FlashMode::PSlc,
            Topology::new(2, 2, StripePolicy::RoundRobin),
            MaintMode::capped(8),
            &cfg,
        )
        .unwrap();
        assert!(inline.maint.is_none());
    }

    #[test]
    fn qos_run_reports_read_latency_and_promotions() {
        let cfg = DriverConfig {
            transactions: 200,
            warmup: 40,
            ..Default::default()
        }
        .with_streams(4);
        let run = |mode: MaintMode| {
            Driver::run_maintained(
                WorkloadKind::TpcB,
                1,
                WriteStrategy::IpaNative,
                NmScheme::new(2, 4),
                FlashMode::PSlc,
                Topology::new(2, 2, StripePolicy::RoundRobin),
                mode,
                &cfg,
            )
            .unwrap()
        };
        let fifo = run(MaintMode::background(Some(8)));
        let qos = run(MaintMode::background(Some(8)).with_qos());
        // Both runs sample the measured window's reads. The counts need
        // not match exactly: timing feeds back into idle-die GC dispatch,
        // which perturbs the few maintenance-adjacent reads.
        assert!(fifo.read_latency.count > 0, "reads were sampled");
        assert!(qos.read_latency.count > 0, "reads were sampled under QoS");
        let c = qos.controller.expect("controller-backed");
        assert!(c.reads_promoted > 0, "QoS must promote some reads: {c}");
        assert_eq!(
            fifo.controller.unwrap().reads_promoted,
            0,
            "FIFO never promotes"
        );
        // Same committed work either way (stream interleaving is
        // clock-driven, so per-counter equality is not expected).
        assert_eq!(fifo.transactions, 200);
        assert_eq!(qos.transactions, 200);
    }

    #[test]
    fn maintained_runs_are_deterministic() {
        let cfg = DriverConfig {
            transactions: 150,
            warmup: 20,
            seed: 99,
            ..Default::default()
        }
        .with_streams(3);
        let run = || {
            Driver::run_maintained(
                WorkloadKind::Tatp,
                1,
                WriteStrategy::IpaNative,
                NmScheme::new(2, 4),
                FlashMode::PSlc,
                Topology::new(2, 2, StripePolicy::RoundRobin),
                MaintMode::background(Some(8)),
                &cfg,
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.device, b.device);
        assert_eq!(a.elapsed_ns, b.elapsed_ns);
        assert_eq!(a.maint, b.maint);
    }

    #[test]
    fn sharded_runs_are_deterministic() {
        let cfg = DriverConfig {
            transactions: 150,
            warmup: 20,
            seed: 77,
            ..Default::default()
        }
        .with_streams(3);
        let run = || {
            Driver::run_sharded(
                WorkloadKind::Tatp,
                1,
                WriteStrategy::IpaNative,
                NmScheme::new(2, 4),
                FlashMode::PSlc,
                Topology::new(2, 2, StripePolicy::Hash),
                &cfg,
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.device, b.device);
        assert_eq!(a.elapsed_ns, b.elapsed_ns);
        assert_eq!(a.latency, b.latency);
    }

    #[test]
    fn more_dies_run_the_same_workload_faster() {
        let cfg = DriverConfig {
            transactions: 400,
            warmup: 50,
            ..Default::default()
        }
        .with_streams(4);
        let run = |topology: Topology| {
            Driver::run_sharded(
                WorkloadKind::TpcB,
                1,
                WriteStrategy::IpaNative,
                NmScheme::new(2, 4),
                FlashMode::PSlc,
                topology,
                &cfg,
            )
            .unwrap()
        };
        let single = run(Topology::single());
        let wide = run(Topology::new(4, 2, StripePolicy::RoundRobin));
        assert!(
            wide.elapsed_ns < single.elapsed_ns,
            "8 dies must beat 1 die: {} vs {} ns",
            wide.elapsed_ns,
            single.elapsed_ns
        );
    }
}
