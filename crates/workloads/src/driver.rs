//! The benchmark driver: load → warm up → measure, with deterministic
//! seeding and simulated-time throughput.
//!
//! Throughput follows the simulator's time model: the run takes as long as
//! the busier of the data/log devices, plus a fixed CPU cost per
//! transaction (the OpenSSD experiments are I/O-bound, so device time
//! dominates exactly as in the paper).

use rand::rngs::StdRng;
use rand::SeedableRng;

use ipa_core::NmScheme;
use ipa_flash::{DeviceConfig, FlashMode, FlashStats, Geometry};
use ipa_ftl::{DeviceStats, WriteStrategy};
use ipa_storage::{EngineConfig, NetBytesHistogram, PoolStats, Result, StorageEngine};

use crate::spec::{build, Benchmark, WorkloadKind};

/// Simulated per-transaction latency distribution (device time only; add
/// `cpu_ns_per_tx` for end-to-end figures).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyPercentiles {
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
}

impl LatencyPercentiles {
    /// Compute from raw samples (sorted internally).
    pub fn from_samples(mut samples: Vec<u64>) -> LatencyPercentiles {
        if samples.is_empty() {
            return LatencyPercentiles::default();
        }
        samples.sort_unstable();
        let at = |q: f64| samples[((samples.len() - 1) as f64 * q) as usize];
        LatencyPercentiles {
            p50_ns: at(0.50),
            p95_ns: at(0.95),
            p99_ns: at(0.99),
            max_ns: *samples.last().unwrap(),
        }
    }
}

/// Driver parameters.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Measured transactions.
    pub transactions: u64,
    /// Unmeasured warm-up transactions.
    pub warmup: u64,
    /// Workload RNG seed (same seed ⇒ identical run).
    pub seed: u64,
    /// CPU time modeled per transaction, nanoseconds.
    pub cpu_ns_per_tx: u64,
    /// Buffer-pool frames; `None` uses the paper-like default of a buffer
    /// far smaller than the working set (evictions dominate).
    pub buffer_frames: Option<usize>,
    /// When set, run until this much *simulated* time has elapsed in the
    /// measured window instead of a fixed transaction count — the paper's
    /// Table 1 methodology (fixed two-hour runs), which is what makes the
    /// faster system show *more* absolute I/O.
    pub simulated_duration_ns: Option<u64>,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            transactions: 10_000,
            warmup: 1_000,
            seed: 0x7C_B5EED,
            cpu_ns_per_tx: 30_000,
            buffer_frames: None,
            simulated_duration_ns: None,
        }
    }
}

impl DriverConfig {
    pub fn quick() -> Self {
        DriverConfig {
            transactions: 2_000,
            warmup: 200,
            ..Default::default()
        }
    }

    pub fn with_transactions(mut self, n: u64) -> Self {
        self.transactions = n;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Run for a fixed simulated duration (Table 1 style).
    pub fn for_simulated_secs(mut self, secs: f64) -> Self {
        self.simulated_duration_ns = Some((secs * 1e9) as u64);
        self
    }
}

/// Everything a bench table needs about one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub benchmark: String,
    pub strategy: WriteStrategy,
    pub scheme: NmScheme,
    pub mode: FlashMode,
    pub transactions: u64,
    /// Simulated wall time of the measured window, nanoseconds.
    pub elapsed_ns: u64,
    /// Committed transactions per simulated second.
    pub tps: f64,
    /// Device counters over the measured window.
    pub device: DeviceStats,
    /// Raw flash counters over the measured window.
    pub flash: FlashStats,
    /// Buffer-pool counters (whole run).
    pub pool: PoolStats,
    /// Net modified bytes per dirty eviction (whole run, if measured).
    pub net_bytes: NetBytesHistogram,
    /// Peak block wear at the end of the run.
    pub max_erase_count: u32,
    /// Raw erase blocks of the device (for per-silicon wear comparisons).
    pub raw_blocks: u32,
    /// Per-transaction simulated device-time distribution.
    pub latency: LatencyPercentiles,
}

impl RunResult {
    /// Table 1's "Page Migrations per Host Write".
    pub fn migrations_per_host_write(&self) -> f64 {
        self.device.migrations_per_host_write()
    }

    /// Table 1's "GC Erases per Host Write".
    pub fn erases_per_host_write(&self) -> f64 {
        self.device.erases_per_host_write()
    }
}

/// The driver.
pub struct Driver;

impl Driver {
    /// Load the benchmark into the engine and run the measured window.
    pub fn run(
        bench: &mut dyn Benchmark,
        engine: &mut StorageEngine,
        cfg: &DriverConfig,
    ) -> Result<RunResult> {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        bench.load(engine, &mut rng)?;

        for _ in 0..cfg.warmup {
            bench.run_tx(engine, &mut rng)?;
        }
        engine.flush_all()?;

        let before = engine.stats();
        let mut committed: u64 = 0;
        let mut samples: Vec<u64> = Vec::with_capacity(4096);
        loop {
            match cfg.simulated_duration_ns {
                Some(limit) => {
                    let device_ns = engine.stats().elapsed_ns - before.elapsed_ns;
                    if device_ns + committed * cfg.cpu_ns_per_tx >= limit {
                        break;
                    }
                }
                None => {
                    if committed >= cfg.transactions {
                        break;
                    }
                }
            }
            let t0 = engine.stats().elapsed_ns;
            bench.run_tx(engine, &mut rng)?;
            samples.push(engine.stats().elapsed_ns - t0);
            committed += 1;
        }
        engine.flush_all()?;
        let after = engine.stats();

        let device_ns = after.elapsed_ns - before.elapsed_ns;
        let elapsed_ns = device_ns + committed * cfg.cpu_ns_per_tx;
        let tps = committed as f64 / (elapsed_ns as f64 / 1e9);

        Ok(RunResult {
            benchmark: bench.name().to_string(),
            strategy: engine.config().strategy,
            scheme: engine.config().scheme,
            mode: FlashMode::Slc, // callers overwrite via run_configured
            transactions: committed,
            elapsed_ns,
            tps,
            device: after.device.delta_since(&before.device),
            flash: after.flash.delta_since(&before.flash),
            pool: after.pool,
            net_bytes: after.pool.net_bytes,
            max_erase_count: after.max_erase_count,
            raw_blocks: engine.pool().device().raw_blocks(),
            latency: LatencyPercentiles::from_samples(samples),
        })
    }

    /// One-call experiment: build the benchmark, size a device for it,
    /// build the engine, run.
    ///
    /// The device is sized from the benchmark's table budget with ~40 %
    /// headroom (over-provisioning + GC room), mirroring a mostly-full SSD
    /// as in the paper's two-hour runs.
    pub fn run_configured(
        kind: WorkloadKind,
        scale: u32,
        strategy: WriteStrategy,
        scheme: NmScheme,
        mode: FlashMode,
        cfg: &DriverConfig,
    ) -> Result<RunResult> {
        let page_size = 8 * 1024;
        let mut bench = build(kind, scale, page_size);
        let mut engine = Self::make_engine(
            bench.as_mut(),
            strategy,
            scheme,
            mode,
            page_size,
            cfg.buffer_frames,
        )?;
        let mut result = Self::run(bench.as_mut(), &mut engine, cfg)?;
        result.mode = mode;
        Ok(result)
    }

    /// Build an engine with a device sized for the benchmark.
    pub fn make_engine(
        bench: &mut dyn Benchmark,
        strategy: WriteStrategy,
        scheme: NmScheme,
        mode: FlashMode,
        page_size: usize,
        buffer_frames: Option<usize>,
    ) -> Result<StorageEngine> {
        let tables = bench.tables();
        let pages_needed: u64 = tables.iter().map(|t| t.pages).sum();
        let ppb = 128u32;
        let usable_ppb = mode.usable_pages_per_block(ppb) as u64;
        let blocks = (pages_needed * 14 / 10 / usable_ppb + 8) as u32;
        let device = DeviceConfig::new(Geometry::new(blocks, ppb, page_size, 128), mode);

        // Buffer-constrained by default, like the paper's runs: the hot
        // update set does not fit, so dirty pages are evicted with only a
        // handful of accumulated byte changes each — the condition that
        // makes the N×M scheme effective.
        let frames = buffer_frames.unwrap_or(32);
        // Group commit of 32 models the loaded multi-client system the
        // paper benchmarks (Shore-MT runs many worker threads; per-commit
        // log flushes amortize across the group).
        let config = if strategy.needs_layout() {
            EngineConfig::default()
                .with_strategy(strategy, scheme)
                .with_buffer_frames(frames)
                .with_group_commit(32)
        } else {
            EngineConfig::default()
                .with_buffer_frames(frames)
                .with_group_commit(32)
        };
        StorageEngine::build(device, config, &tables)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_tpcb_run_all_strategies() {
        let cfg = DriverConfig {
            transactions: 300,
            warmup: 50,
            ..Default::default()
        };
        let trad = Driver::run_configured(
            WorkloadKind::TpcB,
            1,
            WriteStrategy::Traditional,
            NmScheme::disabled(),
            FlashMode::PSlc,
            &cfg,
        )
        .unwrap();
        let native = Driver::run_configured(
            WorkloadKind::TpcB,
            1,
            WriteStrategy::IpaNative,
            NmScheme::new(2, 4),
            FlashMode::PSlc,
            &cfg,
        )
        .unwrap();
        assert_eq!(trad.transactions, 300);
        assert!(trad.tps > 0.0);
        assert!(native.device.in_place_appends > 0);
        assert!(
            native.device.page_invalidations <= trad.device.page_invalidations,
            "IPA should not invalidate more"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = DriverConfig {
            transactions: 150,
            warmup: 20,
            seed: 42,
            ..Default::default()
        };
        let a = Driver::run_configured(
            WorkloadKind::Tatp,
            1,
            WriteStrategy::IpaNative,
            NmScheme::new(2, 4),
            FlashMode::PSlc,
            &cfg,
        )
        .unwrap();
        let b = Driver::run_configured(
            WorkloadKind::Tatp,
            1,
            WriteStrategy::IpaNative,
            NmScheme::new(2, 4),
            FlashMode::PSlc,
            &cfg,
        )
        .unwrap();
        assert_eq!(a.device, b.device, "same seed ⇒ identical counters");
        assert_eq!(a.elapsed_ns, b.elapsed_ns);
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;

    #[test]
    fn percentiles_ordered() {
        let p = LatencyPercentiles::from_samples((1..=1000u64).collect());
        assert_eq!(p.p50_ns, 500);
        assert_eq!(p.p95_ns, 950);
        assert_eq!(p.p99_ns, 990);
        assert_eq!(p.max_ns, 1000);
        assert!(p.p50_ns <= p.p95_ns && p.p95_ns <= p.p99_ns && p.p99_ns <= p.max_ns);
    }

    #[test]
    fn empty_samples() {
        assert_eq!(LatencyPercentiles::from_samples(vec![]).max_ns, 0);
    }
}
