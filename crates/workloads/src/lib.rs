//! # `ipa-workloads` — deterministic OLTP workload generators
//!
//! The paper evaluates IPA under TPC-B, TPC-C and TATP, and motivates the
//! write-amplification analysis with a LinkBench-based social-network
//! trace. This crate implements all four as seeded, deterministic
//! transaction generators over the [`ipa_storage::StorageEngine`], plus
//! the [`Driver`] that produces the per-run counters every bench table is
//! built from.

pub mod driver;
pub mod linkbench;
pub mod metrics;
pub mod spec;
pub mod tatp;
pub mod tpcb;
pub mod tpcc;
pub mod util;

pub use driver::{
    fairness_spread, Driver, DriverConfig, LatencyPercentiles, MaintMode, RunResult, ScanResult,
    StreamLatency, ThreadedConfig, ThreadedRunResult, Topology,
};
pub use ipa_heat::{DefaultPolicy as HeatPolicy, HeatDevice, HeatStats, PlacementPolicy};
pub use ipa_maint::{MaintConfig, MaintStats, MaintainedFtl};
pub use ipa_trace::{
    chrome_trace_json, trace_csv, LatencyHistogram, MetricSection, MetricsSnapshot, RingRecorder,
    TraceEvent,
};
pub use linkbench::LinkBench;
pub use metrics::engine_metrics;
pub use spec::{build, heap_pages, index_pages, rows_per_page, Benchmark, WorkloadKind};
pub use tatp::Tatp;
pub use tpcb::TpcB;
pub use tpcc::TpcC;
pub use util::{Zipf, ZipfTable};
