//! LinkBench-style social-network workload.
//!
//! The paper's Figure 1 analysis includes "a social network workload based
//! on LinkBench" among the traces whose evicted dirty pages mostly carry
//! <100 modified bytes. This module reproduces LinkBench's shape: a node
//! store and a link store with Zipf-skewed access, and the published
//! operation mix (dominated by `GET_LINK_LIST`, with small node/link
//! updates).
//!
//! | operation       | share  | effect                              |
//! |-----------------|--------|-------------------------------------|
//! | GET_LINK_LIST   | 50 %   | index range scan + row reads        |
//! | GET_LINK        | 12 %   | point read                          |
//! | COUNT_LINK      | 5 %    | node read (degree field)            |
//! | ADD_LINK        | 9 %    | insert + degree bump                |
//! | UPDATE_LINK     | 8 %    | 9-byte update (visibility + time)   |
//! | DELETE_LINK     | 3 %    | tombstone + degree bump             |
//! | GET_NODE        | 3 %    | point read                          |
//! | UPDATE_NODE     | 7.6 %  | version bump + small payload change |
//! | ADD_NODE        | 2.4 %  | insert                              |

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::Rng;

use ipa_storage::{Result, Rid, StorageEngine, StorageError, TableId, TableSpec};

use crate::spec::{heap_pages, index_pages, Benchmark};
use crate::util::{get_u64, put_u64, Zipf};

/// Nodes per scale unit.
pub const NODES_PER_SCALE: u64 = 2_000;
/// Initial links per node (average).
pub const LINKS_PER_NODE: u64 = 4;
/// Node row: id, version, degree, time, payload.
pub const NODE_ROW: usize = 120;
/// Link row: key, visibility, time, payload.
pub const LINK_ROW: usize = 60;
/// Offsets.
pub const VERSION_OFF: usize = 8;
pub const DEGREE_OFF: usize = 16;
pub const NODE_PAYLOAD_OFF: usize = 32;
pub const VIS_OFF: usize = 8;
pub const LTIME_OFF: usize = 9;

pub struct LinkBench {
    scale: u32,
    page_size: usize,
    nodes: Option<TableId>,
    links: Option<TableId>,
    node_pk: Option<TableId>,
    link_pk: Option<TableId>,
    zipf: Zipf,
    /// id1 → next id2 counter so generated link keys are unique.
    next_id2: HashMap<u64, u64>,
    next_node: u64,
    clock: u64,
    nodes_full: bool,
    links_full: bool,
}

impl LinkBench {
    pub fn new(scale: u32, page_size: usize) -> Self {
        assert!(scale >= 1);
        let n = scale as u64 * NODES_PER_SCALE;
        LinkBench {
            scale,
            page_size,
            nodes: None,
            links: None,
            node_pk: None,
            link_pk: None,
            zipf: Zipf::new(n, 0.85),
            next_id2: HashMap::new(),
            next_node: n,
            clock: 0,
            nodes_full: false,
            links_full: false,
        }
    }

    pub fn n_nodes(&self) -> u64 {
        self.scale as u64 * NODES_PER_SCALE
    }

    /// Link key: id1 in the high 40 bits, a per-source sequence below —
    /// all links of `id1` are contiguous in the index.
    fn link_key(id1: u64, seq: u64) -> u64 {
        (id1 << 24) | (seq & 0xFF_FFFF)
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }
}

impl Benchmark for LinkBench {
    fn name(&self) -> &'static str {
        "LinkBench"
    }

    fn tables(&self) -> Vec<TableSpec> {
        let ps = self.page_size;
        let n = self.n_nodes();
        let l = n * LINKS_PER_NODE;
        vec![
            TableSpec::heap("nodes", NODE_ROW, heap_pages(n * 2, NODE_ROW, ps)),
            TableSpec::heap("links", LINK_ROW, heap_pages(l * 2, LINK_ROW, ps)),
            TableSpec::index("node_pk", index_pages(n * 2, ps)),
            TableSpec::index("link_pk", index_pages(l * 2, ps)),
        ]
    }

    fn load(&mut self, engine: &mut StorageEngine, rng: &mut StdRng) -> Result<()> {
        let nodes = engine.table("nodes")?;
        let links = engine.table("links")?;
        let node_pk = engine.table("node_pk")?;
        let link_pk = engine.table("link_pk")?;

        let tx = engine.begin();
        for id in 0..self.n_nodes() {
            let mut row = vec![0u8; NODE_ROW];
            put_u64(&mut row, 0, id);
            let rid = engine.insert(tx, nodes, &row)?;
            engine.index_insert(tx, node_pk, id, rid)?;
        }
        // Power-law out-degree: hot nodes get more initial links.
        let total_links = self.n_nodes() * LINKS_PER_NODE;
        for _ in 0..total_links {
            let id1 = self.zipf.sample(rng);
            let seq = self.next_id2.entry(id1).or_insert(0);
            let key = Self::link_key(id1, *seq);
            *seq += 1;
            let mut row = vec![0u8; LINK_ROW];
            put_u64(&mut row, 0, key);
            row[VIS_OFF] = 1;
            let rid = engine.insert(tx, links, &row)?;
            engine.index_insert(tx, link_pk, key, rid)?;
        }
        engine.commit(tx)?;
        engine.flush_all()?;

        self.nodes = Some(nodes);
        self.links = Some(links);
        self.node_pk = Some(node_pk);
        self.link_pk = Some(link_pk);
        Ok(())
    }

    fn run_tx(&mut self, engine: &mut StorageEngine, rng: &mut StdRng) -> Result<()> {
        let nodes = self.nodes.expect("load first");
        let links = self.links.unwrap();
        let node_pk = self.node_pk.unwrap();
        let link_pk = self.link_pk.unwrap();

        let id1 = self.zipf.sample(rng);
        let dice = rng.gen_range(0..1000u32);
        match dice {
            // GET_LINK_LIST — 50 %: range over the node's link keys, then
            // read a handful of link rows.
            0..=499 => {
                let mut rids: Vec<Rid> = Vec::new();
                engine.index_range(
                    link_pk,
                    Self::link_key(id1, 0),
                    Self::link_key(id1, 0xFF_FFFF),
                    |_, rid| rids.push(rid),
                )?;
                for rid in rids.into_iter().take(10) {
                    let _ = engine.get(links, rid)?;
                }
                Ok(())
            }
            // GET_LINK — 12 %
            500..=619 => {
                let seq = self.next_id2.get(&id1).copied().unwrap_or(0);
                if seq == 0 {
                    return Ok(());
                }
                let key = Self::link_key(id1, rng.gen_range(0..seq));
                if let Some(rid) = engine.index_lookup(link_pk, key)? {
                    let _ = engine.get(links, rid);
                }
                Ok(())
            }
            // COUNT_LINK — 5 %: degree field on the node.
            620..=669 => {
                if let Some(rid) = engine.index_lookup(node_pk, id1)? {
                    let _ = engine.get(nodes, rid)?;
                }
                Ok(())
            }
            // ADD_LINK — 9 %
            670..=759 => {
                if self.links_full {
                    return Ok(());
                }
                let seq = self.next_id2.entry(id1).or_insert(0);
                let key = Self::link_key(id1, *seq);
                *seq += 1;
                let tx = engine.begin();
                let mut row = vec![0u8; LINK_ROW];
                put_u64(&mut row, 0, key);
                row[VIS_OFF] = 1;
                match engine.insert(tx, links, &row) {
                    Ok(rid) => {
                        engine.index_insert(tx, link_pk, key, rid)?;
                        // Degree bump on the source node.
                        if let Some(nrid) = engine.index_lookup(node_pk, id1)? {
                            let nrow = engine.get(nodes, nrid)?;
                            let deg = get_u64(&nrow, DEGREE_OFF) + 1;
                            let mut b = [0u8; 8];
                            put_u64(&mut b, 0, deg);
                            engine.update_field(tx, nodes, nrid, DEGREE_OFF, &b)?;
                        }
                        engine.commit(tx)
                    }
                    Err(StorageError::TableFull(_)) => {
                        self.links_full = true;
                        engine.commit(tx)
                    }
                    Err(e) => {
                        engine.abort(tx)?;
                        Err(e)
                    }
                }
            }
            // UPDATE_LINK — 8 %: visibility + timestamp (9 bytes).
            760..=839 => {
                let seq = self.next_id2.get(&id1).copied().unwrap_or(0);
                if seq == 0 {
                    return Ok(());
                }
                let key = Self::link_key(id1, rng.gen_range(0..seq));
                let tx = engine.begin();
                if let Some(rid) = engine.index_lookup(link_pk, key)? {
                    let t = self.tick();
                    let mut b = [0u8; 9];
                    b[0] = rng.gen_range(0..2);
                    b[1..].copy_from_slice(&t.to_le_bytes());
                    match engine.update_field(tx, links, rid, VIS_OFF, &b) {
                        Ok(()) => {}
                        Err(StorageError::SlotNotFound { .. }) => {} // deleted
                        Err(e) => {
                            engine.abort(tx)?;
                            return Err(e);
                        }
                    }
                }
                engine.commit(tx)
            }
            // DELETE_LINK — 3 %
            840..=869 => {
                let seq = self.next_id2.get(&id1).copied().unwrap_or(0);
                if seq == 0 {
                    return Ok(());
                }
                let key = Self::link_key(id1, rng.gen_range(0..seq));
                let tx = engine.begin();
                if let Some(rid) = engine.index_lookup(link_pk, key)? {
                    match engine.delete(tx, links, rid) {
                        Ok(()) => {
                            engine.index_delete(tx, link_pk, key)?;
                        }
                        Err(StorageError::SlotNotFound { .. }) => {}
                        Err(e) => {
                            engine.abort(tx)?;
                            return Err(e);
                        }
                    }
                }
                engine.commit(tx)
            }
            // GET_NODE — 3 %
            870..=899 => {
                if let Some(rid) = engine.index_lookup(node_pk, id1)? {
                    let _ = engine.get(nodes, rid)?;
                }
                Ok(())
            }
            // UPDATE_NODE — 7.6 %: version bump + a few payload bytes.
            900..=975 => {
                let tx = engine.begin();
                if let Some(rid) = engine.index_lookup(node_pk, id1)? {
                    let row = engine.get(nodes, rid)?;
                    let v = get_u64(&row, VERSION_OFF) + 1;
                    let mut b = [0u8; 8];
                    put_u64(&mut b, 0, v);
                    engine.update_field(tx, nodes, rid, VERSION_OFF, &b)?;
                    let payload: [u8; 4] = rng.gen();
                    engine.update_field(tx, nodes, rid, NODE_PAYLOAD_OFF, &payload)?;
                }
                engine.commit(tx)
            }
            // ADD_NODE — 2.4 %
            _ => {
                if self.nodes_full {
                    return Ok(());
                }
                let id = self.next_node;
                self.next_node += 1;
                let tx = engine.begin();
                let mut row = vec![0u8; NODE_ROW];
                put_u64(&mut row, 0, id);
                match engine.insert(tx, nodes, &row) {
                    Ok(rid) => {
                        engine.index_insert(tx, node_pk, id, rid)?;
                        engine.commit(tx)
                    }
                    Err(StorageError::TableFull(_)) => {
                        self.nodes_full = true;
                        engine.commit(tx)
                    }
                    Err(e) => {
                        engine.abort(tx)?;
                        Err(e)
                    }
                }
            }
        }
    }

    fn read_fraction(&self) -> f64 {
        0.70
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_core::NmScheme;
    use ipa_flash::{DeviceConfig, DisturbRates, FlashMode, Geometry};
    use ipa_storage::EngineConfig;
    use rand::SeedableRng;

    #[test]
    fn load_and_mix() {
        let mut b = LinkBench::new(1, 2048);
        let dc = DeviceConfig::new(Geometry::new(1600, 32, 2048, 64), FlashMode::PSlc)
            .with_disturb(DisturbRates::none());
        let mut e = StorageEngine::build(
            dc,
            EngineConfig::default()
                .with_ipa(NmScheme::new(2, 4))
                .with_buffer_frames(96),
            &b.tables(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        b.load(&mut e, &mut rng).unwrap();
        for _ in 0..400 {
            b.run_tx(&mut e, &mut rng).unwrap();
        }
        e.flush_all().unwrap();
        let s = e.stats();
        assert!(s.device.host_reads > s.device.total_host_writes());
        assert!(s.device.in_place_appends > 0);
    }

    #[test]
    fn link_lists_are_contiguous() {
        let mut b = LinkBench::new(1, 2048);
        let dc = DeviceConfig::new(Geometry::new(1600, 32, 2048, 64), FlashMode::PSlc)
            .with_disturb(DisturbRates::none());
        let mut e = StorageEngine::build(
            dc,
            EngineConfig::default().with_ipa(NmScheme::new(2, 4)),
            &b.tables(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        b.load(&mut e, &mut rng).unwrap();
        // Hottest node has links; range over its key span finds them all.
        let link_pk = e.table("link_pk").unwrap();
        let hot = 0u64;
        let expected = b.next_id2.get(&hot).copied().unwrap_or(0);
        let mut n = 0u64;
        e.index_range(
            link_pk,
            LinkBench::link_key(hot, 0),
            LinkBench::link_key(hot, 0xFF_FFFF),
            |_, _| n += 1,
        )
        .unwrap();
        assert_eq!(n, expected);
        assert!(n > 0, "hot node must have links");
    }
}
