//! The benchmark contract and the workload registry.

use rand::rngs::StdRng;

use ipa_storage::{Result, StorageEngine, TableSpec};

/// The four workloads the paper evaluates (TPC-B/-C, TATP, and the
/// LinkBench-based social-network workload of the Figure 1 analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    TpcB,
    TpcC,
    Tatp,
    LinkBench,
}

impl WorkloadKind {
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::TpcB => "TPC-B",
            WorkloadKind::TpcC => "TPC-C",
            WorkloadKind::Tatp => "TATP",
            WorkloadKind::LinkBench => "LinkBench",
        }
    }

    pub fn all() -> [WorkloadKind; 4] {
        [
            WorkloadKind::TpcB,
            WorkloadKind::TpcC,
            WorkloadKind::Tatp,
            WorkloadKind::LinkBench,
        ]
    }
}

/// A runnable benchmark: schema, initial population, and a transaction
/// generator. All randomness comes from the driver's seeded RNG.
pub trait Benchmark {
    /// Display name.
    fn name(&self) -> &'static str;

    /// Tables (and indexes) the benchmark needs, sized for its scale.
    fn tables(&self) -> Vec<TableSpec>;

    /// Populate the initial database. Called once on a fresh engine.
    fn load(&mut self, engine: &mut StorageEngine, rng: &mut StdRng) -> Result<()>;

    /// Execute one transaction of the benchmark mix.
    fn run_tx(&mut self, engine: &mut StorageEngine, rng: &mut StdRng) -> Result<()>;

    /// Ask the benchmark to draw its primary keys Zipf(θ)-skewed instead
    /// of uniformly (`None` restores uniform). Benchmarks whose key
    /// distribution is fixed by their spec may ignore the request — the
    /// default does.
    fn set_key_skew(&mut self, _theta: Option<f64>) {}

    /// Approximate read share of the mix (documentation; the paper argues
    /// IPL's extra reads hurt precisely because OLTP is 70–90 % reads).
    fn read_fraction(&self) -> f64;
}

/// Construct a benchmark instance for a kind, scale factor and the
/// device's page size (needed to budget table page ranges).
pub fn build(kind: WorkloadKind, scale: u32, page_size: usize) -> Box<dyn Benchmark> {
    match kind {
        WorkloadKind::TpcB => Box::new(crate::tpcb::TpcB::new(scale, page_size)),
        WorkloadKind::TpcC => Box::new(crate::tpcc::TpcC::new(scale, page_size)),
        WorkloadKind::Tatp => Box::new(crate::tatp::Tatp::new(scale, page_size)),
        WorkloadKind::LinkBench => Box::new(crate::linkbench::LinkBench::new(scale, page_size)),
    }
}

/// Conservative rows-per-page estimate used when budgeting table ranges:
/// leaves room for the page header/footer, slot entries and any delta-record
/// area up to ~[4×16].
pub fn rows_per_page(page_size: usize, row_len: usize) -> u64 {
    let usable = page_size.saturating_sub(512).max(row_len + 4);
    (usable / (row_len + 4)).max(1) as u64
}

/// Page budget for `rows` rows of `row_len` bytes (25 % slack).
pub fn heap_pages(rows: u64, row_len: usize, page_size: usize) -> u64 {
    let rpp = rows_per_page(page_size, row_len);
    (rows / rpp + 2) * 5 / 4 + 2
}

/// Page budget for a B+-tree over `keys` keys (18-byte entries, 2× slack
/// for splits and internals).
pub fn index_pages(keys: u64, page_size: usize) -> u64 {
    let usable = page_size.saturating_sub(512).max(64);
    let per_page = (usable / 18).max(2) as u64;
    (keys / per_page + 2) * 2 + 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(WorkloadKind::TpcB.name(), "TPC-B");
        assert_eq!(WorkloadKind::all().len(), 4);
    }

    #[test]
    fn factory_produces_all() {
        for kind in WorkloadKind::all() {
            let b = build(kind, 1, 8192);
            assert!(!b.tables().is_empty(), "{} has tables", b.name());
            assert!(b.read_fraction() >= 0.0 && b.read_fraction() <= 1.0);
        }
    }

    #[test]
    fn sizing_helpers() {
        assert!(rows_per_page(8192, 100) >= 70);
        assert!(heap_pages(1000, 100, 8192) >= 14);
        assert!(index_pages(1000, 8192) > 4);
    }
}
