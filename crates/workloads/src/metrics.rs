//! The concrete [`MetricsSnapshot`] builder: walk a live
//! [`StorageEngine`] and report every layer's stats struct — pool,
//! device, WAL device, raw flash, controller, maintenance — as one
//! serializable tree, with the derived gauges (hit rate, WAL backlog,
//! utilization, wear spread, per-die busy fractions) computed in place.
//!
//! The shape lives in `ipa_trace::metrics`; this module owns the
//! *vocabulary* — section and metric names — so the driver's
//! [`crate::RunResult`], the fleet soak and the sweep binary all emit
//! snapshots that window (`delta_since`) and serialize identically.

use ipa_heat::HeatDevice;
use ipa_maint::MaintainedFtl;
use ipa_storage::StorageEngine;
use ipa_trace::{MetricSection, MetricsSnapshot};

use crate::driver::Driver;

/// Snapshot every metric the engine's stack exposes right now.
///
/// Sections (present when the layer exists):
///
/// * `engine` — commit/abort counters and the device/log time horizons.
/// * `pool` — buffer-pool traffic plus the derived `hit_rate` gauge.
/// * `device` — FTL counters for the data device.
/// * `wal_device` — FTL counters for the log device, plus the derived
///   `backlog_stripes` gauge (stripes written minus reclaimed — the
///   log-space pressure the truncation path works against).
/// * `flash` — raw chip counters summed over the data device's dies.
/// * `controller` — scheduler counters plus utilization/wear/depth
///   gauges and one `die{N}_busy` / `chan{N}_busy` fraction per die and
///   channel.
/// * `maint` — background-reclaim counters, when the device runs the
///   idle-die scheduler.
/// * `heat` — heat-placement counters (tier traffic, destages, wear
///   migrations) plus tier occupancy gauges, when the device is an
///   [`ipa_heat::HeatDevice`].
pub fn engine_metrics(engine: &StorageEngine) -> MetricsSnapshot {
    let stats = engine.stats();
    let mut snap = MetricsSnapshot::new(stats.elapsed_ns);

    snap.push(
        MetricSection::new("engine")
            .counter("committed", stats.committed)
            .counter("aborted", stats.aborted)
            .counter("elapsed_ns", stats.elapsed_ns)
            .counter("wal_elapsed_ns", stats.wal_elapsed_ns)
            .gauge("max_erase_count", stats.max_erase_count as u64),
    );

    let p = stats.pool;
    let fetches = p.hits + p.misses;
    snap.push(
        MetricSection::new("pool")
            .counter("hits", p.hits)
            .counter("misses", p.misses)
            .counter("evictions", p.evictions)
            .counter("evict_in_place", p.evict_in_place)
            .counter("evict_out_of_place", p.evict_out_of_place)
            .counter("evict_clean", p.evict_clean)
            .counter("in_place_fallbacks", p.in_place_fallbacks)
            .counter("readahead_issued", p.readahead_issued)
            .counter("readahead_hits", p.readahead_hits)
            .gauge_f64(
                "hit_rate",
                if fetches == 0 {
                    0.0
                } else {
                    p.hits as f64 / fetches as f64
                },
            ),
    );

    snap.push(device_section("device", &stats.device));
    if let Some(w) = &stats.wal_device {
        snap.push(device_section("wal_device", w).gauge(
            "backlog_stripes",
            w.wal_stripe_writes.saturating_sub(w.wal_stripes_reclaimed),
        ));
    }

    let f = stats.flash;
    snap.push(
        MetricSection::new("flash")
            .counter("page_reads", f.page_reads)
            .counter("page_programs", f.page_programs)
            .counter("page_reprograms", f.page_reprograms)
            .counter("cache_programs", f.cache_programs)
            .counter("block_erases", f.block_erases)
            .counter("multi_plane_programs", f.multi_plane_programs)
            .counter("multi_plane_reads", f.multi_plane_reads)
            .counter("multi_plane_erases", f.multi_plane_erases)
            .counter("bytes_read", f.bytes_read)
            .counter("bytes_written", f.bytes_written)
            .counter("disturb_bits_injected", f.disturb_bits_injected)
            .counter("busy_ns", f.busy_ns)
            .counter("erase_suspends", f.erase_suspends),
    );

    if let Some(ctrl) = Driver::controller_of(engine) {
        let c = ctrl.stats();
        let mut sec = MetricSection::new("controller")
            .counter("commands", c.commands)
            .counter("reads", c.reads)
            .counter("posted_reads", c.posted_reads)
            .counter("programs", c.programs)
            .counter("erases", c.erases)
            .counter("queue_wait_ns", c.queue_wait_ns)
            .counter("bus_busy_ns", c.bus_busy_ns)
            .counter("sync_points", c.sync_points)
            .counter("backpressure_stalls", c.backpressure_stalls)
            .counter("backpressure_wait_ns", c.backpressure_wait_ns)
            .counter("reads_promoted", c.reads_promoted)
            .counter("erase_suspends", c.erase_suspends)
            .counter("forgotten_reads", c.forgotten_reads)
            .gauge("max_queue_depth", c.max_queue_depth as u64)
            .gauge("posted_reads_outstanding", c.posted_reads_outstanding)
            .gauge("max_die_erases", c.max_die_erases)
            .gauge("min_die_erases", c.min_die_erases)
            .gauge("wear_spread", c.wear_spread())
            .gauge("die_util_ppm_max", c.die_util_ppm_max)
            .gauge("chan_util_ppm_max", c.chan_util_ppm_max);
        for die in 0..ctrl.dies() {
            sec = sec.gauge_f64(format!("die{die}_busy"), ctrl.die_busy_fraction(die));
        }
        for (die, &erases) in c.die_erases.iter().enumerate() {
            sec = sec.gauge(format!("die{die}_erases"), erases);
        }
        for ch in 0..ctrl.config().channels {
            sec = sec.gauge_f64(format!("chan{ch}_busy"), ctrl.channel_busy_fraction(ch));
        }
        snap.push(sec);
    }

    let maint = engine
        .device_as::<MaintainedFtl>()
        .map(MaintainedFtl::maint_stats)
        .or_else(|| {
            engine
                .device_as::<HeatDevice>()
                .map(HeatDevice::maint_stats)
        });
    if let Some(m) = maint {
        snap.push(
            MetricSection::new("maint")
                .counter("polls", m.polls)
                .counter("steps", m.steps)
                .counter("migrations", m.migrations)
                .counter("erases", m.erases)
                .counter("range_migrations", m.range_migrations)
                .counter("destages", m.destages)
                .counter("deferred_busy", m.deferred_busy)
                .counter("erase_suspends_seen", m.erase_suspends_seen)
                .gauge("max_wear_spread", m.max_wear_spread),
        );
    }

    if let Some(hd) = engine.device_as::<HeatDevice>() {
        let h = hd.heat_stats();
        let tf = hd.tier_flash_stats();
        snap.push(
            MetricSection::new("heat")
                .counter("writes_seen", h.writes_seen)
                .counter("deltas_seen", h.deltas_seen)
                .counter("hot_hits", h.hot_hits)
                .counter("hot_spills", h.hot_spills)
                .counter("tier_read_hits", h.tier_read_hits)
                .counter("tier_rmw_deltas", h.tier_rmw_deltas)
                .counter("destaged_pages", h.destaged_pages)
                .counter("range_migrations", h.range_migrations)
                .counter("migrations_skipped", h.migrations_skipped)
                .counter("decays", h.decays)
                .counter("tier_page_programs", tf.page_programs)
                .counter("tier_block_erases", tf.block_erases)
                .gauge("tier_resident", h.tier_resident)
                .gauge("tier_slots", h.tier_slots)
                .gauge_f64("tier_occupancy", h.tier_occupancy()),
        );
    }

    snap
}

fn device_section(name: &str, d: &ipa_ftl::DeviceStats) -> MetricSection {
    MetricSection::new(name)
        .counter("host_reads", d.host_reads)
        .counter("host_writes", d.host_writes)
        .counter("host_write_deltas", d.host_write_deltas)
        .counter("in_place_appends", d.in_place_appends)
        .counter("out_of_place_writes", d.out_of_place_writes)
        .counter("multi_plane_pairs", d.multi_plane_pairs)
        .counter("page_invalidations", d.page_invalidations)
        .counter("gc_page_migrations", d.gc_page_migrations)
        .counter("gc_erases", d.gc_erases)
        .counter("background_gc_erases", d.background_gc_erases)
        .counter("bytes_host_written", d.bytes_host_written)
        .counter("bytes_host_read", d.bytes_host_read)
        .counter("ecc_corrected_bits", d.ecc_corrected_bits)
        .counter("uncorrectable_reads", d.uncorrectable_reads)
        .counter("wear_leveling_moves", d.wear_leveling_moves)
        .counter("vectored_reads", d.vectored_reads)
        .counter("vectored_writes", d.vectored_writes)
        .counter("vectored_deltas", d.vectored_deltas)
        .counter("readahead_hits", d.readahead_hits)
        .counter("wal_stripe_writes", d.wal_stripe_writes)
        .counter("wal_stripes_reclaimed", d.wal_stripes_reclaimed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{DriverConfig, MaintMode, Topology};
    use crate::spec::{build, WorkloadKind};
    use ipa_core::NmScheme;
    use ipa_flash::FlashMode;
    use ipa_ftl::WriteStrategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn snapshot_covers_every_layer_of_a_maintained_engine() {
        let cfg = DriverConfig::quick().with_wal_stripe(2, 1);
        let mut bench = build(WorkloadKind::TpcB, 1, 8 * 1024);
        let mut engine = Driver::make_maintained_engine(
            bench.as_mut(),
            WriteStrategy::IpaNative,
            NmScheme::new(2, 4),
            FlashMode::PSlc,
            8 * 1024,
            Topology::new(2, 2, ipa_ftl::StripePolicy::RoundRobin),
            MaintMode::background(Some(8)),
            &cfg,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        bench.load(&mut engine, &mut rng).unwrap();
        for _ in 0..200 {
            bench.run_tx(&mut engine, &mut rng).unwrap();
        }
        engine.flush_all().unwrap();

        let snap = engine_metrics(&engine);
        for sec in [
            "engine",
            "pool",
            "device",
            "wal_device",
            "flash",
            "controller",
            "maint",
        ] {
            assert!(snap.section(sec).is_some(), "missing section {sec}");
        }
        assert!(snap.get("engine.committed").unwrap().as_u64() >= 200);
        let hit_rate = snap.get("pool.hit_rate").unwrap().as_f64();
        assert!((0.0..=1.0).contains(&hit_rate));
        assert!(snap.get("device.host_writes").unwrap().as_u64() > 0);
        assert!(snap.get("flash.page_programs").unwrap().as_u64() > 0);
        assert!(snap.get("controller.commands").unwrap().as_u64() > 0);
        // 2×2 topology: one busy-fraction gauge per die and channel,
        // each a sane fraction.
        for name in ["die0_busy", "die1_busy", "die2_busy", "die3_busy"] {
            let v = snap.get(&format!("controller.{name}")).unwrap().as_f64();
            assert!((0.0..=1.0).contains(&v), "{name}={v}");
        }
        assert!(snap.get("controller.chan1_busy").is_some());
        assert!(snap.get("controller.chan2_busy").is_none());

        // Round-trips through JSON and windows sanely.
        let text = snap.to_json_string();
        let back = MetricsSnapshot::from_json_str(&text).unwrap();
        assert_eq!(back, snap);
        let d = snap.delta_since(&snap);
        assert_eq!(d.get("controller.commands").unwrap().as_u64(), 0);
        assert_eq!(
            d.get("controller.max_queue_depth").unwrap().as_u64(),
            snap.get("controller.max_queue_depth").unwrap().as_u64(),
            "gauges carry through a self-delta"
        );
    }

    #[test]
    fn wal_backlog_gauge_tracks_unreclaimed_stripes() {
        let snap = {
            let cfg = DriverConfig::quick().with_wal_stripe(2, 1);
            let mut bench = build(WorkloadKind::TpcB, 1, 8 * 1024);
            let mut engine = Driver::make_sharded_engine(
                bench.as_mut(),
                WriteStrategy::Traditional,
                NmScheme::disabled(),
                FlashMode::PSlc,
                8 * 1024,
                Topology::single(),
                &cfg,
            )
            .unwrap();
            let mut rng = StdRng::seed_from_u64(3);
            bench.load(&mut engine, &mut rng).unwrap();
            for _ in 0..100 {
                bench.run_tx(&mut engine, &mut rng).unwrap();
            }
            engine.flush_all().unwrap();
            engine_metrics(&engine)
        };
        let writes = snap.get("wal_device.wal_stripe_writes").unwrap().as_u64();
        let reclaimed = snap
            .get("wal_device.wal_stripes_reclaimed")
            .unwrap()
            .as_u64();
        let backlog = snap.get("wal_device.backlog_stripes").unwrap().as_u64();
        assert_eq!(backlog, writes.saturating_sub(reclaimed));
        assert!(writes > 0, "striped WAL must have written stripes");
    }
}
