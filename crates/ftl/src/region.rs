//! NoFTL Regions — selective IPA configuration per database object.
//!
//! The paper (citing the authors' EDBT'16 NoFTL-regions work): *"The use of
//! NoFTL regions allows applying IPA selectively, only to certain database
//! objects that are dominated by small-sized updates."* A region is a range
//! of LBAs with its own IPA page layout (or none). The storage engine
//! places each table/index into a region; the FTL consults the region table
//! for every ECC and delta decision.

use ipa_core::PageLayout;
use std::ops::Range;

use crate::error::Lba;

/// One region: an LBA range and its (optional) IPA formatting.
#[derive(Debug, Clone)]
pub struct Region {
    /// Human-readable name ("accounts", "history", "wal", …).
    pub name: String,
    /// Half-open LBA range the region covers.
    pub lbas: Range<Lba>,
    /// IPA page layout used inside the region; `None` ⇒ traditional pages.
    pub layout: Option<PageLayout>,
}

/// Ordered, non-overlapping region table.
#[derive(Debug, Clone, Default)]
pub struct RegionTable {
    regions: Vec<Region>,
}

impl RegionTable {
    /// Empty table: every LBA falls back to the device default layout.
    pub fn new() -> Self {
        RegionTable::default()
    }

    /// A table with one region spanning everything.
    pub fn uniform(capacity: u64, layout: Option<PageLayout>) -> Self {
        let mut t = RegionTable::new();
        t.add(Region {
            name: "default".to_string(),
            lbas: 0..capacity,
            layout,
        });
        t
    }

    /// Add a region; panics on overlap with an existing one (a region map
    /// is configuration, not runtime input).
    pub fn add(&mut self, region: Region) {
        assert!(region.lbas.start < region.lbas.end, "empty region");
        for r in &self.regions {
            let overlap = region.lbas.start < r.lbas.end && r.lbas.start < region.lbas.end;
            assert!(
                !overlap,
                "region '{}' overlaps existing region '{}'",
                region.name, r.name
            );
        }
        self.regions.push(region);
        self.regions.sort_by_key(|r| r.lbas.start);
    }

    /// The region containing `lba`, if any.
    pub fn region_of(&self, lba: Lba) -> Option<&Region> {
        // Regions are few (one per DB object); linear scan over a sorted
        // vec beats building an interval tree here.
        self.regions.iter().find(|r| r.lbas.contains(&lba))
    }

    /// Layout in force for `lba` (region layout, else `default`).
    pub fn layout_for<'a>(
        &'a self,
        lba: Lba,
        default: Option<&'a PageLayout>,
    ) -> Option<&'a PageLayout> {
        match self.region_of(lba) {
            Some(r) => r.layout.as_ref(),
            None => default,
        }
    }

    /// Iterate regions in LBA order.
    pub fn iter(&self) -> impl Iterator<Item = &Region> {
        self.regions.iter()
    }

    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_core::NmScheme;

    fn layout() -> PageLayout {
        PageLayout::new(2048, 24, 8, NmScheme::new(2, 4))
    }

    #[test]
    fn lookup_by_lba() {
        let mut t = RegionTable::new();
        t.add(Region {
            name: "hot".into(),
            lbas: 0..100,
            layout: Some(layout()),
        });
        t.add(Region {
            name: "cold".into(),
            lbas: 100..200,
            layout: None,
        });
        assert_eq!(t.region_of(0).unwrap().name, "hot");
        assert_eq!(t.region_of(99).unwrap().name, "hot");
        assert_eq!(t.region_of(100).unwrap().name, "cold");
        assert!(t.region_of(200).is_none());
    }

    #[test]
    fn layout_fallback_to_default() {
        let t = RegionTable::new();
        let def = layout();
        assert!(t.layout_for(5, Some(&def)).is_some());
        assert!(t.layout_for(5, None).is_none());
    }

    #[test]
    fn region_layout_overrides_default() {
        let mut t = RegionTable::new();
        t.add(Region {
            name: "plain".into(),
            lbas: 0..10,
            layout: None,
        });
        let def = layout();
        // Inside the region: region's None wins over the default.
        assert!(t.layout_for(3, Some(&def)).is_none());
        // Outside: default applies.
        assert!(t.layout_for(50, Some(&def)).is_some());
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlap_rejected() {
        let mut t = RegionTable::new();
        t.add(Region {
            name: "a".into(),
            lbas: 0..100,
            layout: None,
        });
        t.add(Region {
            name: "b".into(),
            lbas: 50..150,
            layout: None,
        });
    }

    #[test]
    fn uniform_covers_everything() {
        let t = RegionTable::uniform(1000, Some(layout()));
        assert!(t.region_of(0).is_some());
        assert!(t.region_of(999).is_some());
        assert!(t.region_of(1000).is_none());
    }
}
