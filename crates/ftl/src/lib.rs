//! # `ipa-ftl` — flash translation layer and NoFTL native interface
//!
//! The device-side substrate of the reproduction:
//!
//! * [`Ftl`] — a page-mapping FTL with greedy GC and over-provisioning,
//!   configurable as a traditional SSD, an IPA-aware conventional SSD
//!   (in-place detection of overwrite-compatible images), or a NoFTL-style
//!   native device exposing the paper's `write_delta` command.
//! * [`ShardedFtl`] — the same contract die-striped across a
//!   multi-channel [`ipa_controller::FlashController`] (round-robin or
//!   hash stripe, per-die GC, per-region IPA semantics preserved).
//! * [`RegionTable`] — NoFTL Regions: per-object IPA formatting.
//! * [`OobCodec`] — the Figure 3 OOB layout (`ECC_initial` +
//!   `ECC_delta_rec 1..N`).
//! * [`BlockDevice`] / [`NativeFlashDevice`] — the host contracts the
//!   storage engine programs against.

pub mod error;
pub mod ftl;
pub mod interface;
pub mod oob;
pub mod region;
pub mod sharded;
pub mod stats;
pub mod wear;

pub use error::{FtlError, Lba, Result};
pub use ftl::{
    exported_capacity, overwrite_compatible, Ftl, FtlConfig, GcJob, GcProgress, ReclaimJob,
};
pub use interface::{
    BlockDevice, IoCompletion, IoQueue, IoRequest, IoToken, NativeFlashDevice, QueuedBlockDevice,
    SubmissionState, WriteStrategy,
};
pub use oob::{OobCodec, UncorrectableError, VerifyOutcome};
pub use region::{Region, RegionTable};
pub use sharded::{ShardedFtl, StripePolicy};
pub use stats::DeviceStats;
pub use wear::{WearConfig, WearLeveler, WearSummary};

/// Familiar aliases: a conventional page-mapped SSD and a NoFTL native
/// device are the same machinery under different configurations.
pub type PageFtl = Ftl;
/// See [`PageFtl`].
pub type NoFtl = Ftl;
