//! Host-visible device statistics — the raw material of the paper's
//! Table 1.
//!
//! `Host Reads`, `Host Writes`, `GC Page Migrations`, `GC Erases`, the two
//! per-host-write ratios and the split between out-of-place writes and
//! in-place appends all come straight from these counters.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Counters maintained by the translation layer (host-level view).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Host page reads.
    pub host_reads: u64,
    /// Host full-page writes (both out-of-place and in-place-detected).
    pub host_writes: u64,
    /// Host `write_delta` commands (native IPA path).
    pub host_write_deltas: u64,
    /// Writes satisfied by re-programming the same physical page.
    pub in_place_appends: u64,
    /// Writes that allocated a fresh physical page.
    pub out_of_place_writes: u64,
    /// Out-of-place write pairs the plane-aware allocator completed as
    /// one multi-plane program command (two host writes, one staircase).
    pub multi_plane_pairs: u64,
    /// Previously valid physical pages invalidated by host writes.
    pub page_invalidations: u64,
    /// Valid pages copied by the garbage collector.
    pub gc_page_migrations: u64,
    /// Blocks erased by the garbage collector.
    pub gc_erases: u64,
    /// Subset of `gc_erases` performed by background maintenance steps
    /// (idle-die scheduled reclaim) rather than inline with a host write.
    pub background_gc_erases: u64,
    /// Payload bytes the host pushed to the device (whole pages for
    /// `write`, delta bytes for `write_delta`) — the DBMS
    /// write-amplification numerator of Figure 1.
    pub bytes_host_written: u64,
    /// Payload bytes returned to the host.
    pub bytes_host_read: u64,
    /// Bits repaired by ECC across all reads.
    pub ecc_corrected_bits: u64,
    /// Reads that failed ECC (data loss events).
    pub uncorrectable_reads: u64,
    /// Blocks recycled by static wear levelling.
    pub wear_leveling_moves: u64,
    /// Queued `ReadV` submissions spanning more than one page.
    #[serde(default)]
    pub vectored_reads: u64,
    /// Queued `WriteV` submissions spanning more than one page.
    #[serde(default)]
    pub vectored_writes: u64,
    /// Buffer-pool fetches served from a posted read-ahead completion
    /// instead of a fresh synchronous device read.
    #[serde(default)]
    pub readahead_hits: u64,
    /// WAL group-commit flushes submitted as one multi-page vector
    /// (striping the log write across channels).
    #[serde(default)]
    pub wal_stripe_writes: u64,
    /// Queued `WriteDeltaV` submissions spanning more than one member —
    /// evictions batching their delta appends across dies.
    #[serde(default)]
    pub vectored_deltas: u64,
    /// Sealed WAL log pages trimmed by a checkpoint — the log-space
    /// reclamation that keeps the seal-on-flush stripe bounded.
    #[serde(default)]
    pub wal_stripes_reclaimed: u64,
}

impl DeviceStats {
    /// Total host write operations of either flavour.
    #[inline]
    pub fn total_host_writes(&self) -> u64 {
        self.host_writes + self.host_write_deltas
    }

    /// Table 1's "GC Page Migrations per Host Write".
    pub fn migrations_per_host_write(&self) -> f64 {
        ratio(self.gc_page_migrations, self.total_host_writes())
    }

    /// Table 1's "GC Erases per Host Write".
    pub fn erases_per_host_write(&self) -> f64 {
        ratio(self.gc_erases, self.total_host_writes())
    }

    /// Fraction of update writes that stayed in place.
    pub fn in_place_fraction(&self) -> f64 {
        ratio(
            self.in_place_appends,
            self.in_place_appends + self.out_of_place_writes,
        )
    }

    /// Element-wise sum — aggregates the shards of a die-striped device
    /// into one host-level view.
    pub fn merged(&self, other: &DeviceStats) -> DeviceStats {
        DeviceStats {
            host_reads: self.host_reads + other.host_reads,
            host_writes: self.host_writes + other.host_writes,
            host_write_deltas: self.host_write_deltas + other.host_write_deltas,
            in_place_appends: self.in_place_appends + other.in_place_appends,
            out_of_place_writes: self.out_of_place_writes + other.out_of_place_writes,
            multi_plane_pairs: self.multi_plane_pairs + other.multi_plane_pairs,
            page_invalidations: self.page_invalidations + other.page_invalidations,
            gc_page_migrations: self.gc_page_migrations + other.gc_page_migrations,
            gc_erases: self.gc_erases + other.gc_erases,
            background_gc_erases: self.background_gc_erases + other.background_gc_erases,
            bytes_host_written: self.bytes_host_written + other.bytes_host_written,
            bytes_host_read: self.bytes_host_read + other.bytes_host_read,
            ecc_corrected_bits: self.ecc_corrected_bits + other.ecc_corrected_bits,
            uncorrectable_reads: self.uncorrectable_reads + other.uncorrectable_reads,
            wear_leveling_moves: self.wear_leveling_moves + other.wear_leveling_moves,
            vectored_reads: self.vectored_reads + other.vectored_reads,
            vectored_writes: self.vectored_writes + other.vectored_writes,
            readahead_hits: self.readahead_hits + other.readahead_hits,
            wal_stripe_writes: self.wal_stripe_writes + other.wal_stripe_writes,
            vectored_deltas: self.vectored_deltas + other.vectored_deltas,
            wal_stripes_reclaimed: self.wal_stripes_reclaimed + other.wal_stripes_reclaimed,
        }
    }

    /// Snapshot difference (`self` later than `earlier`).
    pub fn delta_since(&self, earlier: &DeviceStats) -> DeviceStats {
        DeviceStats {
            host_reads: self.host_reads - earlier.host_reads,
            host_writes: self.host_writes - earlier.host_writes,
            host_write_deltas: self.host_write_deltas - earlier.host_write_deltas,
            in_place_appends: self.in_place_appends - earlier.in_place_appends,
            out_of_place_writes: self.out_of_place_writes - earlier.out_of_place_writes,
            multi_plane_pairs: self.multi_plane_pairs - earlier.multi_plane_pairs,
            page_invalidations: self.page_invalidations - earlier.page_invalidations,
            gc_page_migrations: self.gc_page_migrations - earlier.gc_page_migrations,
            gc_erases: self.gc_erases - earlier.gc_erases,
            background_gc_erases: self.background_gc_erases - earlier.background_gc_erases,
            bytes_host_written: self.bytes_host_written - earlier.bytes_host_written,
            bytes_host_read: self.bytes_host_read - earlier.bytes_host_read,
            ecc_corrected_bits: self.ecc_corrected_bits - earlier.ecc_corrected_bits,
            uncorrectable_reads: self.uncorrectable_reads - earlier.uncorrectable_reads,
            wear_leveling_moves: self.wear_leveling_moves - earlier.wear_leveling_moves,
            vectored_reads: self.vectored_reads - earlier.vectored_reads,
            vectored_writes: self.vectored_writes - earlier.vectored_writes,
            readahead_hits: self.readahead_hits - earlier.readahead_hits,
            wal_stripe_writes: self.wal_stripe_writes - earlier.wal_stripe_writes,
            vectored_deltas: self.vectored_deltas - earlier.vectored_deltas,
            wal_stripes_reclaimed: self.wal_stripes_reclaimed - earlier.wal_stripes_reclaimed,
        }
    }
}

#[inline]
fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl fmt::Display for DeviceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "host_reads={} host_writes={} write_deltas={} in_place={} out_of_place={} \
             invalidations={} gc_migrations={} gc_erases={} (bg={})",
            self.host_reads,
            self.host_writes,
            self.host_write_deltas,
            self.in_place_appends,
            self.out_of_place_writes,
            self.page_invalidations,
            self.gc_page_migrations,
            self.gc_erases,
            self.background_gc_erases
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = DeviceStats {
            host_writes: 100,
            host_write_deltas: 100,
            gc_page_migrations: 50,
            gc_erases: 10,
            ..Default::default()
        };
        assert!((s.migrations_per_host_write() - 0.25).abs() < 1e-12);
        assert!((s.erases_per_host_write() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_are_zero() {
        let s = DeviceStats::default();
        assert_eq!(s.migrations_per_host_write(), 0.0);
        assert_eq!(s.in_place_fraction(), 0.0);
    }

    #[test]
    fn in_place_fraction() {
        let s = DeviceStats {
            in_place_appends: 3,
            out_of_place_writes: 1,
            ..Default::default()
        };
        assert!((s.in_place_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn delta_since() {
        let a = DeviceStats {
            host_reads: 5,
            gc_erases: 2,
            ..Default::default()
        };
        let b = DeviceStats {
            host_reads: 9,
            gc_erases: 3,
            ..Default::default()
        };
        let d = b.delta_since(&a);
        assert_eq!(d.host_reads, 4);
        assert_eq!(d.gc_erases, 1);
    }
}
