//! Page-mapping FTL with greedy garbage collection — and its IPA
//! extensions.
//!
//! One [`Ftl`] struct implements all three device personalities the demo
//! compares:
//!
//! * **Traditional SSD** — `FtlConfig::conventional(None)`: every host
//!   write is an out-of-place program; the old physical page is
//!   invalidated and eventually reclaimed by GC.
//! * **IPA for conventional SSDs** (demo scenario 2) —
//!   `in_place_detection = true` plus an IPA layout ("low-level
//!   formatting"): the FTL compares each incoming page image against the
//!   stored one and, when the image is overwrite-compatible (pure `1 → 0`),
//!   re-programs the same physical page. No invalidation, no GC pressure.
//! * **NoFTL / native flash** (demo scenario 3) — the
//!   [`NativeFlashDevice::write_delta`] command appends a delta record (and
//!   its OOB ECC codeword) to the physical page directly, transferring only
//!   the delta bytes.
//!
//! Garbage collection is greedy (victim = closed block with the most
//! invalid pages, ties broken toward low erase counts for wear levelling)
//! and migrates ECC-corrected images.

use std::collections::VecDeque;

use ipa_core::PageLayout;
use ipa_flash::{
    FlashChip, FlashError, FlashMode, FlashStats, Geometry, MultiPlaneWrite, Nand, Ppa,
};

use crate::error::{FtlError, Lba, Result};
use crate::interface::{
    BlockDevice, IoCompletion, IoQueue, IoRequest, IoToken, NativeFlashDevice, SubmissionState,
};
use crate::oob::OobCodec;
use crate::region::RegionTable;
use crate::stats::DeviceStats;
use crate::wear::{WearConfig, WearLeveler, WearSummary};

/// FTL policy knobs.
#[derive(Debug, Clone)]
pub struct FtlConfig {
    /// Fraction of usable capacity withheld from the host (GC headroom).
    pub over_provisioning: f64,
    /// Run GC whenever the free-block pool drops below this.
    pub gc_low_water_blocks: u32,
    /// Detect overwrite-compatible full-page writes and program them in
    /// place (IPA for conventional SSDs).
    pub in_place_detection: bool,
    /// IPA page layout in force outside any explicit region.
    pub default_layout: Option<PageLayout>,
    /// Allow in-place appends on pages the mode marks unsafe (full-MLC
    /// experiment E7 only).
    pub allow_unsafe_ipa: bool,
    /// Static wear levelling; `None` disables it (dynamic tie-breaking in
    /// the GC victim selector stays active either way).
    pub wear: Option<WearConfig>,
    /// Defer low-water garbage collection to an external maintenance
    /// scheduler ([`Ftl::background_gc_step`]). The write path then only
    /// reclaims inline as an emergency — when the free pool is actually
    /// empty — instead of whole-block reclaims on the host's critical
    /// path whenever the low-water mark trips.
    pub background_gc: bool,
}

impl FtlConfig {
    /// Plain SSD: no IPA anywhere.
    pub fn traditional() -> Self {
        FtlConfig {
            over_provisioning: 0.10,
            gc_low_water_blocks: 3,
            in_place_detection: false,
            default_layout: None,
            allow_unsafe_ipa: false,
            wear: Some(WearConfig::default()),
            background_gc: false,
        }
    }

    /// IPA for conventional SSDs: block interface + in-place detection.
    pub fn ipa_conventional(layout: PageLayout) -> Self {
        FtlConfig {
            in_place_detection: true,
            default_layout: Some(layout),
            ..FtlConfig::traditional()
        }
    }

    /// Native flash (NoFTL): `write_delta` enabled via the layout; the
    /// block path behaves traditionally.
    pub fn ipa_native(layout: PageLayout) -> Self {
        FtlConfig {
            default_layout: Some(layout),
            ..FtlConfig::traditional()
        }
    }

    pub fn with_over_provisioning(mut self, op: f64) -> Self {
        assert!((0.02..0.9).contains(&op), "over-provisioning out of range");
        self.over_provisioning = op;
        self
    }

    pub fn with_unsafe_ipa(mut self) -> Self {
        self.allow_unsafe_ipa = true;
        self
    }

    /// Hand low-water GC to an external maintenance scheduler.
    pub fn with_background_gc(mut self) -> Self {
        self.background_gc = true;
        self
    }
}

/// A resumable block reclaim: victim selection happened at construction,
/// the live-delta copy-backs and the final erase are performed one
/// [`Ftl::reclaim_step`] at a time. Between steps the victim block stays
/// `Closed` and fully consistent — host writes may keep invalidating its
/// pages (those migrations are then skipped), reads still hit the old
/// physical pages until each is individually remapped.
#[derive(Debug, Clone)]
pub struct GcJob {
    victim: u32,
    /// Next physical page index to examine for migration.
    next_page: u32,
    /// Count this job's work in the GC counters (false: wear levelling).
    count_as_gc: bool,
    /// Pages migrated so far.
    migrated: u32,
}

impl GcJob {
    /// The block being reclaimed.
    #[inline]
    pub fn victim(&self) -> u32 {
        self.victim
    }

    /// Valid pages copied out so far.
    #[inline]
    pub fn migrated(&self) -> u32 {
        self.migrated
    }
}

/// A resumable background-reclaim work item the idle-die maintenance
/// scheduler dispatches. Block GC ([`ReclaimJob::Gc`]) runs within one
/// die; the heat-placement variants re-stripe host LBAs *across* dies
/// ([`ReclaimJob::MigrateRange`]) or flush the SLC hot tier back to the
/// main stripe ([`ReclaimJob::Destage`]). Each variant is stepped one
/// bounded unit of work at a time, so a job in flight never blocks host
/// traffic for longer than a single step.
#[derive(Debug, Clone)]
pub enum ReclaimJob {
    /// Reclaim one block on one die (GC or wear levelling).
    Gc(GcJob),
    /// Wear shifting: swap each hot host LBA with a cold partner living
    /// on a less-worn die ([`crate::ShardedFtl::swap_stripe`]), one pair
    /// per step. `next` indexes the first unswapped pair.
    MigrateRange {
        /// `(hot, cold)` host-LBA pairs to cross-swap.
        pairs: Vec<(Lba, Lba)>,
        /// First pair not yet processed.
        next: usize,
    },
    /// Hot-tier destage: write tier-resident page images back to the
    /// main stripe in cached-program batches. `next` indexes the first
    /// LBA not yet destaged.
    Destage {
        /// Host LBAs whose current images live in the hot tier.
        lbas: Vec<Lba>,
        /// First LBA not yet processed.
        next: usize,
    },
}

impl ReclaimJob {
    /// Is every unit of work in this job done?
    pub fn is_complete(&self) -> bool {
        match self {
            // A GC job's completion is decided by `reclaim_step`.
            ReclaimJob::Gc(_) => false,
            ReclaimJob::MigrateRange { pairs, next } => *next >= pairs.len(),
            ReclaimJob::Destage { lbas, next } => *next >= lbas.len(),
        }
    }
}

/// What one [`Ftl::background_gc_step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcProgress {
    /// Nothing to do: the free pool is healthy or no victim exists.
    Idle,
    /// One valid page was copied to the frontier.
    Migrated,
    /// The victim block was erased and returned to the free pool — the
    /// current job is complete.
    Erased,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockState {
    Free,
    Active,
    Closed,
}

/// The write frontier: one active block per lane. On a multi-plane chip a
/// frontier is opened as a plane-aligned *group* (one block per plane,
/// equal in-plane block index) whenever a fully-free group exists, so
/// consecutive out-of-place writes land on alternating planes at the same
/// page offset — exactly the shape a multi-plane program command accepts.
/// When no aligned group is free (fragmented pool, bad blocks, trailing
/// partial group) the frontier degrades to a single block and every write
/// programs single-plane, which is the planes = 1 behaviour bit-for-bit.
#[derive(Debug, Clone)]
struct ActiveGroup {
    /// Active blocks, one per lane; plane-aligned when `len > 1`.
    blocks: Vec<u32>,
    /// Flat slot cursor: slot `s` → lane `s % len`, page offset `s / len`.
    next: u32,
}

/// An allocated, mapped, but not-yet-programmed out-of-place write,
/// parked one slot deep so the next write to the partner plane can ride
/// the same multi-plane command. Logically the write is complete (the
/// L2P map and owner tables already point at `ppa`); only the physical
/// program is deferred, and every other path that could observe the gap
/// (reads/updates/trims of this LBA, the block closing) drains it first.
#[derive(Debug, Clone)]
struct StagedWrite {
    lba: Lba,
    ppa: Ppa,
    data: Vec<u8>,
    oob: Vec<u8>,
}

#[derive(Debug, Clone)]
struct BlockInfo {
    state: BlockState,
    /// Per physical page: `Some(lba)` if it holds the valid copy of `lba`.
    owner: Vec<Option<Lba>>,
    /// Valid pages in this block.
    valid: u32,
    /// Usable pages consumed (write frontier position).
    used: u32,
}

impl BlockInfo {
    fn new(pages_per_block: u32) -> Self {
        BlockInfo {
            state: BlockState::Free,
            owner: vec![None; pages_per_block as usize],
            valid: 0,
            used: 0,
        }
    }

    fn invalid(&self) -> u32 {
        self.used - self.valid
    }

    fn reset(&mut self) {
        self.state = BlockState::Free;
        self.owner.iter_mut().for_each(|o| *o = None);
        self.valid = 0;
        self.used = 0;
    }
}

/// Host-exported capacity for a chip shape under an FTL policy: the
/// smaller of the over-provisioning-derived capacity and what is left
/// after reserving GC headroom. Shared by [`Ftl`] and the die-striped
/// `ShardedFtl`, which must size every shard before building it.
pub fn exported_capacity(geometry: &Geometry, mode: FlashMode, config: &FtlConfig) -> u64 {
    let usable_ppb = mode.usable_pages_per_block(geometry.pages_per_block);
    let total_usable = geometry.blocks as u64 * usable_ppb as u64;
    let op_capacity = (total_usable as f64 * (1.0 - config.over_provisioning)) as u64;
    op_capacity.min(total_usable.saturating_sub(gc_reserve_pages(usable_ppb, config)))
}

/// Usable pages withheld from the host as GC headroom (low-water + 1
/// blocks) — the reserve [`exported_capacity`] subtracts.
fn gc_reserve_pages(usable_ppb: u32, config: &FtlConfig) -> u64 {
    (config.gc_low_water_blocks as u64 + 1) * usable_ppb as u64
}

/// The flash translation layer (see module docs). Generic over the flash
/// target: a bare [`FlashChip`] (the default) or a scheduled die handle
/// from the controller crate — the translation logic is identical.
pub struct Ftl<C: Nand = FlashChip> {
    chip: C,
    config: FtlConfig,
    regions: RegionTable,
    l2p: Vec<Option<Ppa>>,
    blocks: Vec<BlockInfo>,
    free_blocks: VecDeque<u32>,
    active: Option<ActiveGroup>,
    /// One-deep pairing window for multi-plane program commands.
    staged: Option<StagedWrite>,
    capacity: u64,
    usable_ppb: u32,
    stats: DeviceStats,
    /// Queued-interface bookkeeping (tokens, buffered completions).
    queue: SubmissionState,
    wear: Option<WearLeveler>,
    /// The in-flight background reclaim, when a maintenance scheduler is
    /// stepping this FTL. Victim selection must skip this block, and the
    /// emergency inline path drains it before picking a fresh victim.
    pending_job: Option<GcJob>,
}

impl<C: Nand> Ftl<C> {
    /// Build an FTL over a chip with an empty region table.
    pub fn new(chip: C, config: FtlConfig) -> Self {
        Self::with_regions(chip, config, RegionTable::new())
    }

    /// Build an FTL with explicit NoFTL regions.
    pub fn with_regions(chip: C, config: FtlConfig, regions: RegionTable) -> Self {
        let g = chip.geometry();
        let mode = chip.mode();
        let usable_ppb = mode.usable_pages_per_block(g.pages_per_block);
        let total_usable = g.blocks as u64 * usable_ppb as u64;
        // Export the smaller of the OP-derived capacity and what is left
        // after reserving GC headroom (low-water + 1 blocks), so tiny test
        // devices clamp instead of misconfiguring.
        let capacity = exported_capacity(&g, mode, &config);
        let gc_reserve = gc_reserve_pages(usable_ppb, &config);
        assert!(
            capacity > 0,
            "geometry too small: {total_usable} usable pages cannot spare {gc_reserve} for GC"
        );
        // Fail fast on any layout that cannot fit its ECC in the OOB.
        if let Some(l) = &config.default_layout {
            let _ = OobCodec::new(g.page_size, g.oob_size, Some(*l));
        }
        for r in regions.iter() {
            let _ = OobCodec::new(g.page_size, g.oob_size, r.layout);
        }

        let blocks = (0..g.blocks)
            .map(|_| BlockInfo::new(g.pages_per_block))
            .collect();
        let free_blocks = (0..g.blocks).collect();
        let wear = config.wear.map(WearLeveler::new);
        Ftl {
            chip,
            config,
            regions,
            l2p: vec![None; capacity as usize],
            blocks,
            free_blocks,
            active: None,
            staged: None,
            capacity,
            usable_ppb,
            stats: DeviceStats::default(),
            queue: SubmissionState::default(),
            wear,
            pending_job: None,
        }
    }

    /// Exhaustive internal consistency check, for tests and debugging:
    ///
    /// 1. every mapped LBA points at a page whose owner is that LBA;
    /// 2. every owned page is mapped back (no orphans);
    /// 3. per-block valid counters match the owner table;
    /// 4. no two LBAs share a physical page;
    /// 5. free blocks hold no valid data and the active block exists at
    ///    most once.
    ///
    /// Panics with a description on the first violation.
    pub fn check_invariants(&self) {
        use std::collections::HashSet;
        let mut seen_ppa: HashSet<(u32, u32)> = HashSet::new();
        for (lba, ppa) in self.l2p.iter().enumerate() {
            let Some(ppa) = ppa else { continue };
            assert!(
                seen_ppa.insert((ppa.block, ppa.page)),
                "two LBAs map to {ppa}"
            );
            let owner = self.blocks[ppa.block as usize].owner[ppa.page as usize];
            assert_eq!(
                owner,
                Some(lba as Lba),
                "LBA {lba} maps to {ppa} but the page is owned by {owner:?}"
            );
        }
        for (b, info) in self.blocks.iter().enumerate() {
            let owned = info.owner.iter().flatten().count() as u32;
            assert_eq!(
                owned, info.valid,
                "block {b}: owner table has {owned} valid pages, counter says {}",
                info.valid
            );
            for lba in info.owner.iter().flatten() {
                assert_eq!(
                    self.l2p[*lba as usize],
                    Some(Ppa::new(
                        b as u32,
                        info.owner.iter().position(|o| o == &Some(*lba)).unwrap() as u32
                    )),
                    "orphan: block {b} owns LBA {lba} but the map disagrees"
                );
            }
            if info.state == BlockState::Free {
                assert_eq!(info.valid, 0, "free block {b} holds valid data");
            }
        }
        let actives = self
            .blocks
            .iter()
            .filter(|b| b.state == BlockState::Active)
            .count();
        let lanes = self
            .active
            .as_ref()
            .map(|g| g.blocks.len())
            .unwrap_or_default();
        assert!(
            actives <= self.chip.geometry().planes as usize,
            "{actives} active blocks on a {}-plane chip",
            self.chip.geometry().planes
        );
        assert_eq!(actives, lanes, "frontier and block states disagree");
        if let Some(s) = &self.staged {
            assert_eq!(
                self.l2p[s.lba as usize],
                Some(s.ppa),
                "staged write unmapped"
            );
            assert_eq!(
                self.blocks[s.ppa.block as usize].owner[s.ppa.page as usize],
                Some(s.lba),
                "staged write lost its slot"
            );
            assert_eq!(
                self.blocks[s.ppa.block as usize].state,
                BlockState::Active,
                "staged write outlived its block's frontier"
            );
        }
    }

    /// Erase-count distribution across all blocks.
    pub fn wear_summary(&self) -> WearSummary {
        let counts: Vec<u32> = (0..self.chip.geometry().blocks)
            .map(|b| self.chip.erase_count(b).unwrap_or(0))
            .collect();
        WearSummary::from_counts(&counts)
    }

    /// Tick the static wear leveller after an erase and, if the spread is
    /// too wide, return the coldest closed block to recycle.
    fn wear_level_victim(&mut self) -> Option<u32> {
        let w = self.wear.as_mut()?;
        if !w.on_erase() {
            return None;
        }
        let counts: Vec<u32> = self
            .blocks
            .iter()
            .enumerate()
            .map(|(i, b)| {
                if b.state == BlockState::Closed {
                    self.chip.erase_count(i as u32).unwrap_or(u32::MAX)
                } else {
                    u32::MAX // active/free blocks are not static-WL targets
                }
            })
            .collect();
        let device_max = self.chip.max_erase_count();
        let victim = self
            .wear
            .as_mut()
            .unwrap()
            .pick_victim(&counts, device_max)?;
        // Need a frontier to migrate into; skip when space is too tight.
        if self.free_blocks.is_empty() && self.active.is_none() {
            return None;
        }
        Some(victim)
    }

    /// Static wear levelling step: if the erase-count spread is too wide,
    /// recycle the coldest closed block so it rejoins the rotation.
    fn maybe_wear_level(&mut self) -> Result<()> {
        let Some(victim) = self.wear_level_victim() else {
            return Ok(());
        };
        self.reclaim_block(victim, false)?;
        self.stats.wear_leveling_moves += 1;
        Ok(())
    }

    /// Underlying flash target (inspection only).
    pub fn chip(&self) -> &C {
        &self.chip
    }

    /// Region table (inspection only).
    pub fn regions(&self) -> &RegionTable {
        &self.regions
    }

    /// The layout in force for an LBA.
    pub fn layout_for(&self, lba: Lba) -> Option<PageLayout> {
        self.regions
            .layout_for(lba, self.config.default_layout.as_ref())
            .copied()
    }

    /// Zero the host-level counters (experiment warm-up boundaries).
    pub fn reset_stats(&mut self) {
        self.stats = DeviceStats::default();
    }

    fn codec_for(&self, lba: Lba) -> OobCodec {
        let g = self.chip.geometry();
        OobCodec::new(g.page_size, g.oob_size, self.layout_for(lba))
    }

    fn check_lba(&self, lba: Lba) -> Result<()> {
        if lba >= self.capacity {
            return Err(FtlError::LbaOutOfRange {
                lba,
                capacity: self.capacity,
            });
        }
        Ok(())
    }

    /// Physical page index of the `n`-th usable page in a block.
    fn nth_usable_page(&self, n: u32) -> u32 {
        match self.chip.mode() {
            ipa_flash::FlashMode::PSlc => 2 * n + 1,
            _ => n,
        }
    }

    /// Claim the next free usable page, opening a new frontier (a
    /// plane-aligned group when possible) if needed. Slots hand out
    /// lane-major: all lanes at one page offset before the offset
    /// advances, so the staged-write pairing finds its partner at the
    /// very next allocation.
    fn allocate(&mut self) -> Result<Ppa> {
        loop {
            let slot = self.active.as_ref().and_then(|g| {
                let lanes = g.blocks.len() as u32;
                (g.next < lanes * self.usable_ppb)
                    .then(|| (g.blocks[(g.next % lanes) as usize], g.next / lanes))
            });
            if let Some((block, n)) = slot {
                self.active.as_mut().expect("frontier exists").next += 1;
                self.blocks[block as usize].used += 1;
                return Ok(Ppa::new(block, self.nth_usable_page(n)));
            }
            if let Some(done) = self.active.take() {
                // A staged program whose block is about to close must hit
                // the flash first — a closed block is a GC candidate, and
                // reclaiming an erased-but-owned page would be a torn
                // migration.
                if self
                    .staged
                    .as_ref()
                    .is_some_and(|s| done.blocks.contains(&s.ppa.block))
                {
                    self.drain_staged()?;
                }
                for b in done.blocks {
                    self.blocks[b as usize].state = BlockState::Closed;
                }
            }
            self.open_frontier()?;
        }
    }

    /// Open the next write frontier. With planes > 1, prefer the first
    /// plane group (FIFO order of the free list) whose member blocks are
    /// all free and healthy; otherwise fall back to a single block —
    /// which is also the entire story for planes = 1.
    fn open_frontier(&mut self) -> Result<()> {
        let planes = self.chip.geometry().planes;
        if planes > 1 {
            let mut free_in_group: std::collections::HashMap<u32, u32> = Default::default();
            for &b in &self.free_blocks {
                if !self.chip.is_bad(b) {
                    *free_in_group.entry(b / planes).or_default() += 1;
                }
            }
            // A trailing partial group never reaches `planes` members and
            // is naturally excluded.
            let aligned = self
                .free_blocks
                .iter()
                .map(|&b| b / planes)
                .find(|gid| free_in_group.get(gid) == Some(&planes));
            if let Some(gid) = aligned {
                let members: Vec<u32> = (gid * planes..(gid + 1) * planes).collect();
                self.free_blocks.retain(|b| !members.contains(b));
                for &b in &members {
                    self.blocks[b as usize].state = BlockState::Active;
                    self.blocks[b as usize].used = 0;
                }
                self.active = Some(ActiveGroup {
                    blocks: members,
                    next: 0,
                });
                return Ok(());
            }
        }
        loop {
            let b = self.free_blocks.pop_front().ok_or(FtlError::DeviceFull)?;
            if self.chip.is_bad(b) {
                continue; // retired block: capacity silently shrinks
            }
            self.blocks[b as usize].state = BlockState::Active;
            self.blocks[b as usize].used = 0;
            self.active = Some(ActiveGroup {
                blocks: vec![b],
                next: 0,
            });
            return Ok(());
        }
    }

    fn invalidate(&mut self, ppa: Ppa) {
        let info = &mut self.blocks[ppa.block as usize];
        if info.owner[ppa.page as usize].take().is_some() {
            info.valid -= 1;
        }
    }

    /// Run GC until the free pool is back above the low-water mark. Under
    /// `background_gc` the refill belongs to the maintenance scheduler;
    /// the inline path only reclaims when the pool is actually empty (an
    /// emergency the scheduler failed to prevent), draining any half-done
    /// background job first rather than starting a second reclaim.
    fn ensure_free_space(&mut self) -> Result<()> {
        let low_water = if self.config.background_gc {
            1
        } else {
            self.config.gc_low_water_blocks
        };
        while (self.free_blocks.len() as u32) < low_water {
            if let Some(mut job) = self.pending_job.take() {
                while !self.reclaim_step(&mut job)? {}
                if !job.count_as_gc {
                    self.stats.wear_leveling_moves += 1;
                }
                self.maybe_wear_level()?;
                continue;
            }
            if !self.gc_once()? {
                // Nothing reclaimable. Fatal only if allocation would fail.
                if self.free_blocks.is_empty() && self.active.is_none() {
                    return Err(FtlError::DeviceFull);
                }
                break;
            }
        }
        Ok(())
    }

    /// Greedy GC victim: the closed block with the most invalid pages,
    /// ties broken toward low erase counts (dynamic wear levelling). A
    /// block already being reclaimed by a background job is never a
    /// candidate — reclaiming it twice would erase live migrations.
    pub fn select_gc_victim(&self) -> Option<u32> {
        let busy = self.pending_job.as_ref().map(|j| j.victim);
        self.blocks
            .iter()
            .enumerate()
            .filter(|(i, b)| {
                b.state == BlockState::Closed && b.invalid() > 0 && Some(*i as u32) != busy
            })
            .max_by_key(|(i, b)| {
                (
                    b.invalid(),
                    std::cmp::Reverse(self.chip.erase_count(*i as u32).unwrap_or(u32::MAX)),
                )
            })
            .map(|(i, _)| i as u32)
    }

    /// Reclaim one block. Returns `false` when no victim exists.
    fn gc_once(&mut self) -> Result<bool> {
        let Some(victim) = self.select_gc_victim() else {
            return Ok(false);
        };
        self.reclaim_block(victim, true)?;
        self.maybe_wear_level()?;
        Ok(true)
    }

    /// Migrate a block's valid pages to the frontier and erase it —
    /// inline, by driving a [`GcJob`] to completion in one call.
    /// `count_as_gc` separates GC accounting from wear-levelling moves.
    fn reclaim_block(&mut self, victim: u32, count_as_gc: bool) -> Result<()> {
        if self
            .pending_job
            .as_ref()
            .is_some_and(|j| j.victim == victim)
        {
            // A background job already owns this block (wear levelling can
            // race the scheduler); let it finish instead of double-freeing.
            return Ok(());
        }
        let mut job = GcJob {
            victim,
            next_page: 0,
            count_as_gc,
            migrated: 0,
        };
        while !self.reclaim_step(&mut job)? {}
        Ok(())
    }

    /// Advance a reclaim by one unit of device work: migrate the next
    /// valid page, or — once none remain — erase the victim and return it
    /// to the free pool. Returns `true` when the job is complete.
    fn reclaim_step(&mut self, job: &mut GcJob) -> Result<bool> {
        let victim = job.victim;
        debug_assert_eq!(
            self.blocks[victim as usize].state,
            BlockState::Closed,
            "reclaim of a non-closed block"
        );
        // The pairing window drains before a block closes, so a victim can
        // never hold a staged-but-unprogrammed page.
        debug_assert!(
            self.staged.as_ref().is_none_or(|s| s.ppa.block != victim),
            "reclaim of the staged write's block"
        );
        let pages = self.chip.geometry().pages_per_block;
        while job.next_page < pages {
            let page = job.next_page;
            job.next_page += 1;
            let Some(lba) = self.blocks[victim as usize].owner[page as usize] else {
                continue;
            };
            let src = Ppa::new(victim, page);
            // Copy-back: a migration read is firmware-internal — it keeps
            // the die busy but never stalls the host interface.
            let mut img = self.chip.copyback_read(src)?;
            // Scrub on the way: correct what ECC can, count what it fixed.
            let codec = self.codec_for(lba);
            match codec.verify(&mut img.data, &img.oob) {
                Ok(o) => self.stats.ecc_corrected_bits += o.corrected_bits,
                Err(_) => {
                    // Migrate the raw bits; the host read will report the
                    // loss. (A real controller would log a media error.)
                    self.stats.uncorrectable_reads += 1;
                }
            }
            let dst = self.allocate()?;
            let oob = codec.encode_oob(&img.data);
            self.chip.program_page(dst, &img.data, &oob)?;
            self.blocks[victim as usize].owner[page as usize] = None;
            self.blocks[victim as usize].valid -= 1;
            self.blocks[dst.block as usize].owner[dst.page as usize] = Some(lba);
            self.blocks[dst.block as usize].valid += 1;
            self.l2p[lba as usize] = Some(dst);
            job.migrated += 1;
            if job.count_as_gc {
                self.stats.gc_page_migrations += 1;
            }
            return Ok(false);
        }

        self.chip.erase_block(victim)?;
        if job.count_as_gc {
            self.stats.gc_erases += 1;
        }
        self.blocks[victim as usize].reset();
        if !self.chip.is_bad(victim) {
            self.free_blocks.push_back(victim);
        }
        Ok(true)
    }

    /// Free blocks currently in the pool.
    #[inline]
    pub fn free_block_count(&self) -> u32 {
        self.free_blocks.len() as u32
    }

    /// The configured GC low-water mark.
    #[inline]
    pub fn gc_low_water(&self) -> u32 {
        self.config.gc_low_water_blocks
    }

    /// Would a maintenance step make progress against `low_water`? True
    /// when a reclaim is already mid-flight, or the pool is below the mark
    /// and a victim exists.
    pub fn gc_pending(&self, low_water: u32) -> bool {
        self.pending_job.is_some()
            || (self.free_block_count() < low_water && self.select_gc_victim().is_some())
    }

    /// One background-GC step against an externally chosen refill target
    /// (the scheduler may start early — `low_water` above the configured
    /// mark — so the pool refills before the write path ever trips).
    /// Starts a new [`GcJob`] when none is in flight, otherwise
    /// advances the current one. Each call issues at most one page
    /// migration or one erase, so a maintenance scheduler can interleave
    /// reclaim work with host traffic at single-command granularity.
    pub fn background_gc_step(&mut self, low_water: u32) -> Result<GcProgress> {
        let mut job = match self.pending_job.take() {
            Some(job) => job,
            None => {
                if self.free_block_count() >= low_water {
                    return Ok(GcProgress::Idle);
                }
                let Some(victim) = self.select_gc_victim() else {
                    return Ok(GcProgress::Idle);
                };
                GcJob {
                    victim,
                    next_page: 0,
                    count_as_gc: true,
                    migrated: 0,
                }
            }
        };
        if self.reclaim_step(&mut job)? {
            if job.count_as_gc {
                self.stats.background_gc_erases += 1;
            } else {
                self.stats.wear_leveling_moves += 1;
            }
            // Static wear levelling keeps its per-erase cadence, but the
            // recycle itself becomes the next resumable job instead of a
            // whole-block inline burst — preserving the one-command-per-
            // step contract the scheduler relies on.
            if let Some(victim) = self.wear_level_victim() {
                self.pending_job = Some(GcJob {
                    victim,
                    next_page: 0,
                    count_as_gc: false,
                    migrated: 0,
                });
            }
            Ok(GcProgress::Erased)
        } else {
            self.pending_job = Some(job);
            Ok(GcProgress::Migrated)
        }
    }

    /// Attempt the conventional-SSD in-place path. Returns `true` when the
    /// image was programmed in place.
    fn try_in_place(&mut self, ppa: Ppa, data: &[u8], codec: &OobCodec) -> Result<bool> {
        let mode = self.chip.mode();
        if !mode.ipa_safe(ppa.page) && !self.config.allow_unsafe_ipa {
            return Ok(false);
        }
        if self.chip.program_count(ppa)? >= self.chip.nop_limit(ppa.page) {
            return Ok(false);
        }
        // Borrow-based compatibility probe first: most overwrites fail it,
        // and the failure path must not pay a page-size copy.
        if self.chip.peek_overwrite_compatible(ppa, data) != Some(true) {
            return Ok(false);
        }
        let Some(old) = self.chip.peek_data(ppa) else {
            return Ok(false);
        };
        let layout = codec.layout().expect("in-place detection requires layout");
        let mut oob = self
            .chip
            .peek_oob(ppa)
            .unwrap_or_else(|| vec![0xFF; self.chip.geometry().oob_size]);
        // Add ECC codewords for record slots that appear in the new image.
        for i in 0..layout.scheme.n {
            let roff = layout.record_offset(i);
            let newly_present = old[roff] & 0x80 != 0 && data[roff] & 0x80 == 0;
            if newly_present {
                let cw = codec.encode_record(&data[roff..roff + layout.record_size()]);
                let ooff = codec.record_oob_offset(i);
                oob[ooff..ooff + cw.len()].copy_from_slice(&cw);
            }
        }
        match self.chip.reprogram_page(ppa, data, &oob) {
            Ok(()) => Ok(true),
            // Races we pre-checked can still lose to NOP/mode subtleties:
            // fall back to out-of-place rather than failing the write.
            Err(FlashError::NopExceeded { .. }) | Err(FlashError::IllegalOverwrite { .. }) => {
                Ok(false)
            }
            Err(e) => Err(e.into()),
        }
    }

    fn write_out_of_place(&mut self, lba: Lba, data: &[u8], codec: &OobCodec) -> Result<()> {
        self.ensure_free_space()?;
        let ppa = self.allocate()?;
        let oob = codec.encode_oob(data);
        self.program_or_stage(lba, ppa, data, oob)?;
        if let Some(old) = self.l2p[lba as usize].replace(ppa) {
            self.invalidate(old);
            self.stats.page_invalidations += 1;
        }
        let info = &mut self.blocks[ppa.block as usize];
        info.owner[ppa.page as usize] = Some(lba);
        info.valid += 1;
        Ok(())
    }

    /// The plane-pairing window. On a one-plane chip, program now (no
    /// copy, no staging — the historic path). On a multi-plane chip:
    /// complete a staged partner into one multi-plane command when the
    /// new slot aligns with it, otherwise flush the partner single-plane
    /// and park the newcomer for the next write.
    fn program_or_stage(&mut self, lba: Lba, ppa: Ppa, data: &[u8], oob: Vec<u8>) -> Result<()> {
        let g = self.chip.geometry();
        if g.planes <= 1 {
            return self.chip.program_page(ppa, data, &oob).map_err(Into::into);
        }
        if let Some(partner) = self.staged.take() {
            if g.plane_aligned(partner.ppa, ppa) {
                let pages = [
                    MultiPlaneWrite {
                        ppa: partner.ppa,
                        data: &partner.data,
                        oob: &partner.oob,
                    },
                    MultiPlaneWrite {
                        ppa,
                        data,
                        oob: &oob,
                    },
                ];
                self.chip.multi_plane_program(&pages)?;
                self.stats.multi_plane_pairs += 1;
                return Ok(());
            }
            self.chip
                .program_page(partner.ppa, &partner.data, &partner.oob)?;
        }
        self.staged = Some(StagedWrite {
            lba,
            ppa,
            data: data.to_vec(),
            oob,
        });
        Ok(())
    }

    /// Is a write parked in the plane-pairing window?
    #[inline]
    pub fn has_staged(&self) -> bool {
        self.staged.is_some()
    }

    /// Flush the pairing window: issue the parked single-plane program,
    /// if any. Called internally whenever something must observe the
    /// staged page on flash; public so barrier-style consumers (a device
    /// sync, a bench comparing flash counters) can settle the last write.
    pub fn drain_staged(&mut self) -> Result<()> {
        if let Some(s) = self.staged.take() {
            self.chip.program_page(s.ppa, &s.data, &s.oob)?;
        }
        Ok(())
    }

    /// Drain the pairing window before any operation that must observe
    /// `lba`'s bytes on flash (reads, overwrites, appends, trims).
    fn drain_staged_for(&mut self, lba: Lba) -> Result<()> {
        if self.staged.as_ref().is_some_and(|s| s.lba == lba) {
            self.drain_staged()?;
        }
        Ok(())
    }

    /// Internal bulk-read for migration/destage: the current page image
    /// of `lba`, ECC-verified, without touching the host read counters —
    /// firmware moving data around is not host traffic.
    pub fn migrate_read(&mut self, lba: Lba) -> Result<Vec<u8>> {
        self.check_lba(lba)?;
        self.drain_staged_for(lba)?;
        let ppa = self.l2p[lba as usize].ok_or(FtlError::UnmappedLba(lba))?;
        let mut img = self.chip.read_page(ppa)?;
        let codec = self.codec_for(lba);
        match codec.verify(&mut img.data, &img.oob) {
            Ok(o) => self.stats.ecc_corrected_bits += o.corrected_bits,
            Err(_) => {
                self.stats.uncorrectable_reads += 1;
                return Err(FtlError::Uncorrectable { lba });
            }
        }
        Ok(img.data)
    }

    /// Internal bulk-write for migration/destage batches, issued as
    /// cached (pipelined) program commands: each item gets the normal
    /// out-of-place allocation and L2P bookkeeping, but the page programs
    /// are deferred and flushed as [`Nand::cache_program`] batches so the
    /// transfers of later members hide behind earlier members' pulses.
    ///
    /// Safety against reclaim: a deferred page must never sit in a block
    /// GC could read or erase, so the pending batch is flushed whenever
    /// the free pool drops to where `ensure_free_space` would reclaim —
    /// GC then observes fully-programmed state. Blocks a batch member
    /// lives in are `Active` or just-`Closed`, and the flush-before-GC
    /// rule covers both. Host counters are *not* bumped: like GC
    /// copy-backs, this is firmware traffic (the flash counters record
    /// the programs, `FlashStats::cache_programs` the batches).
    pub fn write_batch_cached(&mut self, items: &[(Lba, Vec<u8>)]) -> Result<()> {
        // The pairing window would leave an unprogrammed host write
        // interleaved with the batch; settle it first.
        self.drain_staged()?;
        let reclaim_water = if self.config.background_gc {
            1
        } else {
            self.config.gc_low_water_blocks
        };
        let mut pending: Vec<(Ppa, Vec<u8>, Vec<u8>)> = Vec::new();
        for (lba, data) in items {
            let lba = *lba;
            self.check_lba(lba)?;
            if data.len() != self.page_size() {
                return Err(FtlError::SizeMismatch {
                    expected: self.page_size(),
                    got: data.len(),
                });
            }
            if (self.free_blocks.len() as u32) < reclaim_water {
                // ensure_free_space may reclaim: deferred pages must hit
                // the flash before GC can pick their blocks.
                self.flush_cached(&mut pending)?;
            }
            self.ensure_free_space()?;
            let ppa = self.allocate()?;
            let codec = self.codec_for(lba);
            let oob = codec.encode_oob(data);
            if let Some(old) = self.l2p[lba as usize].replace(ppa) {
                self.invalidate(old);
                self.stats.page_invalidations += 1;
            }
            let info = &mut self.blocks[ppa.block as usize];
            info.owner[ppa.page as usize] = Some(lba);
            info.valid += 1;
            pending.push((ppa, data.clone(), oob));
        }
        self.flush_cached(&mut pending)
    }

    /// Issue the deferred batch as one cached-program command.
    fn flush_cached(&mut self, pending: &mut Vec<(Ppa, Vec<u8>, Vec<u8>)>) -> Result<()> {
        if pending.is_empty() {
            return Ok(());
        }
        let writes: Vec<MultiPlaneWrite<'_>> = pending
            .iter()
            .map(|(ppa, data, oob)| MultiPlaneWrite {
                ppa: *ppa,
                data,
                oob,
            })
            .collect();
        self.chip.cache_program(&writes)?;
        pending.clear();
        Ok(())
    }
}

/// Is `new` writable over `old` without an erase (`1 → 0` only)?
#[inline]
pub fn overwrite_compatible(old: &[u8], new: &[u8]) -> bool {
    debug_assert_eq!(old.len(), new.len());
    old.iter().zip(new).all(|(&o, &n)| n & !o == 0)
}

impl<C: Nand> BlockDevice for Ftl<C> {
    fn page_size(&self) -> usize {
        self.chip.geometry().page_size
    }

    fn layout_for(&self, lba: Lba) -> Option<PageLayout> {
        Ftl::layout_for(self, lba)
    }

    fn capacity_pages(&self) -> u64 {
        self.capacity
    }

    fn read(&mut self, lba: Lba, buf: &mut [u8]) -> Result<()> {
        self.check_lba(lba)?;
        if buf.len() != self.page_size() {
            return Err(FtlError::SizeMismatch {
                expected: self.page_size(),
                got: buf.len(),
            });
        }
        self.drain_staged_for(lba)?;
        let ppa = self.l2p[lba as usize].ok_or(FtlError::UnmappedLba(lba))?;
        let img = self.chip.read_page(ppa)?;
        buf.copy_from_slice(&img.data);
        let codec = self.codec_for(lba);
        match codec.verify(buf, &img.oob) {
            Ok(o) => self.stats.ecc_corrected_bits += o.corrected_bits,
            Err(_) => {
                self.stats.uncorrectable_reads += 1;
                return Err(FtlError::Uncorrectable { lba });
            }
        }
        self.stats.host_reads += 1;
        self.stats.bytes_host_read += self.page_size() as u64;
        Ok(())
    }

    fn write(&mut self, lba: Lba, data: &[u8]) -> Result<()> {
        self.check_lba(lba)?;
        if data.len() != self.page_size() {
            return Err(FtlError::SizeMismatch {
                expected: self.page_size(),
                got: data.len(),
            });
        }
        self.drain_staged_for(lba)?;
        let codec = self.codec_for(lba);
        self.stats.host_writes += 1;
        self.stats.bytes_host_written += data.len() as u64;

        if self.config.in_place_detection && codec.layout().is_some() {
            if let Some(ppa) = self.l2p[lba as usize] {
                if self.try_in_place(ppa, data, &codec)? {
                    self.stats.in_place_appends += 1;
                    return Ok(());
                }
            }
        }
        self.write_out_of_place(lba, data, &codec)?;
        self.stats.out_of_place_writes += 1;
        Ok(())
    }

    fn trim(&mut self, lba: Lba) -> Result<()> {
        self.check_lba(lba)?;
        self.drain_staged_for(lba)?;
        if let Some(ppa) = self.l2p[lba as usize].take() {
            self.invalidate(ppa);
            self.stats.page_invalidations += 1;
        }
        Ok(())
    }

    fn is_mapped(&self, lba: Lba) -> bool {
        lba < self.capacity && self.l2p[lba as usize].is_some()
    }

    fn device_stats(&self) -> DeviceStats {
        self.queue.fold_into(self.stats)
    }

    fn flash_stats(&self) -> FlashStats {
        self.chip.flash_stats()
    }

    fn elapsed_ns(&self) -> u64 {
        self.chip.elapsed_ns()
    }

    fn max_erase_count(&self) -> u32 {
        self.chip.max_erase_count()
    }

    fn raw_blocks(&self) -> u32 {
        self.chip.geometry().blocks
    }
}

impl<C: Nand> NativeFlashDevice for Ftl<C> {
    fn write_delta(&mut self, lba: Lba, offset: usize, delta_bytes: &[u8]) -> Result<()> {
        self.check_lba(lba)?;
        self.drain_staged_for(lba)?;
        let ppa = self.l2p[lba as usize].ok_or(FtlError::UnmappedLba(lba))?;
        let layout = self
            .layout_for(lba)
            .ok_or(FtlError::LayoutRequired { lba })?;
        let codec = self.codec_for(lba);

        // The delta must be whole record slots starting at a slot boundary.
        let rs = layout.record_size();
        let area = layout.delta_area_offset();
        if offset < area || !(offset - area).is_multiple_of(rs) {
            return Err(FtlError::BadWriteDelta {
                lba,
                reason: "offset is not a record-slot boundary",
            });
        }
        if delta_bytes.is_empty() || !delta_bytes.len().is_multiple_of(rs) {
            return Err(FtlError::BadWriteDelta {
                lba,
                reason: "length is not a whole number of record slots",
            });
        }
        let first_slot = ((offset - area) / rs) as u16;
        let count = (delta_bytes.len() / rs) as u16;
        if first_slot + count > layout.scheme.n {
            return Err(FtlError::BadWriteDelta {
                lba,
                reason: "append beyond the delta-record area",
            });
        }

        // Physical-page policy: the mode decides whether this page may be
        // re-programmed at all.
        if !self.chip.mode().ipa_safe(ppa.page) && !self.config.allow_unsafe_ipa {
            return Err(FtlError::InPlaceRejected {
                lba,
                cause: FlashError::PageNotUsable { ppa },
            });
        }

        // Per-record ECC codewords, appended to their OOB slots.
        let mut oob_bytes = Vec::with_capacity(count as usize * 4);
        for k in 0..count {
            let r = &delta_bytes[k as usize * rs..(k as usize + 1) * rs];
            oob_bytes.extend_from_slice(&codec.encode_record(r));
        }
        let oob_off = codec.record_oob_offset(first_slot);

        match self
            .chip
            .append_region(ppa, offset, delta_bytes, oob_off, &oob_bytes)
        {
            Ok(()) => {
                self.stats.host_write_deltas += 1;
                self.stats.in_place_appends += 1;
                self.stats.bytes_host_written += delta_bytes.len() as u64;
                Ok(())
            }
            Err(cause @ (FlashError::NopExceeded { .. } | FlashError::IllegalOverwrite { .. })) => {
                Err(FtlError::InPlaceRejected { lba, cause })
            }
            Err(e) => Err(e.into()),
        }
    }
}

/// The queued face of a single flash target. There is no scheduler
/// between the FTL and the chip here, so every request completes the
/// moment it is submitted — `submitted_ns`/`done_ns` bracket the chip
/// time the request consumed, and `poll` has nothing left to wait for.
/// (The die-striped [`crate::ShardedFtl`] is where submission and
/// completion genuinely separate.)
impl<C: Nand> IoQueue for Ftl<C> {
    fn submit(&mut self, req: IoRequest) -> Result<IoToken> {
        let submitted = self.chip.elapsed_ns();
        let mut data = Vec::new();
        let mut rejected = Vec::new();
        match &req {
            // No scheduler behind a single chip: the priority lane is
            // plain FIFO here, but the request stays accepted so hosts
            // can program against one queue contract.
            IoRequest::ReadV(lbas) | IoRequest::HighPriorityReadV(lbas) => {
                for &lba in lbas {
                    let mut buf = vec![0u8; self.page_size()];
                    BlockDevice::read(self, lba, &mut buf)?;
                    data.push(buf);
                }
            }
            IoRequest::WriteV(pages) => {
                for (lba, page) in pages {
                    BlockDevice::write(self, *lba, page)?;
                }
            }
            IoRequest::WriteDelta { lba, offset, delta } => {
                self.write_delta(*lba, *offset, delta)?;
            }
            IoRequest::WriteDeltaV(members) => {
                for (i, (lba, offset, delta)) in members.iter().enumerate() {
                    match self.write_delta(*lba, *offset, delta) {
                        Ok(()) => {}
                        Err(FtlError::InPlaceRejected { .. }) => rejected.push(i),
                        Err(e) => return Err(e),
                    }
                }
            }
            IoRequest::Trim(lba) => self.trim(*lba)?,
            IoRequest::Flush => self.drain_staged()?,
        }
        self.queue.count_request(&req);
        let done = self.chip.elapsed_ns();
        Ok(self
            .queue
            .complete_with_rejections(data, rejected, submitted, done))
    }

    fn poll(&mut self, token: IoToken) -> Option<IoCompletion> {
        self.queue.take(token)
    }

    fn poll_checked(&mut self, token: IoToken) -> Result<IoCompletion> {
        self.queue.take_checked(token)
    }

    fn sync(&mut self) -> u64 {
        self.drain_staged().expect("draining a staged program");
        self.chip.elapsed_ns()
    }

    fn forget(&mut self, token: IoToken) {
        self.queue.forget(token);
    }

    fn note_readahead_hit(&mut self) {
        self.queue.readahead_hits += 1;
    }

    fn note_wal_stripe_write(&mut self) {
        self.queue.wal_stripe_writes += 1;
    }

    fn note_wal_stripe_reclaimed(&mut self) {
        self.queue.wal_stripes_reclaimed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_core::{DeltaRecord, NmScheme};
    use ipa_flash::{DeviceConfig, DisturbRates, FlashMode, Geometry};

    fn layout(page_size: usize) -> PageLayout {
        PageLayout::new(page_size, 24, 8, NmScheme::new(2, 4))
    }

    fn chip(mode: FlashMode) -> FlashChip {
        FlashChip::new(
            DeviceConfig::new(Geometry::new(16, 8, 2048, 64), mode)
                .with_disturb(DisturbRates::none()),
        )
    }

    fn page(fill: u8, l: &PageLayout) -> Vec<u8> {
        let mut p = vec![fill; l.page_size];
        l.wipe_delta_area(&mut p);
        p
    }

    #[test]
    fn write_read_round_trip() {
        let mut ftl = Ftl::new(chip(FlashMode::Slc), FtlConfig::traditional());
        let data = vec![0x5Au8; 2048];
        ftl.write(3, &data).unwrap();
        let mut buf = vec![0u8; 2048];
        ftl.read(3, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(ftl.device_stats().host_writes, 1);
        assert_eq!(ftl.device_stats().host_reads, 1);
    }

    #[test]
    fn unmapped_read_errors() {
        let mut ftl = Ftl::new(chip(FlashMode::Slc), FtlConfig::traditional());
        let mut buf = vec![0u8; 2048];
        assert!(matches!(
            ftl.read(7, &mut buf),
            Err(FtlError::UnmappedLba(7))
        ));
    }

    #[test]
    fn out_of_range_lba_rejected() {
        let mut ftl = Ftl::new(chip(FlashMode::Slc), FtlConfig::traditional());
        let cap = ftl.capacity_pages();
        let data = vec![0u8; 2048];
        assert!(matches!(
            ftl.write(cap, &data),
            Err(FtlError::LbaOutOfRange { .. })
        ));
    }

    #[test]
    fn overwrite_invalidates_old_page() {
        let mut ftl = Ftl::new(chip(FlashMode::Slc), FtlConfig::traditional());
        let data = vec![0x11u8; 2048];
        ftl.write(0, &data).unwrap();
        ftl.write(0, &data).unwrap();
        let s = ftl.device_stats();
        assert_eq!(s.out_of_place_writes, 2);
        assert_eq!(s.page_invalidations, 1);
        assert_eq!(s.in_place_appends, 0);
    }

    #[test]
    fn sustained_overwrites_trigger_gc() {
        let mut ftl = Ftl::new(chip(FlashMode::Slc), FtlConfig::traditional());
        let data = vec![0x22u8; 2048];
        // 16 blocks × 8 pages; hammer a small working set far past raw
        // capacity so GC must run.
        for i in 0..600u64 {
            ftl.write(i % 8, &data).unwrap();
        }
        let s = ftl.device_stats();
        assert!(s.gc_erases > 0, "GC must have erased blocks");
        assert_eq!(s.out_of_place_writes, 600);
        // Everything is still readable.
        let mut buf = vec![0u8; 2048];
        for i in 0..8u64 {
            ftl.read(i, &mut buf).unwrap();
        }
    }

    #[test]
    fn gc_preserves_all_data() {
        let mut ftl = Ftl::new(chip(FlashMode::Slc), FtlConfig::traditional());
        let cap = ftl.capacity_pages();
        // Fill most of the device with distinct content, then churn.
        for lba in 0..cap {
            let data = vec![(lba % 251) as u8; 2048];
            ftl.write(lba, &data).unwrap();
        }
        for round in 0..4u64 {
            for lba in 0..cap / 2 {
                let data = vec![((lba + round) % 251) as u8; 2048];
                ftl.write(lba, &data).unwrap();
            }
        }
        let mut buf = vec![0u8; 2048];
        for lba in 0..cap {
            ftl.read(lba, &mut buf).unwrap();
            let expect = if lba < cap / 2 {
                ((lba + 3) % 251) as u8
            } else {
                (lba % 251) as u8
            };
            assert!(buf.iter().all(|&b| b == expect), "lba {lba} corrupted");
        }
    }

    #[test]
    fn conventional_ipa_detects_append() {
        let l = layout(2048);
        let mut ftl = Ftl::new(chip(FlashMode::PSlc), FtlConfig::ipa_conventional(l));
        let original = page(0x5A, &l);
        ftl.write(0, &original).unwrap();

        // Build an appended image the way the tracker would.
        let mut image = original.clone();
        let rec = DeltaRecord::new(vec![(30, 0x42)], vec![1; l.meta_len()], l.scheme);
        ipa_core::write_record_into(&mut image, &l, 0, &rec);
        ftl.write(0, &image).unwrap();

        let s = ftl.device_stats();
        assert_eq!(s.in_place_appends, 1);
        assert_eq!(s.out_of_place_writes, 1);
        assert_eq!(s.page_invalidations, 0, "no invalidation on append");

        // Read returns the appended image, ECC-clean.
        let mut buf = vec![0u8; 2048];
        ftl.read(0, &mut buf).unwrap();
        assert_eq!(buf, image);
    }

    #[test]
    fn conventional_ipa_falls_back_on_body_change() {
        let l = layout(2048);
        let mut ftl = Ftl::new(chip(FlashMode::PSlc), FtlConfig::ipa_conventional(l));
        let original = page(0x5A, &l);
        ftl.write(0, &original).unwrap();
        // Change a body byte 0x5A → 0x5B (needs a 0→1 bit): not compatible.
        let mut image = original.clone();
        image[100] = 0x5B;
        ftl.write(0, &image).unwrap();
        let s = ftl.device_stats();
        assert_eq!(s.in_place_appends, 0);
        assert_eq!(s.out_of_place_writes, 2);
        assert_eq!(s.page_invalidations, 1);
    }

    #[test]
    fn write_delta_appends_natively() {
        let l = layout(2048);
        let mut ftl = Ftl::new(chip(FlashMode::PSlc), FtlConfig::ipa_native(l));
        let original = page(0xA5, &l);
        ftl.write(5, &original).unwrap();
        let written_before = ftl.device_stats().bytes_host_written;

        let rec = DeltaRecord::new(vec![(40, 0x0F)], vec![2; l.meta_len()], l.scheme);
        let bytes = rec.encode(&l);
        ftl.write_delta(5, l.record_offset(0), &bytes).unwrap();

        let s = ftl.device_stats();
        assert_eq!(s.host_write_deltas, 1);
        assert_eq!(s.in_place_appends, 1);
        assert_eq!(
            s.bytes_host_written - written_before,
            bytes.len() as u64,
            "write_delta transfers only the record"
        );

        // The record is on the same physical page and ECC-verifiable.
        let mut buf = vec![0u8; 2048];
        ftl.read(5, &mut buf).unwrap();
        let recs = ipa_core::scan_records(&buf, &l);
        assert_eq!(recs, vec![rec]);
    }

    #[test]
    fn write_delta_requires_layout() {
        let mut ftl = Ftl::new(chip(FlashMode::PSlc), FtlConfig::traditional());
        let data = vec![0xFFu8; 2048];
        ftl.write(0, &data).unwrap();
        assert!(matches!(
            ftl.write_delta(0, 1900, &[0u8; 45]),
            Err(FtlError::LayoutRequired { .. })
        ));
    }

    #[test]
    fn write_delta_validates_slot_alignment() {
        let l = layout(2048);
        let mut ftl = Ftl::new(chip(FlashMode::PSlc), FtlConfig::ipa_native(l));
        ftl.write(0, &page(0xFF, &l)).unwrap();
        let rec = DeltaRecord::new(vec![], vec![0; l.meta_len()], l.scheme).encode(&l);
        assert!(matches!(
            ftl.write_delta(0, l.record_offset(0) + 1, &rec),
            Err(FtlError::BadWriteDelta { .. })
        ));
        assert!(matches!(
            ftl.write_delta(0, l.record_offset(0), &rec[..10]),
            Err(FtlError::BadWriteDelta { .. })
        ));
    }

    #[test]
    fn write_delta_beyond_area_rejected() {
        let l = layout(2048);
        let mut ftl = Ftl::new(chip(FlashMode::PSlc), FtlConfig::ipa_native(l));
        ftl.write(0, &page(0xFF, &l)).unwrap();
        let rec = DeltaRecord::new(vec![], vec![0; l.meta_len()], l.scheme).encode(&l);
        let three = [rec.clone(), rec.clone(), rec].concat();
        assert!(matches!(
            ftl.write_delta(0, l.record_offset(0), &three),
            Err(FtlError::BadWriteDelta { .. })
        ));
    }

    #[test]
    fn odd_mlc_rejects_delta_on_msb_pages() {
        let l = layout(2048);
        let mut ftl = Ftl::new(chip(FlashMode::OddMlc), FtlConfig::ipa_native(l));
        // Fill several LBAs: allocation alternates LSB/MSB physical pages.
        let img = page(0xFF, &l);
        for lba in 0..4 {
            ftl.write(lba, &img).unwrap();
        }
        let rec = DeltaRecord::new(vec![], vec![0; l.meta_len()], l.scheme).encode(&l);
        let mut rejected = 0;
        let mut accepted = 0;
        for lba in 0..4 {
            match ftl.write_delta(lba, l.record_offset(0), &rec) {
                Ok(()) => accepted += 1,
                Err(FtlError::InPlaceRejected { .. }) => rejected += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(accepted, 2, "LSB-backed LBAs accept appends");
        assert_eq!(rejected, 2, "MSB-backed LBAs reject appends");
    }

    #[test]
    fn nop_exhaustion_surfaces_as_rejection() {
        let l = layout(2048);
        let cfg = DeviceConfig::new(Geometry::new(16, 8, 2048, 64), FlashMode::PSlc)
            .with_disturb(DisturbRates::none())
            .with_nop(2); // 1 initial program + 1 append
        let mut ftl = Ftl::new(FlashChip::new(cfg), FtlConfig::ipa_native(l));
        ftl.write(0, &page(0xFF, &l)).unwrap();
        let rec = DeltaRecord::new(vec![], vec![0; l.meta_len()], l.scheme).encode(&l);
        ftl.write_delta(0, l.record_offset(0), &rec).unwrap();
        assert!(matches!(
            ftl.write_delta(0, l.record_offset(1), &rec),
            Err(FtlError::InPlaceRejected { .. })
        ));
    }

    #[test]
    fn trim_unmaps() {
        let mut ftl = Ftl::new(chip(FlashMode::Slc), FtlConfig::traditional());
        let data = vec![0u8; 2048];
        ftl.write(0, &data).unwrap();
        ftl.trim(0).unwrap();
        let mut buf = vec![0u8; 2048];
        assert!(matches!(
            ftl.read(0, &mut buf),
            Err(FtlError::UnmappedLba(0))
        ));
        assert_eq!(ftl.device_stats().page_invalidations, 1);
    }

    #[test]
    fn pslc_halves_capacity() {
        let slc = Ftl::new(chip(FlashMode::Slc), FtlConfig::traditional());
        let pslc = Ftl::new(chip(FlashMode::PSlc), FtlConfig::traditional());
        assert_eq!(pslc.capacity_pages() * 2, slc.capacity_pages());
    }

    #[test]
    fn background_steps_refill_the_pool_incrementally() {
        let mut ftl = Ftl::new(
            chip(FlashMode::Slc),
            FtlConfig::traditional().with_background_gc(),
        );
        let data = vec![0x33u8; 2048];
        // Hammer a hot set until the pool drops below the low-water mark.
        // Under background_gc the write path must NOT refill it inline.
        let mut i = 0u64;
        while ftl.free_block_count() >= ftl.gc_low_water() {
            ftl.write(i % 8, &data).unwrap();
            i += 1;
        }
        assert_eq!(ftl.device_stats().gc_erases, 0, "no inline low-water GC");
        assert!(ftl.gc_pending(ftl.gc_low_water()));

        // Step the reclaim to completion one command at a time.
        let low = ftl.gc_low_water();
        let mut migrations = 0;
        loop {
            match ftl.background_gc_step(low).unwrap() {
                GcProgress::Migrated => migrations += 1,
                GcProgress::Erased => {
                    if !ftl.gc_pending(low) {
                        break;
                    }
                }
                GcProgress::Idle => break,
            }
            ftl.check_invariants();
        }
        let s = ftl.device_stats();
        assert!(s.gc_erases > 0);
        assert_eq!(s.background_gc_erases, s.gc_erases);
        assert_eq!(s.gc_page_migrations, migrations);
        assert!(ftl.free_block_count() >= low);
        // Everything is still readable.
        let mut buf = vec![0u8; 2048];
        for lba in 0..8u64 {
            ftl.read(lba, &mut buf).unwrap();
        }
        ftl.check_invariants();
    }

    #[test]
    fn host_writes_interleave_safely_with_a_pending_reclaim() {
        // Host overwrites of LBAs whose valid copy sits in the half-
        // reclaimed victim must invalidate them; the remaining steps then
        // skip those pages, and nothing is lost or duplicated.
        let mut ftl = Ftl::new(
            chip(FlashMode::Slc),
            FtlConfig::traditional().with_background_gc(),
        );
        let fill = |v: u8| vec![v; 2048];
        for i in 0..600u64 {
            ftl.write(i % 10, &fill((i % 251) as u8)).unwrap();
            // Interleave at most one background step per host write —
            // exactly the maintenance scheduler's dispatch pattern.
            ftl.background_gc_step(ftl.gc_low_water()).unwrap();
            if i % 37 == 0 {
                ftl.check_invariants();
            }
        }
        let s = ftl.device_stats();
        assert!(s.background_gc_erases > 0, "background GC must have run");
        let mut buf = vec![0u8; 2048];
        for lba in 0..10u64 {
            ftl.read(lba, &mut buf).unwrap();
            let expect = ((590 + lba) % 251) as u8;
            assert!(buf.iter().all(|&b| b == expect), "lba {lba} corrupted");
        }
        ftl.check_invariants();
    }

    #[test]
    fn pending_victim_is_never_reselected() {
        let mut ftl = Ftl::new(
            chip(FlashMode::Slc),
            FtlConfig::traditional().with_background_gc(),
        );
        let data = vec![0x44u8; 2048];
        // Fill the device (every block fully valid), then invalidate one
        // page per early block — victims carry mostly-valid pages, so the
        // first reclaim step is a migration, not an erase.
        let cap = ftl.capacity_pages();
        for lba in 0..cap {
            ftl.write(lba, &data).unwrap();
        }
        ftl.write(0, &data).unwrap();
        ftl.write(8, &data).unwrap();
        // Start a job and leave it half-done.
        assert_eq!(ftl.background_gc_step(8).unwrap(), GcProgress::Migrated);
        let busy = ftl
            .pending_job
            .as_ref()
            .expect("job left in flight")
            .victim();
        assert_ne!(
            ftl.select_gc_victim(),
            Some(busy),
            "victim selection must skip the in-flight block"
        );
        // Emergency inline GC (pool exhausted) drains the pending job
        // rather than double-reclaiming.
        for i in 0..3 * cap {
            ftl.write(i % 8, &data).unwrap();
        }
        assert!(ftl.pending_job.is_none(), "emergency path drained the job");
        ftl.check_invariants();
    }

    #[test]
    fn inline_and_stepped_reclaim_reach_the_same_state() {
        // Same op stream: low-water inline GC vs externally stepped
        // background GC must expose identical host-visible bytes.
        let run = |background: bool| -> Vec<Vec<u8>> {
            let config = if background {
                FtlConfig::traditional().with_background_gc()
            } else {
                FtlConfig::traditional()
            };
            let mut ftl = Ftl::new(chip(FlashMode::Slc), config);
            for i in 0..700u64 {
                let data = vec![((i * 7) % 251) as u8; 2048];
                ftl.write(i % 12, &data).unwrap();
                if background {
                    // A generous budget: up to 4 steps per write.
                    for _ in 0..4 {
                        if ftl.background_gc_step(ftl.gc_low_water()).unwrap() == GcProgress::Idle {
                            break;
                        }
                    }
                }
            }
            (0..12u64)
                .map(|lba| {
                    let mut buf = vec![0u8; 2048];
                    ftl.read(lba, &mut buf).unwrap();
                    buf
                })
                .collect()
        };
        assert_eq!(run(false), run(true));
    }

    fn plane_chip(planes: u32) -> FlashChip {
        FlashChip::new(
            DeviceConfig::new(
                Geometry::new(16, 8, 2048, 64).with_planes(planes),
                FlashMode::Slc,
            )
            .with_disturb(DisturbRates::none()),
        )
    }

    #[test]
    fn consecutive_writes_pair_into_multi_plane_programs() {
        let mut ftl = Ftl::new(plane_chip(2), FtlConfig::traditional());
        let data = vec![0x5Au8; 2048];
        for lba in 0..8u64 {
            ftl.write(lba, &data).unwrap();
        }
        let d = ftl.device_stats();
        let f = ftl.flash_stats();
        assert!(
            d.multi_plane_pairs >= 3,
            "a write burst must pair almost every slot: {d:?}"
        );
        assert_eq!(f.multi_plane_programs, d.multi_plane_pairs);
        // Everything reads back (including a possibly still-staged tail).
        let mut buf = vec![0u8; 2048];
        for lba in 0..8u64 {
            ftl.read(lba, &mut buf).unwrap();
            assert_eq!(buf, data);
        }
        ftl.check_invariants();
    }

    #[test]
    fn staged_write_is_drained_by_reads_overwrites_and_trims() {
        let mut ftl = Ftl::new(plane_chip(2), FtlConfig::traditional());
        let a = vec![0x11u8; 2048];
        let b = vec![0x22u8; 2048];
        // Lone write: parked in the pairing window, flash page untouched.
        ftl.write(0, &a).unwrap();
        assert!(ftl.staged.is_some(), "a lone write stages");
        let mut buf = vec![0u8; 2048];
        ftl.read(0, &mut buf).unwrap();
        assert_eq!(buf, a, "read drains the window first");
        assert!(ftl.staged.is_none());

        // Overwrite of the staged LBA: drain, then the overwrite proceeds.
        ftl.write(1, &a).unwrap();
        assert!(ftl.staged.is_some());
        ftl.write(1, &b).unwrap();
        ftl.read(1, &mut buf).unwrap();
        assert_eq!(buf, b);

        // Trim of a staged LBA leaves it unmapped, not resurrected.
        ftl.write(2, &a).unwrap();
        ftl.trim(2).unwrap();
        assert!(matches!(
            ftl.read(2, &mut buf),
            Err(FtlError::UnmappedLba(2))
        ));
        ftl.check_invariants();
    }

    #[test]
    fn plane_churn_with_gc_matches_single_plane_logical_state() {
        // The same op stream on a 1-plane and a 2-plane chip (identical
        // block count) must expose identical host-visible bytes, straight
        // through GC over plane-local victims and pairing windows.
        let run = |planes: u32| -> Vec<Vec<u8>> {
            let mut ftl = Ftl::new(plane_chip(planes), FtlConfig::traditional());
            for i in 0..700u64 {
                let data = vec![((i * 13) % 251) as u8; 2048];
                ftl.write(i % 10, &data).unwrap();
                if i % 7 == 0 {
                    let mut buf = vec![0u8; 2048];
                    ftl.read(i % 10, &mut buf).unwrap();
                }
                if i % 97 == 0 {
                    ftl.check_invariants();
                }
            }
            assert!(ftl.device_stats().gc_erases > 0, "churn must trip GC");
            (0..10u64)
                .map(|lba| {
                    let mut buf = vec![0u8; 2048];
                    ftl.read(lba, &mut buf).unwrap();
                    buf
                })
                .collect()
        };
        let single = run(1);
        assert_eq!(single, run(2));
        assert_eq!(single, run(4));
    }

    #[test]
    fn paired_writes_double_program_bandwidth() {
        // The tentpole's point at FTL level: the same write burst finishes
        // in well under the single-plane time.
        let elapsed = |planes: u32| -> u64 {
            let mut ftl = Ftl::new(plane_chip(planes), FtlConfig::traditional());
            let data = vec![0x3Cu8; 2048];
            for lba in 0..32u64 {
                ftl.write(lba, &data).unwrap();
            }
            ftl.drain_staged().unwrap(); // flush the tail: comparable times
            ftl.elapsed_ns()
        };
        let single = elapsed(1);
        let dual = elapsed(2);
        assert!(
            2 * single >= 3 * dual,
            "2 planes must be ≥1.5× program bandwidth: {dual} vs {single} ns"
        );
    }

    #[test]
    fn background_gc_steps_stay_correct_on_multi_plane_chips() {
        let mut ftl = Ftl::new(plane_chip(2), FtlConfig::traditional().with_background_gc());
        let data = vec![0x44u8; 2048];
        let mut i = 0u64;
        while ftl.free_block_count() >= ftl.gc_low_water() {
            ftl.write(i % 8, &data).unwrap();
            i += 1;
        }
        let low = ftl.gc_low_water();
        while ftl.gc_pending(low) {
            ftl.background_gc_step(low).unwrap();
            ftl.check_invariants();
        }
        assert!(ftl.device_stats().background_gc_erases > 0);
        let mut buf = vec![0u8; 2048];
        for lba in 0..8u64 {
            ftl.read(lba, &mut buf).unwrap();
            assert_eq!(buf, data);
        }
    }

    #[test]
    fn queued_face_completes_immediately_on_a_single_chip() {
        let mut ftl = Ftl::new(chip(FlashMode::Slc), FtlConfig::traditional());
        let pages: Vec<(Lba, Vec<u8>)> = (0..4).map(|i| (i, vec![i as u8; 2048])).collect();
        let w = ftl.submit(IoRequest::WriteV(pages)).unwrap();
        let wc = ftl.poll(w).expect("write completion");
        assert!(wc.done_ns >= wc.submitted_ns);
        assert!(wc.data.is_empty());

        let r = ftl.submit(IoRequest::ReadV(vec![2, 0, 3])).unwrap();
        let rc = ftl.poll(r).expect("read completion");
        assert_eq!(rc.data.len(), 3);
        assert_eq!(rc.data[0], vec![2u8; 2048]);
        assert_eq!(rc.data[1], vec![0u8; 2048]);
        assert_eq!(rc.data[2], vec![3u8; 2048]);
        assert_eq!(
            rc.done_ns,
            ftl.elapsed_ns(),
            "immediate completion: done is the chip clock"
        );
        assert!(ftl.poll(r).is_none(), "completions are taken once");

        let t = ftl.submit(IoRequest::Trim(1)).unwrap();
        ftl.forget(t);
        let mut buf = vec![0u8; 2048];
        assert!(matches!(
            ftl.read(1, &mut buf),
            Err(FtlError::UnmappedLba(1))
        ));

        let d = ftl.device_stats();
        assert_eq!(d.vectored_writes, 1);
        assert_eq!(d.vectored_reads, 1);
        assert_eq!(d.host_writes, 4);
    }

    #[test]
    fn queued_counters_ignore_single_page_vectors() {
        let mut ftl = Ftl::new(chip(FlashMode::Slc), FtlConfig::traditional());
        let w = ftl
            .submit(IoRequest::WriteV(vec![(0, vec![7u8; 2048])]))
            .unwrap();
        ftl.poll(w).unwrap();
        let r = ftl.submit(IoRequest::ReadV(vec![0])).unwrap();
        ftl.poll(r).unwrap();
        let d = ftl.device_stats();
        assert_eq!(d.vectored_writes, 0, "a one-page vector is not vectored");
        assert_eq!(d.vectored_reads, 0);
        ftl.note_readahead_hit();
        ftl.note_wal_stripe_write();
        let d = ftl.device_stats();
        assert_eq!(d.readahead_hits, 1);
        assert_eq!(d.wal_stripe_writes, 1);
    }

    #[test]
    fn in_place_appends_reduce_gc_pressure() {
        // The paper's core claim at device level: the same logical write
        // stream causes fewer erases with IPA than without.
        let l = layout(2048);
        let run = |ipa: bool| -> (u64, u64) {
            let mut ftl = if ipa {
                Ftl::new(chip(FlashMode::PSlc), FtlConfig::ipa_conventional(l))
            } else {
                Ftl::new(chip(FlashMode::PSlc), FtlConfig::traditional())
            };
            let base = page(0xFF, &l);
            for lba in 0..8u64 {
                ftl.write(lba, &base).unwrap();
            }
            // Alternate appended images and full rewrites 2:1.
            for round in 0..120u64 {
                for lba in 0..8u64 {
                    if ipa && round % 3 != 0 {
                        let slot = (round % 3 - 1) as u16;
                        let mut img = vec![0u8; 2048];
                        ftl.read(lba, &mut img).unwrap();
                        let rec = DeltaRecord::new(
                            vec![(40 + round as u16 % 4, 0x00)],
                            vec![0; l.meta_len()],
                            l.scheme,
                        );
                        ipa_core::write_record_into(&mut img, &l, slot, &rec);
                        ftl.write(lba, &img).unwrap();
                    } else {
                        ftl.write(lba, &base).unwrap();
                    }
                }
            }
            let s = ftl.device_stats();
            (s.gc_erases, s.page_invalidations)
        };
        let (erases_trad, inval_trad) = run(false);
        let (erases_ipa, inval_ipa) = run(true);
        assert!(
            inval_ipa < inval_trad / 2,
            "IPA must invalidate far fewer pages ({inval_ipa} vs {inval_trad})"
        );
        assert!(
            erases_ipa < erases_trad,
            "IPA must erase less ({erases_ipa} vs {erases_trad})"
        );
    }
}
