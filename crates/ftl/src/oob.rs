//! OOB-area codec — Figure 3's `ECC_initial … ECC_delta_rec 1..N` layout.
//!
//! The OOB area of every flash page holds:
//!
//! ```text
//! ┌──────────────────────────────┬──────────┬───┬──────────┐
//! │ ECC_initial (k codewords)    │ ECC_rec 0│ … │ ECC_rec N-1 │ … erased
//! └──────────────────────────────┴──────────┴───┴──────────┘
//! ```
//!
//! * `ECC_initial` covers the page image *minus the delta-record area*
//!   (header + body + footer) — the bytes that never change between an
//!   out-of-place write and the next erase.
//! * `ECC_rec i` covers delta record slot `i` alone and is appended into
//!   its own erased OOB slot together with the record, so the append stays
//!   a legal `1 → 0` program on both planes.
//!
//! Without an IPA layout the whole page is covered by `ECC_initial`.

use ipa_core::PageLayout;
use ipa_flash::ecc::{
    check_region, codewords_for, encode_chunk, encode_region, Codeword, EccOutcome, CHUNK,
    CODEWORD_BYTES,
};

/// Per-page-format OOB codec.
#[derive(Debug, Clone)]
pub struct OobCodec {
    page_size: usize,
    oob_size: usize,
    layout: Option<PageLayout>,
    initial_codewords: usize,
}

/// Result of verifying a page against its OOB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// Bits corrected across the initial region and all records.
    pub corrected_bits: u64,
}

/// The page had more bit errors than SECDED can repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UncorrectableError;

impl std::fmt::Display for UncorrectableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "uncorrectable ECC error")
    }
}

impl std::error::Error for UncorrectableError {}

impl OobCodec {
    /// Build a codec; panics if the OOB area cannot hold the codewords the
    /// format needs (a configuration error, caught at device setup).
    pub fn new(page_size: usize, oob_size: usize, layout: Option<PageLayout>) -> Self {
        if let Some(l) = &layout {
            assert_eq!(l.page_size, page_size, "layout/page size mismatch");
            assert!(
                l.record_size() <= CHUNK,
                "delta record ({} B) exceeds one ECC chunk ({CHUNK} B)",
                l.record_size()
            );
        }
        let initial_len = match &layout {
            Some(l) => page_size - l.delta_area_len(),
            None => page_size,
        };
        let initial_codewords = codewords_for(initial_len);
        let records = layout.as_ref().map(|l| l.scheme.n as usize).unwrap_or(0);
        let needed = (initial_codewords + records) * CODEWORD_BYTES;
        assert!(
            needed <= oob_size,
            "OOB too small: need {needed} B (ECC_initial {initial_codewords} cw + {records} \
             record cw), have {oob_size} B"
        );
        OobCodec {
            page_size,
            oob_size,
            layout,
            initial_codewords,
        }
    }

    #[inline]
    pub fn layout(&self) -> Option<&PageLayout> {
        self.layout.as_ref()
    }

    /// OOB byte offset of delta record `i`'s codeword.
    #[inline]
    pub fn record_oob_offset(&self, i: u16) -> usize {
        (self.initial_codewords + i as usize) * CODEWORD_BYTES
    }

    /// The bytes `ECC_initial` covers, concatenated (everything except the
    /// delta-record area).
    fn initial_region(&self, page: &[u8]) -> Vec<u8> {
        match &self.layout {
            Some(l) => {
                let r = l.delta_area_range();
                let mut v = Vec::with_capacity(self.page_size - l.delta_area_len());
                v.extend_from_slice(&page[..r.start]);
                v.extend_from_slice(&page[r.end..]);
                v
            }
            None => page.to_vec(),
        }
    }

    /// Scatter a (possibly corrected) initial region back into the page.
    fn restore_initial_region(&self, page: &mut [u8], region: &[u8]) {
        match &self.layout {
            Some(l) => {
                let r = l.delta_area_range();
                page[..r.start].copy_from_slice(&region[..r.start]);
                page[r.end..].copy_from_slice(&region[r.start..]);
            }
            None => page.copy_from_slice(region),
        }
    }

    /// Build the full OOB image for an out-of-place page write: initial
    /// codewords, record codewords for any records already present in the
    /// image (GC migrations carry them along), erased elsewhere.
    pub fn encode_oob(&self, page: &[u8]) -> Vec<u8> {
        debug_assert_eq!(page.len(), self.page_size);
        let mut oob = vec![0xFFu8; self.oob_size];
        let region = self.initial_region(page);
        for (i, cw) in encode_region(&region).into_iter().enumerate() {
            let off = i * CODEWORD_BYTES;
            oob[off..off + CODEWORD_BYTES].copy_from_slice(&cw.to_bytes());
        }
        if let Some(l) = &self.layout {
            for i in 0..l.scheme.n {
                let slot = self.record_slice(page, i);
                if slot[0] != 0xFF {
                    let cw = encode_chunk(slot);
                    let off = self.record_oob_offset(i);
                    oob[off..off + CODEWORD_BYTES].copy_from_slice(&cw.to_bytes());
                }
            }
        }
        oob
    }

    /// Codeword bytes for one delta record slot image (the OOB append that
    /// accompanies a `write_delta`).
    pub fn encode_record(&self, record_bytes: &[u8]) -> [u8; CODEWORD_BYTES] {
        encode_chunk(record_bytes).to_bytes()
    }

    fn record_slice<'a>(&self, page: &'a [u8], i: u16) -> &'a [u8] {
        let l = self.layout.as_ref().expect("record access requires layout");
        let off = l.record_offset(i);
        &page[off..off + l.record_size()]
    }

    /// Verify a page image against its OOB, correcting single-bit errors
    /// in place.
    pub fn verify(&self, page: &mut [u8], oob: &[u8]) -> Result<VerifyOutcome, UncorrectableError> {
        debug_assert_eq!(page.len(), self.page_size);
        debug_assert_eq!(oob.len(), self.oob_size);
        let mut corrected = 0u64;

        // 1. Initial region.
        let mut region = self.initial_region(page);
        let mut codewords = Vec::with_capacity(self.initial_codewords);
        for i in 0..self.initial_codewords {
            let off = i * CODEWORD_BYTES;
            let slot: &[u8; CODEWORD_BYTES] = oob[off..off + CODEWORD_BYTES]
                .try_into()
                .expect("slot width");
            match Codeword::from_bytes(slot) {
                Some(cw) => codewords.push(cw),
                // Erased codeword for a programmed page: treat as data
                // loss (write path always writes ECC_initial).
                None => return Err(UncorrectableError),
            }
        }
        match check_region(&mut region, &codewords) {
            Ok(n) => corrected += n as u64,
            Err(_) => return Err(UncorrectableError),
        }
        self.restore_initial_region(page, &region);

        // 2. Delta records: verify exactly those slots whose OOB codeword
        //    was written. The OOB marker is authoritative — a disturbed
        //    control byte in the data area cannot fabricate a record.
        if let Some(l) = self.layout {
            for i in 0..l.scheme.n {
                let off = self.record_oob_offset(i);
                let slot: &[u8; CODEWORD_BYTES] = oob[off..off + CODEWORD_BYTES]
                    .try_into()
                    .expect("slot width");
                let Some(cw) = Codeword::from_bytes(slot) else {
                    continue;
                };
                let roff = l.record_offset(i);
                let rec = &mut page[roff..roff + l.record_size()];
                match ipa_flash::ecc::check_chunk(rec, cw) {
                    EccOutcome::Clean => {}
                    EccOutcome::Corrected { .. } => corrected += 1,
                    EccOutcome::Uncorrectable => return Err(UncorrectableError),
                }
            }
        }
        Ok(VerifyOutcome {
            corrected_bits: corrected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_core::{write_record_into, DeltaRecord, NmScheme};

    fn layout() -> PageLayout {
        PageLayout::new(2048, 24, 8, NmScheme::new(2, 4))
    }

    fn codec() -> OobCodec {
        OobCodec::new(2048, 64, Some(layout()))
    }

    fn sample_page(l: &PageLayout) -> Vec<u8> {
        let mut p: Vec<u8> = (0..l.page_size).map(|i| (i % 251) as u8).collect();
        l.wipe_delta_area(&mut p);
        p
    }

    #[test]
    fn clean_page_verifies() {
        let l = layout();
        let c = codec();
        let mut page = sample_page(&l);
        let oob = c.encode_oob(&page);
        let out = c.verify(&mut page, &oob).unwrap();
        assert_eq!(out.corrected_bits, 0);
    }

    #[test]
    fn corrects_body_flip() {
        let l = layout();
        let c = codec();
        let mut page = sample_page(&l);
        let oob = c.encode_oob(&page);
        let original = page.clone();
        page[100] ^= 0x40;
        let out = c.verify(&mut page, &oob).unwrap();
        assert_eq!(out.corrected_bits, 1);
        assert_eq!(page, original);
    }

    #[test]
    fn detects_double_flip_in_one_chunk() {
        let l = layout();
        let c = codec();
        let mut page = sample_page(&l);
        let oob = c.encode_oob(&page);
        page[10] ^= 1;
        page[11] ^= 1;
        assert!(c.verify(&mut page, &oob).is_err());
    }

    #[test]
    fn record_append_round_trip() {
        let l = layout();
        let c = codec();
        let mut page = sample_page(&l);
        let mut oob = c.encode_oob(&page);

        // Append record 0 the way write_delta would.
        let rec = DeltaRecord::new(vec![(30, 0x77)], vec![1; l.meta_len()], l.scheme);
        write_record_into(&mut page, &l, 0, &rec);
        let roff = l.record_offset(0);
        let cw = c.encode_record(&page[roff..roff + l.record_size()]);
        let ooff = c.record_oob_offset(0);
        oob[ooff..ooff + CODEWORD_BYTES].copy_from_slice(&cw);

        let out = c.verify(&mut page, &oob).unwrap();
        assert_eq!(out.corrected_bits, 0);

        // Flip one bit inside the record: corrected independently.
        let original = page.clone();
        page[roff + 2] ^= 0x08;
        let out = c.verify(&mut page, &oob).unwrap();
        assert_eq!(out.corrected_bits, 1);
        assert_eq!(page, original);
    }

    #[test]
    fn disturbed_control_byte_without_oob_marker_is_ignored() {
        // A 1→0 disturb flip can make an erased control byte (0xFF) look
        // "present" (bit 7 cleared). The OOB marker is the authority: no
        // codeword ⇒ slot not verified, and decode-side sanity checks
        // reject the garbage.
        let l = layout();
        let c = codec();
        let mut page = sample_page(&l);
        let oob = c.encode_oob(&page);
        let roff = l.record_offset(0);
        page[roff] &= 0x7F; // disturb: control byte bit 7 → 0
                            // Initial region does not cover the delta area, so verify passes.
        assert!(c.verify(&mut page, &oob).is_ok());
    }

    #[test]
    fn plain_codec_covers_whole_page() {
        let c = OobCodec::new(2048, 64, None);
        let mut page: Vec<u8> = (0..2048).map(|i| (i % 7) as u8).collect();
        let oob = c.encode_oob(&page);
        page[2000] ^= 2;
        let out = c.verify(&mut page, &oob).unwrap();
        assert_eq!(out.corrected_bits, 1);
    }

    #[test]
    fn erased_initial_codeword_is_data_loss() {
        let c = OobCodec::new(2048, 64, None);
        let mut page = vec![0u8; 2048];
        let oob = vec![0xFFu8; 64];
        assert!(c.verify(&mut page, &oob).is_err());
    }

    #[test]
    #[should_panic(expected = "OOB too small")]
    fn oversubscribed_oob_rejected() {
        // 2048-byte page → 4 initial codewords (16 B) + 16 records (64 B)
        // = 80 B > 32 B.
        let l = PageLayout::new(2048, 24, 8, NmScheme::new(16, 4));
        let _ = OobCodec::new(2048, 32, Some(l));
    }

    #[test]
    fn record_oob_offsets_follow_initial_codewords() {
        let c = codec();
        // 2048 - 90 = 1958 bytes → 4 codewords → records start at 16.
        assert_eq!(c.record_oob_offset(0), 16);
        assert_eq!(c.record_oob_offset(1), 20);
    }
}
