//! Die-striped FTL: one sub-FTL per die behind the multi-channel
//! controller, with host LBAs striped across the dies.
//!
//! [`ShardedFtl`] exports the same [`BlockDevice`] / [`NativeFlashDevice`]
//! contract as a single [`Ftl`], but maps each host LBA to a
//! `(die, sub-LBA)` pair and routes the command through that die's
//! scheduled handle. Two stripe policies:
//!
//! * [`StripePolicy::RoundRobin`] — `die = lba % dies`. Consecutive pages
//!   alternate channels (die `d` sits on channel `d % channels`), so
//!   sequential scans and read-ahead get maximal bus overlap.
//! * [`StripePolicy::Hash`] — `die = splitmix64(lba) % dies`. Decorrelates
//!   the stripe from access patterns that are themselves strided.
//!
//! Sub-LBAs are assigned by a per-die counter while scanning host LBAs in
//! order. Because the counter is monotonic, the host LBAs of one region
//! (a contiguous host range) land in a *contiguous* sub-LBA range on every
//! die — which is what lets each shard keep an ordinary [`RegionTable`]
//! and preserve per-region IPA semantics (NoFTL-region layouts, selective
//! formatting) under any stripe policy.
//!
//! GC, wear levelling and over-provisioning run independently per die,
//! exactly like the per-die FTL partitions in real multi-die SSD firmware.
//!
//! ## Threading
//!
//! The stripe is `Send + Sync`: the controller is shared by `Arc`, each
//! shard sits behind its own mutex (die-local traffic from different
//! threads contends only when it lands on the same die), and the queued
//! bookkeeping has a small lock of its own. Every operation is available
//! through `&self` (`submit_io`/`poll_io`/`sync`/...); the `&mut`
//! [`IoQueue`]/[`BlockDevice`] trait impls forward to them, so a
//! single-owner caller pays one uncontended lock per shard touch and the
//! threaded driver shares a plain `Arc<ShardedFtl>`.

use std::sync::{Arc, Mutex, MutexGuard};

use ipa_controller::{ControllerConfig, ControllerStats, DieHandle, FlashController};
use ipa_core::PageLayout;
use ipa_flash::FlashStats;

use crate::error::{FtlError, Lba, Result};
use crate::ftl::{exported_capacity, Ftl, FtlConfig};
use crate::interface::{
    BlockDevice, IoCompletion, IoQueue, IoRequest, IoToken, NativeFlashDevice, SubmissionState,
};
use crate::region::{Region, RegionTable};
use crate::stats::DeviceStats;

/// Poison-transparent lock (a panicking sibling thread must not wedge
/// invariant checks and stats reads — shard state is plain data).
fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// How host LBAs are spread across dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StripePolicy {
    /// `die = lba % dies`: adjacent LBAs on adjacent dies/channels.
    RoundRobin,
    /// `die = splitmix64(lba) % dies`: pattern-independent spread.
    Hash,
}

impl StripePolicy {
    /// The die a host LBA stripes to.
    #[inline]
    pub fn die_of(self, lba: Lba, dies: u32) -> u32 {
        match self {
            StripePolicy::RoundRobin => (lba % dies as u64) as u32,
            StripePolicy::Hash => (splitmix64(lba) % dies as u64) as u32,
        }
    }
}

/// SplitMix64 finalizer — cheap, deterministic, well-mixed.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A die-striped FTL over a [`FlashController`].
pub struct ShardedFtl {
    ctrl: Arc<FlashController>,
    shards: Vec<Mutex<Ftl<DieHandle>>>,
    /// Host LBA → (die, sub-LBA). Immutable after construction, so the
    /// hot translation path never takes a lock.
    map: Vec<(u32, Lba)>,
    policy: StripePolicy,
    capacity: u64,
    /// Queued-interface bookkeeping (tokens, buffered completions).
    queue: Mutex<SubmissionState>,
}

// Shared across host threads by the fleet and the threaded driver.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardedFtl>();
};

impl ShardedFtl {
    /// Stripe over a controller topology with an empty region table.
    pub fn new(cfg: ControllerConfig, ftl_config: FtlConfig, policy: StripePolicy) -> Self {
        Self::with_regions(cfg, ftl_config, policy, RegionTable::new())
    }

    /// Stripe over a controller topology with host-level NoFTL regions.
    /// Region LBA ranges refer to *host* LBAs; they are translated into
    /// per-die sub-LBA regions here.
    pub fn with_regions(
        cfg: ControllerConfig,
        ftl_config: FtlConfig,
        policy: StripePolicy,
        regions: RegionTable,
    ) -> Self {
        let dies = cfg.dies();
        let shard_cap = exported_capacity(&cfg.chip.geometry, cfg.chip.mode, &ftl_config);

        // Assign sub-LBAs die by die, in host-LBA order, until some die
        // fills up — the host space must stay contiguous, so the first
        // full die caps the exported capacity (round-robin loses nothing;
        // hash loses a sliver to stripe imbalance).
        let mut map: Vec<(u32, Lba)> = Vec::with_capacity((dies as u64 * shard_cap) as usize);
        let mut counters = vec![0u64; dies as usize];
        for lba in 0..dies as u64 * shard_cap {
            let die = policy.die_of(lba, dies);
            let sub = counters[die as usize];
            if sub >= shard_cap {
                break;
            }
            counters[die as usize] += 1;
            map.push((die, sub));
        }
        let capacity = map.len() as u64;

        // Translate host regions into per-die sub-LBA regions. Contiguity
        // of each (region × die) sub-range is guaranteed by the monotonic
        // counters above.
        let mut per_die: Vec<RegionTable> = (0..dies).map(|_| RegionTable::new()).collect();
        for r in regions.iter() {
            assert!(
                r.lbas.end <= capacity,
                "region '{}' ends at {} but the striped device exports {} pages",
                r.name,
                r.lbas.end,
                capacity
            );
            let mut bounds: Vec<Option<(Lba, Lba)>> = vec![None; dies as usize];
            for lba in r.lbas.clone() {
                let (die, sub) = map[lba as usize];
                let b = &mut bounds[die as usize];
                *b = match *b {
                    None => Some((sub, sub + 1)),
                    Some((lo, hi)) => Some((lo.min(sub), hi.max(sub + 1))),
                };
            }
            for (die, b) in bounds.into_iter().enumerate() {
                if let Some((lo, hi)) = b {
                    per_die[die].add(Region {
                        name: r.name.clone(),
                        lbas: lo..hi,
                        layout: r.layout,
                    });
                }
            }
        }

        let ctrl = FlashController::shared(cfg);
        let shards = FlashController::handles(&ctrl)
            .into_iter()
            .zip(per_die)
            .map(|(handle, regions)| {
                Mutex::new(Ftl::with_regions(handle, ftl_config.clone(), regions))
            })
            .collect();
        ShardedFtl {
            ctrl,
            shards,
            map,
            policy,
            capacity,
            queue: Mutex::new(SubmissionState::default()),
        }
    }

    /// The controller behind the stripes.
    pub fn controller(&self) -> &Arc<FlashController> {
        &self.ctrl
    }

    /// Scheduler counters (queue waits, bus occupancy, depths).
    pub fn controller_stats(&self) -> ControllerStats {
        self.ctrl.stats()
    }

    /// Barrier: flush every shard's plane-pairing window (a parked write
    /// has been acknowledged but not yet programmed), then wait for every
    /// posted command on every die; returns the merged simulated time.
    pub fn sync(&self) -> u64 {
        for s in &self.shards {
            lock(s).drain_staged().expect("draining a staged program");
        }
        self.ctrl.sync()
    }

    /// Number of dies the stripe spans.
    pub fn dies(&self) -> u32 {
        self.shards.len() as u32
    }

    /// Stripe policy in force.
    pub fn policy(&self) -> StripePolicy {
        self.policy
    }

    /// One die's sub-FTL, locked for the guard's lifetime. The guard
    /// derefs mutably, so this covers both inspection and the maintenance
    /// scheduler's reclaim stepping; keep it short-lived — the die's host
    /// traffic from other threads queues behind it.
    pub fn shard(&self, die: u32) -> MutexGuard<'_, Ftl<DieHandle>> {
        lock(&self.shards[die as usize])
    }

    /// Alias of [`ShardedFtl::shard`] kept for the historical `&mut`
    /// accessor's call sites.
    pub fn shard_mut(&self, die: u32) -> MutexGuard<'_, Ftl<DieHandle>> {
        self.shard(die)
    }

    /// Host LBA → (die, sub-LBA) translation.
    #[inline]
    pub fn locate(&self, lba: Lba) -> Result<(u32, Lba)> {
        self.map
            .get(lba as usize)
            .copied()
            .ok_or(FtlError::LbaOutOfRange {
                lba,
                capacity: self.capacity,
            })
    }

    /// Run every shard's exhaustive invariant check.
    pub fn check_invariants(&self) {
        for s in &self.shards {
            lock(s).check_invariants();
        }
    }

    /// Every host LBA currently striped to `die`, in host order — the
    /// candidate pool a placement policy picks hot/cold migration pairs
    /// from. O(capacity); call from planning, not hot paths.
    pub fn host_lbas_on_die(&self, die: u32) -> Vec<Lba> {
        self.map
            .iter()
            .enumerate()
            .filter(|(_, &(d, _))| d == die)
            .map(|(lba, _)| lba as Lba)
            .collect()
    }

    /// Re-stripe two host LBAs by swapping the physical slots they map
    /// to — the wear-shifting primitive: pairing a hot LBA on a worn die
    /// with a cold LBA on a healthy die moves the hot LBA's future erase
    /// pressure off the worn die without losing capacity.
    ///
    /// Both images (when mapped) are read out, cross-written — each via a
    /// cached-program batch — and the stripe map entries exchanged; an
    /// unmapped side trims its new slot instead. Returns `false` without
    /// touching anything when the swap is ineligible: identical LBAs, or
    /// slots whose region layouts differ (an LBA's append format must
    /// survive the move, and a slot's layout belongs to the slot).
    ///
    /// Takes `&mut self`, so the borrow checker serializes it against all
    /// host traffic — the maintenance scheduler runs it from its
    /// exclusive poll, exactly like GC stepping.
    pub fn swap_stripe(&mut self, a: Lba, b: Lba) -> Result<bool> {
        if a == b {
            return Ok(false);
        }
        let (da, sa) = self.locate(a)?;
        let (db, sb) = self.locate(b)?;
        let la = lock(&self.shards[da as usize]).layout_for(sa);
        let lb = lock(&self.shards[db as usize]).layout_for(sb);
        if la != lb {
            return Ok(false);
        }
        let img_a = {
            let mut s = lock(&self.shards[da as usize]);
            if s.is_mapped(sa) {
                Some(s.migrate_read(sa)?)
            } else {
                None
            }
        };
        let img_b = {
            let mut s = lock(&self.shards[db as usize]);
            if s.is_mapped(sb) {
                Some(s.migrate_read(sb)?)
            } else {
                None
            }
        };
        {
            let mut s = lock(&self.shards[db as usize]);
            match img_a {
                Some(img) => s.write_batch_cached(&[(sb, img)])?,
                None => s.trim(sb)?,
            }
        }
        {
            let mut s = lock(&self.shards[da as usize]);
            match img_b {
                Some(img) => s.write_batch_cached(&[(sa, img)])?,
                None => s.trim(sa)?,
            }
        }
        self.map[a as usize] = (db, sb);
        self.map[b as usize] = (da, sa);
        Ok(true)
    }

    /// Bulk-write full host pages, grouped per die and issued as cached
    /// (pipelined) program batches — the hot-tier destage entry. Like GC
    /// copy-backs this is firmware traffic: host counters stay untouched
    /// while the flash layer records the programs and batches.
    pub fn write_batch_cached(&mut self, items: &[(Lba, Vec<u8>)]) -> Result<()> {
        let mut per_die: Vec<Vec<(Lba, Vec<u8>)>> = vec![Vec::new(); self.shards.len()];
        for (lba, data) in items {
            let (die, sub) = self.locate(*lba)?;
            per_die[die as usize].push((sub, data.clone()));
        }
        for (die, batch) in per_die.into_iter().enumerate() {
            if !batch.is_empty() {
                lock(&self.shards[die]).write_batch_cached(&batch)?;
            }
        }
        Ok(())
    }
}

impl BlockDevice for ShardedFtl {
    fn page_size(&self) -> usize {
        lock(&self.shards[0]).page_size()
    }

    fn capacity_pages(&self) -> u64 {
        self.capacity
    }

    fn read(&mut self, lba: Lba, buf: &mut [u8]) -> Result<()> {
        self.read_shared(lba, buf)
    }

    fn write(&mut self, lba: Lba, data: &[u8]) -> Result<()> {
        self.write_shared(lba, data)
    }

    fn trim(&mut self, lba: Lba) -> Result<()> {
        self.trim_shared(lba)
    }

    fn is_mapped(&self, lba: Lba) -> bool {
        self.locate(lba)
            .map(|(die, sub)| lock(&self.shards[die as usize]).is_mapped(sub))
            .unwrap_or(false)
    }

    fn layout_for(&self, lba: Lba) -> Option<PageLayout> {
        let (die, sub) = self.locate(lba).ok()?;
        lock(&self.shards[die as usize]).layout_for(sub)
    }

    fn device_stats(&self) -> DeviceStats {
        let merged = self.shards.iter().fold(DeviceStats::default(), |acc, s| {
            acc.merged(&lock(s).device_stats())
        });
        lock(&self.queue).fold_into(merged)
    }

    fn flash_stats(&self) -> FlashStats {
        self.ctrl.flash_stats()
    }

    fn elapsed_ns(&self) -> u64 {
        // The merged view: as if the host synced right now.
        self.ctrl.elapsed_ns()
    }

    fn max_erase_count(&self) -> u32 {
        self.ctrl.max_erase_count()
    }

    fn raw_blocks(&self) -> u32 {
        self.shards.len() as u32 * lock(&self.shards[0]).raw_blocks()
    }

    fn controller_stats(&self) -> Option<ControllerStats> {
        Some(self.ctrl.stats())
    }

    fn set_submission_clock_ns(&mut self, ns: u64) {
        self.ctrl.set_host_ns(ns);
    }

    fn submission_clock_ns(&self) -> u64 {
        self.ctrl.host_ns()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

impl NativeFlashDevice for ShardedFtl {
    fn write_delta(&mut self, lba: Lba, offset: usize, delta_bytes: &[u8]) -> Result<()> {
        let (die, sub) = self.locate(lba)?;
        lock(&self.shards[die as usize]).write_delta(sub, offset, delta_bytes)
    }
}

impl ShardedFtl {
    /// Blocking point read through `&self` — the threaded driver's entry.
    /// Rides the priority lane: under a QoS-scheduled controller it may
    /// jump posted bulk work on its die; without QoS the lane degenerates
    /// to exactly the plain vectored-read path.
    pub fn read_shared(&self, lba: Lba, buf: &mut [u8]) -> Result<()> {
        let page_size = self.page_size_shared();
        if buf.len() != page_size {
            return Err(FtlError::SizeMismatch {
                expected: page_size,
                got: buf.len(),
            });
        }
        let token = self.submit_io(IoRequest::HighPriorityReadV(vec![lba]))?;
        let completion = self.poll_io(token).expect("fresh token completes");
        buf.copy_from_slice(&completion.data[0]);
        Ok(())
    }

    /// Page write through `&self`.
    pub fn write_shared(&self, lba: Lba, data: &[u8]) -> Result<()> {
        let (die, sub) = self.locate(lba)?;
        lock(&self.shards[die as usize]).write(sub, data)
    }

    /// Trim through `&self`.
    pub fn trim_shared(&self, lba: Lba) -> Result<()> {
        let (die, sub) = self.locate(lba)?;
        lock(&self.shards[die as usize]).trim(sub)
    }

    /// Page size without the `&mut` trait receiver.
    pub fn page_size_shared(&self) -> usize {
        lock(&self.shards[0]).page_size()
    }

    /// One member of a vectored read, routed to its die. Called inside a
    /// posted-read window, so the read issues from the vector's
    /// submission instant and its completion lands in the window horizon
    /// instead of the host clock.
    fn read_member(&self, lba: Lba) -> Result<Vec<u8>> {
        let (die, sub) = self.locate(lba)?;
        let mut shard = lock(&self.shards[die as usize]);
        let mut buf = vec![0u8; shard.page_size()];
        shard.read(sub, &mut buf)?;
        Ok(buf)
    }

    /// Completion horizon of the die a posted member landed on: the
    /// instant its queued work (this member included) drains.
    fn die_horizon(&self, die: u32) -> u64 {
        self.ctrl.host_ns() + self.ctrl.die_busy_ns(die)
    }

    /// The native queued face of the stripe through `&self`: vectored
    /// requests fan out across dies/channels as posted controller
    /// commands and complete at the max of the per-die completion
    /// horizons. This is where the queued API genuinely buys time — the
    /// members of a `ReadV` over round-robin neighbours sense and
    /// transfer concurrently, where the sync loop paid them serially.
    pub fn submit_io(&self, req: IoRequest) -> Result<IoToken> {
        let submitted = self.ctrl.host_ns();
        let mut done = submitted;
        let mut data = Vec::new();
        let mut rejected = Vec::new();
        match &req {
            IoRequest::ReadV(lbas) | IoRequest::HighPriorityReadV(lbas) => {
                let priority = matches!(req, IoRequest::HighPriorityReadV(_));
                if priority {
                    self.ctrl.begin_priority_reads();
                } else {
                    self.ctrl.begin_posted_reads();
                }
                let mut result = Ok(());
                for &lba in lbas {
                    match self.read_member(lba) {
                        Ok(buf) => data.push(buf),
                        Err(e) => {
                            result = Err(e);
                            break;
                        }
                    }
                }
                // Close the window even on a failed member, then surface
                // the error (earlier members' state effects stand).
                let horizon = if priority {
                    self.ctrl.end_priority_reads()
                } else {
                    self.ctrl.end_posted_reads()
                };
                done = done.max(horizon);
                if let Err(e) = result {
                    // No completion will ever surface these members:
                    // retire them from the outstanding horizon.
                    self.ctrl.note_posted_reads_polled(data.len() as u64);
                    return Err(e);
                }
            }
            IoRequest::WriteV(pages) => {
                for (lba, page) in pages {
                    let (die, sub) = self.locate(*lba)?;
                    lock(&self.shards[die as usize]).write(sub, page)?;
                    done = done.max(self.die_horizon(die));
                }
            }
            IoRequest::WriteDelta { lba, offset, delta } => {
                let (die, sub) = self.locate(*lba)?;
                lock(&self.shards[die as usize]).write_delta(sub, *offset, delta)?;
                done = done.max(self.die_horizon(die));
            }
            IoRequest::WriteDeltaV(members) => {
                // The evict path's batched appends: members post to their
                // dies back-to-back and overlap like any vectored write;
                // a per-member in-place rejection is reported, not fatal.
                for (i, (lba, offset, delta)) in members.iter().enumerate() {
                    let (die, sub) = self.locate(*lba)?;
                    match lock(&self.shards[die as usize]).write_delta(sub, *offset, delta) {
                        Ok(()) => done = done.max(self.die_horizon(die)),
                        Err(FtlError::InPlaceRejected { .. }) => rejected.push(i),
                        Err(e) => return Err(e),
                    }
                }
            }
            IoRequest::Trim(lba) => {
                let (die, sub) = self.locate(*lba)?;
                lock(&self.shards[die as usize]).trim(sub)?;
            }
            IoRequest::Flush => {
                // A write barrier, not a time barrier: only dies whose
                // pairing window actually drained contribute to the
                // completion — other streams' unrelated posted work must
                // not be pulled into this client's wait.
                let mut drained = Vec::new();
                for (die, s) in self.shards.iter().enumerate() {
                    let mut s = lock(s);
                    if s.has_staged() {
                        s.drain_staged()?;
                        drained.push(die as u32);
                    }
                }
                for die in drained {
                    done = done.max(self.die_horizon(die));
                }
            }
        }
        let mut queue = lock(&self.queue);
        queue.count_request(&req);
        Ok(queue.complete_with_rejections(data, rejected, submitted, done))
    }

    /// Poll through `&self` (see [`IoQueue::poll`]).
    pub fn poll_io(&self, token: IoToken) -> Option<IoCompletion> {
        let completion = lock(&self.queue).take(token)?;
        self.finish_poll(&completion);
        Some(completion)
    }

    /// Poll with typed misuse detection (see [`IoQueue::poll_checked`]).
    pub fn poll_io_checked(&self, token: IoToken) -> Result<IoCompletion> {
        let completion = lock(&self.queue).take_checked(token)?;
        self.finish_poll(&completion);
        Ok(completion)
    }

    fn finish_poll(&self, completion: &IoCompletion) {
        // Waiting for a completion is what moves the submitting client's
        // clock — a completion already in the past costs nothing. The
        // monotone advance makes the wait safe under concurrent pollers.
        self.ctrl.advance_host_ns(completion.done_ns);
        self.ctrl
            .note_posted_reads_polled(completion.data.len() as u64);
    }

    /// Native delta append through `&self` (see
    /// [`NativeFlashDevice::write_delta`]).
    pub fn write_delta_shared(&self, lba: Lba, offset: usize, delta_bytes: &[u8]) -> Result<()> {
        let (die, sub) = self.locate(lba)?;
        lock(&self.shards[die as usize]).write_delta(sub, offset, delta_bytes)
    }

    /// [`IoQueue::note_readahead_hit`] through `&self`.
    pub fn note_readahead_hit_shared(&self) {
        lock(&self.queue).readahead_hits += 1;
    }

    /// [`IoQueue::note_wal_stripe_write`] through `&self`.
    pub fn note_wal_stripe_write_shared(&self) {
        lock(&self.queue).wal_stripe_writes += 1;
    }

    /// [`IoQueue::note_wal_stripe_reclaimed`] through `&self`.
    pub fn note_wal_stripe_reclaimed_shared(&self) {
        lock(&self.queue).wal_stripes_reclaimed += 1;
    }

    /// Forget through `&self` (see [`IoQueue::forget`]).
    pub fn forget_io(&self, token: IoToken) {
        // Retire the abandoned completion from the controller's
        // posted-read horizon: an unforgotten forget left the outstanding
        // gauge drifting and `sync` accounting for data nobody wants.
        if let Some(completion) = lock(&self.queue).forget(token) {
            self.ctrl
                .retire_forgotten_reads(completion.data.len() as u64);
        }
    }
}

impl IoQueue for ShardedFtl {
    fn submit(&mut self, req: IoRequest) -> Result<IoToken> {
        self.submit_io(req)
    }

    fn poll(&mut self, token: IoToken) -> Option<IoCompletion> {
        self.poll_io(token)
    }

    fn poll_checked(&mut self, token: IoToken) -> Result<IoCompletion> {
        self.poll_io_checked(token)
    }

    fn sync(&mut self) -> u64 {
        ShardedFtl::sync(self)
    }

    fn forget(&mut self, token: IoToken) {
        self.forget_io(token)
    }

    fn note_readahead_hit(&mut self) {
        lock(&self.queue).readahead_hits += 1;
    }

    fn note_wal_stripe_write(&mut self) {
        lock(&self.queue).wal_stripe_writes += 1;
    }

    fn note_wal_stripe_reclaimed(&mut self) {
        lock(&self.queue).wal_stripes_reclaimed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_core::NmScheme;
    use ipa_flash::{DeviceConfig, DisturbRates, FlashMode, Geometry};

    fn chip_cfg() -> DeviceConfig {
        DeviceConfig::new(Geometry::new(16, 8, 2048, 64), FlashMode::Slc)
            .with_disturb(DisturbRates::none())
    }

    fn sharded(channels: u32, dpc: u32, policy: StripePolicy) -> ShardedFtl {
        ShardedFtl::new(
            ControllerConfig::new(channels, dpc, chip_cfg()),
            FtlConfig::traditional(),
            policy,
        )
    }

    #[test]
    fn round_robin_striping_is_exact() {
        let s = sharded(2, 2, StripePolicy::RoundRobin);
        let single = Ftl::new(
            ipa_flash::FlashChip::new(chip_cfg()),
            FtlConfig::traditional(),
        );
        assert_eq!(
            s.capacity_pages(),
            4 * single.capacity_pages(),
            "round-robin wastes nothing"
        );
        for lba in 0..s.capacity_pages() {
            let (die, sub) = s.locate(lba).unwrap();
            assert_eq!(die as u64, lba % 4);
            assert_eq!(sub, lba / 4);
        }
    }

    #[test]
    fn hash_striping_is_collision_free_and_covers_all_dies() {
        let s = sharded(4, 2, StripePolicy::Hash);
        let mut seen = std::collections::HashSet::new();
        let mut per_die = [0u64; 8];
        for lba in 0..s.capacity_pages() {
            let (die, sub) = s.locate(lba).unwrap();
            assert!(seen.insert((die, sub)), "duplicate physical slot");
            per_die[die as usize] += 1;
        }
        assert!(per_die.iter().all(|&n| n > 0), "every die gets a stripe");
        // Hash striping trades a sliver of capacity for balance.
        let single_cap = Ftl::new(
            ipa_flash::FlashChip::new(chip_cfg()),
            FtlConfig::traditional(),
        )
        .capacity_pages();
        assert!(s.capacity_pages() <= 8 * single_cap);
        assert!(
            s.capacity_pages() > 8 * single_cap / 2,
            "imbalance should cost far less than half the capacity"
        );
    }

    #[test]
    fn write_read_round_trip_across_dies() {
        for policy in [StripePolicy::RoundRobin, StripePolicy::Hash] {
            let mut s = sharded(2, 2, policy);
            let n = 64u64;
            for lba in 0..n {
                let data = vec![(lba % 251) as u8; 2048];
                s.write(lba, &data).unwrap();
            }
            let mut buf = vec![0u8; 2048];
            for lba in 0..n {
                s.read(lba, &mut buf).unwrap();
                assert!(
                    buf.iter().all(|&b| b == (lba % 251) as u8),
                    "{policy:?}: lba {lba} corrupted"
                );
            }
            s.check_invariants();
            let d = s.device_stats();
            assert_eq!(d.host_writes, n);
            assert_eq!(d.host_reads, n);
            // All four dies saw traffic.
            for die in 0..4 {
                assert!(
                    s.shard(die).device_stats().host_writes > 0,
                    "{policy:?}: die {die} idle"
                );
            }
        }
    }

    #[test]
    fn out_of_range_lba_rejected() {
        let mut s = sharded(1, 2, StripePolicy::RoundRobin);
        let cap = s.capacity_pages();
        let data = vec![0u8; 2048];
        assert!(matches!(
            s.write(cap, &data),
            Err(FtlError::LbaOutOfRange { .. })
        ));
    }

    #[test]
    fn trim_unmaps_on_the_right_die() {
        let mut s = sharded(2, 1, StripePolicy::RoundRobin);
        let data = vec![0u8; 2048];
        s.write(3, &data).unwrap(); // die 1 under 2-die round-robin
        s.trim(3).unwrap();
        let mut buf = vec![0u8; 2048];
        assert!(matches!(s.read(3, &mut buf), Err(FtlError::UnmappedLba(_))));
        assert_eq!(s.shard(1).device_stats().page_invalidations, 1);
        assert_eq!(s.shard(0).device_stats().page_invalidations, 0);
    }

    #[test]
    fn host_regions_translate_to_contiguous_shard_regions() {
        let page = 2048;
        let layout = PageLayout::new(page, 24, 8, NmScheme::new(2, 4));
        for policy in [StripePolicy::RoundRobin, StripePolicy::Hash] {
            let mut regions = RegionTable::new();
            regions.add(Region {
                name: "hot".into(),
                lbas: 0..40,
                layout: Some(layout),
            });
            regions.add(Region {
                name: "cold".into(),
                lbas: 40..80,
                layout: None,
            });
            let s = ShardedFtl::with_regions(
                ControllerConfig::new(2, 2, chip_cfg()),
                FtlConfig::ipa_native(layout),
                policy,
                regions,
            );
            for lba in 0..40 {
                assert!(
                    BlockDevice::layout_for(&s, lba).is_some(),
                    "{policy:?}: hot lba {lba} lost its IPA layout"
                );
            }
            for lba in 40..80 {
                assert!(
                    BlockDevice::layout_for(&s, lba).is_none(),
                    "{policy:?}: cold lba {lba} gained a layout"
                );
            }
            // Past the regions: the device default applies.
            assert!(BlockDevice::layout_for(&s, 100).is_some());
        }
    }

    #[test]
    fn write_delta_appends_through_the_stripe() {
        use ipa_core::DeltaRecord;
        let page = 2048;
        let layout = PageLayout::new(page, 24, 8, NmScheme::new(2, 4));
        let cfg = ControllerConfig::new(
            2,
            2,
            DeviceConfig::new(Geometry::new(16, 8, page, 64), FlashMode::PSlc)
                .with_disturb(DisturbRates::none()),
        );
        let mut s = ShardedFtl::new(cfg, FtlConfig::ipa_native(layout), StripePolicy::RoundRobin);
        let mut img = vec![0xA5u8; page];
        layout.wipe_delta_area(&mut img);
        for lba in 0..8u64 {
            s.write(lba, &img).unwrap();
        }
        let rec = DeltaRecord::new(vec![(40, 0x0F)], vec![2; layout.meta_len()], layout.scheme);
        let bytes = rec.encode(&layout);
        for lba in 0..8u64 {
            s.write_delta(lba, layout.record_offset(0), &bytes).unwrap();
        }
        let d = s.device_stats();
        assert_eq!(d.host_write_deltas, 8);
        assert_eq!(d.in_place_appends, 8);
        let mut buf = vec![0u8; page];
        s.read(5, &mut buf).unwrap();
        assert_eq!(ipa_core::scan_records(&buf, &layout), vec![rec]);
    }

    #[test]
    fn parallel_writes_beat_the_single_die_stripe() {
        let run = |channels, dpc| -> u64 {
            let mut s = sharded(channels, dpc, StripePolicy::RoundRobin);
            let data = vec![0x5Au8; 2048];
            for lba in 0..64u64 {
                s.write(lba, &data).unwrap();
            }
            s.sync()
        };
        let single = run(1, 1);
        let eight = run(4, 2);
        assert!(
            eight * 2 < single,
            "8 dies must be >2× faster on a parallel write burst: {eight} vs {single}"
        );
    }

    #[test]
    fn plane_pairing_flows_through_stripe_and_scheduler() {
        // Multi-plane chips behind the controller: per-die sub-FTLs pair
        // their writes into multi-plane commands (one posted command, one
        // die-busy window) and the striped device stays faster than its
        // single-plane twin on a write burst.
        let run = |planes: u32| -> (u64, DeviceStats) {
            let chip = DeviceConfig::new(
                Geometry::new(16, 8, 2048, 64).with_planes(planes),
                FlashMode::Slc,
            )
            .with_disturb(DisturbRates::none());
            let mut s = ShardedFtl::new(
                ControllerConfig::new(2, 1, chip),
                FtlConfig::traditional(),
                StripePolicy::RoundRobin,
            );
            let data = vec![0x66u8; 2048];
            for lba in 0..64u64 {
                s.write(lba, &data).unwrap();
            }
            let mut buf = vec![0u8; 2048];
            for lba in 0..64u64 {
                s.read(lba, &mut buf).unwrap();
                assert!(buf.iter().all(|&b| b == 0x66), "lba {lba} corrupted");
            }
            s.check_invariants();
            (s.sync(), s.device_stats())
        };
        let (t1, d1) = run(1);
        let (t2, d2) = run(2);
        assert_eq!(d1.multi_plane_pairs, 0);
        assert!(
            d2.multi_plane_pairs >= 24,
            "striped write burst must pair per die: {d2:?}"
        );
        assert!(
            t2 < t1,
            "2-plane stripe must beat single-plane: {t2} vs {t1} ns"
        );
    }

    #[test]
    fn matches_single_ftl_logical_state_under_churn() {
        // Device-level parity: the same host op stream produces the same
        // host-visible bytes whether or not the device stripes, even once
        // per-die GC kicks in.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut single = Ftl::new(
            ipa_flash::FlashChip::new(chip_cfg().with_geometry(Geometry::new(64, 8, 2048, 64))),
            FtlConfig::traditional(),
        );
        let mut striped = ShardedFtl::new(
            ControllerConfig::new(2, 2, chip_cfg()),
            FtlConfig::traditional(),
            StripePolicy::Hash,
        );
        let span = single.capacity_pages().min(striped.capacity_pages());
        let hot = span.min(24);
        let mut rng = StdRng::seed_from_u64(0xD1E5);
        let mut model: std::collections::HashMap<u64, u8> = Default::default();
        for step in 0..800u32 {
            let lba = rng.gen_range(0..hot);
            match rng.gen_range(0..10u32) {
                0..=6 => {
                    let fill = (step % 251) as u8;
                    let data = vec![fill; 2048];
                    single.write(lba, &data).unwrap();
                    striped.write(lba, &data).unwrap();
                    model.insert(lba, fill);
                }
                7 => {
                    single.trim(lba).unwrap();
                    striped.trim(lba).unwrap();
                    model.remove(&lba);
                }
                _ => {
                    let mut a = vec![0u8; 2048];
                    let mut b = vec![0u8; 2048];
                    match model.get(&lba) {
                        Some(fill) => {
                            single.read(lba, &mut a).unwrap();
                            striped.read(lba, &mut b).unwrap();
                            assert_eq!(a, b, "step {step}: lba {lba} diverged");
                            assert!(a.iter().all(|&x| x == *fill));
                        }
                        None => {
                            assert!(single.read(lba, &mut a).is_err());
                            assert!(striped.read(lba, &mut b).is_err());
                        }
                    }
                }
            }
        }
        assert!(
            striped.device_stats().gc_erases > 0,
            "churn must trigger per-die GC"
        );
        striped.check_invariants();
    }

    #[test]
    fn swap_stripe_exchanges_slots_and_preserves_bytes() {
        let mut s = sharded(2, 2, StripePolicy::RoundRobin);
        let a = 1u64; // die 1 under 4-die round-robin
        let b = 6u64; // die 2
        s.write(a, &vec![0xAA; 2048]).unwrap();
        s.write(b, &vec![0xBB; 2048]).unwrap();
        let (la, lb) = (s.locate(a).unwrap(), s.locate(b).unwrap());
        assert!(s.swap_stripe(a, b).unwrap());
        // Slots exchanged exactly.
        assert_eq!(s.locate(a).unwrap(), lb);
        assert_eq!(s.locate(b).unwrap(), la);
        // Bytes follow the host LBA, not the slot.
        let mut buf = vec![0u8; 2048];
        s.read(a, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0xAA));
        s.read(b, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0xBB));
        // The cross-writes rode the cached-program command.
        assert!(s.flash_stats().cache_programs >= 2);
        s.check_invariants();
        // Swapping back restores the original stripe.
        assert!(s.swap_stripe(a, b).unwrap());
        assert_eq!(s.locate(a).unwrap(), la);
        s.read(a, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0xAA));
    }

    #[test]
    fn swap_stripe_with_unmapped_partner_trims_the_new_slot() {
        let mut s = sharded(1, 2, StripePolicy::RoundRobin);
        let a = 0u64;
        let b = 1u64; // other die; never written
        s.write(a, &vec![0x5A; 2048]).unwrap();
        assert!(s.swap_stripe(a, b).unwrap());
        let mut buf = vec![0u8; 2048];
        s.read(a, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0x5A));
        assert!(
            matches!(s.read(b, &mut buf), Err(FtlError::UnmappedLba(_))),
            "unmapped partner stays unmapped after the swap"
        );
        assert!(!s.swap_stripe(a, a).unwrap(), "identity swap is refused");
        s.check_invariants();
    }

    #[test]
    fn stripe_batch_write_round_trips_without_host_counters() {
        let mut s = sharded(2, 1, StripePolicy::RoundRobin);
        let items: Vec<(Lba, Vec<u8>)> = (0..16u64)
            .map(|lba| (lba, vec![(lba % 251) as u8 + 1; 2048]))
            .collect();
        s.write_batch_cached(&items).unwrap();
        let mut buf = vec![0u8; 2048];
        for (lba, img) in &items {
            s.read(*lba, &mut buf).unwrap();
            assert_eq!(&buf, img, "lba {lba} corrupted");
        }
        let d = s.device_stats();
        assert_eq!(d.host_writes, 0, "firmware batch is not host traffic");
        assert!(s.flash_stats().cache_programs >= 2, "one batch per die");
        assert_eq!(s.flash_stats().page_programs, 16);
        s.check_invariants();
    }

    #[test]
    fn host_lbas_on_die_partitions_the_map() {
        let s = sharded(2, 2, StripePolicy::Hash);
        let mut total = 0u64;
        let mut seen = std::collections::HashSet::new();
        for die in 0..s.dies() {
            for lba in s.host_lbas_on_die(die) {
                assert_eq!(s.locate(lba).unwrap().0, die);
                assert!(seen.insert(lba));
                total += 1;
            }
        }
        assert_eq!(total, s.capacity_pages());
    }

    #[test]
    fn threaded_disjoint_windows_match_the_serial_run() {
        // Tentpole wall at the stripe level: N threads writing and
        // reading disjoint LBA windows through one Arc<ShardedFtl> end
        // with exactly the bytes the serial walk produces.
        use std::sync::Arc;
        use std::thread;
        let serial = {
            let mut s = sharded(2, 2, StripePolicy::RoundRobin);
            for lba in 0..64u64 {
                let data = vec![(lba % 251) as u8; 2048];
                s.write(lba, &data).unwrap();
            }
            s.sync();
            let mut out = Vec::new();
            let mut buf = vec![0u8; 2048];
            for lba in 0..64u64 {
                s.read(lba, &mut buf).unwrap();
                out.push(buf[0]);
            }
            out
        };
        let threaded = {
            let s = Arc::new(sharded(2, 2, StripePolicy::RoundRobin));
            thread::scope(|scope| {
                for t in 0..4u64 {
                    let s = Arc::clone(&s);
                    scope.spawn(move || {
                        for lba in (t * 16)..(t * 16 + 16) {
                            let data = vec![(lba % 251) as u8; 2048];
                            s.write_shared(lba, &data).unwrap();
                        }
                    });
                }
            });
            s.sync();
            let mut out = Vec::new();
            let mut buf = vec![0u8; 2048];
            for lba in 0..64u64 {
                s.read_shared(lba, &mut buf).unwrap();
                out.push(buf[0]);
            }
            s.check_invariants();
            out
        };
        assert_eq!(serial, threaded, "logical state must be thread-invariant");
    }
}
