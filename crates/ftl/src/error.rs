//! FTL-level errors.

use ipa_flash::FlashError;
use std::fmt;

/// Logical block (page-granular) address as seen by the host.
pub type Lba = u64;

/// Errors surfaced by the translation layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtlError {
    /// Underlying device error that the FTL could not hide.
    Flash(FlashError),
    /// No free space left even after garbage collection.
    DeviceFull,
    /// Read of an LBA that was never written (or was trimmed).
    UnmappedLba(Lba),
    /// LBA beyond the exported capacity.
    LbaOutOfRange { lba: Lba, capacity: u64 },
    /// Data lost: ECC could not correct the page.
    Uncorrectable { lba: Lba },
    /// `write_delta` was issued against a region without an IPA layout.
    LayoutRequired { lba: Lba },
    /// `write_delta` arguments do not describe a record-slot append.
    BadWriteDelta { lba: Lba, reason: &'static str },
    /// The in-place append cannot be executed (NOP exhausted / bit
    /// conflict); the caller must fall back to a full out-of-place write.
    InPlaceRejected { lba: Lba, cause: FlashError },
    /// Buffer size does not match the device page size.
    SizeMismatch { expected: usize, got: usize },
    /// `poll_checked` on a token whose completion was already taken
    /// (polled or forgotten) — a double-poll bug in the host, previously
    /// indistinguishable from "still in flight".
    TokenRetired { token: u64 },
    /// `poll_checked` on a token this queue never issued.
    TokenUnknown { token: u64 },
}

impl fmt::Display for FtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtlError::Flash(e) => write!(f, "flash error: {e}"),
            FtlError::DeviceFull => write!(f, "device full: GC found no reclaimable block"),
            FtlError::UnmappedLba(lba) => write!(f, "LBA {lba} is unmapped"),
            FtlError::LbaOutOfRange { lba, capacity } => {
                write!(f, "LBA {lba} out of range (capacity {capacity} pages)")
            }
            FtlError::Uncorrectable { lba } => write!(f, "uncorrectable data loss at LBA {lba}"),
            FtlError::LayoutRequired { lba } => {
                write!(
                    f,
                    "write_delta on LBA {lba} requires an IPA-formatted region"
                )
            }
            FtlError::BadWriteDelta { lba, reason } => {
                write!(f, "malformed write_delta on LBA {lba}: {reason}")
            }
            FtlError::InPlaceRejected { lba, cause } => {
                write!(f, "in-place append rejected at LBA {lba}: {cause}")
            }
            FtlError::SizeMismatch { expected, got } => {
                write!(f, "buffer size {got} does not match page size {expected}")
            }
            FtlError::TokenRetired { token } => {
                write!(f, "I/O token {token} was already polled or forgotten")
            }
            FtlError::TokenUnknown { token } => {
                write!(f, "I/O token {token} was never issued by this queue")
            }
        }
    }
}

impl std::error::Error for FtlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FtlError::Flash(e) | FtlError::InPlaceRejected { cause: e, .. } => Some(e),
            _ => None,
        }
    }
}

impl From<FlashError> for FtlError {
    fn from(e: FlashError) -> Self {
        FtlError::Flash(e)
    }
}

/// Result alias for FTL operations.
pub type Result<T> = std::result::Result<T, FtlError>;

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_flash::Ppa;

    #[test]
    fn conversion_from_flash() {
        let e: FtlError = FlashError::BadBlock { block: 3 }.into();
        assert!(matches!(e, FtlError::Flash(_)));
        assert!(e.to_string().contains("block 3"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e = FtlError::InPlaceRejected {
            lba: 9,
            cause: FlashError::NopExceeded {
                ppa: Ppa::new(0, 0),
                nop: 8,
            },
        };
        assert!(e.source().is_some());
        assert!(e.to_string().contains("LBA 9"));
    }
}
