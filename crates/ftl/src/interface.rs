//! Host-facing device interfaces.
//!
//! [`BlockDevice`] is the conventional SSD contract (read/write whole
//! pages by LBA). [`NativeFlashDevice`] extends it with the paper's new
//! command:
//!
//! ```text
//! write_delta( LBA, offset, delta_length, delta_bytes[ ] );
//! ```
//!
//! which appends `delta_bytes` to the *same physical flash page* backing
//! `LBA`, transferring only the delta.

use ipa_controller::ControllerStats;
use ipa_core::PageLayout;
use ipa_flash::FlashStats;

use crate::error::{Lba, Result};
use crate::stats::DeviceStats;

/// How the DBMS drives the device — the three configurations the demo
/// compares (plus IPL, which lives in its own crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteStrategy {
    /// Demo scenario 1: every dirty page eviction is a full out-of-place
    /// page write (`[0×0]`).
    Traditional,
    /// Demo scenario 2: IPA for conventional SSDs — the DBMS writes full
    /// `body + delta-record area` images through the block interface; the
    /// FTL detects overwrite-compatible images and programs them in place.
    IpaConventional,
    /// Demo scenario 3: IPA for native flash — the DBMS sends only delta
    /// records via `write_delta`.
    IpaNative,
}

impl WriteStrategy {
    /// Does this strategy require an IPA page layout?
    pub fn needs_layout(self) -> bool {
        !matches!(self, WriteStrategy::Traditional)
    }
}

/// A page-granular block device (conventional SSD contract).
pub trait BlockDevice {
    /// Page size in bytes (read/write granularity).
    fn page_size(&self) -> usize;

    /// Number of LBAs exported to the host (after over-provisioning and
    /// mode capacity factors).
    fn capacity_pages(&self) -> u64;

    /// Read one page into `buf` (must be exactly `page_size` long).
    fn read(&mut self, lba: Lba, buf: &mut [u8]) -> Result<()>;

    /// Write one page (out-of-place unless the device detects an
    /// overwrite-compatible image and is configured to exploit it).
    fn write(&mut self, lba: Lba, data: &[u8]) -> Result<()>;

    /// Drop the mapping for an LBA (contents become unreadable).
    fn trim(&mut self, lba: Lba) -> Result<()>;

    /// The IPA page layout in force for `lba` (from the low-level format /
    /// region table), if any. The DBMS buffer manager sizes its change
    /// tracking off this.
    fn layout_for(&self, lba: Lba) -> Option<PageLayout>;

    /// Host-level counters.
    fn device_stats(&self) -> DeviceStats;

    /// Raw flash counters of the underlying chip.
    fn flash_stats(&self) -> FlashStats;

    /// Simulated time spent on device operations so far, nanoseconds.
    fn elapsed_ns(&self) -> u64;

    /// Peak block erase count (wear) — drives the longevity experiment.
    fn max_erase_count(&self) -> u32;

    /// Raw erase blocks of the underlying silicon (longevity is wear per
    /// raw block, not per exported LBA).
    fn raw_blocks(&self) -> u32;

    /// Scheduler counters, when the device sits behind a multi-channel
    /// controller. Single-chip devices report `None`.
    fn controller_stats(&self) -> Option<ControllerStats> {
        None
    }

    /// Multi-client hook: position the submission-side clock at a client
    /// thread's logical "now" before issuing its commands. A scheduled
    /// device starts subsequent commands at `max(now, die busy, channel
    /// busy)`, so independent clients overlap while contended hardware
    /// still queues. Single-chip devices (one implicit client) ignore it.
    fn set_submission_clock_ns(&mut self, _ns: u64) {}

    /// The submission-side clock after the last command — the issuing
    /// client's logical "now". Defaults to total device time for devices
    /// without a separate submission clock.
    fn submission_clock_ns(&self) -> u64 {
        self.elapsed_ns()
    }

    /// Concrete-type escape hatch: devices that carry extra subsystems
    /// (e.g. a maintenance scheduler wrapped around the FTL) return
    /// `Some(self)` so the engine can surface their stats without the
    /// device trait knowing about every layer above it.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// The NoFTL-style native interface: everything a block device does, plus
/// delta appends to the physical page.
pub trait NativeFlashDevice: BlockDevice {
    /// Append `delta_bytes` at byte `offset` of the physical page backing
    /// `lba`. The offset must address a free record slot inside the
    /// region's delta-record area; the device adds the per-record ECC to
    /// the OOB area. Only `delta_bytes.len()` bytes cross the bus.
    fn write_delta(&mut self, lba: Lba, offset: usize, delta_bytes: &[u8]) -> Result<()>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_requirements() {
        assert!(!WriteStrategy::Traditional.needs_layout());
        assert!(WriteStrategy::IpaConventional.needs_layout());
        assert!(WriteStrategy::IpaNative.needs_layout());
    }
}
