//! Host-facing device interfaces.
//!
//! [`BlockDevice`] is the conventional SSD contract (read/write whole
//! pages by LBA). [`NativeFlashDevice`] extends it with the paper's new
//! command:
//!
//! ```text
//! write_delta( LBA, offset, delta_length, delta_bytes[ ] );
//! ```
//!
//! which appends `delta_bytes` to the *same physical flash page* backing
//! `LBA`, transferring only the delta.
//!
//! [`IoQueue`] is the queued (NVMe-style submission/completion) face of
//! the same devices: the host posts an [`IoRequest`] — possibly vectored
//! across many LBAs — receives an [`IoToken`], and later either `poll`s
//! the token (waiting for the completion) or `sync`s the whole queue.
//! The synchronous `read`/`write` calls are thin wrappers over this
//! path, so the two interfaces always agree on device state.

use std::collections::HashMap;

use ipa_controller::ControllerStats;
use ipa_core::PageLayout;
use ipa_flash::FlashStats;

use crate::error::{Lba, Result};
use crate::stats::DeviceStats;

/// How the DBMS drives the device — the three configurations the demo
/// compares (plus IPL, which lives in its own crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteStrategy {
    /// Demo scenario 1: every dirty page eviction is a full out-of-place
    /// page write (`[0×0]`).
    Traditional,
    /// Demo scenario 2: IPA for conventional SSDs — the DBMS writes full
    /// `body + delta-record area` images through the block interface; the
    /// FTL detects overwrite-compatible images and programs them in place.
    IpaConventional,
    /// Demo scenario 3: IPA for native flash — the DBMS sends only delta
    /// records via `write_delta`.
    IpaNative,
}

impl WriteStrategy {
    /// Does this strategy require an IPA page layout?
    pub fn needs_layout(self) -> bool {
        !matches!(self, WriteStrategy::Traditional)
    }
}

/// Opaque handle for a submitted [`IoRequest`], redeemed at
/// [`IoQueue::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IoToken(pub u64);

/// One queued host command. Vectored variants carry any number of pages;
/// a one-element vector is exactly the classic single-page command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoRequest {
    /// Read whole pages; the completion returns one buffer per LBA, in
    /// request order. Posted: the submission clock does not wait for the
    /// data — [`IoQueue::poll`] is the wait.
    ReadV(Vec<Lba>),
    /// [`IoRequest::ReadV`] on the latency-priority lane: on a
    /// QoS-scheduled device the members may be dispatched *ahead of*
    /// posted program/erase work already queued on their dies (suspending
    /// in-flight erases within the chip's resume budget). Host point
    /// reads travel this lane; bulk read-ahead stays on `ReadV` so
    /// streaming cannot starve posted writes. Devices without a QoS
    /// scheduler treat it exactly as `ReadV`.
    HighPriorityReadV(Vec<Lba>),
    /// Write whole pages (posted, like the sync `write`).
    WriteV(Vec<(Lba, Vec<u8>)>),
    /// Native IPA delta append (`write_delta`) as a queued command.
    WriteDelta {
        lba: Lba,
        offset: usize,
        delta: Vec<u8>,
    },
    /// Vectored native delta appends `(lba, offset, delta)` — the evict
    /// path's analogue of a multi-page `WriteV`: members landing on
    /// distinct dies post and overlap like any vectored submission.
    /// A member the device rejects for in-place append (NOP budget, ECC
    /// verdict) does *not* fail the request: its index is reported in
    /// [`IoCompletion::rejected`] and the host falls back per member.
    WriteDeltaV(Vec<(Lba, usize, Vec<u8>)>),
    /// Drop the mapping for an LBA.
    Trim(Lba),
    /// Settle acknowledged-but-unprogrammed device state (plane-pairing
    /// windows) without merging clocks — a write barrier, not a time
    /// barrier.
    Flush,
}

/// What a finished [`IoRequest`] reports. Carries *both* clocks of the
/// submission/completion contract: `submitted_ns` is the issuing client's
/// logical now when the request was accepted, `done_ns` the device clock
/// at which the last member physically completes. On an immediate-
/// completion (single-chip) device the two describe the same walk; on a
/// scheduled device `done_ns - submitted_ns` is the request's true
/// device-side latency, which the old sync-only API could not express.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoCompletion {
    pub token: IoToken,
    /// Pages read (`ReadV` only), in request order; empty otherwise.
    pub data: Vec<Vec<u8>>,
    /// `WriteDeltaV` member indices the device rejected for in-place
    /// append (the host re-drives those members out of place); empty for
    /// every other request kind.
    pub rejected: Vec<usize>,
    /// Submission-side clock at acceptance.
    pub submitted_ns: u64,
    /// Device clock when the whole request is done (max over the per-die
    /// completion times of a fanned-out vector).
    pub done_ns: u64,
}

/// Token allocation, completion buffering and the queued-path counters
/// shared by every native [`IoQueue`] implementation. The counters are
/// folded into [`DeviceStats`] by `device_stats()` so hosts see them
/// through the ordinary stats surface.
#[derive(Debug, Default)]
pub struct SubmissionState {
    next: u64,
    done: HashMap<u64, IoCompletion>,
    /// `ReadV` submissions spanning more than one page.
    pub vectored_reads: u64,
    /// `WriteV` submissions spanning more than one page.
    pub vectored_writes: u64,
    /// Host-attributed: buffer-pool fetches served from a read-ahead
    /// completion ([`IoQueue::note_readahead_hit`]).
    pub readahead_hits: u64,
    /// Host-attributed: WAL group-commit flushes submitted as one
    /// multi-page vector ([`IoQueue::note_wal_stripe_write`]).
    pub wal_stripe_writes: u64,
    /// `WriteDeltaV` submissions spanning more than one member — the
    /// evict path's batched delta appends.
    pub vectored_deltas: u64,
    /// Host-attributed: sealed WAL pages trimmed by a checkpoint
    /// ([`IoQueue::note_wal_stripe_reclaimed`]).
    pub wal_stripes_reclaimed: u64,
}

impl SubmissionState {
    /// Record a finished request and hand out its token.
    pub fn complete(&mut self, data: Vec<Vec<u8>>, submitted_ns: u64, done_ns: u64) -> IoToken {
        self.complete_with_rejections(data, Vec::new(), submitted_ns, done_ns)
    }

    /// [`SubmissionState::complete`] carrying per-member in-place
    /// rejections (`WriteDeltaV`).
    pub fn complete_with_rejections(
        &mut self,
        data: Vec<Vec<u8>>,
        rejected: Vec<usize>,
        submitted_ns: u64,
        done_ns: u64,
    ) -> IoToken {
        let token = IoToken(self.next);
        self.next += 1;
        self.done.insert(
            token.0,
            IoCompletion {
                token,
                data,
                rejected,
                submitted_ns,
                done_ns,
            },
        );
        token
    }

    /// Take a completion out of the buffer.
    pub fn take(&mut self, token: IoToken) -> Option<IoCompletion> {
        self.done.remove(&token.0)
    }

    /// [`SubmissionState::take`] with the `None` cases distinguished:
    /// tokens are allocated from a private monotone counter, so a miss
    /// below the watermark can only be a retired (polled/forgotten)
    /// token, and a miss at or above it a token this queue never issued.
    pub fn take_checked(&mut self, token: IoToken) -> crate::error::Result<IoCompletion> {
        match self.done.remove(&token.0) {
            Some(c) => Ok(c),
            None if token.0 >= self.next => {
                Err(crate::error::FtlError::TokenUnknown { token: token.0 })
            }
            None => Err(crate::error::FtlError::TokenRetired { token: token.0 }),
        }
    }

    /// Drop a completion without consuming it (abandoned read-ahead).
    /// Returns the completion so the device can retire it from any
    /// scheduler-side bookkeeping (the posted-read completion horizon) —
    /// dropping the buffer alone would leave those gauges drifting.
    pub fn forget(&mut self, token: IoToken) -> Option<IoCompletion> {
        self.done.remove(&token.0)
    }

    /// Tick the vectored counters for an accepted request.
    pub fn count_request(&mut self, req: &IoRequest) {
        match req {
            IoRequest::ReadV(lbas) | IoRequest::HighPriorityReadV(lbas) if lbas.len() > 1 => {
                self.vectored_reads += 1
            }
            IoRequest::WriteV(pages) if pages.len() > 1 => self.vectored_writes += 1,
            IoRequest::WriteDeltaV(members) if members.len() > 1 => self.vectored_deltas += 1,
            _ => {}
        }
    }

    /// Overlay the queued-path counters onto a stats snapshot.
    pub fn fold_into(&self, mut stats: DeviceStats) -> DeviceStats {
        stats.vectored_reads += self.vectored_reads;
        stats.vectored_writes += self.vectored_writes;
        stats.readahead_hits += self.readahead_hits;
        stats.wal_stripe_writes += self.wal_stripe_writes;
        stats.vectored_deltas += self.vectored_deltas;
        stats.wal_stripes_reclaimed += self.wal_stripes_reclaimed;
        stats
    }
}

/// The queued submission/completion face of a device (NVMe-style queue
/// pair, collapsed to one pair since the simulator is single-threaded).
///
/// ## Contract
///
/// * `submit` accepts the request, applies its state transition, and
///   returns a token. Posted semantics: the submission clock does not
///   advance to the request's completion (it may advance for
///   queue-admission effects such as NCQ back-pressure, exactly like the
///   sync write path).
/// * `poll` *waits* for the token's completion: the submission clock
///   advances to at least `done_ns` and the completion (with any read
///   data) is returned. Polling an unknown or already-polled token
///   returns `None` and costs nothing; when the host needs to tell a
///   double-poll bug apart from "still in flight", `poll_checked`
///   returns a typed [`crate::error::FtlError::TokenRetired`] /
///   [`crate::error::FtlError::TokenUnknown`] instead.
/// * `sync` is the barrier: every prior submission's completion time is
///   folded into the device's merged clock, which is returned. It does
///   not consume buffered completions — tokens stay pollable.
/// * `forget` abandons a token without waiting (an unused read-ahead).
///   The device retires the token from its completion horizon: an
///   abandoned completion is accounted exactly like a polled one in the
///   scheduler's posted-read bookkeeping, so `sync` never waits on behalf
///   of data nobody wants and the posted-read gauges cannot drift.
///
/// ## Reorder contract (QoS devices)
///
/// Completion order is **not** submission order. Within one die a
/// QoS-scheduled device may complete a later-submitted priority read
/// before earlier-submitted posted programs/erases (erase-suspend,
/// reorder windows). Three guarantees survive reordering:
///
/// * **Read-your-writes per LBA**: a read submitted after a write to the
///   same LBA always returns that write's data — device state mutates in
///   submission order; only completion *times* reorder.
/// * **`sync` is the only total barrier**: it waits for every prior
///   submission — promoted, suspended, or pushed out — and merges their
///   completion times into the returned device clock. `Flush` remains a
///   write barrier (plane-pairing windows), not an ordering fence.
/// * **Bounded deferral**: posted work jumped by priority reads is pushed
///   out by exactly the reads' occupancy, and one erase can be suspended
///   at most its chip's `erase_resume_limit` times — no starvation.
///
/// Clock contract (the `submission_clock_ns`/`elapsed_ns` fix): after any
/// sequence of queued operations, [`BlockDevice::elapsed_ns`] is the
/// device-busy horizon — the time at which all submitted work is done —
/// while [`BlockDevice::submission_clock_ns`] is the issuing client's
/// logical now, which only `poll` and back-pressure move forward. On
/// devices with no scheduler the two coincide by construction.
pub trait IoQueue {
    /// Post a request; returns its completion token.
    fn submit(&mut self, req: IoRequest) -> Result<IoToken>;

    /// Wait for (and take) a completion. `None` if the token is unknown
    /// or was already polled/forgotten.
    fn poll(&mut self, token: IoToken) -> Option<IoCompletion>;

    /// [`IoQueue::poll`] with the `None` cases made typed errors: a
    /// retired token (already polled or forgotten) surfaces as
    /// [`crate::error::FtlError::TokenRetired`], a token the queue never
    /// issued as [`crate::error::FtlError::TokenUnknown`]. Hosts that
    /// treat a double-poll as a bug (everything in this repo) should
    /// prefer this over pattern-matching `None`.
    fn poll_checked(&mut self, token: IoToken) -> Result<IoCompletion>;

    /// Barrier over all prior submissions; returns the merged device
    /// time in nanoseconds.
    fn sync(&mut self) -> u64;

    /// Abandon a token without waiting on its completion.
    fn forget(&mut self, token: IoToken);

    /// Host attribution hook: a buffer-pool fetch was served from a
    /// read-ahead completion. Counted in `DeviceStats::readahead_hits`.
    fn note_readahead_hit(&mut self);

    /// Host attribution hook: a WAL group-commit flush went out as one
    /// multi-page vector. Counted in `DeviceStats::wal_stripe_writes`.
    fn note_wal_stripe_write(&mut self);

    /// Host attribution hook: a checkpoint trimmed one sealed WAL page,
    /// recycling its log space. Counted in
    /// `DeviceStats::wal_stripes_reclaimed`.
    fn note_wal_stripe_reclaimed(&mut self);
}

/// A block device with a queued face — the bound host components (the
/// striped WAL, the read-ahead buffer pool) program against when they do
/// not need `write_delta`.
pub trait QueuedBlockDevice: BlockDevice + IoQueue {}
impl<T: BlockDevice + IoQueue> QueuedBlockDevice for T {}

/// A page-granular block device (conventional SSD contract).
pub trait BlockDevice {
    /// Page size in bytes (read/write granularity).
    fn page_size(&self) -> usize;

    /// Number of LBAs exported to the host (after over-provisioning and
    /// mode capacity factors).
    fn capacity_pages(&self) -> u64;

    /// Read one page into `buf` (must be exactly `page_size` long).
    fn read(&mut self, lba: Lba, buf: &mut [u8]) -> Result<()>;

    /// Write one page (out-of-place unless the device detects an
    /// overwrite-compatible image and is configured to exploit it).
    fn write(&mut self, lba: Lba, data: &[u8]) -> Result<()>;

    /// Drop the mapping for an LBA (contents become unreadable).
    fn trim(&mut self, lba: Lba) -> Result<()>;

    /// Does `lba` currently hold readable data? Advisory (read-ahead
    /// uses it to skip never-written holes); the default claims
    /// everything in range is mapped.
    fn is_mapped(&self, lba: Lba) -> bool {
        lba < self.capacity_pages()
    }

    /// The IPA page layout in force for `lba` (from the low-level format /
    /// region table), if any. The DBMS buffer manager sizes its change
    /// tracking off this.
    fn layout_for(&self, lba: Lba) -> Option<PageLayout>;

    /// Host-level counters.
    fn device_stats(&self) -> DeviceStats;

    /// Raw flash counters of the underlying chip.
    fn flash_stats(&self) -> FlashStats;

    /// Simulated time spent on device operations so far, nanoseconds.
    fn elapsed_ns(&self) -> u64;

    /// Peak block erase count (wear) — drives the longevity experiment.
    fn max_erase_count(&self) -> u32;

    /// Raw erase blocks of the underlying silicon (longevity is wear per
    /// raw block, not per exported LBA).
    fn raw_blocks(&self) -> u32;

    /// Scheduler counters, when the device sits behind a multi-channel
    /// controller. Single-chip devices report `None`.
    fn controller_stats(&self) -> Option<ControllerStats> {
        None
    }

    /// Multi-client hook: position the submission-side clock at a client
    /// thread's logical "now" before issuing its commands. A scheduled
    /// device starts subsequent commands at `max(now, die busy, channel
    /// busy)`, so independent clients overlap while contended hardware
    /// still queues. Single-chip devices (one implicit client) ignore it.
    fn set_submission_clock_ns(&mut self, _ns: u64) {}

    /// The submission-side clock after the last command — the issuing
    /// client's logical "now". Defaults to total device time for devices
    /// without a separate submission clock.
    fn submission_clock_ns(&self) -> u64 {
        self.elapsed_ns()
    }

    /// Concrete-type escape hatch: devices that carry extra subsystems
    /// (e.g. a maintenance scheduler wrapped around the FTL) return
    /// `Some(self)` so the engine can surface their stats without the
    /// device trait knowing about every layer above it.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// The NoFTL-style native interface: everything a block device does —
/// including the queued submission/completion face — plus delta appends
/// to the physical page.
pub trait NativeFlashDevice: BlockDevice + IoQueue {
    /// Append `delta_bytes` at byte `offset` of the physical page backing
    /// `lba`. The offset must address a free record slot inside the
    /// region's delta-record area; the device adds the per-record ECC to
    /// the OOB area. Only `delta_bytes.len()` bytes cross the bus.
    fn write_delta(&mut self, lba: Lba, offset: usize, delta_bytes: &[u8]) -> Result<()>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_requirements() {
        assert!(!WriteStrategy::Traditional.needs_layout());
        assert!(WriteStrategy::IpaConventional.needs_layout());
        assert!(WriteStrategy::IpaNative.needs_layout());
    }

    #[test]
    fn submission_state_tokens_and_counters() {
        let mut s = SubmissionState::default();
        let a = s.complete(vec![vec![1]], 10, 20);
        let b = s.complete(Vec::new(), 20, 25);
        assert_ne!(a, b, "tokens are unique");
        let ca = s.take(a).expect("buffered completion");
        assert_eq!((ca.submitted_ns, ca.done_ns), (10, 20));
        assert_eq!(ca.data, vec![vec![1]]);
        assert!(s.take(a).is_none(), "taken once");
        assert!(
            matches!(
                s.take_checked(a),
                Err(crate::error::FtlError::TokenRetired { token }) if token == a.0
            ),
            "double-take is a typed retired error"
        );
        assert!(
            matches!(
                s.take_checked(IoToken(999)),
                Err(crate::error::FtlError::TokenUnknown { token: 999 })
            ),
            "never-issued token is unknown, not retired"
        );
        s.forget(b);
        assert!(s.take(b).is_none(), "forgotten");
        assert!(
            matches!(
                s.take_checked(b),
                Err(crate::error::FtlError::TokenRetired { .. })
            ),
            "forget retires the token too"
        );

        s.count_request(&IoRequest::ReadV(vec![1, 2]));
        s.count_request(&IoRequest::ReadV(vec![1]));
        s.count_request(&IoRequest::WriteV(vec![(1, vec![]), (2, vec![])]));
        s.count_request(&IoRequest::Trim(3));
        s.readahead_hits = 7;
        s.wal_stripe_writes = 2;
        let folded = s.fold_into(DeviceStats {
            vectored_reads: 1,
            ..Default::default()
        });
        assert_eq!(folded.vectored_reads, 2, "overlay adds to the snapshot");
        assert_eq!(folded.vectored_writes, 1);
        assert_eq!(folded.readahead_hits, 7);
        assert_eq!(folded.wal_stripe_writes, 2);
    }
}
