//! Wear levelling: keeping block erase counts even so the device's
//! lifetime is set by the *average* wear, not the hottest block.
//!
//! The paper's longevity claim ("doubling the Flash SSD lifetime") is about
//! total erase volume; whether that volume translates into lifetime depends
//! on wear being spread. Two mechanisms cooperate here:
//!
//! * **dynamic** — the GC victim selector already breaks ties toward
//!   less-worn blocks (see `ftl.rs`);
//! * **static** — cold blocks (valid data, never naturally reclaimed) pin
//!   their low erase counts while hot blocks churn. [`WearLeveler`]
//!   detects a widening spread and tells the FTL to migrate the coldest
//!   block's data onto the write frontier so the block re-enters rotation.

use serde::{Deserialize, Serialize};

/// Static wear-levelling policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WearConfig {
    /// Trigger static levelling when `max_erase − min_erase` exceeds this.
    pub max_spread: u32,
    /// Check the spread every this many erases (the scan is O(blocks)).
    pub check_interval_erases: u64,
}

impl Default for WearConfig {
    fn default() -> Self {
        WearConfig {
            max_spread: 16,
            check_interval_erases: 64,
        }
    }
}

/// Wear statistics over all blocks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WearSummary {
    pub min_erase: u32,
    pub max_erase: u32,
    pub mean_erase: f64,
    /// Population standard deviation of erase counts.
    pub stddev: f64,
}

impl WearSummary {
    /// Compute over a slice of per-block erase counts.
    pub fn from_counts(counts: &[u32]) -> WearSummary {
        if counts.is_empty() {
            return WearSummary::default();
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        let mean = counts.iter().map(|&c| c as f64).sum::<f64>() / counts.len() as f64;
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / counts.len() as f64;
        WearSummary {
            min_erase: min,
            max_erase: max,
            mean_erase: mean,
            stddev: var.sqrt(),
        }
    }

    #[inline]
    pub fn spread(&self) -> u32 {
        self.max_erase - self.min_erase
    }
}

/// Stateful trigger for static wear levelling.
#[derive(Debug, Clone, Default)]
pub struct WearLeveler {
    config: WearConfig,
    erases_since_check: u64,
    /// Static migrations performed (stats).
    pub migrations_triggered: u64,
}

impl WearLeveler {
    pub fn new(config: WearConfig) -> Self {
        WearLeveler {
            config,
            erases_since_check: 0,
            migrations_triggered: 0,
        }
    }

    /// Record one erase; returns `true` when a spread check is due.
    pub fn on_erase(&mut self) -> bool {
        self.erases_since_check += 1;
        if self.erases_since_check >= self.config.check_interval_erases {
            self.erases_since_check = 0;
            true
        } else {
            false
        }
    }

    /// Given the erase counts of *candidate* blocks (those whose data can
    /// be moved; others masked with `u32::MAX`) and the device-wide
    /// maximum erase count, pick the coldest candidate to recycle — or
    /// `None` while the spread is acceptable. The device-wide max matters:
    /// the most-worn blocks are usually cycling through the free pool and
    /// are not candidates themselves.
    pub fn pick_victim(&mut self, candidate_counts: &[u32], device_max: u32) -> Option<u32> {
        let (idx, &min) = candidate_counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != u32::MAX)
            .min_by_key(|(_, &c)| c)?;
        if device_max.saturating_sub(min) > self.config.max_spread {
            self.migrations_triggered += 1;
            Some(idx as u32)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_math() {
        let s = WearSummary::from_counts(&[2, 4, 6, 8]);
        assert_eq!(s.min_erase, 2);
        assert_eq!(s.max_erase, 8);
        assert!((s.mean_erase - 5.0).abs() < 1e-12);
        assert!((s.stddev - 5.0f64.sqrt()).abs() < 1e-9);
        assert_eq!(s.spread(), 6);
    }

    #[test]
    fn empty_counts() {
        let s = WearSummary::from_counts(&[]);
        assert_eq!(s.spread(), 0);
    }

    #[test]
    fn check_interval() {
        let mut w = WearLeveler::new(WearConfig {
            max_spread: 4,
            check_interval_erases: 3,
        });
        assert!(!w.on_erase());
        assert!(!w.on_erase());
        assert!(w.on_erase());
        assert!(!w.on_erase());
    }

    #[test]
    fn victim_is_coldest_when_spread_too_wide() {
        let mut w = WearLeveler::new(WearConfig {
            max_spread: 4,
            check_interval_erases: 1,
        });
        // Device max 11, coldest candidate 1: spread 10 > 4 ⇒ recycle it.
        assert_eq!(w.pick_victim(&[11, 9, 1, 10], 11), Some(2));
        assert_eq!(w.migrations_triggered, 1);
        // Spread within bounds: no action.
        assert_eq!(w.pick_victim(&[5, 6, 7, 8], 8), None);
    }

    #[test]
    fn device_max_counts_even_when_not_a_candidate() {
        let mut w = WearLeveler::new(WearConfig {
            max_spread: 4,
            check_interval_erases: 1,
        });
        // All candidates are cold, but the free pool (device max 40) is
        // far ahead: the coldest candidate must rotate in.
        assert_eq!(w.pick_victim(&[0, 1, 0, 2], 40), Some(0));
    }

    #[test]
    fn excluded_blocks_are_skipped() {
        let mut w = WearLeveler::new(WearConfig {
            max_spread: 2,
            check_interval_erases: 1,
        });
        // Coldest is index 1 once index 0 (active) is masked out.
        assert_eq!(w.pick_victim(&[u32::MAX, 3, 9, 8], 9), Some(1));
    }
}
