//! `sharded_parity` — die striping must be invisible to the DBMS.
//!
//! The same seeded operation stream, run through a full storage engine
//! over a single-chip [`ipa_ftl::Ftl`] and over a [`ipa_ftl::ShardedFtl`]
//! at every die count in {1, 2, 4, 8} × every stripe policy, must reach
//! the identical logical state — live rows byte-for-byte equal, deletes
//! equally gone — and must still match after a cold restart forces every
//! page back through flash. Whatever the controller schedules (posted
//! programs, per-die GC, channel contention), *time* may differ but
//! *state* may not.

use ipa_core::NmScheme;
use ipa_ftl::{StripePolicy, WriteStrategy};
use ipa_storage::Rid;
use ipa_testkit::{heap_engine, sharded_heap_engine, ModelHarness};
use proptest::prelude::*;

const DIE_COUNTS: [u32; 4] = [1, 2, 4, 8];
const POLICIES: [StripePolicy; 2] = [StripePolicy::RoundRobin, StripePolicy::Hash];

/// Run `ops` harness steps on an engine, prove it matches its own model
/// across a restart, and return the canonical logical state.
fn final_state(
    mut e: ipa_storage::StorageEngine,
    seed: u64,
    ops: usize,
    label: String,
) -> Vec<(Rid, Vec<u8>)> {
    let t = e.table("m").unwrap();
    let mut h = ModelHarness::new(seed, label);
    h.run(&mut e, t, ops);
    e.restart_clean().unwrap();
    h.assert_engine_matches(&mut e, t);
    h.canonical_rows()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The headline property, under the native `write_delta` strategy —
    /// the path where striping must preserve per-region IPA semantics.
    #[test]
    fn sharded_parity_ipa_native(seed in any::<u64>(), ops in 150usize..280) {
        let scheme = NmScheme::new(2, 4);
        let single = final_state(
            heap_engine(WriteStrategy::IpaNative, scheme, seed),
            seed,
            ops,
            format!("single(seed {seed})"),
        );
        for dies in DIE_COUNTS {
            for policy in POLICIES {
                let sharded = final_state(
                    sharded_heap_engine(WriteStrategy::IpaNative, scheme, seed, dies, policy),
                    seed,
                    ops,
                    format!("{dies}-die/{policy:?}(seed {seed})"),
                );
                prop_assert!(
                    single == sharded,
                    "{dies} dies / {policy:?} diverged from the single chip at seed {seed}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Same property for the traditional out-of-place path: per-die GC
    /// churns independently, the logical state must not notice.
    #[test]
    fn sharded_parity_traditional(seed in any::<u64>(), ops in 150usize..250) {
        let scheme = NmScheme::disabled();
        let single = final_state(
            heap_engine(WriteStrategy::Traditional, scheme, seed),
            seed,
            ops,
            format!("single-trad(seed {seed})"),
        );
        for dies in [2u32, 8] {
            for policy in POLICIES {
                let sharded = final_state(
                    sharded_heap_engine(WriteStrategy::Traditional, scheme, seed, dies, policy),
                    seed,
                    ops,
                    format!("trad-{dies}-die/{policy:?}(seed {seed})"),
                );
                prop_assert_eq!(&single, &sharded);
            }
        }
    }
}

/// The conventional-SSD IPA strategy (in-place detection in the FTL) at a
/// fixed seed — one deterministic sweep over the full die matrix.
#[test]
fn sharded_parity_ipa_conventional_fixed_seed() {
    let scheme = NmScheme::new(2, 4);
    let seed = 0x005A_ADED;
    let ops = 220;
    let single = final_state(
        heap_engine(WriteStrategy::IpaConventional, scheme, seed),
        seed,
        ops,
        "single-conv".into(),
    );
    for dies in DIE_COUNTS {
        for policy in POLICIES {
            let sharded = final_state(
                sharded_heap_engine(WriteStrategy::IpaConventional, scheme, seed, dies, policy),
                seed,
                ops,
                format!("conv-{dies}-die/{policy:?}"),
            );
            assert_eq!(single, sharded, "{dies} dies / {policy:?} diverged");
        }
    }
}

/// IPA must still engage *through* the stripe: a small-update-heavy
/// stream (the paper's eviction pattern) over an 8-die device appends in
/// place instead of invalidating, exactly like a single chip.
#[test]
fn striped_updates_append_in_place() {
    // N×M sized so a 50-row update round fits in the delta area.
    let scheme = NmScheme::new(4, 16);
    let mut e = sharded_heap_engine(
        WriteStrategy::IpaNative,
        scheme,
        7,
        8,
        StripePolicy::RoundRobin,
    );
    let t = e.table("m").unwrap();
    let tx = e.begin();
    let mut rids = Vec::new();
    for i in 0..50u64 {
        let mut row = [0u8; 48];
        row[..8].copy_from_slice(&i.to_le_bytes());
        rids.push(e.insert(tx, t, &row).unwrap());
    }
    e.commit(tx).unwrap();
    e.flush_all().unwrap();

    for round in 0..12u64 {
        let tx = e.begin();
        for (i, rid) in rids.iter().enumerate() {
            e.update_field(tx, t, *rid, 16, &[(round as u8).wrapping_add(i as u8)])
                .unwrap();
        }
        e.commit(tx).unwrap();
        e.flush_all().unwrap();
    }
    let d = e.stats().device;
    assert!(
        d.in_place_appends > 0,
        "IPA must engage through the stripe: {d:?}"
    );
    assert!(d.host_write_deltas > 0, "native write_delta path used");
    assert!(e.stats().elapsed_ns > 0);
    // And the data is still right.
    for (i, rid) in rids.iter().enumerate() {
        let row = e.get(t, *rid).unwrap();
        assert_eq!(row[16], 11u8.wrapping_add(i as u8));
        assert_eq!(u64::from_le_bytes(row[..8].try_into().unwrap()), i as u64);
    }
}
