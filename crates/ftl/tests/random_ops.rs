//! Property tests over the FTL: random host operation streams must keep
//! the mapping invariants intact, preserve all data, and bound the wear
//! spread when static levelling is on.

use ipa_flash::{DeviceConfig, DisturbRates, FlashChip, FlashMode, Geometry};
use ipa_ftl::{BlockDevice, Ftl, FtlConfig, WearConfig};
use ipa_testkit::traditional_ftl as ftl;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary interleavings of writes, overwrites, trims and reads keep
    /// the mapping consistent and the data intact.
    #[test]
    fn random_ops_keep_invariants(ops in proptest::collection::vec((0u8..3, 0u64..40, any::<u8>()), 1..300)) {
        let mut f = ftl(1);
        let cap = f.capacity_pages();
        // Shadow model: lba -> latest fill byte.
        let mut model: Vec<Option<u8>> = vec![None; cap as usize];
        for (op, lba, fill) in ops {
            let lba = lba % cap;
            match op {
                0 => {
                    f.write(lba, &vec![fill; 2048]).unwrap();
                    model[lba as usize] = Some(fill);
                }
                1 => {
                    f.trim(lba).unwrap();
                    model[lba as usize] = None;
                }
                _ => {
                    let mut buf = vec![0u8; 2048];
                    match (f.read(lba, &mut buf), model[lba as usize]) {
                        (Ok(()), Some(fill)) => prop_assert!(buf.iter().all(|&b| b == fill)),
                        (Err(_), None) => {}
                        (Ok(()), None) => prop_assert!(false, "read of trimmed lba succeeded"),
                        (Err(e), Some(_)) => prop_assert!(false, "lost lba {lba}: {e}"),
                    }
                }
            }
        }
        f.check_invariants();
        // Final sweep: every modeled value readable.
        let mut buf = vec![0u8; 2048];
        for (lba, fill) in model.iter().enumerate() {
            if let Some(fill) = fill {
                f.read(lba as u64, &mut buf).unwrap();
                prop_assert!(buf.iter().all(|b| b == fill));
            }
        }
    }
}

#[test]
fn invariants_hold_through_heavy_gc() {
    let mut f = ftl(2);
    let cap = f.capacity_pages();
    let mut rng = StdRng::seed_from_u64(3);
    for lba in 0..cap {
        f.write(lba, &vec![(lba % 251) as u8; 2048]).unwrap();
    }
    for i in 0..4_000u64 {
        let lba = rng.gen_range(0..cap);
        f.write(lba, &vec![(i % 251) as u8; 2048]).unwrap();
        if i % 500 == 0 {
            f.check_invariants();
        }
    }
    f.check_invariants();
    assert!(f.device_stats().gc_erases > 0);
}

#[test]
fn static_wear_leveling_bounds_the_spread() {
    // Skewed workload: a handful of hot LBAs, the rest written once and
    // left cold. Without static WL the cold blocks would freeze at ~1
    // erase while hot blocks churn away.
    let run = |wear: Option<WearConfig>| -> (u32, u64) {
        let chip = FlashChip::new(ipa_testkit::quiet_slc(32, 8, 0));
        let mut cfg = FtlConfig::traditional();
        cfg.wear = wear;
        let mut f = Ftl::new(chip, cfg);
        let cap = f.capacity_pages();
        for lba in 0..cap {
            f.write(lba, &vec![7u8; 2048]).unwrap();
        }
        for i in 0..12_000u64 {
            f.write(i % 4, &vec![(i % 251) as u8; 2048]).unwrap(); // 4 hot LBAs
        }
        f.check_invariants();
        let s = f.wear_summary();
        (s.spread(), f.device_stats().wear_leveling_moves)
    };
    let (spread_off, moves_off) = run(None);
    let (spread_on, moves_on) = run(Some(WearConfig {
        max_spread: 8,
        check_interval_erases: 16,
    }));
    assert_eq!(moves_off, 0);
    assert!(moves_on > 0, "static WL never triggered");
    assert!(
        spread_on < spread_off,
        "WL must narrow the spread: {spread_on} vs {spread_off}"
    );
    // Data integrity after all the shuffling.
}

#[test]
fn wear_summary_reflects_erases() {
    let mut f = ftl(5);
    assert_eq!(f.wear_summary().max_erase, 0);
    let cap = f.capacity_pages();
    for i in 0..2_000u64 {
        f.write(i % cap.min(8), &vec![1u8; 2048]).unwrap();
    }
    let s = f.wear_summary();
    assert!(s.max_erase > 0);
    assert!(s.mean_erase > 0.0);
    assert!(s.max_erase as f64 >= s.mean_erase);
}

#[test]
fn tlc3d_mode_supports_ipa_on_lsb_pages() {
    use ipa_core::{DeltaRecord, NmScheme};
    use ipa_ftl::{FtlError, NativeFlashDevice};
    let layout = ipa_core::PageLayout::new(2048, 32, 8, NmScheme::new(2, 4));
    let chip = FlashChip::new(
        DeviceConfig::new(Geometry::new(16, 9, 2048, 64), FlashMode::Tlc3d)
            .with_disturb(DisturbRates::none()),
    );
    let mut f = Ftl::new(chip, FtlConfig::ipa_native(layout));
    let mut img = vec![0xFFu8; 2048];
    img[..32].fill(0);
    layout.wipe_delta_area(&mut img);
    for lba in 0..9u64 {
        f.write(lba, &img).unwrap();
    }
    // Pages 0,3,6 of the first block are LSB (triplet heads): exactly one
    // third of append attempts succeed.
    let rec = DeltaRecord::new(vec![], vec![0; layout.meta_len()], layout.scheme).encode(&layout);
    let mut ok = 0;
    let mut rejected = 0;
    for lba in 0..9u64 {
        match f.write_delta(lba, layout.record_offset(0), &rec) {
            Ok(()) => ok += 1,
            Err(FtlError::InPlaceRejected { .. }) => rejected += 1,
            Err(e) => panic!("unexpected {e}"),
        }
    }
    assert_eq!(ok, 3, "one LSB page per triplet");
    assert_eq!(rejected, 6);
    f.check_invariants();
    // No disturb-visible damage: 3D NAND margins are wide.
    let mut buf = vec![0u8; 2048];
    for lba in 0..9u64 {
        f.read(lba, &mut buf).unwrap();
    }
    assert_eq!(f.device_stats().uncorrectable_reads, 0);
}
