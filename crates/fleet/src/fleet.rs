//! The fleet: one shared device, N tenant engines, RAII lifecycle.

use std::sync::Arc;

use ipa_controller::{ControllerConfig, ControllerStats};
use ipa_flash::{DeviceConfig, DisturbRates, FlashMode, Geometry};
use ipa_ftl::{BlockDevice, DeviceStats, FtlConfig, Region, RegionTable, ShardedFtl, StripePolicy};
use ipa_storage::{EngineConfig, RecoveryReport, Result, StorageEngine, TableSpec};

use crate::device::{SharedDevice, TenantDevice};

/// Shared-device and per-tenant knobs for a [`Fleet`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Controller channels of the shared device.
    pub channels: u32,
    /// Dies per channel.
    pub dies_per_channel: u32,
    /// Planes per die.
    pub planes: u32,
    /// Page size of the shared device (and every tenant's WAL).
    pub page_size: usize,
    /// NCQ queue cap on the shared controller (`None` = unbounded).
    pub queue_cap: Option<usize>,
    /// Latency-QoS scheduling on the shared controller.
    pub qos: bool,
    /// Device RNG seed.
    pub seed: u64,
    /// Buffer-pool frames per tenant engine.
    pub buffer_frames: usize,
    /// Per-tenant WAL capacity in log pages. Checkpoints recycle sealed
    /// stripes, so this bounds steady-state log space, not run length.
    pub wal_pages: u64,
    /// Per-tenant WAL stripe topology (`channels × dies`).
    pub wal_stripe: (u32, u32),
    /// Keep the exact (unbounded) per-read latency `Vec` on the shared
    /// controller instead of the bounded histogram. Off by default: long
    /// soaks must not grow memory linearly. Turn on only as an oracle
    /// against the histogram's percentiles.
    pub exact_read_latencies: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            channels: 4,
            dies_per_channel: 2,
            planes: 1,
            page_size: 2048,
            queue_cap: None,
            qos: false,
            seed: 0xF1EE7,
            buffer_frames: 24,
            wal_pages: 192,
            wal_stripe: (2, 1),
            exact_read_latencies: false,
        }
    }
}

/// Builder for a [`Fleet`]: configure the shared device, register the
/// tenants, then [`FleetBuilder::build`].
pub struct FleetBuilder {
    config: FleetConfig,
    tenants: Vec<(String, Vec<TableSpec>)>,
}

impl FleetBuilder {
    pub fn new(config: FleetConfig) -> Self {
        FleetBuilder {
            config,
            tenants: Vec::new(),
        }
    }

    /// Register a tenant with its schema. Tenants are laid out in
    /// registration order, each in its own contiguous LBA window.
    pub fn tenant(mut self, name: impl Into<String>, tables: Vec<TableSpec>) -> Self {
        self.tenants.push((name.into(), tables));
        self
    }

    /// Partition the shared device and start every tenant's engine.
    pub fn build(self) -> Result<Fleet> {
        let cfg = &self.config;
        assert!(
            !self.tenants.is_empty(),
            "a fleet needs at least one tenant"
        );

        // Per-tenant page budgets and window bases, in registration
        // order. Table pages inside a window follow the catalog's own
        // sequential layout, so the shared region table below names
        // exactly the LBAs each engine will use.
        let budgets: Vec<u64> = self
            .tenants
            .iter()
            .map(|(_, tables)| tables.iter().map(|t| t.pages).sum())
            .collect();
        let total: u64 = budgets.iter().sum();

        // Size the shared device for the whole fleet with the driver's
        // ~40 % headroom, split across the dies.
        let ppb = 32u32;
        let dies = (cfg.channels * cfg.dies_per_channel) as u64;
        let usable_ppb = FlashMode::Slc.usable_pages_per_block(ppb) as u64;
        let blocks_per_die = (((total * 14 / 10).div_ceil(usable_ppb * dies)) as u32 + 8)
            .max(12)
            .next_multiple_of(cfg.planes);
        let chip = DeviceConfig::new(
            Geometry::new(blocks_per_die, ppb, cfg.page_size, 64).with_planes(cfg.planes),
            FlashMode::Slc,
        )
        .with_disturb(DisturbRates::none())
        .with_seed(cfg.seed);
        let mut controller = ControllerConfig::new(cfg.channels, cfg.dies_per_channel, chip);
        if let Some(cap) = cfg.queue_cap {
            controller = controller.with_queue_cap(cap);
        }
        if cfg.qos {
            controller = controller.with_qos();
        }

        // One shared region table naming every tenant's tables at their
        // shared-space LBAs — the device-level view of the partition.
        let mut regions = RegionTable::new();
        let mut base = 0u64;
        for ((name, tables), budget) in self.tenants.iter().zip(&budgets) {
            let mut first = base;
            for t in tables {
                regions.add(Region {
                    name: format!("{name}/{}", t.name),
                    lbas: first..first + t.pages,
                    layout: None,
                });
                first += t.pages;
            }
            base += budget;
        }

        let shared: SharedDevice = Arc::new(ShardedFtl::with_regions(
            controller,
            FtlConfig::traditional(),
            StripePolicy::RoundRobin,
            regions,
        ));
        shared
            .controller()
            .set_bounded_read_latencies(!cfg.exact_read_latencies);
        assert!(
            total <= shared.capacity_pages(),
            "fleet needs {total} pages but the shared device exports {}",
            shared.capacity_pages()
        );

        let mut tenants = Vec::with_capacity(self.tenants.len());
        let mut base = 0u64;
        for (id, ((name, tables), budget)) in self.tenants.into_iter().zip(budgets).enumerate() {
            let mut engine_cfg = EngineConfig::default()
                .with_buffer_frames(cfg.buffer_frames)
                .with_group_commit(1)
                .with_striped_wal(cfg.wal_stripe.0, cfg.wal_stripe.1);
            engine_cfg.wal_pages = cfg.wal_pages;
            let view = TenantDevice::new(Arc::clone(&shared), base, budget);
            let engine =
                StorageEngine::build_with_device(cfg.page_size, engine_cfg, &tables, |_, _| {
                    Box::new(view)
                })?;
            tenants.push(TenantHandle {
                id,
                name,
                engine,
                shared: Arc::clone(&shared),
                base,
                pages: budget,
                kills: 0,
                recoveries: 0,
                running: true,
            });
            base += budget;
        }

        Ok(Fleet {
            shared,
            tenants,
            config: self.config,
        })
    }
}

/// A running multi-tenant fleet over one shared device.
pub struct Fleet {
    shared: SharedDevice,
    tenants: Vec<TenantHandle>,
    config: FleetConfig,
}

impl Fleet {
    pub fn builder(config: FleetConfig) -> FleetBuilder {
        FleetBuilder::new(config)
    }

    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    pub fn tenants(&self) -> &[TenantHandle] {
        &self.tenants
    }

    pub fn tenants_mut(&mut self) -> &mut [TenantHandle] {
        &mut self.tenants
    }

    pub fn tenant_mut(&mut self, id: usize) -> &mut TenantHandle {
        &mut self.tenants[id]
    }

    /// Remove a tenant from the fleet entirely; its RAII `Drop` returns
    /// the LBA window to the shared device.
    pub fn evict(&mut self, id: usize) -> TenantHandle {
        self.tenants.remove(id)
    }

    /// Current submission clock of the shared device, nanoseconds.
    pub fn clock_ns(&self) -> u64 {
        self.shared.submission_clock_ns()
    }

    /// Counters of the shared data device (all tenants merged).
    pub fn shared_stats(&self) -> DeviceStats {
        self.shared.device_stats()
    }

    /// Scheduler counters of the shared controller.
    pub fn controller_stats(&self) -> Option<ControllerStats> {
        BlockDevice::controller_stats(&*self.shared)
    }

    /// Sealed WAL pages recycled by checkpoints, summed over the fleet's
    /// per-tenant log devices.
    pub fn wal_stripes_reclaimed(&self) -> u64 {
        self.tenants
            .iter()
            .map(|t| {
                t.engine
                    .stats()
                    .wal_device
                    .map(|d| d.wal_stripes_reclaimed)
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Kill/recover cycles completed across the fleet.
    pub fn kills(&self) -> u64 {
        self.tenants.iter().map(|t| t.kills).sum()
    }

    pub fn recoveries(&self) -> u64 {
        self.tenants.iter().map(|t| t.recoveries).sum()
    }
}

/// One tenant: an engine over its [`TenantDevice`] window, with the
/// crash/recover lifecycle and RAII teardown (dropping the handle trims
/// the tenant's window off the shared device).
pub struct TenantHandle {
    id: usize,
    name: String,
    engine: StorageEngine,
    shared: SharedDevice,
    base: u64,
    pages: u64,
    kills: u64,
    recoveries: u64,
    running: bool,
}

impl TenantHandle {
    pub fn id(&self) -> usize {
        self.id
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn engine(&self) -> &StorageEngine {
        &self.engine
    }

    pub fn engine_mut(&mut self) -> &mut StorageEngine {
        assert!(
            self.running,
            "tenant {} is killed; recover() before driving it",
            self.name
        );
        &mut self.engine
    }

    pub fn is_running(&self) -> bool {
        self.running
    }

    pub fn kills(&self) -> u64 {
        self.kills
    }

    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Kill the tenant at this instant: every buffered (unflushed) page
    /// is gone, exactly like power loss. The WAL survives.
    pub fn kill(&mut self) {
        assert!(self.running, "tenant {} is already killed", self.name);
        self.engine.crash();
        self.running = false;
        self.kills += 1;
    }

    /// Replay the WAL and bring the tenant back to its committed state.
    pub fn recover(&mut self) -> Result<RecoveryReport> {
        assert!(!self.running, "tenant {} is not killed", self.name);
        let report = self.engine.recover()?;
        self.running = true;
        self.recoveries += 1;
        Ok(report)
    }

    /// Flush everything and recycle dead log space
    /// ([`StorageEngine::checkpoint`]).
    pub fn checkpoint(&mut self) -> Result<()> {
        self.engine.checkpoint()
    }
}

impl Drop for TenantHandle {
    fn drop(&mut self) {
        // RAII teardown: return the window to the shared device so a
        // departed tenant's pages become reclaimable free space instead
        // of immortal live data squatting in every future GC pass.
        for lba in self.base..self.base + self.pages {
            if self.shared.is_mapped(lba) {
                let _ = self.shared.trim_shared(lba);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tenant_fleet() -> Fleet {
        Fleet::builder(FleetConfig::default())
            .tenant("a", vec![TableSpec::heap("rows", 48, 24)])
            .tenant("b", vec![TableSpec::heap("rows", 48, 24)])
            .build()
            .expect("fleet builds")
    }

    fn insert_row(t: &mut TenantHandle, byte: u8) -> ipa_storage::Rid {
        let e = t.engine_mut();
        let table = e.table("rows").unwrap();
        let tx = e.begin();
        let rid = e.insert(tx, table, &[byte; 48]).unwrap();
        e.commit(tx).unwrap();
        rid
    }

    #[test]
    fn tenants_partition_one_device() {
        let mut fleet = two_tenant_fleet();
        let ra = insert_row(fleet.tenant_mut(0), 0xAA);
        let rb = insert_row(fleet.tenant_mut(1), 0xBB);
        for t in fleet.tenants_mut() {
            t.engine_mut().flush_all().unwrap();
        }
        let ta = fleet.tenant_mut(0);
        let table = ta.engine().table("rows").unwrap();
        assert_eq!(ta.engine_mut().get(table, ra).unwrap(), vec![0xAA; 48]);
        let tb = fleet.tenant_mut(1);
        let table = tb.engine().table("rows").unwrap();
        assert_eq!(tb.engine_mut().get(table, rb).unwrap(), vec![0xBB; 48]);
        // One device underneath: both tenants' writes land on it.
        assert!(fleet.shared_stats().host_writes >= 2);
        assert!(fleet.controller_stats().is_some());
    }

    #[test]
    fn kill_recover_round_trips_committed_state() {
        let mut fleet = two_tenant_fleet();
        let rid = insert_row(fleet.tenant_mut(0), 0x5A);
        let t = fleet.tenant_mut(0);
        t.kill();
        assert!(!t.is_running());
        let report = t.recover().unwrap();
        assert!(report.updates_redone > 0, "committed insert replays");
        let table = t.engine().table("rows").unwrap();
        assert_eq!(t.engine_mut().get(table, rid).unwrap(), vec![0x5A; 48]);
        assert_eq!((t.kills(), t.recoveries()), (1, 1));
        assert_eq!(fleet.kills(), 1);
    }

    #[test]
    #[should_panic(expected = "killed")]
    fn driving_a_killed_tenant_panics() {
        let mut fleet = two_tenant_fleet();
        fleet.tenant_mut(0).kill();
        let _ = fleet.tenant_mut(0).engine_mut();
    }

    #[test]
    fn default_fleet_bounds_read_latency_memory() {
        // The long-soak default: read latencies go to the fixed-memory
        // histogram only; the exact per-read Vec must not grow. The Vec
        // comes back as an opt-in oracle via `exact_read_latencies`.
        let run = |exact: bool| {
            let cfg = FleetConfig {
                exact_read_latencies: exact,
                ..Default::default()
            };
            let mut fleet = Fleet::builder(cfg)
                .tenant("a", vec![TableSpec::heap("rows", 48, 24)])
                .build()
                .expect("fleet builds");
            insert_row(fleet.tenant_mut(0), 0x3C);
            fleet.tenant_mut(0).engine_mut().flush_all().unwrap();
            let mapped = (0..24).find(|&l| fleet.shared.is_mapped(l)).unwrap();
            let mut buf = vec![0u8; fleet.shared.page_size_shared()];
            for _ in 0..8 {
                fleet.shared.read_shared(mapped, &mut buf).unwrap();
            }
            let ctrl = fleet.shared.controller();
            (
                ctrl.read_latency_count(),
                ctrl.read_latency_histogram().count(),
            )
        };
        let (exact_len, hist) = run(false);
        assert_eq!(exact_len, 0, "default soak path must not grow the Vec");
        assert!(hist >= 8, "histogram still accounts every host read");
        let (oracle_len, _) = run(true);
        assert!(oracle_len >= 8, "the exact path stays available as oracle");
    }

    #[test]
    fn drop_returns_the_window_to_the_shared_device() {
        let mut fleet = two_tenant_fleet();
        insert_row(fleet.tenant_mut(0), 0x11);
        fleet.tenant_mut(0).engine_mut().flush_all().unwrap();
        let mapped_before: Vec<u64> = (0..48).filter(|&l| fleet.shared.is_mapped(l)).collect();
        assert!(
            mapped_before.iter().any(|&l| l < 24),
            "tenant a flushed pages inside its window"
        );
        let evicted = fleet.evict(0);
        drop(evicted);
        assert!(
            (0..24).all(|l| !fleet.shared.is_mapped(l)),
            "RAII drop trims the departed tenant's window"
        );
    }
}
