//! The crash/recovery soak: a seeded multi-tenant run with random
//! kill/recover cycles, per-tenant invariant checks after every recovery,
//! and bounded WAL space via periodic checkpoints.
//!
//! Tenants alternate TPC-B-style and TATP-style streams and share one
//! multi-channel device. Scheduling is earliest-clock-first across
//! tenants (the same discipline as the multi-stream benchmark driver), so
//! per-tenant latency samples include queueing behind the neighbours —
//! which is exactly what the fairness check is about.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ipa_controller::ControllerStats;
use ipa_workloads::{engine_metrics, fairness_spread, LatencyPercentiles, MetricsSnapshot};

use crate::fleet::{Fleet, FleetConfig};
use crate::workload::{TenantMix, TenantWorkload};

/// Soak-run shape. The defaults are the root-suite scale: 16 tenants,
/// ≥ 50 kill/recover cycles, checkpoints every other round.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    pub fleet: FleetConfig,
    pub tenants: usize,
    /// Base rows per tenant (accounts / subscribers).
    pub rows_per_tenant: u64,
    pub rounds: usize,
    /// Transactions per tenant per round.
    pub steps_per_round: usize,
    /// Random kill → recover → verify cycles per round.
    pub kills_per_round: usize,
    /// Checkpoint every tenant each N rounds (log-space recycling).
    pub checkpoint_every_rounds: usize,
    /// Host CPU time a tenant spends between its transactions.
    pub cpu_ns_per_tx: u64,
    pub seed: u64,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            fleet: FleetConfig::default(),
            tenants: 16,
            rows_per_tenant: 48,
            rounds: 18,
            steps_per_round: 6,
            kills_per_round: 3,
            checkpoint_every_rounds: 2,
            cpu_ns_per_tx: 30_000,
            seed: 0x50AC,
        }
    }
}

/// What a soak run did and measured.
#[derive(Debug, Clone)]
pub struct SoakReport {
    pub tenants: usize,
    /// Committed transactions across the fleet (loads excluded).
    pub steps: u64,
    pub kills: u64,
    pub recoveries: u64,
    /// WAL records scanned by all recoveries together.
    pub records_replayed: u64,
    /// Sealed log pages recycled by checkpoints, fleet-wide.
    pub wal_stripes_reclaimed: u64,
    /// Per-tenant device-latency distributions, tenant-indexed.
    pub per_tenant: Vec<LatencyPercentiles>,
    /// Shared-controller counters at the end of the run.
    pub controller: Option<ControllerStats>,
    /// Simulated span of the soak (max tenant clock), nanoseconds.
    pub elapsed_ns: u64,
    /// One [`MetricsSnapshot`] per tenant per round (outer index =
    /// round), taken after the round's chaos and checkpoints settle.
    /// Window a tenant's round with `delta_since` against the previous
    /// round's snapshot to see what that round cost it.
    pub metrics_per_round: Vec<Vec<MetricsSnapshot>>,
}

impl SoakReport {
    /// Cross-tenant p99.9 fairness (max/min ratio; 1.0 = perfectly fair).
    pub fn p999_spread(&self) -> f64 {
        let tails: Vec<u64> = self.per_tenant.iter().map(|p| p.p999_ns).collect();
        fairness_spread(&tails)
    }

    /// Committed transactions per simulated second.
    pub fn tps(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.steps as f64 / (self.elapsed_ns as f64 / 1e9)
        }
    }
}

/// Run the soak. Panics (with the tenant's label) if any tenant's
/// post-recovery state disagrees with its model — that is the point.
pub fn run_soak(cfg: &SoakConfig) -> ipa_storage::Result<SoakReport> {
    assert!(cfg.tenants >= 1 && cfg.steps_per_round >= 1);
    let expected_steps = (cfg.rounds * cfg.steps_per_round) as u64;

    let mut builder = Fleet::builder(cfg.fleet.clone());
    let mut workloads: Vec<TenantWorkload> = Vec::with_capacity(cfg.tenants);
    for i in 0..cfg.tenants {
        let mix = if i % 2 == 0 {
            TenantMix::TpcB
        } else {
            TenantMix::Tatp
        };
        let label = format!("t{i:02}-{}", mix.name());
        builder = builder.tenant(
            label.clone(),
            TenantWorkload::tables(
                mix,
                cfg.rows_per_tenant,
                expected_steps,
                cfg.fleet.page_size,
            ),
        );
        workloads.push(TenantWorkload::new(
            mix,
            cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            label,
        ));
    }
    let mut fleet = builder.build()?;
    for (i, w) in workloads.iter_mut().enumerate() {
        w.load(fleet.tenant_mut(i).engine_mut(), cfg.rows_per_tenant)?;
    }

    let start_ns = fleet.clock_ns();
    let mut clocks = vec![start_ns; cfg.tenants];
    let mut samples: Vec<Vec<u64>> = vec![Vec::new(); cfg.tenants];
    let mut chaos = StdRng::seed_from_u64(cfg.seed ^ 0xDEAD_BEEF);
    let mut records_replayed = 0u64;
    let mut metrics_per_round: Vec<Vec<MetricsSnapshot>> = Vec::with_capacity(cfg.rounds);

    for round in 0..cfg.rounds {
        // Earliest-clock-first across every tenant's quota this round.
        let mut remaining = vec![cfg.steps_per_round; cfg.tenants];
        let mut left = cfg.tenants * cfg.steps_per_round;
        while left > 0 {
            let i = (0..cfg.tenants)
                .filter(|&i| remaining[i] > 0)
                .min_by_key(|&i| clocks[i])
                .expect("quota left");
            let t = fleet.tenant_mut(i);
            t.engine_mut()
                .pool_mut()
                .device_mut()
                .set_submission_clock_ns(clocks[i]);
            workloads[i].step(t.engine_mut())?;
            let done = t.engine().pool().device().submission_clock_ns();
            samples[i].push(done.saturating_sub(clocks[i]));
            clocks[i] = done + cfg.cpu_ns_per_tx;
            remaining[i] -= 1;
            left -= 1;
        }

        // Chaos: kill a few tenants at this (seeded-arbitrary) point,
        // recover them through WAL replay, and hold every invariant.
        for _ in 0..cfg.kills_per_round {
            let v = chaos.gen_range(0..cfg.tenants);
            let t = fleet.tenant_mut(v);
            t.kill();
            let report = t.recover()?;
            records_replayed += report.records_scanned as u64;
            workloads[v].verify(t.engine_mut());
            // Recovery I/O happened on the device's clock; don't let the
            // tenant's logical clock lag behind what it just consumed.
            clocks[v] = clocks[v].max(t.engine().pool().device().submission_clock_ns());
        }

        // Recycle dead log space so the WAL footprint stays bounded no
        // matter how long the soak runs.
        if (round + 1) % cfg.checkpoint_every_rounds.max(1) == 0 {
            for i in 0..cfg.tenants {
                fleet.tenant_mut(i).checkpoint()?;
            }
        }

        // Per-tenant observability: the round closes with one unified
        // snapshot per tenant, so a post-mortem can window any tenant's
        // counters round-by-round.
        metrics_per_round.push(
            (0..cfg.tenants)
                .map(|i| engine_metrics(fleet.tenant_mut(i).engine()))
                .collect(),
        );
    }

    for (i, w) in workloads.iter().enumerate() {
        w.verify(fleet.tenant_mut(i).engine_mut());
    }

    Ok(SoakReport {
        tenants: cfg.tenants,
        steps: workloads.iter().map(|w| w.steps).sum(),
        kills: fleet.kills(),
        recoveries: fleet.recoveries(),
        records_replayed,
        wal_stripes_reclaimed: fleet.wal_stripes_reclaimed(),
        per_tenant: samples
            .into_iter()
            .map(LatencyPercentiles::from_samples)
            .collect(),
        controller: fleet.controller_stats(),
        elapsed_ns: clocks.iter().max().unwrap().saturating_sub(start_ns),
        metrics_per_round,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A pocket soak: 4 tenants, enough cycles to exercise every path
    /// (kill, recover, verify, checkpoint, reclaim) in a few seconds.
    #[test]
    fn pocket_soak_holds_invariants_and_reclaims_log_space() {
        let cfg = SoakConfig {
            tenants: 4,
            rounds: 6,
            steps_per_round: 5,
            kills_per_round: 2,
            ..Default::default()
        };
        let report = run_soak(&cfg).expect("soak runs");
        assert_eq!(report.tenants, 4);
        assert_eq!(report.kills, 12);
        assert_eq!(report.recoveries, report.kills);
        assert!(report.steps > 0 && report.elapsed_ns > 0);
        assert!(
            report.wal_stripes_reclaimed > 0,
            "checkpoints must recycle sealed log pages"
        );
        assert!(report.records_replayed > 0, "recoveries scanned the log");
        assert!(report.p999_spread() >= 1.0);
        assert!(report.controller.is_some());
        // One snapshot per tenant per round, with commits monotone
        // round-over-round and windows free of counter underflow.
        assert_eq!(report.metrics_per_round.len(), 6);
        for round in &report.metrics_per_round {
            assert_eq!(round.len(), 4);
        }
        let committed = |s: &MetricsSnapshot| s.get("engine.committed").unwrap().as_u64();
        for t in 0..4 {
            for r in 1..report.metrics_per_round.len() {
                let prev = &report.metrics_per_round[r - 1][t];
                let now = &report.metrics_per_round[r][t];
                assert!(committed(now) >= committed(prev));
                let w = now.delta_since(prev);
                assert!(
                    committed(&w) <= committed(now),
                    "windowed counters stay within totals"
                );
            }
        }
    }

    #[test]
    fn soak_is_deterministic_for_a_seed() {
        let cfg = SoakConfig {
            tenants: 2,
            rounds: 3,
            steps_per_round: 4,
            kills_per_round: 1,
            ..Default::default()
        };
        let a = run_soak(&cfg).unwrap();
        let b = run_soak(&cfg).unwrap();
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.kills, b.kills);
        assert_eq!(a.wal_stripes_reclaimed, b.wal_stripes_reclaimed);
        assert_eq!(a.elapsed_ns, b.elapsed_ns);
    }
}
