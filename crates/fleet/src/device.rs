//! Per-tenant sub-device views over one shared die-striped device.
//!
//! A [`TenantDevice`] is a window of `pages` consecutive host LBAs,
//! starting at `base`, on a device shared by every tenant of a
//! [`crate::Fleet`]. It speaks the full native device surface —
//! [`BlockDevice`], [`IoQueue`] (vectored submissions included) and
//! [`NativeFlashDevice`] — by translating tenant-relative LBAs into the
//! shared space, and it *enforces the partition*: any command addressing
//! an LBA at or past the tenant's capacity is rejected with
//! [`FtlError::LbaOutOfRange`] before it can touch a neighbour's data.

use std::sync::Arc;

use ipa_controller::ControllerStats;
use ipa_core::PageLayout;
use ipa_flash::FlashStats;
use ipa_ftl::{
    BlockDevice, DeviceStats, FtlError, IoCompletion, IoQueue, IoRequest, IoToken, Lba,
    NativeFlashDevice, Result, ShardedFtl,
};

/// The shared multi-channel device a fleet's tenant views sit over.
///
/// `Arc<ShardedFtl>` (no cell): the stripe is internally locked per die,
/// so tenant views on different host threads submit concurrently and
/// only serialize where the simulated hardware would — on a die, a
/// channel, or the completion buffer.
pub type SharedDevice = Arc<ShardedFtl>;

/// One tenant's window onto the shared device.
pub struct TenantDevice {
    shared: SharedDevice,
    base: Lba,
    pages: u64,
}

impl TenantDevice {
    pub fn new(shared: SharedDevice, base: Lba, pages: u64) -> Self {
        TenantDevice {
            shared,
            base,
            pages,
        }
    }

    /// First shared-space LBA of this tenant's window.
    pub fn base(&self) -> Lba {
        self.base
    }

    /// Translate a tenant-relative LBA, enforcing the partition.
    fn map(&self, lba: Lba) -> Result<Lba> {
        if lba >= self.pages {
            return Err(FtlError::LbaOutOfRange {
                lba,
                capacity: self.pages,
            });
        }
        Ok(self.base + lba)
    }

    /// Translate every LBA inside a queued request. A single member out
    /// of range fails the whole submission — vectored commands must not
    /// partially escape the window.
    fn translate(&self, req: IoRequest) -> Result<IoRequest> {
        Ok(match req {
            IoRequest::ReadV(lbas) => IoRequest::ReadV(
                lbas.into_iter()
                    .map(|l| self.map(l))
                    .collect::<Result<_>>()?,
            ),
            IoRequest::HighPriorityReadV(lbas) => IoRequest::HighPriorityReadV(
                lbas.into_iter()
                    .map(|l| self.map(l))
                    .collect::<Result<_>>()?,
            ),
            IoRequest::WriteV(pages) => IoRequest::WriteV(
                pages
                    .into_iter()
                    .map(|(l, data)| Ok((self.map(l)?, data)))
                    .collect::<Result<_>>()?,
            ),
            IoRequest::WriteDelta { lba, offset, delta } => IoRequest::WriteDelta {
                lba: self.map(lba)?,
                offset,
                delta,
            },
            IoRequest::WriteDeltaV(members) => IoRequest::WriteDeltaV(
                members
                    .into_iter()
                    .map(|(l, off, delta)| Ok((self.map(l)?, off, delta)))
                    .collect::<Result<_>>()?,
            ),
            IoRequest::Trim(lba) => IoRequest::Trim(self.map(lba)?),
            IoRequest::Flush => IoRequest::Flush,
        })
    }
}

impl BlockDevice for TenantDevice {
    fn page_size(&self) -> usize {
        self.shared.page_size_shared()
    }

    fn capacity_pages(&self) -> u64 {
        self.pages
    }

    fn read(&mut self, lba: Lba, buf: &mut [u8]) -> Result<()> {
        let lba = self.map(lba)?;
        self.shared.read_shared(lba, buf)
    }

    fn write(&mut self, lba: Lba, data: &[u8]) -> Result<()> {
        let lba = self.map(lba)?;
        self.shared.write_shared(lba, data)
    }

    fn trim(&mut self, lba: Lba) -> Result<()> {
        let lba = self.map(lba)?;
        self.shared.trim_shared(lba)
    }

    fn is_mapped(&self, lba: Lba) -> bool {
        lba < self.pages && self.shared.is_mapped(self.base + lba)
    }

    fn layout_for(&self, lba: Lba) -> Option<PageLayout> {
        if lba >= self.pages {
            return None;
        }
        self.shared.layout_for(self.base + lba)
    }

    fn device_stats(&self) -> DeviceStats {
        self.shared.device_stats()
    }

    fn flash_stats(&self) -> FlashStats {
        self.shared.flash_stats()
    }

    fn elapsed_ns(&self) -> u64 {
        self.shared.elapsed_ns()
    }

    fn max_erase_count(&self) -> u32 {
        self.shared.max_erase_count()
    }

    fn raw_blocks(&self) -> u32 {
        self.shared.raw_blocks()
    }

    fn controller_stats(&self) -> Option<ControllerStats> {
        BlockDevice::controller_stats(&*self.shared)
    }

    fn set_submission_clock_ns(&mut self, ns: u64) {
        self.shared.controller().set_host_ns(ns);
    }

    fn submission_clock_ns(&self) -> u64 {
        self.shared.submission_clock_ns()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

impl IoQueue for TenantDevice {
    fn submit(&mut self, req: IoRequest) -> Result<IoToken> {
        let req = self.translate(req)?;
        self.shared.submit_io(req)
    }

    fn poll(&mut self, token: IoToken) -> Option<IoCompletion> {
        self.shared.poll_io(token)
    }

    fn poll_checked(&mut self, token: IoToken) -> Result<IoCompletion> {
        self.shared.poll_io_checked(token)
    }

    fn sync(&mut self) -> u64 {
        ShardedFtl::sync(&self.shared)
    }

    fn forget(&mut self, token: IoToken) {
        self.shared.forget_io(token);
    }

    fn note_readahead_hit(&mut self) {
        self.shared.note_readahead_hit_shared();
    }

    fn note_wal_stripe_write(&mut self) {
        self.shared.note_wal_stripe_write_shared();
    }

    fn note_wal_stripe_reclaimed(&mut self) {
        self.shared.note_wal_stripe_reclaimed_shared();
    }
}

impl NativeFlashDevice for TenantDevice {
    fn write_delta(&mut self, lba: Lba, offset: usize, delta_bytes: &[u8]) -> Result<()> {
        let lba = self.map(lba)?;
        self.shared.write_delta_shared(lba, offset, delta_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_controller::ControllerConfig;
    use ipa_flash::{DeviceConfig, DisturbRates, FlashMode, Geometry};
    use ipa_ftl::{FtlConfig, StripePolicy};

    fn shared() -> SharedDevice {
        let chip = DeviceConfig::new(Geometry::new(16, 8, 2048, 64), FlashMode::Slc)
            .with_disturb(DisturbRates::none())
            .with_seed(3);
        Arc::new(ShardedFtl::new(
            ControllerConfig::new(2, 2, chip),
            FtlConfig::traditional(),
            StripePolicy::RoundRobin,
        ))
    }

    #[test]
    fn windows_translate_and_isolate() {
        let dev = shared();
        let mut a = TenantDevice::new(Arc::clone(&dev), 0, 8);
        let mut b = TenantDevice::new(Arc::clone(&dev), 8, 8);
        assert_eq!(a.capacity_pages(), 8);
        let ones = vec![1u8; 2048];
        let twos = vec![2u8; 2048];
        a.write(0, &ones).unwrap();
        b.write(0, &twos).unwrap();
        let mut buf = vec![0u8; 2048];
        a.read(0, &mut buf).unwrap();
        assert_eq!(buf, ones, "tenant A sees its own page");
        b.read(0, &mut buf).unwrap();
        assert_eq!(buf, twos, "same tenant-relative LBA, different page");
        assert!(dev.is_mapped(0) && dev.is_mapped(8));

        // The partition is enforced on every surface, including vectored
        // members: LBA 8 is tenant B's page, so A must never reach it.
        assert!(matches!(
            a.read(8, &mut buf),
            Err(FtlError::LbaOutOfRange {
                lba: 8,
                capacity: 8
            })
        ));
        assert!(a.write(9, &ones).is_err());
        assert!(a.trim(8).is_err());
        assert!(a
            .submit(IoRequest::ReadV(vec![0, 8]))
            .is_err_and(|e| matches!(e, FtlError::LbaOutOfRange { .. })));
        assert!(a
            .submit(IoRequest::WriteV(vec![(8, ones.clone())]))
            .is_err());
        assert!(!a.is_mapped(8), "out-of-window LBAs read as unmapped");

        // In-window queued ops work translated.
        let t = a.submit(IoRequest::ReadV(vec![0])).unwrap();
        let c = a.poll(t).expect("completion buffered");
        assert_eq!(c.data, vec![ones]);
    }
}
