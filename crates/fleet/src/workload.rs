//! Model-tracked tenant workload streams.
//!
//! Each tenant runs a seeded stream shaped like one of the paper's OLTP
//! mixes — [`TenantMix::TpcB`] (update-heavy read-modify-write on an
//! account table plus append-only history, the TPC-B transaction profile)
//! or [`TenantMix::Tatp`] (read-mostly point lookups with small field
//! updates, the TATP profile) — scaled down to fleet-soak size. Every
//! transaction is mirrored into an in-memory model **only after its
//! commit returns**, and the fleet runs its engines at `group_commit = 1`
//! (commit == durable), so after any kill/recover cycle the engine must
//! agree with the model byte-for-byte: [`TenantWorkload::verify`] is the
//! per-tenant logical-state invariant of the soak.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ipa_storage::{Result, Rid, StorageEngine, StorageError, TableId, TableSpec};
use ipa_workloads::heap_pages;
use ipa_workloads::tatp::SUB_ROW;
use ipa_workloads::tpcb::{BALANCE_OFF, HISTORY_LEN, ROW_LEN};

/// Opening balance of every TPC-B-style account row.
const INITIAL_BALANCE: i64 = 1_000_000;

/// Which OLTP profile a tenant's stream follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantMix {
    /// Update-heavy: read-modify-write an account balance and append a
    /// history row, every transaction.
    TpcB,
    /// Read-mostly: ~70 % point reads, small field updates otherwise.
    Tatp,
}

impl TenantMix {
    pub fn name(self) -> &'static str {
        match self {
            TenantMix::TpcB => "tpcb",
            TenantMix::Tatp => "tatp",
        }
    }
}

/// A seeded stream + its in-memory model for one tenant.
pub struct TenantWorkload {
    mix: TenantMix,
    rng: StdRng,
    label: String,
    /// Committed row images, both tables (RIDs are engine-unique).
    rows: BTreeMap<Rid, Vec<u8>>,
    /// Account/subscriber RIDs, insertion order (the pick pool).
    rids: Vec<Rid>,
    table: Option<TableId>,
    history_table: Option<TableId>,
    /// Net committed balance delta (TPC-B money-flow invariant).
    committed_delta: i64,
    initial_total: i64,
    /// Committed transactions so far.
    pub steps: u64,
}

impl TenantWorkload {
    pub fn new(mix: TenantMix, seed: u64, label: impl Into<String>) -> Self {
        TenantWorkload {
            mix,
            rng: StdRng::seed_from_u64(seed),
            label: label.into(),
            rows: BTreeMap::new(),
            rids: Vec::new(),
            table: None,
            history_table: None,
            committed_delta: 0,
            initial_total: 0,
            steps: 0,
        }
    }

    pub fn mix(&self) -> TenantMix {
        self.mix
    }

    /// The tenant schema for a mix: `rows` base rows, with history space
    /// for `expected_steps` appends (TPC-B writes one per transaction).
    pub fn tables(
        mix: TenantMix,
        rows: u64,
        expected_steps: u64,
        page_size: usize,
    ) -> Vec<TableSpec> {
        match mix {
            TenantMix::TpcB => vec![
                TableSpec::heap("account", ROW_LEN, heap_pages(rows, ROW_LEN, page_size)),
                TableSpec::heap(
                    "history",
                    HISTORY_LEN,
                    heap_pages(expected_steps + 8, HISTORY_LEN, page_size),
                ),
            ],
            TenantMix::Tatp => vec![TableSpec::heap(
                "subscriber",
                SUB_ROW,
                heap_pages(rows, SUB_ROW, page_size),
            )],
        }
    }

    /// Populate the base table (one transaction) and checkpoint, so the
    /// loaded state is on flash and the load's log space is recycled
    /// before the measured stream starts.
    pub fn load(&mut self, engine: &mut StorageEngine, rows: u64) -> Result<()> {
        let (name, row_len) = match self.mix {
            TenantMix::TpcB => ("account", ROW_LEN),
            TenantMix::Tatp => ("subscriber", SUB_ROW),
        };
        let table = engine.table(name)?;
        self.table = Some(table);
        if self.mix == TenantMix::TpcB {
            self.history_table = Some(engine.table("history")?);
        }
        let tx = engine.begin();
        for _ in 0..rows {
            let mut row = vec![0u8; row_len];
            self.rng.fill(&mut row[..]);
            row[BALANCE_OFF..BALANCE_OFF + 8].copy_from_slice(&INITIAL_BALANCE.to_le_bytes());
            let rid = engine.insert(tx, table, &row)?;
            self.rows.insert(rid, row);
            self.rids.push(rid);
        }
        engine.commit(tx)?;
        self.initial_total = rows as i64 * INITIAL_BALANCE;
        engine.checkpoint()
    }

    /// One transaction of the tenant's mix. The model is updated only
    /// when the commit returns, so a kill at any step boundary leaves
    /// model and durable state in agreement.
    pub fn step(&mut self, engine: &mut StorageEngine) -> Result<()> {
        let table = self.table.expect("load() before step()");
        let rid = self.rids[self.rng.gen_range(0..self.rids.len())];
        match self.mix {
            TenantMix::TpcB => {
                // An occasional client-side abort keeps the undo path in
                // the stream (and in every recovery's skip set).
                if self.rng.gen_range(0..12u32) == 0 {
                    let tx = engine.begin();
                    engine.update_field(tx, table, rid, BALANCE_OFF, &[0xEE; 8])?;
                    engine.abort(tx)?;
                    return Ok(());
                }
                let delta = self.rng.gen_range(-1000..=1000i64);
                let got = engine.get(table, rid)?;
                assert_eq!(
                    &got, &self.rows[&rid],
                    "{}: account read diverged before tx",
                    self.label
                );
                let old = i64::from_le_bytes(got[BALANCE_OFF..BALANCE_OFF + 8].try_into().unwrap());
                let new = (old + delta).to_le_bytes();
                let mut hist = vec![0u8; HISTORY_LEN];
                self.rng.fill(&mut hist[..]);
                let tx = engine.begin();
                engine.update_field(tx, table, rid, BALANCE_OFF, &new)?;
                let hist_rid = match engine.insert(tx, self.history_table.unwrap(), &hist) {
                    Ok(r) => Some(r),
                    Err(StorageError::TableFull(_)) => None,
                    Err(e) => return Err(e),
                };
                engine.commit(tx)?;
                self.rows.get_mut(&rid).unwrap()[BALANCE_OFF..BALANCE_OFF + 8]
                    .copy_from_slice(&new);
                self.committed_delta += delta;
                if let Some(h) = hist_rid {
                    self.rows.insert(h, hist);
                }
            }
            TenantMix::Tatp => match self.rng.gen_range(0..100u32) {
                0..=69 => {
                    let got = engine.get(table, rid)?;
                    assert_eq!(
                        &got, &self.rows[&rid],
                        "{}: subscriber read diverged",
                        self.label
                    );
                }
                70..=94 => {
                    let off = self.rng.gen_range(0..SUB_ROW - 4);
                    let bytes: [u8; 4] = self.rng.gen();
                    let tx = engine.begin();
                    engine.update_field(tx, table, rid, off, &bytes)?;
                    engine.commit(tx)?;
                    self.rows.get_mut(&rid).unwrap()[off..off + 4].copy_from_slice(&bytes);
                }
                _ => {
                    let tx = engine.begin();
                    engine.update_field(tx, table, rid, 0, &[0xAB, 0xCD])?;
                    engine.abort(tx)?;
                }
            },
        }
        self.steps += 1;
        Ok(())
    }

    /// The per-tenant logical-state invariant: every committed row image
    /// readable and identical, and (TPC-B) the money-flow equation
    /// `sum(balances) == initial + committed deltas` holding on bytes
    /// read back from the engine, not from the model.
    pub fn verify(&self, engine: &mut StorageEngine) {
        let table = self.table.expect("load() before verify()");
        let mut engine_total = 0i64;
        for (rid, expect) in &self.rows {
            // History RIDs live in the other table; `get` addresses by
            // page so the table id only gates the row-length check —
            // resolve which table the rid belongs to by length.
            let t = if expect.len() == HISTORY_LEN && self.mix == TenantMix::TpcB {
                self.history_table.unwrap()
            } else {
                table
            };
            let got = engine
                .get(t, *rid)
                .unwrap_or_else(|e| panic!("{}: row {rid:?} lost after recovery: {e}", self.label));
            assert_eq!(&got, expect, "{}: row {rid:?} diverged", self.label);
            if expect.len() != HISTORY_LEN || self.mix != TenantMix::TpcB {
                engine_total +=
                    i64::from_le_bytes(got[BALANCE_OFF..BALANCE_OFF + 8].try_into().unwrap());
            }
        }
        if self.mix == TenantMix::TpcB {
            assert_eq!(
                engine_total,
                self.initial_total + self.committed_delta,
                "{}: money-flow invariant broken after recovery",
                self.label
            );
        }
    }
}
