//! Multi-tenant fleet harness over one shared in-place-appendable device.
//!
//! The paper's economics only matter at fleet scale: many independent
//! database tenants sharing one flash device, each with its own WAL,
//! buffer pool and OLTP stream, all competing for the same channels and
//! dies. This crate builds that shape out of the existing pieces:
//!
//! - [`TenantDevice`] — a per-tenant sub-device *view* (an LBA window)
//!   over one shared [`ipa_ftl::ShardedFtl`], enforcing the partition on
//!   every command surface.
//! - [`Fleet`] / [`FleetBuilder`] — partition a multi-channel device into
//!   N tenants, each a full [`ipa_storage::StorageEngine`] with its own
//!   striped WAL; [`TenantHandle`] gives each tenant a kill →
//!   recover-via-WAL-replay lifecycle and returns its window to the
//!   shared device on drop.
//! - [`TenantWorkload`] — seeded, model-tracked TPC-B-style and
//!   TATP-style streams whose [`TenantWorkload::verify`] is the
//!   per-tenant logical-state invariant.
//! - [`run_soak`] — the crash/recovery soak: dozens of tenants, random
//!   kill/recover cycles mid-run, invariants held after every recovery,
//!   WAL space bounded by checkpoint-driven log reclamation, and
//!   per-tenant p99.9 fairness measured under shared-queue contention.

mod device;
mod fleet;
mod soak;
mod workload;

pub use device::{SharedDevice, TenantDevice};
pub use fleet::{Fleet, FleetBuilder, FleetConfig, TenantHandle};
pub use soak::{run_soak, SoakConfig, SoakReport};
pub use workload::{TenantMix, TenantWorkload};
