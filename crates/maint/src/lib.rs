//! # `ipa-maint` — the background maintenance subsystem
//!
//! The IPA design wins by deferring erases, but deferral only pays if the
//! reclaim work eventually done does not land on the host's critical
//! path. This crate owns that scheduling problem:
//!
//! * [`MaintenanceScheduler`] — dispatches resumable
//!   [`ipa_ftl::ReclaimJob`] steps (victim selection, live-delta
//!   copy-back, erase) onto dies the [`ipa_controller::FlashController`]
//!   reports idle, interleaving reclaim with host traffic at
//!   single-command granularity instead of running whole-block reclaims
//!   inline with the write that tripped the low-water mark.
//! * [`MaintainedFtl`] — a [`ipa_ftl::ShardedFtl`] wrapper implementing
//!   the same [`ipa_ftl::BlockDevice`] / [`ipa_ftl::NativeFlashDevice`]
//!   contract; every host command is followed by one scheduler poll, the
//!   moment the controller's clocks say which dies are idle.
//! * [`MaintConfig`] / [`MaintStats`] — dispatch policy knobs and the
//!   subsystem's own counters (steps placed, dies skipped busy, peak
//!   cross-die wear spread).
//!
//! Scheduling choices are fed by two controller-level views added for
//! this subsystem: per-die idleness (`die_idle`, from the die `SimClock`s)
//! and the wear view (`die_erase_count`, min/max spread in
//! `ControllerStats`), so reclaim pressure is ordered by urgency first
//! and wear second — the two-level-hierarchy cost game of scheduling the
//! slow tier so the fast path never waits.
//!
//! Pairs with the controller's NCQ queue caps
//! ([`ipa_controller::ControllerConfig::with_queue_cap`]): caps give
//! "idle" teeth by bounding how much posted host work can pile onto a
//! die, and back-pressure makes the host feel a die it is overdriving —
//! while firmware-internal maintenance work is exempt and gated on
//! idleness instead.

pub mod config;
pub mod device;
pub mod scheduler;
pub mod stats;

pub use config::MaintConfig;
pub use device::MaintainedFtl;
pub use scheduler::{MaintenanceScheduler, WearShifter};
pub use stats::MaintStats;
