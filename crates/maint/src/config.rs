//! Maintenance policy knobs.

use serde::{Deserialize, Serialize};

/// How aggressively the scheduler places background reclaim work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaintConfig {
    /// Upper bound on reclaim steps dispatched to one die per poll. Each
    /// step is one device command (a page copy-back + program, or the
    /// final erase), so this bounds the busy-burst a host command can
    /// find queued in front of it on a die the scheduler just used.
    pub steps_per_poll: u32,
    /// Start refilling this many blocks *above* the shard's low-water
    /// mark. Working ahead of the mark is what keeps the write path's
    /// emergency inline GC from ever firing under steady load.
    pub early_blocks: u32,
}

impl Default for MaintConfig {
    fn default() -> Self {
        // One step per poll measures best on tail latency: after a step
        // the die reads busy, so the idle gate itself spreads the rest of
        // the job across later polls instead of stacking a reclaim burst
        // into one die-busy period a host read then waits out in full.
        // Early refill defaults off — triggering above the low-water mark
        // reclaims blocks while they still hold valid pages, and on
        // GC-light workloads (TATP) that extra copy-back traffic costs
        // more tail latency than the deeper pool buys.
        MaintConfig {
            steps_per_poll: 1,
            early_blocks: 0,
        }
    }
}

impl MaintConfig {
    pub fn with_steps_per_poll(mut self, steps: u32) -> Self {
        assert!(steps >= 1, "a zero step budget would never reclaim");
        self.steps_per_poll = steps;
        self
    }

    pub fn with_early_blocks(mut self, blocks: u32) -> Self {
        self.early_blocks = blocks;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = MaintConfig::default();
        assert!(c.steps_per_poll >= 1);
        assert_eq!(c.with_steps_per_poll(8).steps_per_poll, 8);
        assert_eq!(c.with_early_blocks(2).early_blocks, 2);
    }

    #[test]
    #[should_panic(expected = "zero step budget")]
    fn zero_steps_rejected() {
        let _ = MaintConfig::default().with_steps_per_poll(0);
    }
}
